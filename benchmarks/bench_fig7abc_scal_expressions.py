"""Fig. 7(a)–(c): optimization time vs. the number of policy expressions
(12, 25, 50, 100 CR+A expressions) for Q2, Q3, and Q10, with the paper's
η counter (how often an expression is actually applied).

Paper shape: time grows roughly with η — i.e. with the number of
expressions that *affect the query's search space* — not with the raw
catalog size; growth is at most linear."""

import pytest

from repro.bench import scalability_expressions

COUNTS = (12, 25, 50, 100)


@pytest.mark.parametrize("query_name", ["Q2", "Q3", "Q10"])
def test_fig7abc_expression_scalability(catalog, network, report, benchmark, query_name):
    result = benchmark.pedantic(
        lambda: scalability_expressions(
            catalog, network, query_name, counts=COUNTS, repetitions=3
        ),
        rounds=1,
        iterations=1,
    )
    report.emit(f"fig7_{query_name}_expressions", result.table())

    times = [t.mean_ms for _n, t, _e in result.points]
    etas = [e for _n, _t, e in result.points]
    # η grows with the number of registered expressions.
    assert etas == sorted(etas)
    assert etas[-1] > etas[0]
    # Sub-linear-to-linear growth: 8.3x more expressions must not blow up
    # optimization time by more than ~the η growth plus constant factors.
    eta_growth = max(1.0, etas[-1] / max(1, etas[0]))
    assert times[-1] / times[0] < max(4.0, 2.0 * eta_growth)
