"""Chaos recovery — makespan inflation of the fragment schedule under
injected WAN faults, with compliance-preserving recovery.

Not a figure of the paper: the paper's executor assumes a healthy WAN.
This benchmark quantifies what its §7.4 response-time metric (the
critical-path makespan of the fragment schedule) costs once transfers
can fail, by running the six curated queries fault-free and then under
seeded random fault plans.

Two modes:

* **transient-only** (flaky windows + slow links) — the chaos
  *equivalence* regime: retries with backoff must absorb every fault
  and each faulted run must stay row-identical to its fault-free run,
  paying only makespan (retry backoff + slow-link degradation).
* **crashes included** — permanent site failures trigger failover; a
  re-placed fragment may only land inside its execution traits ℰ and
  every re-placement is re-validated (Theorem 1 extended to runtime
  re-placements, see docs/ROBUSTNESS.md).  Queries either recover
  row-identically or degrade to a *typed* partial failure — never to a
  wrong answer or an unhandled exception.
"""

import pytest

from repro.bench import chaos_recovery

SCALE = 0.01  # simulated times scale linearly; the shape is scale-free
SEEDS = (0, 1, 2, 3, 4)


def test_chaos_transient_equivalence(report, benchmark):
    result = benchmark.pedantic(
        lambda: chaos_recovery(seeds=SEEDS, scale=SCALE, transient_only=True),
        rounds=1,
        iterations=1,
    )
    report.emit("chaos_recovery_transient", result.table())

    assert len(result.rows) >= 25  # >= 25 seeded query/fault combos
    for row in result.rows:
        # The chaos equivalence property: transient faults + retries
        # change *when*, never *what*.
        assert row.partial_failure is None, (row.query, row.seed, row.faults)
        assert row.rows_match, (row.query, row.seed, row.faults)
        # Faults can only delay the critical path, never shorten it.
        # (Retry backoff on an off-critical-path transfer legitimately
        # leaves the makespan unchanged — the delayed delivery still
        # beats the critical path; the per-transfer accounting itself is
        # covered by the scheduler unit tests.)
        assert row.faulted_makespan >= row.baseline_makespan - 1e-9
        assert row.attempts >= row.transfers
    # The fault plans target live links, so a healthy share of the runs
    # must actually have retried and been delayed.
    retried = [r for r in result.rows if r.attempts > r.transfers]
    inflated = [r for r in result.rows if r.inflation > 1.0 + 1e-9]
    assert len(retried) >= len(result.rows) // 4
    assert len(inflated) >= len(result.rows) // 4
    assert max(r.inflation for r in result.rows) > 1.05


def test_chaos_with_crashes(report, benchmark):
    result = benchmark.pedantic(
        lambda: chaos_recovery(seeds=SEEDS, scale=SCALE, transient_only=False),
        rounds=1,
        iterations=1,
    )
    report.emit("chaos_recovery_crashes", result.table())

    for row in result.rows:
        if row.partial_failure is not None:
            # Degradation is typed, never a wrong answer.
            assert not row.rows_match or row.faulted_makespan == 0.0
            assert "Error" in row.partial_failure
        else:
            assert row.rows_match, (row.query, row.seed, row.faults)
        # Every failover the scheduler performed was re-validated by the
        # compliance checker (the engine runs with a policy guard).
        assert row.validated_recoveries == row.recoveries, (row.query, row.seed)
