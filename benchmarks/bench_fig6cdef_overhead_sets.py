"""Fig. 6(c)–(f): optimization time under the four curated expression
sets (T with 8 expressions; C, CR, CR+A with ~10).

Paper shape: a modest constant-factor overhead over the traditional
optimizer; C costs the most extra policy-evaluation time (its implication
tests always pass, so every expression is processed to the end), while CR
and CR+A are cheaper per expression because failing implication tests
reject expressions early."""

import pytest

from repro.bench import optimization_overhead
from repro.tpch import QUERIES, curated_policies

SETS = ("T", "C", "CR", "CR+A")


@pytest.mark.parametrize("set_name", SETS)
def test_fig6cdef_overhead(catalog, network, report, benchmark, set_name):
    policies = curated_policies(catalog, set_name)
    result = benchmark.pedantic(
        lambda: optimization_overhead(
            catalog,
            network,
            policies,
            label=f"Fig 6(c-f) — optimization time, set {set_name} "
            f"({len(policies)} expressions)",
            repetitions=5,
        ),
        rounds=1,
        iterations=1,
    )
    safe = set_name.replace("+", "_")
    # The paper explains per-set cost differences via the implication
    # test: under C it always passes (every candidate expression is
    # processed to the end), under CR/CR+A it often fails early.  Record
    # the measured pass rate alongside the timings.
    from repro.optimizer import CompliantOptimizer

    probe = CompliantOptimizer(catalog, policies, network)
    probe.evaluator.reset_stats()
    for name in QUERIES:
        probe.optimize(QUERIES[name])
    stats = probe.evaluator.stats
    pass_rate = (
        stats.implication_passes / stats.implication_checks
        if stats.implication_checks
        else 1.0
    )
    report.emit(
        f"fig6cdef_overhead_{safe}",
        result.table()
        + f"\nimplication checks: {stats.implication_checks}, "
        f"pass rate: {pass_rate:.2f}, eta: {stats.eta}",
    )
    for name in QUERIES:
        assert result.overhead_factor(name) < 4.0
    # Q2 has by far the largest join space and therefore the largest
    # absolute times (the paper's most-pronounced-overhead query).
    q2 = result.per_query["Q2"][1].mean_ms
    q3 = result.per_query["Q3"][1].mean_ms
    assert q2 > q3
