"""Concurrent serving under a sustained flaky link: breakers on vs off.

Replays a deterministic workload (the six curated TPC-H queries, round
robin) through the query server twice — once with per-link circuit
breakers, once without — under a permanent ``flaky:`` window on the
hottest link of a fault-free profiling run.  Without breakers every
transfer over the bad link burns its full retry backoff before failing;
with breakers the link opens after the failure threshold and later
transfers fast-fail straight into failover/degradation.

Acceptance (asserted here, and smoke-run in CI at tiny scale):

* breaker-on total makespan <= breaker-off for the same workload;
* every served query's rows are identical (ordered) to a sequential
  single-query execution — concurrency, faults, and breakers must
  never change *results*;
* every shed/rejected/partial outcome carries a typed error — no hangs
  and no silent drops;
* ``ServerMetrics`` buckets reconcile to the workload size.

Scale via ``REPRO_BENCH_SERVE_SCALE`` (TPC-H scale, default 0.005),
``REPRO_BENCH_SERVE_REPEAT`` (workload rounds, default 3), and
``REPRO_BENCH_SERVE_DEADLINE`` (per-query deadline in simulated
seconds, default 2.0).  Results go to the text report and to
``benchmarks/results/BENCH_serve_workload.json``.
"""

from __future__ import annotations

import json
import os
from collections import Counter

import pytest

from repro.bench import format_table
from repro.errors import ReproError
from repro.execution import ExecutionEngine, parse_fault_spec
from repro.optimizer import CompliantOptimizer
from repro.server import BreakerRegistry, QueryServer, workload_from_queries
from repro.tpch import QUERIES, build_benchmark, curated_policies, default_network

SCALE = float(os.environ.get("REPRO_BENCH_SERVE_SCALE", "0.005"))
REPEAT = int(os.environ.get("REPRO_BENCH_SERVE_REPEAT", "3"))
DEADLINE = float(os.environ.get("REPRO_BENCH_SERVE_DEADLINE", "2.0"))
INTERARRIVAL = 0.02
SERVED_QUERIES = [(name, QUERIES[name]) for name in sorted(QUERIES)]


@pytest.fixture(scope="module")
def world():
    catalog, database = build_benchmark(scale=SCALE, stats_scale=1.0)
    network = default_network()
    optimizer = CompliantOptimizer(catalog, curated_policies(catalog, "CR"), network)
    return catalog, database, network, optimizer


def hottest_link(references) -> tuple[str, str]:
    """The cross-site link carrying the most bytes in fault-free runs —
    the most damaging place for a sustained flaky window."""
    volume: Counter = Counter()
    for output in references.values():
        for ship in output.metrics.ships:
            if ship.source != ship.target:
                volume[(ship.source, ship.target)] += ship.bytes
    assert volume, "curated queries must ship across sites"
    return max(sorted(volume), key=lambda k: volume[k])


def serve_once(world, faults, breakers):
    catalog, database, network, optimizer = world
    server = QueryServer(
        database,
        network,
        optimizer=optimizer,
        evaluator=optimizer.evaluator,
        concurrency=3,
        queue_depth=2 * len(SERVED_QUERIES) * REPEAT,
        default_deadline=DEADLINE,
        breakers=breakers,
        faults=faults,
    )
    workload = workload_from_queries(
        SERVED_QUERIES, interarrival=INTERARRIVAL, repeat=REPEAT
    )
    return workload, server.serve(workload)


def summarize(result):
    m = result.metrics
    return {
        "makespan_seconds": m.makespan_seconds,
        "throughput_qps": m.throughput_qps,
        "shed_rate": m.shed_rate,
        "served": m.served,
        "served_late": m.served_late,
        "shed": m.shed,
        "rejected": m.rejected,
        "partial": m.partial,
        "transfer_attempts": m.transfer_attempts,
        "retry_wait_seconds": m.retry_wait_seconds,
        "breaker_fast_fails": m.breaker_fast_fails,
        "breaker_trips": m.breaker_trips,
        "recoveries": m.recoveries,
    }


def check_contract(workload, result, references):
    """The degradation contract every serve run must satisfy."""
    metrics = result.metrics
    assert metrics.total == len(workload)
    assert metrics.reconciles(), metrics.summary()
    for outcome in result.outcomes:
        if outcome.status == "served":
            name = outcome.request.name.split("#")[0]
            reference = references[name]
            assert outcome.columns == reference.columns
            assert outcome.rows == reference.rows, (
                f"{outcome.request.label}: served rows diverge from the "
                f"sequential reference execution"
            )
        else:
            assert isinstance(outcome.error, ReproError), outcome
            assert str(outcome.error)


def test_serve_workload(world, report):
    catalog, database, network, optimizer = world
    engine = ExecutionEngine(
        database, network, policy_guard=optimizer.evaluator, parallel=True
    )
    references = {
        name: engine.execute(optimizer.optimize(sql).plan)
        for name, sql in SERVED_QUERIES
    }
    src, dst = hottest_link(references)
    fault_spec = f"flaky:{src}->{dst}@0+1e9"
    faults = parse_fault_spec(fault_spec, locations=catalog.locations)

    runs = {}
    table_rows = []
    for label, breakers in (
        ("fault_free", None),
        ("breaker_off", None),
        ("breaker_on", BreakerRegistry()),
    ):
        injected = None if label == "fault_free" else faults
        workload, result = serve_once(world, injected, breakers)
        check_contract(workload, result, references)
        runs[label] = summarize(result)
        m = result.metrics
        table_rows.append(
            [
                label,
                f"{m.makespan_seconds:.3f}",
                f"{m.throughput_qps:.2f}",
                f"{m.shed_rate:.0%}",
                f"{m.served}/{m.shed}/{m.rejected}/{m.partial}",
                m.breaker_fast_fails,
                m.breaker_trips,
            ]
        )

    # The headline claim: fast-failing an open breaker never slows the
    # workload down versus burning full retry backoff on a known-bad
    # link (equality when the breaker never trips).
    assert (
        runs["breaker_on"]["makespan_seconds"]
        <= runs["breaker_off"]["makespan_seconds"] + 1e-9
    ), runs

    payload = {
        "scale": SCALE,
        "repeat": REPEAT,
        "deadline_seconds": DEADLINE,
        "interarrival_seconds": INTERARRIVAL,
        "workload_queries": len(SERVED_QUERIES) * REPEAT,
        "fault_spec": fault_spec,
        "runs": runs,
    }
    out_dir = report.directory
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "BENCH_serve_workload.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    report.emit(
        "serve_workload",
        format_table(
            [
                "run",
                "makespan s",
                "qps",
                "shed rate",
                "served/shed/rej/part",
                "fast fails",
                "trips",
            ],
            table_rows,
            title=f"Concurrent serving, {len(SERVED_QUERIES) * REPEAT} queries, "
            f"flaky {src}->{dst} (TPC-H scale {SCALE})",
        ),
    )
