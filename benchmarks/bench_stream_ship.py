"""Streaming pipelined SHIP vs monolithic transfers: the headline bench.

Runs the six curated TPC-H queries (policy set CR) through the fragment
scheduler twice per query — monolithic uncompressed transfers vs the
CLI-default streaming wire format (fixed-size chunks, per-column
dict/RLE/plain compression) — and once more under a seeded transient
fault plan with chunk-granular retry.  Reported per query:

* simulated critical-path makespan, monolithic vs streamed (first-chunk
  admission can only help; fault-free it must never hurt);
* logical vs wire SHIP bytes and the resulting compression ratio;
* chunk counts, and under faults the chunks re-sent and backoff waited.

Acceptance (asserted here, and smoke-run in CI at tiny scale):

* zero row divergence anywhere: streamed ordered rows == monolithic
  ordered rows, fault-free and faulted;
* logical byte accounting is invariant: both arms bill identical
  `ShipRecord.bytes` totals;
* compression bites: total wire bytes < total logical bytes, and the
  streamed makespan sum is <= the monolithic sum (strictly < on at
  least one query at the default scale);
* every streamed trace — including the faulted one — audits COMPLIANT.

Scale via ``REPRO_BENCH_STREAM_SCALE`` (TPC-H scale, default 0.01) and
``REPRO_BENCH_STREAM_CHUNK`` (chunk rows, default 256).  Results go to
the text report and ``benchmarks/results/BENCH_stream_ship.json``.
"""

from __future__ import annotations

import json
import os

from repro.bench import format_table
from repro.execution import ExecutionEngine, RetryPolicy, ShipConfig, parse_fault_spec
from repro.optimizer import CompliantOptimizer
from repro.tpch import QUERIES, build_benchmark, curated_policies, default_network
from repro.trace import ComplianceAuditor, TraceRecorder, tracing

SCALE = float(os.environ.get("REPRO_BENCH_STREAM_SCALE", "0.01"))
CHUNK_ROWS = int(os.environ.get("REPRO_BENCH_STREAM_CHUNK", "256"))
STREAM = ShipConfig(chunk_rows=CHUNK_ROWS, compression="auto")
FAULTS = "drop:Europe->NorthAmerica@0.01+0.05;flaky:AsiaPacific->NorthAmerica@0.0+0.1"


def build_world():
    catalog, database = build_benchmark(scale=SCALE, stats_scale=1.0)
    network = default_network()
    policies = curated_policies(catalog, "CR")
    optimizer = CompliantOptimizer(catalog, policies, network)
    auditor = ComplianceAuditor(policies)
    return catalog, database, network, optimizer, auditor


def traced(engine, plan):
    recorder = TraceRecorder()
    with tracing(recorder):
        result = engine.execute(plan)
    return result, recorder


def test_stream_ship_bench(report):
    catalog, database, network, optimizer, auditor = build_world()
    mono_engine = ExecutionEngine(database, network, parallel=True)
    stream_engine = ExecutionEngine(database, network, parallel=True, ship=STREAM)
    faults = parse_fault_spec(FAULTS, locations=catalog.locations)
    chaos_engine = ExecutionEngine(
        database,
        network,
        parallel=True,
        faults=faults,
        retry_policy=RetryPolicy(max_retries=8),
        ship=STREAM,
    )

    rows = []
    queries = {}
    for name in sorted(QUERIES):
        plan = optimizer.optimize(QUERIES[name]).plan
        mono = mono_engine.execute(plan)
        streamed, recorder = traced(stream_engine, plan)
        chaotic, chaos_recorder = traced(chaos_engine, plan)

        # Zero row divergence, fault-free and faulted.
        assert streamed.rows == mono.rows, name
        assert chaotic.partial_failure is None, name
        assert sorted(map(repr, chaotic.rows)) == sorted(map(repr, mono.rows)), name
        # Logical byte accounting is transport-invariant.
        assert (
            streamed.metrics.total_bytes_shipped
            == mono.metrics.total_bytes_shipped
        ), name
        # Fault-free streaming never loses to the monolithic schedule.
        assert streamed.makespan_seconds <= mono.makespan_seconds + 1e-9, name
        # Clean audits at any chunk granularity, retries included.
        assert auditor.audit_events(recorder.events()).ok, name
        assert auditor.audit_events(chaos_recorder.events()).ok, name

        logical = streamed.metrics.total_bytes_shipped
        wire = streamed.metrics.total_wire_bytes_shipped
        resent = sum(
            1
            for e in chaos_recorder.events()
            if e.kind == "chunk" and e.outcome != "delivered"
        )
        queries[name] = {
            "monolithic_makespan": mono.makespan_seconds,
            "streamed_makespan": streamed.makespan_seconds,
            "logical_bytes": logical,
            "wire_bytes": wire,
            "wire_reduction": logical / wire if wire else 1.0,
            "chunks_shipped": streamed.metrics.total_chunks_shipped,
            "faulted": {
                "makespan_seconds": chaotic.makespan_seconds,
                "retry_wait_seconds": chaotic.metrics.retry_wait_seconds,
                "chunk_attempts_failed": resent,
                "wire_bytes": chaotic.metrics.total_wire_bytes_shipped,
            },
        }
        s = queries[name]
        rows.append(
            [
                name,
                f"{s['monolithic_makespan']:.4f}",
                f"{s['streamed_makespan']:.4f}",
                s["logical_bytes"],
                s["wire_bytes"],
                f"{s['wire_reduction']:.2f}x",
                s["chunks_shipped"],
                resent,
            ]
        )

    total_logical = sum(q["logical_bytes"] for q in queries.values())
    total_wire = sum(q["wire_bytes"] for q in queries.values())
    total_mono = sum(q["monolithic_makespan"] for q in queries.values())
    total_stream = sum(q["streamed_makespan"] for q in queries.values())
    # Compression bites on the real workload, and faulted runs bill the
    # same wire bytes as fault-free ones.
    assert total_wire < total_logical
    assert total_stream <= total_mono + 1e-9
    for name, q in queries.items():
        assert q["faulted"]["wire_bytes"] == q["wire_bytes"], name
    if SCALE >= 0.01:
        assert any(
            q["streamed_makespan"] < q["monolithic_makespan"] - 1e-9
            for q in queries.values()
        )

    payload = {
        "scale": SCALE,
        "chunk_rows": CHUNK_ROWS,
        "compression": "auto",
        "fault_spec": FAULTS,
        "row_identical": True,
        "total_logical_bytes": total_logical,
        "total_wire_bytes": total_wire,
        "total_wire_reduction": total_logical / total_wire,
        "total_monolithic_makespan": total_mono,
        "total_streamed_makespan": total_stream,
        "queries": queries,
    }
    out_dir = report.directory
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "BENCH_stream_ship.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    report.emit(
        "stream_ship",
        format_table(
            [
                "query",
                "mono s",
                "stream s",
                "logical B",
                "wire B",
                "ratio",
                "chunks",
                "resent",
            ],
            rows,
            title=(
                f"Streaming SHIP ({CHUNK_ROWS}-row chunks, auto compression) "
                f"vs monolithic (TPC-H scale {SCALE}, set CR)"
            ),
        ),
    )
