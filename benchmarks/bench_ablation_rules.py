"""Ablation: which transformation rules make compliance *complete*?

Section 6.4 of the paper: the optimizer's completeness "relies on
transformation rules provided to the Volcano optimizer generator.
Without an algebraic transformational rule that pushes an aggregation
past a join, the plan annotator will not output an annotated plan ...
and thus the optimizer will reject the query."

This ablation removes rules one at a time and measures how many of the
six TPC-H queries (under CR+A) and of the CarCo running example are
falsely rejected — quantifying exactly the incompleteness the paper
predicts.
"""

import pytest

from repro.bench import format_table
from repro.errors import NonCompliantQueryError
from repro.optimizer import CompliantOptimizer
from repro.optimizer.rules import AggregateJoinTranspose, JoinAssociate, JoinCommute
from repro.tpch import QUERIES, curated_policies

RULE_SETS = {
    "all rules": lambda: [JoinCommute(), JoinAssociate(), AggregateJoinTranspose()],
    "no aggregate pushdown": lambda: [JoinCommute(), JoinAssociate()],
    "no join reordering": lambda: [AggregateJoinTranspose()],
    "no rules at all": lambda: [],
}


def _optimizer_with_rules(catalog, policies, network, rules):
    optimizer = CompliantOptimizer(catalog, policies, network)
    optimizer._annotator.rules = rules
    return optimizer


def test_ablation_rule_sets(catalog, network, report, benchmark):
    policies = curated_policies(catalog, "CR+A")

    def run():
        outcome: dict[str, dict[str, str]] = {}
        for label, make_rules in RULE_SETS.items():
            optimizer = _optimizer_with_rules(
                catalog, policies, network, make_rules()
            )
            per_query: dict[str, str] = {}
            for name, sql in QUERIES.items():
                try:
                    optimizer.optimize(sql)
                    per_query[name] = "C"
                except NonCompliantQueryError:
                    per_query[name] = "REJ"
            outcome[label] = per_query
        return outcome

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [label] + [per_query[q] for q in QUERIES]
        for label, per_query in outcome.items()
    ]
    report.emit(
        "ablation_rules",
        format_table(
            ["rule set"] + list(QUERIES),
            rows,
            title="Ablation — false rejections per removed rule set "
            "(CR+A policies; C = compliant plan found, REJ = rejected)",
        ),
    )
    # With every rule, all six queries succeed (Fig. 5(a)).
    assert all(v == "C" for v in outcome["all rules"].values())
    # Without aggregation pushdown, Q3 and Q10 can only reach Europe via
    # the e5 aggregate expression -> falsely rejected (paper §6.4).
    assert outcome["no aggregate pushdown"]["Q3"] == "REJ"
    assert outcome["no aggregate pushdown"]["Q10"] == "REJ"
    # Queries whose compliant plan needs no pushdown still succeed.
    assert outcome["no aggregate pushdown"]["Q5"] == "C"


def test_ablation_carco_needs_both_pushdown_and_masking(network, report, benchmark):
    """The paper's running example requires the aggregation-pushdown rule:
    without it the CarCo query is rejected even though Fig. 1(b) exists."""
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from tests.conftest import build_carco

    carco = build_carco()

    def run():
        full = CompliantOptimizer(carco.catalog, carco.policies, carco.network)
        ok_with_rules = full.is_legal(carco.query)
        ablated = _optimizer_with_rules(
            carco.catalog,
            carco.policies,
            carco.network,
            [JoinCommute(), JoinAssociate()],
        )
        ok_without = ablated.is_legal(carco.query)
        return ok_with_rules, ok_without

    ok_with_rules, ok_without = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ok_with_rules is True
    assert ok_without is False
    report.emit(
        "ablation_carco",
        "CarCo running example (paper section 2):\n"
        f"  with aggregate-join transpose rule : legal = {ok_with_rules}\n"
        f"  without the rule                   : legal = {ok_without}  "
        "(false rejection, exactly the incompleteness of paper section 6.4)",
    )
