"""Plan-cache amortization on the repeated-template TPC-H workload.

PostBOUND-style split: every request's cost is measured as
*optimization time* (bind -> annotate -> site-select, or cache lookup +
rebind on a warm hit) plus *execution time* (sequential engine), so the
cache's effect is visible where it acts instead of being averaged away.

Workload: the six curated TPC-H queries resubmitted ``REPEAT`` times
each (identical-SQL resubmission — every repeat after the first is a
hit), plus two parameterized templates submitted with ``BINDINGS``
distinct literal bindings each (prepared-query sharing — one cache
entry per template, rebound per binding):

* ``SELECT c_mktsegment, SUM(o_totalprice) ... WHERE o_totalprice > ?``
* ``SELECT c_custkey, c_name, c_acctbal ... WHERE c_mktsegment = ?``

Neither ``o_totalprice`` nor ``c_mktsegment`` appears in a CR policy
predicate, so both literals are provably implication-irrelevant — the
parameterizer frees them.

Acceptance (asserted here and in the CI bench smoke):

* warm optimize-path queries/sec >= 3x cold on the same workload;
* every warm request's rows and shipped bytes are identical to cold.

Scale via ``REPRO_BENCH_PLANCACHE_SCALE`` (TPC-H scale, default 0.005)
and ``REPRO_BENCH_PLANCACHE_REPEAT`` (default 6).  Results go to the
text report and ``benchmarks/results/BENCH_plan_cache.json``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench import format_table
from repro.execution import ExecutionEngine
from repro.optimizer import CompliantOptimizer
from repro.tpch import QUERIES, build_benchmark, curated_policies, default_network

SCALE = float(os.environ.get("REPRO_BENCH_PLANCACHE_SCALE", "0.005"))
REPEAT = int(os.environ.get("REPRO_BENCH_PLANCACHE_REPEAT", "6"))

TEMPLATE_PRICE = (
    "SELECT c.c_mktsegment, SUM(o.o_totalprice) AS revenue "
    "FROM customer AS c, orders AS o "
    "WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > {v} "
    "GROUP BY c.c_mktsegment"
)
TEMPLATE_SEGMENT = (
    "SELECT c_custkey, c_name, c_acctbal FROM customer "
    "WHERE c_mktsegment = '{seg}'"
)
PRICE_BINDINGS = (1000.0, 25000.0, 50000.0, 100000.0, 200000.0)
SEGMENT_BINDINGS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD")


def build_workload() -> list[str]:
    requests: list[str] = []
    for name in sorted(QUERIES):
        requests.extend([QUERIES[name]] * REPEAT)
    requests.extend(TEMPLATE_PRICE.format(v=v) for v in PRICE_BINDINGS)
    requests.extend(TEMPLATE_SEGMENT.format(seg=s) for s in SEGMENT_BINDINGS)
    return requests


#: Distinct plan shapes in the workload: six curated queries plus one
#: per template (the bindings share entries).
DISTINCT_SHAPES = len(QUERIES) + 2


@pytest.fixture(scope="module")
def world():
    catalog, database = build_benchmark(scale=SCALE, stats_scale=1.0)
    network = default_network()
    policies = curated_policies(catalog, "CR")
    return catalog, database, network, policies


def run_workload(world, plan_cache: bool):
    catalog, database, network, policies = world
    optimizer = CompliantOptimizer(
        catalog, policies, network, plan_cache=plan_cache
    )
    engine = ExecutionEngine(
        database, network, policy_guard=optimizer.evaluator
    )
    outputs = []
    optimize_seconds = 0.0
    execute_seconds = 0.0
    for sql in build_workload():
        start = time.perf_counter()
        result = optimizer.optimize(sql)
        optimize_seconds += time.perf_counter() - start
        start = time.perf_counter()
        output = engine.execute(result)
        execute_seconds += time.perf_counter() - start
        outputs.append(output)
    return optimizer, outputs, optimize_seconds, execute_seconds


def test_plan_cache_amortization(world, report):
    requests = build_workload()
    _, cold_outputs, cold_opt, cold_exec = run_workload(world, plan_cache=False)
    warm_optimizer, warm_outputs, warm_opt, warm_exec = run_workload(
        world, plan_cache=True
    )

    # Byte-identical service: rows (ordered) and cross-border shipped
    # bytes must not change when a plan comes from the cache.
    for sql, cold_out, warm_out in zip(requests, cold_outputs, warm_outputs):
        assert warm_out.columns == cold_out.columns, sql
        assert warm_out.rows == cold_out.rows, sql
        assert (
            warm_out.metrics.total_bytes_shipped
            == cold_out.metrics.total_bytes_shipped
        ), sql

    stats = warm_optimizer.plan_cache.stats
    assert stats.stores == DISTINCT_SHAPES
    assert stats.hits == len(requests) - DISTINCT_SHAPES
    assert stats.misses == DISTINCT_SHAPES

    cold_opt_qps = len(requests) / cold_opt
    warm_opt_qps = len(requests) / warm_opt
    speedup = warm_opt_qps / cold_opt_qps
    # The headline acceptance criterion: >= 3x on the optimize path.
    assert speedup >= 3.0, (
        f"warm optimize path only {speedup:.2f}x cold "
        f"({warm_opt_qps:.1f} vs {cold_opt_qps:.1f} q/s)"
    )

    payload = {
        "scale": SCALE,
        "repeat": REPEAT,
        "requests": len(requests),
        "distinct_shapes": DISTINCT_SHAPES,
        "cold": {
            "optimize_seconds": cold_opt,
            "execute_seconds": cold_exec,
            "optimize_qps": cold_opt_qps,
            "end_to_end_qps": len(requests) / (cold_opt + cold_exec),
        },
        "warm": {
            "optimize_seconds": warm_opt,
            "execute_seconds": warm_exec,
            "optimize_qps": warm_opt_qps,
            "end_to_end_qps": len(requests) / (warm_opt + warm_exec),
            "hits": stats.hits,
            "misses": stats.misses,
            "stores": stats.stores,
            "hit_rate": stats.hit_rate,
        },
        "optimize_path_speedup": speedup,
        "byte_identical": True,
    }
    out_dir = report.directory
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "BENCH_plan_cache.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    report.emit(
        "plan_cache",
        format_table(
            ["run", "optimize s", "execute s", "opt q/s", "e2e q/s"],
            [
                [
                    "cold",
                    f"{cold_opt:.3f}",
                    f"{cold_exec:.3f}",
                    f"{cold_opt_qps:.1f}",
                    f"{len(requests) / (cold_opt + cold_exec):.1f}",
                ],
                [
                    "warm",
                    f"{warm_opt:.3f}",
                    f"{warm_exec:.3f}",
                    f"{warm_opt_qps:.1f}",
                    f"{len(requests) / (warm_opt + warm_exec):.1f}",
                ],
            ],
            title=(
                f"Plan cache amortization, {len(requests)} requests "
                f"({DISTINCT_SHAPES} shapes, TPC-H scale {SCALE}) — "
                f"optimize-path speedup {speedup:.1f}x, "
                f"hit rate {stats.hit_rate:.0%}"
            ),
        ),
    )
