"""Shared fixtures for the figure-reproduction benchmarks."""

from __future__ import annotations

import pytest

from repro.bench import Report
from repro.tpch import build_catalog, default_network


@pytest.fixture(scope="session")
def catalog():
    """Stats-only TPC-H catalog at SF 1 (optimization-time benchmarks)."""
    return build_catalog(scale=1.0)


@pytest.fixture(scope="session")
def network():
    return default_network()


@pytest.fixture(scope="session")
def report():
    return Report()
