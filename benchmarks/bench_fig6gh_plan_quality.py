"""Fig. 6(g)(h): plan quality — execution (shipping) cost of compliant vs
traditional plans under sets C and CR, measured by actually executing
both plans on generated TPC-H data under the fragment-parallel engine.

Two cost views per plan:

* *cost* — the paper's headline metric: the simulated ``α + β·bytes``
  transfer time summed over every SHIP;
* *makespan* — the critical-path response time of the fragment schedule,
  where independent sites transfer concurrently (what Fig. 6(g,h)'s
  "response time" framing corresponds to for a real deployment).

Paper shape: identical cost (and identical plans, "=") whenever the
traditional plan is compliant; when it is not (Q2 always; Q3/Q10 under
CR), the compliant plan can be substantially more expensive — Q2's
compliant plan ships the big Supplier/Partsupp side instead of the small
restricted Part side (an 18× overhead in the paper)."""

import pytest

from repro.bench import plan_quality

SCALE = 0.01  # measured bytes scale linearly; shape is scale-free


@pytest.mark.parametrize("set_name", ["C", "CR"])
def test_fig6gh_plan_quality(report, benchmark, set_name):
    result = benchmark.pedantic(
        lambda: plan_quality(set_name, scale=SCALE), rounds=1, iterations=1
    )
    safe = set_name.replace("+", "_")
    report.emit(f"fig6gh_plan_quality_{safe}", result.table())

    expected_nc = {"C": {"Q2"}, "CR": {"Q2", "Q3", "Q10"}}[set_name]
    for row in result.rows:
        if row.query in expected_nc:
            assert row.traditional_label == "NC"
            assert not row.same_plan
        else:
            assert row.traditional_label == "C"
            # Same plan => same cost (the paper's "=" annotations).
            assert row.same_plan, row.query
            assert row.scaled_cost == pytest.approx(1.0, rel=1e-6)

        # The critical path can never exceed the sum of all transfers...
        assert row.traditional_makespan <= row.traditional_cost + 1e-9
        assert row.compliant_makespan <= row.compliant_cost + 1e-9
        # ...and is strictly below it whenever the fragment DAG contains
        # independent (concurrently transferring) fragments.
        if row.traditional_parallel_pairs > 0:
            assert row.traditional_makespan < row.traditional_cost
        if row.compliant_parallel_pairs > 0:
            assert row.compliant_makespan < row.compliant_cost

    # Q2's compliance overhead is large (ships the big compliant side).
    q2 = result.row("Q2")
    assert q2.scaled_cost > 2.0
    # At least one plan in each set actually exercises cross-site
    # parallelism (otherwise the makespan metric degenerates to the sum).
    assert any(r.compliant_parallel_pairs > 0 for r in result.rows)
