"""Fig. 6(g)(h): plan quality — execution (shipping) cost of compliant vs
traditional plans under sets C and CR, measured by actually executing
both plans on generated TPC-H data and summing the simulated
``α + β·bytes`` transfer time of every SHIP.

Paper shape: identical cost (and identical plans, "=") whenever the
traditional plan is compliant; when it is not (Q2 always; Q3/Q10 under
CR), the compliant plan can be substantially more expensive — Q2's
compliant plan ships the big Supplier/Partsupp side instead of the small
restricted Part side (an 18× overhead in the paper)."""

import pytest

from repro.bench import plan_quality

SCALE = 0.01  # measured bytes scale linearly; shape is scale-free


@pytest.mark.parametrize("set_name", ["C", "CR"])
def test_fig6gh_plan_quality(report, benchmark, set_name):
    result = benchmark.pedantic(
        lambda: plan_quality(set_name, scale=SCALE), rounds=1, iterations=1
    )
    safe = set_name.replace("+", "_")
    report.emit(f"fig6gh_plan_quality_{safe}", result.table())

    expected_nc = {"C": {"Q2"}, "CR": {"Q2", "Q3", "Q10"}}[set_name]
    for row in result.rows:
        if row.query in expected_nc:
            assert row.traditional_label == "NC"
            assert not row.same_plan
        else:
            assert row.traditional_label == "C"
            # Same plan => same cost (the paper's "=" annotations).
            assert row.same_plan, row.query
            assert row.scaled_cost == pytest.approx(1.0, rel=1e-6)
    # Q2's compliance overhead is large (ships the big compliant side).
    q2 = result.row("Q2")
    assert q2.scaled_cost > 2.0
