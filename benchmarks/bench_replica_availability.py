"""Availability under a sustained flaky link: replicas off/on x breakers.

Replays the same deterministic workload (the six curated TPC-H queries,
round robin, policy set T) through the query server three times under a
permanent ``flaky:`` window on the hottest link of a fault-free
profiling run:

* ``no_replicas``    — the seed catalog: every scan is pinned to its
  primary site, so cross-site ships are unavoidable and every transfer
  over the bad link burns retry backoff (or sheds on deadline);
* ``replicas``       — every table also has a compliant copy at both
  Europe and NorthAmerica (the two sites in every table's full-scan
  grant under T): replica-aware placement collapses each plan into a
  single local fragment, so the flaky link is simply never used;
* ``replicas_breakers`` — same catalog with per-link circuit breakers,
  which may only help (fast-fail instead of backoff) and never hurt.

Acceptance (asserted here, and smoke-run in CI at tiny scale):

* replicated runs serve **100%** of the workload; the replica-free run
  never does better on availability or makespan;
* replicated runs ship zero cross-site bytes (the collapse is total);
* breakers never slow the replicated workload down;
* every served query's rows are identical (ordered) to a sequential
  single-query reference — replicas must never change *results*;
* ``ServerMetrics`` buckets reconcile to the workload size.

Scale via ``REPRO_BENCH_REPLICA_SCALE`` (TPC-H scale, default 0.005),
``REPRO_BENCH_REPLICA_REPEAT`` (workload rounds, default 3), and
``REPRO_BENCH_REPLICA_DEADLINE`` (per-query simulated-seconds deadline,
default 2.0).  Results go to the text report and to
``benchmarks/results/BENCH_replica_availability.json``.
"""

from __future__ import annotations

import json
import os
from collections import Counter

import pytest

from repro.bench import format_table
from repro.errors import ReproError
from repro.execution import ExecutionEngine, parse_fault_spec
from repro.optimizer import CompliantOptimizer
from repro.server import BreakerRegistry, QueryServer, workload_from_queries
from repro.tpch import QUERIES, build_benchmark, curated_policies, default_network

SCALE = float(os.environ.get("REPRO_BENCH_REPLICA_SCALE", "0.005"))
REPEAT = int(os.environ.get("REPRO_BENCH_REPLICA_REPEAT", "3"))
DEADLINE = float(os.environ.get("REPRO_BENCH_REPLICA_DEADLINE", "2.0"))
INTERARRIVAL = 0.02
SERVED_QUERIES = [(name, QUERIES[name]) for name in sorted(QUERIES)]

#: Dual-site coverage under set T (see
#: tests/integration/test_replica_availability.py for why both sites).
REPLICAS = (
    ("db1", "customer", "NorthAmerica"),
    ("db1", "orders", "NorthAmerica"),
    ("db2", "supplier", "Europe"),
    ("db2", "supplier", "NorthAmerica"),
    ("db2", "partsupp", "Europe"),
    ("db2", "partsupp", "NorthAmerica"),
    ("db3", "part", "Europe"),
    ("db3", "part", "NorthAmerica"),
    ("db4", "lineitem", "Europe"),
    ("db5", "nation", "Europe"),
    ("db5", "nation", "NorthAmerica"),
    ("db5", "region", "Europe"),
    ("db5", "region", "NorthAmerica"),
)


def build_world(replicated: bool):
    catalog, database = build_benchmark(scale=SCALE, stats_scale=1.0)
    if replicated:
        for db, table, site in REPLICAS:
            catalog.add_replica(db, table, site)
    network = default_network()
    optimizer = CompliantOptimizer(
        catalog, curated_policies(catalog, "T"), network
    )
    return catalog, database, network, optimizer


@pytest.fixture(scope="module")
def worlds():
    return {
        False: build_world(replicated=False),
        True: build_world(replicated=True),
    }


def hottest_link(references) -> tuple[str, str]:
    volume: Counter = Counter()
    for output in references.values():
        for ship in output.metrics.ships:
            if ship.source != ship.target:
                volume[(ship.source, ship.target)] += ship.bytes
    assert volume, "the replica-free schedules must ship across sites"
    return max(sorted(volume), key=lambda k: volume[k])


def serve_once(world, faults, breakers):
    catalog, database, network, optimizer = world
    server = QueryServer(
        database,
        network,
        optimizer=optimizer,
        evaluator=optimizer.evaluator,
        concurrency=3,
        queue_depth=2 * len(SERVED_QUERIES) * REPEAT,
        default_deadline=DEADLINE,
        breakers=breakers,
        faults=faults,
    )
    workload = workload_from_queries(
        SERVED_QUERIES, interarrival=INTERARRIVAL, repeat=REPEAT
    )
    return workload, server.serve(workload)


def cross_site_bytes(result) -> int:
    return sum(
        s.bytes
        for o in result.outcomes
        if o.metrics is not None
        for s in o.metrics.ships
        if s.source != s.target
    )


def summarize(workload, result):
    m = result.metrics
    return {
        "availability": (m.served + m.served_late) / len(workload),
        "makespan_seconds": m.makespan_seconds,
        "throughput_qps": m.throughput_qps,
        "served": m.served,
        "served_late": m.served_late,
        "shed": m.shed,
        "rejected": m.rejected,
        "partial": m.partial,
        "transfer_attempts": m.transfer_attempts,
        "retry_wait_seconds": m.retry_wait_seconds,
        "breaker_fast_fails": m.breaker_fast_fails,
        "replica_failovers": m.replica_failovers,
        "replica_switches_breaker": m.replica_switches_breaker,
        "partial_failures_avoided": m.partial_failures_avoided,
        "cross_site_bytes": cross_site_bytes(result),
    }


def check_contract(workload, result, references):
    metrics = result.metrics
    assert metrics.total == len(workload)
    assert metrics.reconciles(), metrics.summary()
    for outcome in result.outcomes:
        if outcome.status == "served":
            name = outcome.request.name.split("#")[0]
            reference = references[name]
            assert outcome.columns == reference.columns
            assert outcome.rows == reference.rows, (
                f"{outcome.request.label}: served rows diverge from the "
                f"sequential reference execution"
            )
        else:
            assert isinstance(outcome.error, ReproError), outcome
            assert str(outcome.error)


def test_replica_availability(worlds, report):
    catalog, database, network, optimizer = worlds[False]
    engine = ExecutionEngine(
        database, network, policy_guard=optimizer.evaluator, parallel=True
    )
    references = {
        name: engine.execute(optimizer.optimize(sql).plan)
        for name, sql in SERVED_QUERIES
    }
    src, dst = hottest_link(references)
    fault_spec = f"flaky:{src}->{dst}@0+1e9"
    faults = parse_fault_spec(fault_spec, locations=catalog.locations)

    runs = {}
    table_rows = []
    for label, replicated, breakers in (
        ("no_replicas", False, None),
        ("replicas", True, None),
        ("replicas_breakers", True, BreakerRegistry()),
    ):
        workload, result = serve_once(worlds[replicated], faults, breakers)
        check_contract(workload, result, references)
        runs[label] = summarize(workload, result)
        s = runs[label]
        table_rows.append(
            [
                label,
                f"{s['availability']:.0%}",
                f"{s['makespan_seconds']:.3f}",
                f"{s['served'] + s['served_late']}/{s['shed']}/{s['partial']}",
                s["cross_site_bytes"],
                s["replica_failovers"],
                s["partial_failures_avoided"],
            ]
        )

    # Replicas collapse every plan off the flaky link: full availability,
    # zero cross-site bytes, and never worse than the replica-free run.
    for label in ("replicas", "replicas_breakers"):
        assert runs[label]["availability"] == 1.0, runs
        assert runs[label]["cross_site_bytes"] == 0, runs
        assert (
            runs[label]["availability"] >= runs["no_replicas"]["availability"]
        )
        assert (
            runs[label]["makespan_seconds"]
            <= runs["no_replicas"]["makespan_seconds"] + 1e-9
        ), runs
    assert (
        runs["replicas_breakers"]["makespan_seconds"]
        <= runs["replicas"]["makespan_seconds"] + 1e-9
    ), runs

    payload = {
        "scale": SCALE,
        "repeat": REPEAT,
        "deadline_seconds": DEADLINE,
        "interarrival_seconds": INTERARRIVAL,
        "workload_queries": len(SERVED_QUERIES) * REPEAT,
        "fault_spec": fault_spec,
        "replicas": [f"{db}.{table}@{site}" for db, table, site in REPLICAS],
        "runs": runs,
    }
    out_dir = report.directory
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "BENCH_replica_availability.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    report.emit(
        "replica_availability",
        format_table(
            [
                "run",
                "avail",
                "makespan s",
                "served/shed/part",
                "x-site bytes",
                "replica fo",
                "pf avoided",
            ],
            table_rows,
            title=f"Replica availability, {len(SERVED_QUERIES) * REPEAT} "
            f"queries, flaky {src}->{dst} (TPC-H scale {SCALE}, set T)",
        ),
    )
