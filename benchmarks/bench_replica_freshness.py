"""Bounded staleness under a paused-refresh fault: the policy sweep.

Replays the same deterministic workload (the six curated TPC-H queries,
round robin, policy set T) through the query server four times over a
fully replicated catalog whose replicas all refresh on a schedule that
is **paused from t=0** for ``PAUSE`` simulated seconds — so every
replica's staleness grows linearly until the refresh daemon comes back.
The four arms differ only in the runtime staleness policy under the
same ``BOUND``:

* ``plan_only``        — the experiment baseline: freshness is recorded
  but never enforced; bound-violating rows are *served* and the
  independent trace auditor must flag every one of them;
* ``prefer_fresh``     — demote to a strictly fresher copy when one
  exists; with every copy equally stale, reads over the bound degrade
  to typed partial failures;
* ``wait_for_refresh`` — park the fragment until the refresh completes:
  full availability, zero violations, the wait is paid in simulated
  seconds;
* ``read_stale``       — serve within the bound, refuse beyond it.

Acceptance (asserted here, and smoke-run in CI at tiny scale):

* the plan-only run serves the full workload and the auditor reports
  ``> 0`` bound-violated reads, all of category ``stale-read``;
* every enforcing run audits to **zero** bound violations — no served
  read's re-derived staleness may exceed the bound;
* ``wait_for_refresh`` keeps full availability and records ``> 0``
  refresh waits; the strict arms degrade the over-bound tail to typed
  partial failures, never to wrong rows;
* the ``stale_reads`` counter reconciles 1:1 against the trace's
  ``scan_read`` events in every arm;
* every served query's rows are identical to a freshness-free reference
  execution — staleness policies must never change *results*.

Scale via ``REPRO_BENCH_FRESHNESS_SCALE`` (TPC-H scale, default 0.005),
``REPRO_BENCH_FRESHNESS_REPEAT`` (workload rounds, default 3),
``REPRO_BENCH_FRESHNESS_BOUND`` (staleness bound, default 0.1) and
``REPRO_BENCH_FRESHNESS_PAUSE`` (refresh outage, default 0.3).  Results
go to the text report and ``benchmarks/results/BENCH_replica_freshness.json``.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench import format_table
from repro.catalog import FreshnessTracker, RefreshPause, RefreshSchedule
from repro.execution import ExecutionEngine, FreshnessPolicy
from repro.optimizer import CompliantOptimizer
from repro.server import QueryServer, workload_from_queries
from repro.tpch import QUERIES, build_benchmark, curated_policies, default_network
from repro.trace import (
    ComplianceAuditor,
    ScanReadEvent,
    TraceRecorder,
    parse_trace,
    tracing,
)

SCALE = float(os.environ.get("REPRO_BENCH_FRESHNESS_SCALE", "0.005"))
REPEAT = int(os.environ.get("REPRO_BENCH_FRESHNESS_REPEAT", "3"))
BOUND = float(os.environ.get("REPRO_BENCH_FRESHNESS_BOUND", "0.1"))
PAUSE = float(os.environ.get("REPRO_BENCH_FRESHNESS_PAUSE", "0.3"))
PERIOD = 0.05
INTERARRIVAL = 0.02
SERVED_QUERIES = [(name, QUERIES[name]) for name in sorted(QUERIES)]

#: Dual-site coverage under set T (same layout as
#: bench_replica_availability.py) — every plan collapses onto replicas,
#: so the refresh outage touches every query.
REPLICAS = (
    ("db1", "customer", "NorthAmerica"),
    ("db1", "orders", "NorthAmerica"),
    ("db2", "supplier", "Europe"),
    ("db2", "supplier", "NorthAmerica"),
    ("db2", "partsupp", "Europe"),
    ("db2", "partsupp", "NorthAmerica"),
    ("db3", "part", "Europe"),
    ("db3", "part", "NorthAmerica"),
    ("db4", "lineitem", "Europe"),
    ("db5", "nation", "Europe"),
    ("db5", "nation", "NorthAmerica"),
    ("db5", "region", "Europe"),
    ("db5", "region", "NorthAmerica"),
)

ARMS = ("plan-only", "prefer-fresh", "wait-for-refresh", "read-stale")


def build_world():
    catalog, database = build_benchmark(scale=SCALE, stats_scale=1.0)
    schedule = RefreshSchedule(
        period=PERIOD, pauses=(RefreshPause(at=0.0, duration=PAUSE),)
    )
    for db, table, site in REPLICAS:
        catalog.add_replica(db, table, site)
        catalog.set_refresh(db, table, site, schedule)
    network = default_network()
    optimizer = CompliantOptimizer(
        catalog, curated_policies(catalog, "T"), network
    )
    return catalog, database, network, optimizer


def serve_once(mode):
    catalog, database, network, optimizer = build_world()
    policy = FreshnessPolicy(
        FreshnessTracker(catalog), mode=mode, max_staleness=BOUND
    )
    server = QueryServer(
        database,
        network,
        optimizer=optimizer,
        evaluator=optimizer.evaluator,
        concurrency=3,
        queue_depth=2 * len(SERVED_QUERIES) * REPEAT,
        default_deadline=2.0,
        freshness=policy,
    )
    workload = workload_from_queries(
        SERVED_QUERIES, interarrival=INTERARRIVAL, repeat=REPEAT
    )
    recorder = TraceRecorder()
    with tracing(recorder):
        result = server.serve(workload)
    return catalog, workload, result, parse_trace(recorder.to_jsonl())


def audit(catalog, events):
    auditor = ComplianceAuditor(
        curated_policies(catalog, "T"),
        freshness=FreshnessTracker(catalog),
        max_staleness=BOUND,
    )
    return auditor.audit_events(events)


def summarize(workload, result, events, audit_report):
    m = result.metrics
    scans = [e for e in events if isinstance(e, ScanReadEvent)]
    return {
        "availability": (m.served + m.served_late) / len(workload),
        "makespan_seconds": m.makespan_seconds,
        "served": m.served,
        "served_late": m.served_late,
        "shed": m.shed,
        "partial": m.partial,
        "replica_reads": len(scans),
        "stale_reads": m.stale_reads,
        "stale_read_rate": m.stale_reads / len(scans) if scans else 0.0,
        "refresh_waits": m.refresh_waits,
        "refresh_wait_seconds": m.refresh_wait_seconds,
        "freshness_demotions": m.freshness_demotions,
        "audit_fresh": audit_report.fresh_reads,
        "audit_stale_within_bound": audit_report.stale_within_bound,
        "audit_bound_violated": audit_report.bound_violated,
        "audit_violations": len(audit_report.violations),
    }


def check_contract(workload, result, events, audit_report, references):
    """Arm-independent invariants: reconciling counters and right rows."""
    m = result.metrics
    assert m.total == len(workload)
    assert m.reconciles(), m.summary()
    scans = [e for e in events if isinstance(e, ScanReadEvent)]
    # The runtime counter and the trace must tell the same story.
    assert m.stale_reads == sum(
        1 for e in scans if e.staleness_at_read > 1e-9
    )
    assert audit_report.scan_reads == len(scans)
    for outcome in result.outcomes:
        if outcome.status == "served":
            name = outcome.request.name.split("#")[0]
            assert outcome.rows == references[name].rows, (
                f"{outcome.request.label}: served rows diverge from the "
                f"freshness-free reference execution"
            )


def test_replica_freshness_policy_sweep(report):
    _catalog, database, network, optimizer = build_world()
    engine = ExecutionEngine(
        database, network, policy_guard=optimizer.evaluator, parallel=True
    )
    references = {
        name: engine.execute(optimizer.optimize(sql).plan)
        for name, sql in SERVED_QUERIES
    }

    runs = {}
    table_rows = []
    for mode in ARMS:
        catalog, workload, result, events = serve_once(mode)
        audit_report = audit(catalog, events)
        check_contract(workload, result, events, audit_report, references)
        label = mode.replace("-", "_")
        runs[label] = summarize(workload, result, events, audit_report)
        s = runs[label]
        table_rows.append(
            [
                label,
                f"{s['availability']:.0%}",
                f"{s['makespan_seconds']:.3f}",
                f"{s['served'] + s['served_late']}/{s['partial']}",
                f"{s['stale_read_rate']:.0%}",
                s["refresh_waits"],
                s["audit_bound_violated"],
            ]
        )

    # The baseline serves everything — including the bound violations
    # the auditor must then flag, every one a stale-read.
    assert runs["plan_only"]["availability"] == 1.0, runs
    assert runs["plan_only"]["audit_bound_violated"] > 0, runs
    assert (
        runs["plan_only"]["audit_violations"]
        == runs["plan_only"]["audit_bound_violated"]
    ), runs
    # Runtime checking serves zero bound violations, in every mode.
    for label in ("prefer_fresh", "wait_for_refresh", "read_stale"):
        assert runs[label]["audit_bound_violated"] == 0, runs
        assert runs[label]["audit_violations"] == 0, runs
    # Waiting out the outage keeps full availability and pays in
    # simulated refresh waits; the strict arms degrade the over-bound
    # tail to typed partial failures instead.
    assert runs["wait_for_refresh"]["availability"] == 1.0, runs
    assert runs["wait_for_refresh"]["refresh_waits"] > 0, runs
    assert runs["wait_for_refresh"]["refresh_wait_seconds"] > 0.0, runs
    for label in ("prefer_fresh", "read_stale"):
        assert runs[label]["partial"] > 0, runs
        assert (
            runs[label]["availability"]
            <= runs["wait_for_refresh"]["availability"]
        ), runs

    payload = {
        "scale": SCALE,
        "repeat": REPEAT,
        "bound_seconds": BOUND,
        "refresh_period_seconds": PERIOD,
        "refresh_pause_seconds": PAUSE,
        "interarrival_seconds": INTERARRIVAL,
        "workload_queries": len(SERVED_QUERIES) * REPEAT,
        "replicas": [f"{db}.{table}@{site}" for db, table, site in REPLICAS],
        "runs": runs,
    }
    out_dir = report.directory
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "BENCH_replica_freshness.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    report.emit(
        "replica_freshness",
        format_table(
            [
                "policy",
                "avail",
                "makespan s",
                "served/part",
                "stale rate",
                "waits",
                "violated",
            ],
            table_rows,
            title=(
                f"Staleness policies, {len(SERVED_QUERIES) * REPEAT} queries, "
                f"refresh paused {PAUSE:g}s, bound {BOUND:g}s "
                f"(TPC-H scale {SCALE}, set T)"
            ),
        ),
    )
