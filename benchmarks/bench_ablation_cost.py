"""Ablation: design choices of the cost/stat machinery.

Two knobs DESIGN.md calls out:

1. **FK-aware join cardinality** — without treating composite-key FK
   joins as one unit, outputs like lineitem ⋈ partsupp are underestimated
   by orders of magnitude and the site selector "caravans" intermediates
   through many sites (more SHIP hops).
2. **Pareto trait entries per memo group** — the compliant extraction
   keeps the cheapest alternative per (ℰ, 𝒮) pair; capping the frontier
   at 1 entry keeps only the globally cheapest traits and can lose
   compliant alternatives or pick worse ones.
"""

import pytest

from repro.bench import format_table
from repro.catalog import ForeignKey, TableSchema
from repro.errors import NonCompliantQueryError
from repro.optimizer import CompliantOptimizer, TraditionalOptimizer
from repro.plan import ship_operators
from repro.tpch import QUERIES, build_catalog, curated_policies, default_network


def _catalog_without_fks():
    """A TPC-H catalog whose schemas have their FK metadata stripped, so
    the cost model falls back to independent per-conjunct selectivities."""
    catalog = build_catalog(scale=1.0)
    for table in catalog.tables:
        for i, fragment in enumerate(table.fragments):
            schema = fragment.schema
            stripped = TableSchema(
                schema.name,
                schema.columns,
                primary_key=schema.primary_key,
                foreign_keys=(),
            )
            fragment.schema = stripped
    return catalog


def test_ablation_fk_cardinality(network, report, benchmark):
    policies_for = curated_policies

    def run():
        rows = []
        for label, catalog in (
            ("FK-aware estimation", build_catalog(scale=1.0)),
            ("independent conjuncts", _catalog_without_fks()),
        ):
            optimizer = TraditionalOptimizer(catalog, network)
            for name in ("Q9", "Q5"):
                result = optimizer.optimize(QUERIES[name])
                rows.append([label, name, len(ship_operators(result.plan))])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report.emit(
        "ablation_fk_cardinality",
        format_table(
            ["cost model", "query", "#SHIP operators"],
            rows,
            title="Ablation — FK-aware join cardinality vs independent "
            "conjunct selectivities (traditional optimizer)",
        ),
    )
    ships = {(r[0], r[1]): r[2] for r in rows}
    # Misestimation makes intermediates look tiny and never *reduces*
    # the number of cross-site hops for the composite-FK query Q9.
    assert ships[("independent conjuncts", "Q9")] >= ships[("FK-aware estimation", "Q9")]


def test_ablation_pareto_frontier_size(catalog, network, report, benchmark):
    import repro.optimizer.annotator as annotator_module

    policies = curated_policies(catalog, "CR+A")

    def run():
        rows = []
        original = annotator_module.MAX_ENTRIES_PER_GROUP
        try:
            for cap in (1, 2, 4, 32):
                annotator_module.MAX_ENTRIES_PER_GROUP = cap
                optimizer = CompliantOptimizer(catalog, policies, network)
                outcome = []
                for name in ("Q3", "Q10", "Q5"):
                    try:
                        result = optimizer.optimize(QUERIES[name])
                        outcome.append(f"{name}:C")
                    except NonCompliantQueryError:
                        outcome.append(f"{name}:REJ")
                rows.append([cap, "  ".join(outcome)])
        finally:
            annotator_module.MAX_ENTRIES_PER_GROUP = original
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report.emit(
        "ablation_pareto_cap",
        format_table(
            ["max Pareto entries per group", "outcome"],
            rows,
            title="Ablation — trait-frontier size (CR+A policies)",
        ),
    )
    # With the full frontier, everything succeeds.
    assert "REJ" not in rows[-1][1]
