"""Fig. 5(a)–(e): effectiveness of the compliance-based optimizer on the
six TPC-H queries under the four curated expression sets.

Shape assertions (matching the paper): the compliant optimizer produces a
compliant plan for every (query, set) combination, while the traditional
optimizer is non-compliant for Q2 under every set and additionally for
Q3 and Q10 under CR and CR+A.
"""

import pytest

from repro.bench import effectiveness_tpch
from repro.optimizer import CompliantOptimizer
from repro.plan import explain_physical
from repro.tpch import QUERIES, curated_policies

PAPER_NC = {
    "T": {"Q2"},
    "C": {"Q2"},
    "CR": {"Q2", "Q3", "Q10"},
    "CR+A": {"Q2", "Q3", "Q10"},
}


def test_fig5a_effectiveness_matrix(catalog, network, report, benchmark):
    matrix = benchmark.pedantic(
        lambda: effectiveness_tpch(catalog, network), rounds=1, iterations=1
    )
    report.emit("fig5a_effectiveness_tpch", matrix.table())
    for set_name, expected_nc in PAPER_NC.items():
        per_query = matrix.cells[set_name]
        # Compliant optimizer: 100% compliant plans (never NC, never REJ).
        assert all(c == "C" for _t, c in per_query.values())
        assert matrix.traditional_nc(set_name) == expected_nc


def test_fig5bc_q2_plan_excerpts(catalog, network, report, benchmark):
    """Fig. 5(b)/(c): print the Q2 plans; the compliant one must not ship
    Part-derived data into Africa."""
    policies = curated_policies(catalog, "CR")
    compliant = CompliantOptimizer(catalog, policies, network)
    result = benchmark.pedantic(
        lambda: compliant.optimize(QUERIES["Q2"]), rounds=1, iterations=1
    )
    from repro.plan import ship_operators

    for ship in ship_operators(result.plan):
        if ship.target == "Africa":
            assert not any(f.name.startswith("p.") for f in ship.fields)
    report.emit(
        "fig5c_q2_compliant_plan",
        "Fig 5(c) — compliant Q2 plan (set CR)\n" + explain_physical(result.plan),
    )


def test_fig5de_q3_aggregation_pushdown(catalog, network, report, benchmark):
    """Fig. 5(d)/(e): under CR+A the compliant Q3 plan pushes the revenue
    aggregation below the lineitem SHIP (paper's e5)."""
    from repro.plan import HashAggregate, ship_operators

    policies = curated_policies(catalog, "CR+A")
    compliant = CompliantOptimizer(catalog, policies, network)
    result = benchmark.pedantic(
        lambda: compliant.optimize(QUERIES["Q3"]), rounds=1, iterations=1
    )
    lineitem_ships = [
        s for s in ship_operators(result.plan) if s.source == "NorthAmerica"
    ]
    assert lineitem_ships
    assert all(isinstance(s.child, HashAggregate) for s in lineitem_ships)
    report.emit(
        "fig5e_q3_compliant_plan",
        "Fig 5(e) — compliant Q3 plan (set CR+A), aggregation pushed below "
        "the SHIP\n" + explain_physical(result.plan),
    )
