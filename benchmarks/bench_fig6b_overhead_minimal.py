"""Fig. 6(b): the minimal overhead of the compliant optimizer — eight
unrestricted ``ship * from t to *`` expressions, so the extra work is pure
trait bookkeeping.

Paper shape: roughly 1.2–2× the traditional optimization time, most
pronounced for the join-heavy Q2; always in the tens-to-hundreds of
milliseconds, never seconds."""

import pytest

from repro.bench import minimal_policies, optimization_overhead
from repro.optimizer import CompliantOptimizer, TraditionalOptimizer
from repro.tpch import QUERIES


def test_fig6b_minimal_overhead(catalog, network, report, benchmark):
    result = benchmark.pedantic(
        lambda: optimization_overhead(
            catalog,
            network,
            minimal_policies(catalog),
            label="Fig 6(b) — minimal overhead (8x 'ship * from t to *')",
        ),
        rounds=1,
        iterations=1,
    )
    report.emit("fig6b_overhead_minimal", result.table())
    for name in QUERIES:
        factor = result.overhead_factor(name)
        assert factor < 4.0, f"{name}: compliant optimization {factor:.1f}x slower"
    # Compliant optimization stays in the sub-second regime per query.
    for name, (_trad, comp) in result.per_query.items():
        assert comp.mean_ms < 5000


@pytest.mark.parametrize("name", ["Q3", "Q9", "Q5"])
def test_compliant_optimize_timing(catalog, network, benchmark, name):
    optimizer = CompliantOptimizer(catalog, minimal_policies(catalog), network)
    benchmark(lambda: optimizer.optimize(QUERIES[name]))


@pytest.mark.parametrize("name", ["Q3", "Q9", "Q5"])
def test_traditional_optimize_timing(catalog, network, benchmark, name):
    optimizer = TraditionalOptimizer(catalog, network)
    benchmark(lambda: optimizer.optimize(QUERIES[name]))
