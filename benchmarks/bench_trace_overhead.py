"""Tracing overhead on the Fig 6(g,h) plan-quality workload.

The recorder must be effectively free when not installed (the hooks are
one ContextVar read per SHIP / optimize / query bracket — the <5 %
disabled-path budget from the tracing design) and cheap enough when
installed that traced production runs are routine.  This benchmark
executes the curated TPC-H queries (the Fig 6(g,h) workload) through
the fragment-parallel engine in both modes and reports wall-clock side
by side, plus the structural invariants that must hold regardless of
timing noise:

* the simulated makespan is bit-identical traced vs untraced (the
  recorder observes the WAN simulation, it never perturbs it);
* every traced run audits COMPLIANT and records at least one event.

Wall-clock ratios are *reported*, not asserted, because CI machines are
noisy and the per-query runtimes at smoke scale are dominated by
constant costs.  Scale via ``REPRO_BENCH_TRACE_SCALE`` (default 0.01)
and ``REPRO_BENCH_TRACE_REPS`` (default 3).  Results land in
``benchmarks/results/BENCH_trace_overhead.json``.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench import format_table
from repro.errors import NonCompliantQueryError
from repro.execution import ExecutionEngine
from repro.optimizer import CompliantOptimizer
from repro.tpch import QUERIES, build_benchmark, curated_policies, default_network
from repro.trace import ComplianceAuditor, TraceRecorder, tracing

SCALE = float(os.environ.get("REPRO_BENCH_TRACE_SCALE", "0.01"))
REPETITIONS = int(os.environ.get("REPRO_BENCH_TRACE_REPS", "3"))
POLICY_SET = "CR+A"


@pytest.fixture(scope="module")
def world():
    catalog, database = build_benchmark(scale=SCALE, stats_scale=1.0)
    network = default_network()
    policies = curated_policies(catalog, POLICY_SET)
    optimizer = CompliantOptimizer(catalog, policies, network)
    plans = {}
    for name, sql in QUERIES.items():
        try:
            plans[name] = optimizer.optimize(sql).plan
        except NonCompliantQueryError:
            continue
    engine = ExecutionEngine(
        database, network, policy_guard=optimizer.evaluator, parallel=True
    )
    return engine, plans, ComplianceAuditor(policies)


def _best(run):
    best, last = float("inf"), None
    for _ in range(REPETITIONS):
        start = time.perf_counter()
        last = run()
        best = min(best, time.perf_counter() - start)
    return best, last


def test_trace_overhead(world, report):
    engine, plans, auditor = world
    results = {}
    table_rows = []
    for name, plan in sorted(plans.items()):
        off_seconds, off_result = _best(lambda: engine.execute(plan))

        def traced():
            recorder = TraceRecorder()
            with tracing(recorder):
                result = engine.execute(plan)
            return recorder, result

        on_seconds, (recorder, on_result) = _best(traced)

        # The recorder observes the simulation; it must not perturb it.
        assert on_result.makespan_seconds == off_result.makespan_seconds, name
        assert on_result.rows == off_result.rows, name
        assert len(recorder.events()) > 0, name
        audit = auditor.audit_events(recorder.events())
        assert audit.ok, (name, [str(v) for v in audit.violations])

        overhead = (on_seconds - off_seconds) / off_seconds * 100.0
        results[name] = {
            "untraced_seconds": off_seconds,
            "traced_seconds": on_seconds,
            "overhead_pct": overhead,
            "events": len(recorder.events()),
            "transfer_attempts": audit.attempts,
            "makespan_seconds": on_result.makespan_seconds,
        }
        table_rows.append(
            [
                name,
                len(recorder.events()),
                f"{off_seconds * 1e3:.1f} ms",
                f"{on_seconds * 1e3:.1f} ms",
                f"{overhead:+.1f}%",
            ]
        )

    payload = {
        "scale": SCALE,
        "repetitions": REPETITIONS,
        "policy_set": POLICY_SET,
        "disabled_path_budget_pct": 5.0,
        "queries": results,
    }
    out_dir = report.directory
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "BENCH_trace_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    report.emit(
        "trace_overhead",
        format_table(
            ["query", "events", "untraced", "traced", "overhead"],
            table_rows,
            title=f"Tracing overhead, TPC-H at scale {SCALE} (best of "
            f"{REPETITIONS}, fragment-parallel, set {POLICY_SET})",
        ),
    )
    assert len(results) >= 4, "workload unexpectedly small"
