"""Table 1 (§5): the policy evaluation algorithm 𝒜 on the paper's worked
example, plus its raw evaluation throughput."""

import pytest

from repro.bench import format_table
from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.policy import PolicyCatalog, PolicyEvaluator, describe_local_query
from repro.sql import Binder


@pytest.fixture(scope="module")
def world():
    catalog = Catalog()
    catalog.add_database("db0", "l0")
    for loc in ("l1", "l2", "l3", "l4"):
        catalog.add_database(f"db_{loc}", loc)
    catalog.add_table(
        "db0",
        TableSchema("t", tuple(Column(x, DataType.INTEGER) for x in "abcdefg")),
        row_count=100,
    )
    policies = PolicyCatalog(catalog)
    policies.add_text("ship a, b, c from t to l2, l3")
    policies.add_text("ship a, b from t to l1, l2, l3, l4")
    policies.add_text("ship a, d from t to l1, l3 where b > 10")
    policies.add_text("ship f, g as aggregates sum, avg from t to l1, l2 group by e, c")
    binder = Binder(catalog)
    q1 = describe_local_query(binder.bind_sql("SELECT a, c, d FROM t WHERE b > 15"))
    q2 = describe_local_query(binder.bind_sql("SELECT c, SUM(f * (1 - g)) FROM t GROUP BY c"))
    return policies, q1, q2


def test_table1_reproduction(world, report, benchmark):
    policies, q1, q2 = world

    def run():
        evaluator = PolicyEvaluator(policies)
        return (
            evaluator.evaluate(q1, include_home=False),
            evaluator.evaluate(q2, include_home=False),
        )

    a_q1, a_q2 = benchmark(run)
    assert a_q1 == {"l3"}  # paper Table 1
    assert a_q2 == {"l1", "l2"}  # paper §5 text
    report.emit(
        "table1_policy_eval",
        format_table(
            ["query", "A(q, D, P)"],
            [
                ["q1 = Π_{A,C,D}(σ_{B>15}(T))", sorted(a_q1)],
                ["q2 = Γ_{C; SUM(F*(1-G))}(T)", sorted(a_q2)],
            ],
            title="Table 1 — policy evaluation on the paper's example",
        ),
    )


def test_policy_evaluation_throughput(world, report, benchmark):
    policies, q1, q2 = world
    evaluator = PolicyEvaluator(policies)

    def run():
        evaluator.evaluate(q1, include_home=False)
        evaluator.evaluate(q2, include_home=False)

    benchmark(run)

    # A long-lived evaluator re-checks the same (query predicate, policy
    # predicate) pairs on every evaluation; all but the first round of
    # implication proofs must come from the cache.
    stats = evaluator.stats
    assert stats.implication_cache_hits + stats.implication_cache_misses == (
        stats.implication_checks
    )
    assert stats.implication_cache_misses <= 8  # distinct pairs in this world
    assert stats.implication_cache_hits > stats.implication_cache_misses
    hit_rate = stats.implication_cache_hits / stats.implication_checks
    report.emit(
        "table1_policy_eval_cache",
        format_table(
            ["counter", "value"],
            [
                ["implication checks", stats.implication_checks],
                ["implication cache hits", stats.implication_cache_hits],
                ["implication cache misses", stats.implication_cache_misses],
                ["hit rate", f"{hit_rate:.4f}"],
            ],
            title="Implication cache during repeated policy evaluation",
        ),
    )
