"""Row vs batch executor throughput on local microplans.

The vectorized backend exists to kill per-row interpreter overhead, so
this benchmark measures exactly that: rows/second through scan, scan +
filter, hash-join, and hash-aggregate microplans on a single site (no
WAN edges — shipping cost is the other benchmarks' subject), row backend
vs batch backend on identical plans.

Scale via ``REPRO_BENCH_EXEC_ROWS`` (default 120_000; CI smoke-runs at a
few thousand).  Results go to the usual text report *and* to
``benchmarks/results/BENCH_exec_throughput.json`` so the speedups are
recorded machine-readably.  At full scale the batch backend must clear
>= 3x on the scan+filter and aggregate microplans (the acceptance bar;
the others are reported alongside).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench import format_table
from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.execution import (
    BatchOperatorExecutor,
    ExecutionMetrics,
    OperatorExecutor,
    reference_plan,
)
from repro.expr import ColumnRef
from repro.geo import GeoDatabase, synthetic_network
from repro.plan import HashJoin
from repro.sql import Binder

ROWS = int(os.environ.get("REPRO_BENCH_EXEC_ROWS", "120000"))
REPETITIONS = int(os.environ.get("REPRO_BENCH_EXEC_REPS", "3"))
#: The acceptance bar applies at a scale where per-row overhead (not
#: constant costs) dominates; the CI smoke run only checks sanity.
FULL_SCALE = ROWS >= 50_000
REQUIRED_SPEEDUP = {"scan_filter": 3.0, "aggregate": 3.0}


@pytest.fixture(scope="module")
def world():
    import random

    rng = random.Random(7)
    rows = [
        (
            i,
            rng.randrange(20),
            rng.randrange(1000),
            rng.random() * 1000,
            f"name{i % 97:05d}",
        )
        for i in range(ROWS)
    ]
    dim_rows = [(k, f"dim{k}") for k in range(0, ROWS, 40)]

    catalog = Catalog()
    catalog.add_database("db0", "L0")
    catalog.add_table(
        "db0",
        TableSchema(
            "t",
            (
                Column("k", DataType.INTEGER),
                Column("g", DataType.INTEGER),
                Column("b", DataType.INTEGER),
                Column("c", DataType.DECIMAL),
                Column("s", DataType.VARCHAR),
            ),
        ),
    )
    catalog.add_table(
        "db0",
        TableSchema(
            "u",
            (Column("k", DataType.INTEGER), Column("y", DataType.VARCHAR)),
        ),
    )
    database = GeoDatabase(catalog)
    database.load("db0", "t", rows)
    database.load("db0", "u", dim_rows)
    return catalog, database


def _microplans(catalog):
    binder = Binder(catalog)

    def bound(sql):
        return reference_plan(binder.bind_sql(sql))

    t_scan = bound("SELECT * FROM t")
    u_scan = bound("SELECT * FROM u")
    join = HashJoin(
        fields=tuple(t_scan.fields) + tuple(u_scan.fields),
        location="reference",
        left=t_scan,
        right=u_scan,
        left_keys=(ColumnRef(t_scan.field_names[0], DataType.INTEGER),),
        right_keys=(ColumnRef(u_scan.field_names[0], DataType.INTEGER),),
    )
    return {
        "scan": bound("SELECT k, b FROM t"),
        "scan_filter": bound("SELECT k, b FROM t WHERE b > 500 AND c < 800"),
        "join": join,
        "aggregate": bound(
            "SELECT g, COUNT(*) AS n, SUM(b) AS sb, AVG(c) AS ac, "
            "MIN(c) AS lo, MAX(c) AS hi FROM t GROUP BY g"
        ),
    }


def _best_seconds(executor_cls, database, network, plan):
    """Best-of-N wall clock (least interference), plus the last output."""
    best = float("inf")
    out = None
    for _ in range(REPETITIONS):
        executor = executor_cls(database, network, ExecutionMetrics())
        start = time.perf_counter()
        out = executor.run(plan)
        best = min(best, time.perf_counter() - start)
    return best, out


def test_exec_throughput(world, report):
    catalog, database = world
    network = synthetic_network(["L0"])
    database.columns("db0", "t")  # warm the columnar cache once
    database.columns("db0", "u")

    results = {}
    table_rows = []
    for name, plan in _microplans(catalog).items():
        row_seconds, row_out = _best_seconds(
            OperatorExecutor, database, network, plan
        )
        batch_seconds, batch_out = _best_seconds(
            BatchOperatorExecutor, database, network, plan
        )
        assert batch_out.columns == row_out.columns
        assert batch_out.rows == row_out.rows  # row-identical, ordered
        speedup = row_seconds / batch_seconds
        results[name] = {
            "rows_in": ROWS,
            "rows_out": len(row_out.rows),
            "row_seconds": row_seconds,
            "batch_seconds": batch_seconds,
            "row_rows_per_sec": ROWS / row_seconds,
            "batch_rows_per_sec": ROWS / batch_seconds,
            "speedup": speedup,
        }
        table_rows.append(
            [
                name,
                len(row_out.rows),
                f"{ROWS / row_seconds:,.0f}",
                f"{ROWS / batch_seconds:,.0f}",
                f"{speedup:.2f}x",
            ]
        )

    payload = {
        "rows": ROWS,
        "repetitions": REPETITIONS,
        "full_scale": FULL_SCALE,
        "microplans": results,
    }
    out_dir = report.directory
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / "BENCH_exec_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )
    report.emit(
        "exec_throughput",
        format_table(
            ["microplan", "rows out", "row rows/s", "batch rows/s", "speedup"],
            table_rows,
            title=f"Executor throughput, {ROWS:,} input rows (best of "
            f"{REPETITIONS})",
        ),
    )

    for name, required in REQUIRED_SPEEDUP.items():
        if FULL_SCALE:
            assert results[name]["speedup"] >= required, (
                f"{name}: batch executor only {results[name]['speedup']:.2f}x "
                f"faster, needs >= {required}x at full scale"
            )
        else:
            # Smoke scale: constant costs dominate; just require the
            # batch backend isn't pathologically slower.
            assert results[name]["speedup"] >= 0.8, (name, results[name])
