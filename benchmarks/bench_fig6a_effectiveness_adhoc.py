"""Fig. 6(a): fraction of generated ad-hoc queries for which each
optimizer produces a compliant plan.

Paper shape: the compliant optimizer succeeds on *all* queries; the
traditional one on roughly half on average (42% under T, down to ~30%
under CR+A in the paper — our policy generator differs in detail, so we
assert "always" vs "substantially less than always")."""

from repro.bench import effectiveness_adhoc

#: 100 queries per set (= 400 total, as in the paper).
QUERIES_PER_SET = 100


def test_fig6a_adhoc_effectiveness(catalog, network, report, benchmark):
    result = benchmark.pedantic(
        lambda: effectiveness_adhoc(catalog, network, queries_per_set=QUERIES_PER_SET),
        rounds=1,
        iterations=1,
    )
    report.emit("fig6a_effectiveness_adhoc", result.table())
    for set_name, (n, trad_ok, comp_ok) in result.per_set.items():
        assert comp_ok == n, f"compliant optimizer failed queries under {set_name}"
        assert trad_ok < n, f"traditional optimizer should miss some under {set_name}"
    # On average the traditional optimizer is clearly below the compliant one.
    total = sum(n for n, _t, _c in result.per_set.values())
    trad_total = sum(t for _n, t, _c in result.per_set.values())
    assert trad_total / total < 0.9
