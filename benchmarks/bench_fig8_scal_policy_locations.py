"""Fig. 8: optimization time vs. the number of 'to' locations per policy
expression (8x ``ship * from t to l1..ln`` with n in 3..20).

Paper shape: the number of destinations does not grow the plan space —
the increase comes only from larger set operations while deriving traits,
so growth is mild (~1.2–1.7x per doubling for the join-heavy Q2) and site
selection remains a small fraction of total time."""

import pytest

from repro.bench import scalability_policy_locations

COUNTS = (3, 5, 10, 15, 20)


@pytest.mark.parametrize("query_name", ["Q2", "Q3"])
def test_fig8_policy_location_scalability(report, benchmark, query_name):
    result = benchmark.pedantic(
        lambda: scalability_policy_locations(query_name, COUNTS, repetitions=3),
        rounds=1,
        iterations=1,
    )
    report.emit(f"fig8_{query_name}_locations", result.table())
    times = [t.mean_ms for _n, t, _p2 in result.points]
    # Mild growth: 3 -> 20 destination locations far less than linear blowup.
    assert times[-1] / times[0] < 6.0
    # Site selection grows with the location count but never dominates.
    for (_n, t, p2) in result.points:
        assert p2 < 0.75 * t.mean_ms
