"""Fig. 7(d)(e): optimization time vs. the number of table locations —
Customer and Orders are GAV-fragmented over 1–5 databases, so every scan
of them becomes a UNION of fragment scans and the plan space grows.

Paper shape: roughly linear growth in the number of locations, dominated
by the plan annotator (site selection stays a tiny fraction)."""

import pytest

from repro.bench import scalability_fragments

COUNTS = (1, 2, 3, 4, 5)


@pytest.mark.parametrize("query_name", ["Q3", "Q10"])
def test_fig7de_fragment_scalability(report, benchmark, query_name):
    result = benchmark.pedantic(
        lambda: scalability_fragments(query_name, COUNTS, repetitions=3),
        rounds=1,
        iterations=1,
    )
    report.emit(f"fig7de_{query_name}_fragments", result.table())
    times = [t.mean_ms for _n, t in result.points]
    # Roughly linear growth: going 1 -> 5 locations must neither blow up
    # (generous 10x bound for a 5x larger input) nor shrink beyond timer
    # noise — single-core wall-clock jitter makes strict monotonicity too
    # brittle an assertion.
    assert times[-1] / times[0] < 10.0
    assert times[-1] > 0.6 * times[0]
