"""Bounded-staleness equivalence under fuzzed refresh x fault schedules.

The freshness model is metadata on the simulated clock: every replica
holds the same snapshot content, only its *staleness* varies.  So the
correctness contract is sharp and fuzzable:

* **Snapshot equivalence** — whenever a run completes, it serves exactly
  the base table's rows; staleness may change *where* a scan reads and
  *when* it commits, never *what* it returns.
* **Bound enforcement** — an enforcing policy (anything but plan-only)
  never commits a read whose derived staleness exceeds the bound; runs
  that cannot satisfy the bound degrade to a typed partial failure.
* **Executor equivalence** — the row and batch executors are
  indistinguishable: same rows, same freshness counters, same simulated
  makespan, same (typed) failure.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.catalog import (
    FreshnessTracker,
    RefreshDegrade,
    RefreshPause,
    RefreshSchedule,
)
from repro.execution import (
    FRESHNESS_MODES,
    FragmentScheduler,
    FreshnessPolicy,
    RetryPolicy,
    parse_fault_spec,
)

from ..conftest import rows_as_multiset
from ..execution.test_freshness_runtime import ROWS, freshness_world, scan_plan

FUZZ_EXAMPLES = 30

#: Faults composable with freshness: a flaky window and a slow link on
#: the result path (retryable), and a crash of the L3 replica's site
#: (forces the failover planner through the freshness filter).
FAULT_SPECS = (None, "flaky:L2->L4@0+0.1", "slow:L2->L4@0x5", "crash:L3@0.01")


@st.composite
def refresh_schedules(draw):
    period = draw(st.floats(0.05, 1.0))
    phase = draw(st.floats(0.0, 0.5))
    pauses = ()
    if draw(st.booleans()):
        duration = draw(st.one_of(st.none(), st.floats(0.05, 1.0)))
        pauses = (RefreshPause(at=draw(st.floats(0.0, 1.0)), duration=duration),)
    degradations = ()
    if draw(st.booleans()):
        degradations = (
            RefreshDegrade(
                factor=draw(st.floats(1.5, 4.0)),
                at=draw(st.floats(0.0, 1.0)),
                duration=draw(st.floats(0.1, 1.0)),
            ),
        )
    return RefreshSchedule(
        period=period, phase=phase, pauses=pauses, degradations=degradations
    )


def run_once(catalog, database, network, plan, mode, bound, executor, faults, start_at):
    policy = FreshnessPolicy(
        FreshnessTracker(catalog), mode=mode, max_staleness=bound
    )
    scheduler = FragmentScheduler(
        database,
        network,
        executor=executor,
        faults=faults,
        retry_policy=RetryPolicy(max_retries=6),
        freshness=policy,
    )
    return scheduler.run(plan, start_at=start_at)


@settings(
    max_examples=FUZZ_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_bounded_staleness_equivalence(data):
    catalog, database, network = freshness_world()
    for site in ("L2", "L3"):
        if data.draw(st.booleans(), label=f"schedule@{site}"):
            catalog.set_refresh(
                "db1",
                "emp",
                site,
                data.draw(refresh_schedules(), label=f"refresh@{site}"),
            )
    mode = data.draw(st.sampled_from(FRESHNESS_MODES), label="mode")
    bound = data.draw(
        st.one_of(st.none(), st.floats(0.0, 0.6)), label="bound"
    )
    start_at = data.draw(st.floats(0.0, 1.0), label="start_at")
    spec = data.draw(st.sampled_from(FAULT_SPECS), label="fault")
    faults = (
        parse_fault_spec(spec, locations=catalog.locations) if spec else None
    )
    plan = scan_plan(data.draw(st.sampled_from(("L2", "L3")), label="scan"))
    enforcing = mode != "plan-only"

    outcomes = {}
    for executor in ("row", "batch"):
        (columns, rows), metrics = run_once(
            catalog, database, network, plan,
            mode, bound, executor, faults, start_at,
        )
        outcomes[executor] = (columns, rows, metrics)
        if metrics.partial_failure is not None:
            # Typed degradation, never wrong rows.
            assert rows == []
            assert "Error" in metrics.partial_failure.error_type
            continue
        # Snapshot equivalence: staleness moves reads around, never
        # the served rows.
        assert rows_as_multiset(rows) == rows_as_multiset(ROWS)
        if enforcing and bound is not None:
            for read in metrics.scan_reads:
                assert read.staleness_seconds <= bound + 1e-9

    (row_cols, row_rows, row_m) = outcomes["row"]
    (batch_cols, batch_rows, batch_m) = outcomes["batch"]
    assert row_cols == batch_cols
    assert rows_as_multiset(row_rows) == rows_as_multiset(batch_rows)
    assert (row_m.partial_failure is None) == (batch_m.partial_failure is None)
    if row_m.partial_failure is not None:
        assert (
            row_m.partial_failure.error_type
            == batch_m.partial_failure.error_type
        )
    assert row_m.stale_reads == batch_m.stale_reads
    assert row_m.refresh_waits == batch_m.refresh_waits
    assert row_m.refresh_wait_seconds == pytest.approx(
        batch_m.refresh_wait_seconds
    )
    assert row_m.freshness_demotions == batch_m.freshness_demotions
    assert row_m.makespan_seconds == pytest.approx(batch_m.makespan_seconds)
    assert [
        (r.database, r.table, r.site, r.at_seconds, r.staleness_seconds)
        for r in row_m.scan_reads
    ] == [
        (r.database, r.table, r.site, r.at_seconds, r.staleness_seconds)
        for r in batch_m.scan_reads
    ]
