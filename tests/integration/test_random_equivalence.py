"""Property-based pipeline equivalence.

Hypothesis composes random queries over the CarCo world (random output
columns, predicates, optional grouping/aggregation). For each query:

* the normalized plan, the compliant optimizer's plan (when one exists),
  and the traditional optimizer's plan must all produce exactly the rows
  of the raw bound plan's reference execution;
* whenever the compliant optimizer succeeds, its plan passes the
  independent Definition-1 validator (Theorem 1 again, over a different
  query distribution than the TPC-H-based property test).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import NonCompliantQueryError
from repro.execution import ExecutionEngine, reference_plan
from repro.optimizer import (
    CompliantOptimizer,
    TraditionalOptimizer,
    check_compliance,
    normalize,
)
from repro.sql import Binder

from ..conftest import build_carco, rows_as_multiset

_CARCO = build_carco(customers=30, orders=120, supplies=300)
_BINDER = Binder(_CARCO.catalog)
_ENGINE = ExecutionEngine(_CARCO.database, _CARCO.network)
_COMPLIANT = CompliantOptimizer(_CARCO.catalog, _CARCO.policies, _CARCO.network)
_TRADITIONAL = TraditionalOptimizer(_CARCO.catalog, _CARCO.network)

_OUTPUTS = [
    "C.name",
    "C.mktseg",
    "O.totprice",
    "O.ordkey",
    "S.quantity",
    "S.extprice",
]
_PREDICATES = [
    "C.acctbal > 500",
    "C.mktseg = 'a'",
    "O.totprice < 50",
    "O.totprice BETWEEN 10 AND 80",
    "S.quantity >= 5",
    "S.extprice < 3 OR S.quantity > 7",
]
_AGGREGATES = [
    "SUM(O.totprice)",
    "SUM(S.quantity)",
    "COUNT(*)",
    "MIN(S.extprice)",
    "MAX(O.totprice)",
    "AVG(S.quantity)",
]
_GROUP_KEYS = ["C.name", "C.mktseg", "O.ordkey"]


@st.composite
def carco_queries(draw) -> str:
    is_aggregate = draw(st.booleans())
    predicates = draw(
        st.lists(st.sampled_from(_PREDICATES), max_size=2, unique=True)
    )
    where = " AND ".join(
        [
            "C.custkey = O.custkey",
            "O.ordkey = S.ordkey",
        ]
        + predicates
    )
    if is_aggregate:
        keys = draw(
            st.lists(st.sampled_from(_GROUP_KEYS), min_size=1, max_size=2, unique=True)
        )
        aggs = draw(
            st.lists(st.sampled_from(_AGGREGATES), min_size=1, max_size=2, unique=True)
        )
        select_items = keys + [f"{a} AS a{i}" for i, a in enumerate(aggs)]
        return (
            f"SELECT {', '.join(select_items)} FROM customer C, orders O, supply S "
            f"WHERE {where} GROUP BY {', '.join(keys)}"
        )
    outputs = draw(
        st.lists(st.sampled_from(_OUTPUTS), min_size=1, max_size=4, unique=True)
    )
    return (
        f"SELECT {', '.join(outputs)} FROM customer C, orders O, supply S "
        f"WHERE {where}"
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(sql=carco_queries())
def test_pipeline_equivalence(sql):
    logical = _BINDER.bind_sql(sql)
    expected = rows_as_multiset(
        _ENGINE.execute(reference_plan(normalize(logical))).rows
    )

    traditional = _TRADITIONAL.optimize(sql)
    assert rows_as_multiset(_ENGINE.execute(traditional.plan).rows) == expected

    try:
        compliant = _COMPLIANT.optimize(sql)
    except NonCompliantQueryError:
        return  # rejection is allowed; silent non-compliance is not
    assert rows_as_multiset(_ENGINE.execute(compliant.plan).rows) == expected
    assert not check_compliance(compliant.plan, _COMPLIANT.evaluator)
