"""Execute optimized TPC-H plans on loaded (tiny-scale) data and compare
against the centralized reference execution — geo-distribution and
compliance must not change any query's result."""

import pytest

from repro.execution import ExecutionEngine, reference_plan
from repro.optimizer import CompliantOptimizer, TraditionalOptimizer, normalize
from repro.optimizer.compliant import _strip_sort
from repro.sql import Binder
from repro.tpch import QUERIES, curated_policies

from ..conftest import rows_as_multiset


@pytest.fixture(scope="module")
def world(tpch_small, tpch_network):
    catalog, database = tpch_small
    policies = curated_policies(catalog, "CR+A")
    compliant = CompliantOptimizer(catalog, policies, tpch_network)
    traditional = TraditionalOptimizer(catalog, tpch_network)
    engine = ExecutionEngine(database, tpch_network)
    return catalog, compliant, traditional, engine


#: ORDER BY ... LIMIT is stripped for comparison (ties make row *sets*
#: after a LIMIT nondeterministic); the sort operator itself is covered by
#: the execution unit tests.
@pytest.mark.parametrize("name", ["Q3", "Q5", "Q9", "Q10"])
def test_compliant_results_match_reference(world, name):
    catalog, compliant, _traditional, engine = world
    logical = Binder(catalog).bind_sql(QUERIES[name])
    core, _sort = _strip_sort(logical)
    expected = engine.execute(reference_plan(normalize(core))).rows
    result = compliant.optimize(core)
    actual = engine.execute(result.plan).rows
    assert rows_as_multiset(actual) == rows_as_multiset(expected)


@pytest.mark.parametrize("name", ["Q3", "Q10"])
def test_traditional_results_match_reference(world, name):
    catalog, _compliant, traditional, engine = world
    logical = Binder(catalog).bind_sql(QUERIES[name])
    core, _sort = _strip_sort(logical)
    expected = engine.execute(reference_plan(normalize(core))).rows
    result = traditional.optimize(core)
    actual = engine.execute(result.plan).rows
    assert rows_as_multiset(actual) == rows_as_multiset(expected)


def test_q8_with_computed_group_key(world):
    catalog, compliant, _traditional, engine = world
    logical = Binder(catalog).bind_sql(QUERIES["Q8"])
    core, _sort = _strip_sort(logical)
    expected = engine.execute(reference_plan(normalize(core))).rows
    actual = engine.execute(compliant.optimize(core).plan).rows
    assert rows_as_multiset(actual) == rows_as_multiset(expected)


def test_q2_with_derived_table(world):
    catalog, compliant, _traditional, engine = world
    logical = Binder(catalog).bind_sql(QUERIES["Q2"])
    core, _sort = _strip_sort(logical)
    expected = engine.execute(reference_plan(normalize(core))).rows
    actual = engine.execute(compliant.optimize(core).plan).rows
    assert rows_as_multiset(actual) == rows_as_multiset(expected)


def test_compliant_never_costlier_checks_run(world):
    """Sanity on the quality experiment machinery: executing the compliant
    plan yields measured shipped bytes, and the traditional plan's shipping
    differs when its plan differs."""
    catalog, compliant, traditional, engine = world
    logical = Binder(catalog).bind_sql(QUERIES["Q3"])
    core, _sort = _strip_sort(logical)
    c_exec = engine.execute(compliant.optimize(core).plan)
    t_exec = engine.execute(traditional.optimize(core).plan)
    assert c_exec.metrics.total_bytes_shipped > 0
    assert t_exec.metrics.total_bytes_shipped > 0
