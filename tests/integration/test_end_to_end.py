"""End-to-end integration: optimize → validate → execute → compare with
the centralized reference execution."""

import pytest

from repro.errors import ComplianceViolationError, NonCompliantQueryError
from repro.execution import ExecutionEngine, reference_plan
from repro.optimizer import CompliantOptimizer, TraditionalOptimizer, normalize
from repro.sql import Binder

from ..conftest import rows_as_multiset


QUERIES = [
    "SELECT C.name FROM customer C WHERE C.acctbal > 500",
    "SELECT C.name, O.totprice FROM customer C, orders O WHERE C.custkey = O.custkey",
    "SELECT O.custkey, SUM(O.totprice) AS t FROM orders O GROUP BY O.custkey",
    "SELECT C.name, SUM(O.totprice) AS p, SUM(S.quantity) AS q "
    "FROM customer C, orders O, supply S "
    "WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey GROUP BY C.name",
    "SELECT C.mktseg, COUNT(*) AS n FROM customer C, orders O "
    "WHERE C.custkey = O.custkey AND O.totprice > 50 GROUP BY C.mktseg",
]


@pytest.fixture(scope="module")
def setup(carco):
    compliant = CompliantOptimizer(carco.catalog, carco.policies, carco.network)
    engine = ExecutionEngine(carco.database, carco.network, policy_guard=compliant.evaluator)
    unguarded = ExecutionEngine(carco.database, carco.network)
    return carco, compliant, engine, unguarded


@pytest.mark.parametrize("sql", QUERIES)
def test_compliant_plan_preserves_semantics(setup, sql):
    """The paper's core semantic requirement: a compliant QEP returns the
    same result as if there were no dataflow policies."""
    carco, compliant, engine, unguarded = setup
    logical = Binder(carco.catalog).bind_sql(sql)
    expected = unguarded.execute(reference_plan(normalize(logical))).rows
    result = compliant.optimize(sql)
    actual = engine.execute(result.plan).rows
    assert rows_as_multiset(actual) == rows_as_multiset(expected)


@pytest.mark.parametrize("sql", QUERIES)
def test_traditional_plan_also_correct_when_executed_unguarded(setup, sql):
    carco, compliant, engine, unguarded = setup
    logical = Binder(carco.catalog).bind_sql(sql)
    expected = unguarded.execute(reference_plan(normalize(logical))).rows
    traditional = TraditionalOptimizer(carco.catalog, carco.network)
    plan = traditional.optimize(sql).plan
    actual = unguarded.execute(plan).rows
    assert rows_as_multiset(actual) == rows_as_multiset(expected)


def test_guard_blocks_traditional_carco_plan(setup):
    carco, compliant, engine, _ = setup
    traditional = TraditionalOptimizer(carco.catalog, carco.network)
    plan = traditional.optimize(carco.query).plan
    with pytest.raises(ComplianceViolationError):
        engine.execute(plan)


def test_carco_full_flow(setup):
    carco, compliant, engine, unguarded = setup
    result = compliant.optimize(carco.query)
    output = engine.execute(result.plan)
    logical = Binder(carco.catalog).bind_sql(carco.query)
    expected = unguarded.execute(reference_plan(normalize(logical))).rows
    assert rows_as_multiset(output.rows) == rows_as_multiset(expected)
    assert output.metrics.total_bytes_shipped > 0
    assert output.simulated_cost > 0


def test_rejected_query_reported_not_executed(setup):
    carco, compliant, engine, _ = setup
    with pytest.raises(NonCompliantQueryError):
        compliant.optimize("SELECT C.acctbal FROM customer C, orders O WHERE C.custkey = O.custkey")


def test_order_by_limit_applied_at_result_site(setup):
    carco, compliant, engine, unguarded = setup
    sql = (
        "SELECT O.custkey, SUM(O.totprice) AS t FROM orders O "
        "GROUP BY O.custkey ORDER BY t DESC LIMIT 5"
    )
    result = compliant.optimize(sql)
    output = engine.execute(result.plan)
    assert len(output.rows) == 5
    totals = [r[1] for r in output.rows]
    assert totals == sorted(totals, reverse=True)
