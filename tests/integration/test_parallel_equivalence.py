"""Executor equivalence: the fragment-parallel engine must be
indistinguishable (row-wise) from the sequential engine and from the
centralized reference execution, and its simulated makespan must obey
the critical-path invariants.

Three workloads:

* the six curated TPC-H queries (the tier-1 integration plans), under
  both optimizers;
* ``>= 50`` randomized ad-hoc TPC-H queries from
  :mod:`repro.tpch.querygen` (the paper's §7.1 generator);
* a GAV-fragmented deployment whose UNION ALL plans produce many
  independent fragments.

Invariants checked on every executed plan: ``makespan <= sum of ship
times`` (a critical path cannot exceed the sum of all edges), equality
only possible when the fragment DAG is a chain, and strict inequality
whenever independent fragments exist.
"""

import pytest

from repro.execution import (
    ExecutionEngine,
    ShipConfig,
    fragment_plan,
    reference_plan,
)
from repro.optimizer import CompliantOptimizer, TraditionalOptimizer, normalize
from repro.optimizer.compliant import _strip_sort
from repro.sql import Binder
from repro.tpch import AdHocQueryGenerator, QUERIES, curated_policies
from repro.trace import TraceRecorder, tracing

from ..conftest import rows_as_multiset

#: Satellite requirement: at least 50 randomized queries.
ADHOC_QUERIES = AdHocQueryGenerator(seed=1234).generate(55)


@pytest.fixture(scope="module")
def world(tpch_small, tpch_network):
    catalog, database = tpch_small
    compliant = CompliantOptimizer(
        catalog, curated_policies(catalog, "CR+A"), tpch_network
    )
    traditional = TraditionalOptimizer(catalog, tpch_network)
    sequential = ExecutionEngine(database, tpch_network)
    parallel = ExecutionEngine(database, tpch_network, parallel=True)
    batch_sequential = ExecutionEngine(database, tpch_network, executor="batch")
    batch_parallel = ExecutionEngine(
        database, tpch_network, parallel=True, executor="batch"
    )
    return (
        catalog,
        compliant,
        traditional,
        sequential,
        parallel,
        batch_sequential,
        batch_parallel,
    )


def assert_makespan_invariants(plan, metrics):
    pairs = fragment_plan(plan).independent_pairs()
    assert metrics.makespan_seconds <= metrics.shipping_seconds + 1e-9
    if pairs > 0:
        # Independent fragments transfer concurrently: the response
        # time comes in strictly below the shipped-seconds sum.
        assert metrics.makespan_seconds < metrics.shipping_seconds
    return pairs


def traced_execute(engine, plan):
    """Run ``plan`` under a fresh trace recorder; return the result and
    the trace-derived SHIP summary ``(transfer_count, total_bytes)`` over
    delivered cross-border attempts."""
    recorder = TraceRecorder()
    with tracing(recorder):
        result = engine.execute(plan)
    delivered = [
        event
        for event in recorder.events()
        if event.kind == "ship"
        and event.outcome == "delivered"
        and event.source != event.target
    ]
    return result, (len(delivered), sum(event.bytes for event in delivered))


#: Small chunk size so even the 0.002-scale test batches actually split.
STREAM = ShipConfig(chunk_rows=64, compression="auto")


def streaming_engines(database, network, full=False):
    """Streaming+compressed engines mirroring the monolithic baseline:
    the (row, parallel) and (batch, sequential) corners by default, the
    full row/batch x sequential/parallel matrix with ``full=True``."""
    combos = [("row", True), ("batch", False)]
    if full:
        combos += [("row", False), ("batch", True)]
    return [
        ExecutionEngine(
            database, network, parallel=par, executor=backend, ship=STREAM
        )
        for backend, par in combos
    ]


def check_equivalence(
    catalog, optimizer, sequential, parallel, sql, batch_engines=(),
    streaming="pair",
):
    core, _sort = _strip_sort(Binder(catalog).bind_sql(sql))
    expected = rows_as_multiset(
        sequential.execute(reference_plan(normalize(core))).rows
    )
    plan = optimizer.optimize(core).plan
    seq_run, seq_ships = traced_execute(sequential, plan)
    par_run, par_ships = traced_execute(parallel, plan)
    assert rows_as_multiset(seq_run.rows) == expected
    assert rows_as_multiset(par_run.rows) == expected
    assert par_run.columns == seq_run.columns
    assert par_run.metrics.total_bytes_shipped == seq_run.metrics.total_bytes_shipped
    assert par_run.metrics.operators_executed == seq_run.metrics.operators_executed
    # Trace-derived transfer accounting: the sequential walker and the
    # fragment scheduler must record the same cross-border SHIP set.
    assert par_ships == seq_ships
    for batch_engine in batch_engines:
        # The batch executor preserves the row backend's exact iteration
        # orders, so its output must be *row-identical* (ordered), not
        # just multiset-equal — and its SHIP byte accounting, computed
        # from columns, must bill the same bytes.
        batch_run, batch_ships = traced_execute(batch_engine, plan)
        assert batch_run.columns == seq_run.columns
        assert batch_run.rows == seq_run.rows
        assert (
            batch_run.metrics.total_bytes_shipped
            == seq_run.metrics.total_bytes_shipped
        )
        assert (
            batch_run.metrics.operators_executed
            == seq_run.metrics.operators_executed
        )
        # Per-query trace agreement between the row and batch backends:
        # identical transfer counts and identical total SHIP bytes.
        assert batch_ships == seq_ships
    for stream_engine in streaming_engines(
        sequential.database, sequential.network, full=streaming == "full"
    ):
        # Chunked, compressed transfers sit on the data path (rows flow
        # through the codec), so streaming must stay *byte-identical* on
        # rows and bill the same logical SHIP bytes as monolithic — in
        # the metrics and in the trace-derived per-query accounting —
        # while putting no more bytes on the wire than it ships.
        stream_run, stream_ships = traced_execute(stream_engine, plan)
        assert stream_run.columns == seq_run.columns
        assert stream_run.rows == seq_run.rows
        assert (
            stream_run.metrics.total_bytes_shipped
            == seq_run.metrics.total_bytes_shipped
        )
        assert stream_ships == seq_ships
        assert (
            stream_run.metrics.total_wire_bytes_shipped
            <= stream_run.metrics.total_bytes_shipped
        )
        if stream_engine.parallel:
            assert (
                stream_run.metrics.makespan_seconds
                <= stream_run.metrics.shipping_seconds + 1e-9
            )
    pairs = assert_makespan_invariants(plan, par_run.metrics)
    return par_run, pairs


@pytest.mark.parametrize("name", list(QUERIES))
def test_tpch_compliant_plans(world, name):
    catalog, compliant, _traditional, sequential, parallel, batch_seq, batch_par = world
    check_equivalence(
        catalog, compliant, sequential, parallel, QUERIES[name],
        batch_engines=(batch_seq, batch_par), streaming="full",
    )


@pytest.mark.parametrize("name", list(QUERIES))
def test_tpch_traditional_plans(world, name):
    catalog, _compliant, traditional, sequential, parallel, batch_seq, batch_par = world
    check_equivalence(
        catalog, traditional, sequential, parallel, QUERIES[name],
        batch_engines=(batch_seq, batch_par), streaming="full",
    )


#: Per-adhoc-query independent-pair counts, recorded as the equivalence
#: tests run (read by the coverage summary test below).
_ADHOC_PAIRS: dict[int, int] = {}


@pytest.mark.parametrize(
    "index", range(len(ADHOC_QUERIES)), ids=lambda i: f"adhoc{i:02d}"
)
def test_randomized_adhoc_queries(world, index):
    catalog, _compliant, traditional, sequential, parallel, batch_seq, batch_par = world
    query = ADHOC_QUERIES[index]
    _run, pairs = check_equivalence(
        catalog, traditional, sequential, parallel, query.sql,
        batch_engines=(batch_seq, batch_par),
    )
    _ADHOC_PAIRS[index] = pairs


def test_adhoc_workload_exercises_parallel_fragments():
    """The randomized workload must actually stress the scheduler: a
    healthy fraction of the optimized plans contain independent
    fragments (otherwise every DAG is a chain and the equivalence suite
    would never cover concurrent execution)."""
    if len(_ADHOC_PAIRS) < len(ADHOC_QUERIES):
        pytest.skip("requires the full adhoc equivalence run in this session")
    assert sum(1 for pairs in _ADHOC_PAIRS.values() if pairs > 0) >= 5


def test_fragmented_union_plans(tpch_network):
    """GAV-fragmented tables: UNION ALL over per-site fragments yields
    wide (highly parallel) DAGs — results must still match everywhere."""
    from repro.bench import fragmented_policies
    from repro.tpch import build_benchmark

    catalog, database = build_benchmark(
        scale=0.002, fragmented=("customer", "orders"), fragment_locations=3
    )
    policies = fragmented_policies(catalog)
    compliant = CompliantOptimizer(catalog, policies, tpch_network)
    sequential = ExecutionEngine(database, tpch_network)
    parallel = ExecutionEngine(database, tpch_network, parallel=True)
    batch_engines = (
        ExecutionEngine(database, tpch_network, executor="batch"),
        ExecutionEngine(database, tpch_network, parallel=True, executor="batch"),
    )
    sql = """
        SELECT c.c_mktsegment, COUNT(*) AS n, SUM(o.o_totalprice) AS total
        FROM customer c, orders o
        WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000
        GROUP BY c.c_mktsegment
    """
    run, _pairs = check_equivalence(
        catalog, compliant, sequential, parallel, sql, batch_engines=batch_engines
    )
    assert len(run.metrics.fragments) >= 3


def test_batch_executor_under_transient_chaos(world):
    """The batch backend rides the fault scheduler's retry paths
    unchanged: under seeded transient fault plans it must stay
    row-identical to the fault-free row executor on every curated
    TPC-H query, with at least one combo actually retrying."""
    from repro.execution import FaultPlan, RetryPolicy

    catalog, compliant, _trad, sequential, _par, _bseq, _bpar = world
    database = sequential.database
    network = sequential.network
    retried = 0
    for name, sql in sorted(QUERIES.items()):
        core, _sort = _strip_sort(Binder(catalog).bind_sql(sql))
        plan = compliant.optimize(core).plan
        baseline = sequential.execute(plan)
        pairs = [
            (s.source, s.target)
            for s in baseline.metrics.ships
            if s.source != s.target
        ]
        for seed in (0, 1, 2):
            faults = FaultPlan.random(seed, catalog.locations, pairs=pairs or None)
            chaotic = ExecutionEngine(
                database,
                network,
                parallel=True,
                executor="batch",
                faults=faults,
                retry_policy=RetryPolicy(max_retries=6),
                policy_guard=compliant.evaluator,
            )
            result = chaotic.execute(plan)
            key = (name, seed, str(faults))
            assert result.partial_failure is None, key
            assert result.columns == baseline.columns, key
            assert rows_as_multiset(result.rows) == rows_as_multiset(
                baseline.rows
            ), key
            retried += result.metrics.transfer_attempts > len(result.metrics.ships)
    assert retried >= 3  # the chaos actually bit somewhere


def test_streaming_executor_under_transient_chaos(world):
    """Chunk-granular retry under seeded transient faults: the
    streaming+compressed scheduler must stay row-identical to the
    fault-free sequential baseline on every curated TPC-H query and
    keep billing logical bytes, with at least one combo retrying."""
    from repro.execution import FaultPlan, RetryPolicy

    catalog, compliant, _trad, sequential, _par, _bseq, _bpar = world
    database = sequential.database
    network = sequential.network
    retried = 0
    for name, sql in sorted(QUERIES.items()):
        core, _sort = _strip_sort(Binder(catalog).bind_sql(sql))
        plan = compliant.optimize(core).plan
        baseline = sequential.execute(plan)
        pairs = [
            (s.source, s.target)
            for s in baseline.metrics.ships
            if s.source != s.target
        ]
        for seed in (0, 1, 2):
            faults = FaultPlan.random(seed, catalog.locations, pairs=pairs or None)
            chaotic = ExecutionEngine(
                database,
                network,
                parallel=True,
                faults=faults,
                retry_policy=RetryPolicy(max_retries=6),
                policy_guard=compliant.evaluator,
                ship=STREAM,
            )
            result = chaotic.execute(plan)
            key = (name, seed, str(faults))
            assert result.partial_failure is None, key
            assert result.columns == baseline.columns, key
            assert rows_as_multiset(result.rows) == rows_as_multiset(
                baseline.rows
            ), key
            retried += result.metrics.transfer_attempts > len(result.metrics.ships)
    assert retried >= 3  # the chaos actually bit somewhere
