"""Chaos equivalence: the fault-injected executor must be row-identical
to the fault-free executor whenever recovery is possible, and degrade to
a *typed* partial failure when it is not.

Three properties, mirroring docs/ROBUSTNESS.md:

* **Transient equivalence** — over ``>= 25`` seeded query/fault combos
  (six curated TPC-H queries x five random fault seeds), flaky windows
  and slow links change *when* rows arrive (makespan), never *what*
  arrives (the rows).
* **Compliance-preserving failover** — a site crash may only re-place a
  fragment inside its execution traits ℰ, and every re-placement is
  re-validated by the compliance checker (Theorem 1 extended to runtime
  re-placements).
* **Typed degradation** — when no legal re-placement exists (pinned
  scan fragments, exhausted retry budgets, fragment timeouts) the run
  ends in ``ExecutionResult.partial_failure``, never in an unhandled
  exception or a wrong answer.
"""

import pytest

from repro.errors import ExecutionError
from repro.execution import (
    ExecutionEngine,
    FaultPlan,
    RetryPolicy,
    SiteCrash,
    failover_candidates,
    fragment_plan,
    parse_fault_spec,
)
from repro.optimizer import CompliantOptimizer
from repro.optimizer.compliant import _strip_sort
from repro.sql import Binder
from repro.tpch import QUERIES, curated_policies

from ..conftest import rows_as_multiset

SEEDS = (0, 1, 2, 3, 4)
RETRIES = RetryPolicy(max_retries=6)


@pytest.fixture(scope="module")
def world(tpch_small, tpch_network):
    catalog, database = tpch_small
    compliant = CompliantOptimizer(
        catalog, curated_policies(catalog, "CR+A"), tpch_network
    )
    baselines = {}
    for name, sql in sorted(QUERIES.items()):
        core, _sort = _strip_sort(Binder(catalog).bind_sql(sql))
        plan = compliant.optimize(core).plan
        result = ExecutionEngine(database, tpch_network, parallel=True).execute(plan)
        baselines[name] = (plan, result)
    return catalog, database, tpch_network, compliant, baselines


def faulted_engine(world, faults, policy=RETRIES):
    _catalog, database, network, compliant, _baselines = world
    return ExecutionEngine(
        database,
        network,
        parallel=True,
        faults=faults,
        retry_policy=policy,
        policy_guard=compliant.evaluator,
    )


def live_pairs(baseline):
    return [
        (s.source, s.target)
        for s in baseline.metrics.ships
        if s.source != s.target
    ]


def test_transient_chaos_equivalence(world):
    """>= 25 seeded combos: row-identical, makespan only ever inflated."""
    catalog, _db, _network, _compliant, baselines = world
    combos = retried = inflated = 0
    for name, (plan, base) in baselines.items():
        for seed in SEEDS:
            faults = FaultPlan.random(
                seed, catalog.locations, pairs=live_pairs(base) or None
            )
            result = faulted_engine(world, faults).execute(plan)
            combos += 1
            key = (name, seed, str(faults))
            assert result.partial_failure is None, key
            assert result.columns == base.columns, key
            assert rows_as_multiset(result.rows) == rows_as_multiset(
                base.rows
            ), key
            # Faults can only delay the critical path, never shorten it.
            assert (
                result.makespan_seconds >= base.makespan_seconds - 1e-9
            ), key
            metrics = result.metrics
            assert metrics.transfer_attempts >= len(metrics.ships), key
            retried += metrics.transfer_attempts > len(metrics.ships)
            inflated += (
                result.makespan_seconds > base.makespan_seconds + 1e-9
            )
    assert combos >= 25
    # The fault plans target links the schedule actually uses, so a
    # healthy share of the combos must really have hit a fault.
    assert retried >= combos // 4
    assert inflated >= combos // 4


def test_critical_path_retry_inflates_makespan_exactly(world):
    """On a chain plan the retried edge *is* the critical path: the
    simulated makespan grows by exactly the backoff the retries waited."""
    catalog, _db, _network, _compliant, baselines = world
    plan, base = baselines["Q3"]  # single WAN edge NorthAmerica -> Europe
    ((src, dst),) = set(live_pairs(base))
    faults = parse_fault_spec(
        f"flaky:{src}->{dst}@0+0.15", locations=catalog.locations
    )
    result = faulted_engine(world, faults, RetryPolicy(max_retries=8)).execute(
        plan
    )
    metrics = result.metrics
    assert rows_as_multiset(result.rows) == rows_as_multiset(base.rows)
    assert metrics.retry_wait_seconds > 0.0
    assert metrics.transfer_attempts > len(metrics.ships)
    assert result.makespan_seconds == pytest.approx(
        base.makespan_seconds + metrics.retry_wait_seconds
    )


def test_permanent_link_down_fails_over_around_the_link(world):
    """A permanent link outage is not retryable: the consumer fragment
    must relocate inside ℰ so its inputs route around the dead link."""
    catalog, _db, _network, _compliant, baselines = world
    plan, base = baselines["Q2"]
    pairs = sorted(set(live_pairs(base)))
    src, dst = pairs[0]
    faults = parse_fault_spec(
        f"drop:{src}->{dst}@0", locations=catalog.locations
    )
    result = faulted_engine(world, faults, RetryPolicy(max_retries=2)).execute(
        plan
    )
    assert result.partial_failure is None
    assert rows_as_multiset(result.rows) == rows_as_multiset(base.rows)
    assert result.metrics.recoveries
    dag = fragment_plan(plan)
    for record in result.metrics.recoveries:
        assert record.validated  # re-checked by the policy guard
        fragment = dag.fragments[record.fragment_index]
        assert record.to_site in failover_candidates(
            fragment, frozenset(), frozenset(catalog.locations)
        )


def test_site_crash_recoveries_stay_inside_execution_traits(world):
    """Property test: crash every site at two onsets for every curated
    query.  Each run either recovers row-identically — with every
    re-placement validated and inside the fragment's ℰ — or degrades to
    a typed partial failure.  No run may raise or return wrong rows."""
    catalog, _db, _network, _compliant, baselines = world
    locations = frozenset(catalog.locations)
    recovered = degraded = 0
    for name, (plan, base) in baselines.items():
        dag = fragment_plan(plan)
        fragment_sites = {f.location for f in dag.fragments}
        for site in sorted(fragment_sites):
            for at in (0.0, 0.02):
                faults = FaultPlan([SiteCrash(site, at=at)])
                result = faulted_engine(world, faults).execute(plan)
                key = (name, site, at)
                if result.partial_failure is not None:
                    degraded += 1
                    assert not result.ok, key
                    assert result.rows == [], key
                    assert "Error" in result.partial_failure.error_type, key
                else:
                    assert result.ok, key
                    assert rows_as_multiset(result.rows) == rows_as_multiset(
                        base.rows
                    ), key
                recovered += bool(result.metrics.recoveries)
                for record in result.metrics.recoveries:
                    assert record.validated, key
                    assert record.to_site != site, key
                    fragment = dag.fragments[record.fragment_index]
                    allowed = failover_candidates(
                        fragment, frozenset({site}), locations
                    )
                    assert record.to_site in allowed, (key, record)
    # The sweep must exercise both outcomes, or it proves nothing.
    assert recovered > 0
    assert degraded > 0


def test_crashed_scan_site_is_typed_partial_failure(world):
    """A scan fragment is pinned to its data: crashing its site can
    never be recovered and must surface as a typed partial failure."""
    catalog, _db, _network, _compliant, baselines = world
    plan, base = baselines["Q3"]
    scan_site = fragment_plan(plan).fragments[0].location
    faults = parse_fault_spec(
        f"crash:{scan_site}@0", locations=catalog.locations
    )
    result = faulted_engine(world, faults).execute(plan)
    failure = result.partial_failure
    assert failure is not None
    assert failure.error_type == "SiteUnavailableError"
    assert failure.location == scan_site
    assert result.rows == []
    assert result.columns == base.columns
    assert result.metrics.partial_failure is failure


def test_fragment_timeout_degrades_typed(world):
    """A slow link that blows the per-fragment deadline ends the run in
    a typed FragmentTimeoutError partial failure, not an exception."""
    catalog, _db, _network, _compliant, baselines = world
    plan, base = baselines["Q3"]
    ((src, dst),) = set(live_pairs(base))
    faults = parse_fault_spec(
        f"slow:{src}->{dst}@0x50", locations=catalog.locations
    )
    policy = RetryPolicy(fragment_timeout=base.makespan_seconds * 2)
    result = faulted_engine(world, faults, policy).execute(plan)
    failure = result.partial_failure
    assert failure is not None
    assert failure.error_type == "FragmentTimeoutError"
    assert "fragment timeout" in failure.message
    assert result.rows == []


def test_faults_require_the_parallel_engine(world):
    """The sequential reference engine has no WAN simulation to inject
    into: configuring faults on it is a loud error, not a silent no-op."""
    _catalog, database, network, _compliant, _baselines = world
    faults = FaultPlan([SiteCrash("Asia", at=0.0)])
    with pytest.raises(ExecutionError, match="parallel"):
        ExecutionEngine(database, network, parallel=False, faults=faults)
