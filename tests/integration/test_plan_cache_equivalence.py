"""Differential cache-soundness: warm (cached) runs must be
indistinguishable from cold (freshly optimized) runs.

Over the 67-query equivalence workload (the six curated TPC-H
evaluation queries plus 55 randomized ad-hoc queries from the §7.1
generator, each submitted twice — prime + warm — plus the cold
reference), we assert:

* the warm plan is *structurally identical* to the plan a cache-less
  optimizer produces for the same SQL (the rebinder reproduced the
  template exactly);
* for the curated queries, warm execution matches cold execution
  row-for-row and byte-for-byte across row/batch × sequential/parallel
  engines, and the warm run's trace passes the independent compliance
  audit clean;
* for the ad-hoc sweep, warm sequential rows and shipped bytes match
  cold.
"""

import pytest

from repro.errors import NonCompliantQueryError
from repro.execution import ExecutionEngine
from repro.optimizer import CompliantOptimizer
from repro.tpch import AdHocQueryGenerator, QUERIES, curated_policies
from repro.trace import ComplianceAuditor, TraceRecorder, tracing

from ..conftest import rows_as_multiset

ADHOC_QUERIES = AdHocQueryGenerator(seed=1234).generate(55)


@pytest.fixture(scope="module")
def world(tpch_small, tpch_network):
    catalog, database = tpch_small
    policies = curated_policies(catalog, "CR+A")
    warm = CompliantOptimizer(catalog, policies, tpch_network, plan_cache=True)
    cold = CompliantOptimizer(catalog, policies, tpch_network)
    engines = {
        "row-seq": ExecutionEngine(database, tpch_network),
        "row-par": ExecutionEngine(database, tpch_network, parallel=True),
        "batch-seq": ExecutionEngine(database, tpch_network, executor="batch"),
        "batch-par": ExecutionEngine(
            database, tpch_network, parallel=True, executor="batch"
        ),
    }
    return catalog, policies, warm, cold, engines


def warm_result(optimizer, sql):
    """Prime the cache, then return the warm (hit) optimization."""
    optimizer.optimize(sql)
    result = optimizer.optimize(sql)
    assert result.cache_hit, "identical resubmission must hit the cache"
    return result


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_curated_warm_equals_cold_everywhere(world, name):
    catalog, policies, warm, cold, engines = world
    sql = QUERIES[name]
    cold_plan = cold.optimize(sql).plan
    warm_run = warm_result(warm, sql)
    # The rebound plan is structurally the cold plan (same operators,
    # locations, expressions) — not merely row-equivalent.
    assert warm_run.plan == cold_plan

    reference = engines["row-seq"].execute(cold_plan)
    expected = rows_as_multiset(reference.rows)
    for label, engine in engines.items():
        recorder = TraceRecorder()
        with tracing(recorder):
            served = engine.execute(warm_run.plan)
        assert rows_as_multiset(served.rows) == expected, label
        assert served.columns == reference.columns, label
        assert (
            served.metrics.total_bytes_shipped
            == reference.metrics.total_bytes_shipped
        ), label
        # The warm run's trace still passes the independent audit.
        report = ComplianceAuditor(policies).audit_events(recorder.events())
        assert report.ok, (label, report.summary())


def test_curated_warm_trace_audits_clean_from_file(world, tmp_path):
    """End-to-end `repro audit` semantics: record a warm optimization +
    execution to JSONL (including the plan_cache_hit field) and audit
    the file."""
    catalog, policies, warm, cold, engines = world
    sql = QUERIES[sorted(QUERIES)[0]]
    recorder = TraceRecorder()
    with tracing(recorder):
        result = warm_result(warm, sql)
        engines["row-seq"].execute(result.plan)
    path = tmp_path / "warm.jsonl"
    recorder.write(str(path))
    report = ComplianceAuditor(policies).audit_file(str(path))
    assert report.ok, report.summary()
    assert report.attempts > 0  # the trace actually contains transfers


@pytest.mark.parametrize("index", range(len(ADHOC_QUERIES)))
def test_adhoc_warm_equals_cold(world, index):
    catalog, policies, warm, cold, engines = world
    sql = ADHOC_QUERIES[index].sql
    try:
        cold_plan = cold.optimize(sql).plan
    except NonCompliantQueryError:
        # Rejection consistency: the cache must not make a rejected
        # query acceptable — on either the priming or the repeat
        # submission (rejections are never cached).
        for _ in range(2):
            with pytest.raises(NonCompliantQueryError):
                warm.optimize(sql)
        return
    warm_run = warm_result(warm, sql)
    assert warm_run.plan == cold_plan

    sequential = engines["row-seq"]
    cold_out = sequential.execute(cold_plan)
    warm_out = sequential.execute(warm_run.plan)
    assert rows_as_multiset(warm_out.rows) == rows_as_multiset(cold_out.rows)
    assert warm_out.columns == cold_out.columns
    assert (
        warm_out.metrics.total_bytes_shipped
        == cold_out.metrics.total_bytes_shipped
    )


def test_workload_is_the_67_query_suite():
    # Mirrors the 67-run equivalence workload of
    # test_parallel_equivalence: the six curated queries compared under
    # two optimizations each (here: cold and warm) plus 55 ad-hoc
    # queries — 6 * 2 + 55 = 67 optimized plans checked differentially.
    assert len(QUERIES) == 6
    assert len(ADHOC_QUERIES) == 55
    assert 2 * len(QUERIES) + len(ADHOC_QUERIES) == 67
