"""Property suite: replica choice is invisible to query answers
(Parallel-Correctness / Transferability, paper §6) and visible to the
auditor the moment it is non-compliant.

* **Transferability** — a scan may be answered by any *compliant*
  replica: for random compliant replica placements the optimizer's
  plans are row-identical to the replica-free reference across the full
  executor matrix (row/batch x sequential/parallel).  This is the
  replicated instance of the paper's transferability property — moving
  a subquery to another site inside its grant never changes the answer.
* **Sensitivity** — a scan answered by a *registered but ungranted*
  replica is always flagged: relocating a shipped scan fragment onto
  such a replica site and auditing the traced run must produce a
  ``non-compliant-replica`` violation.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.execution import (
    ExecutionEngine,
    fragment_plan,
    relocate_fragment,
    scan_sites,
)
from repro.optimizer import CompliantOptimizer
from repro.policy import PolicyEvaluator
from repro.policy.replicas import ReplicaResolver
from repro.tpch import QUERIES, build_benchmark, curated_policies, default_network
from repro.trace import ComplianceAuditor, TraceRecorder, parse_trace, tracing

from ..conftest import rows_as_multiset

QUERY_NAMES = ("Q3", "Q5", "Q10")
EXAMPLES = 25

_STATE: dict = {}


def _world():
    """Module cache: a private benchmark (replica registration mutates
    the catalog, so the session-scoped fixture must stay untouched),
    the compliant/non-compliant replica option pools derived from each
    table's full-scan grant, and replica-free reference rows."""
    if _STATE:
        return _STATE
    catalog, database = build_benchmark(scale=0.002)
    network = default_network()
    policies = curated_policies(catalog, "T")
    resolver = ReplicaResolver(catalog, PolicyEvaluator(policies))
    compliant_options = []
    noncompliant_options = []
    for (db, table), stored in sorted(
        (key, catalog.stored_table(*key))
        for key in {
            (st_.database, st_.name)
            for gt in catalog._tables.values()
            for st_ in gt.fragments
        }
    ):
        grant = resolver.full_scan_grant(db, table)
        for site in sorted(catalog.locations):
            if site == stored.location:
                continue
            option = (db, table, site)
            if site in grant:
                compliant_options.append(option)
            else:
                noncompliant_options.append(option)
    assert compliant_options and noncompliant_options
    optimizer = CompliantOptimizer(catalog, policies, network)
    references = {}
    for name in QUERY_NAMES:
        plan = optimizer.optimize(QUERIES[name]).plan
        result = ExecutionEngine(database, network, parallel=True).execute(plan)
        references[name] = rows_as_multiset(result.rows)
    _STATE.update(
        catalog=catalog,
        database=database,
        network=network,
        policies=policies,
        compliant_options=compliant_options,
        noncompliant_options=noncompliant_options,
        references=references,
    )
    return _STATE


@settings(
    max_examples=EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_compliant_replica_choice_never_changes_answers(data):
    """Transferability: any subset of compliant replicas, any query —
    the replicated plan is row-identical to the replica-free reference
    on every executor/mode combination."""
    world = _world()
    catalog = world["catalog"]
    name = data.draw(st.sampled_from(QUERY_NAMES), label="query")
    chosen = data.draw(
        st.lists(
            st.sampled_from(world["compliant_options"]),
            min_size=1,
            max_size=6,
            unique=True,
        ),
        label="replicas",
    )
    added = []
    try:
        for db, table, site in chosen:
            catalog.add_replica(db, table, site)
            added.append((db, table, site))
        optimizer = CompliantOptimizer(
            catalog, world["policies"], world["network"]
        )
        plan = optimizer.optimize(QUERIES[name]).plan
        for executor in ("row", "batch"):
            for parallel in (False, True):
                engine = ExecutionEngine(
                    world["database"],
                    world["network"],
                    parallel=parallel,
                    executor=executor,
                    policy_guard=optimizer.evaluator,
                )
                result = engine.execute(plan)
                key = (name, executor, parallel, tuple(chosen))
                assert result.partial_failure is None, key
                assert (
                    rows_as_multiset(result.rows) == world["references"][name]
                ), key
    finally:
        for db, table, site in added:
            catalog.drop_replica(db, table, site)


def _relocation_cases(world):
    """(query, fragment index, bad site, tables) combos where moving a
    *shipped* scan fragment to ``bad site`` — after registering every
    table it scans as a replica there — must audit as
    ``non-compliant-replica``.  Root fragments are excluded: their
    scans enter no shipped payload, so the trace cannot see them."""
    if "relocations" in _STATE:
        return _STATE["relocations"]
    catalog = world["catalog"]
    optimizer = CompliantOptimizer(
        catalog, world["policies"], world["network"]
    )
    resolver = ReplicaResolver(catalog, PolicyEvaluator(world["policies"]))
    cases = []
    for name in QUERY_NAMES:
        plan = optimizer.optimize(QUERIES[name]).plan
        dag = fragment_plan(plan)
        for index, fragment in enumerate(dag.fragments):
            scans = scan_sites(fragment)
            if not scans or fragment is dag.root:
                continue
            for site in sorted(catalog.locations):
                if site == fragment.location:
                    continue
                # Every scanned table must find the site *ungranted*
                # (and non-primary) for the verdict to be unambiguous.
                if all(
                    site not in resolver.full_scan_grant(db, table)
                    and catalog.stored_table(db, table).location != site
                    for db, table, _ in scans
                ):
                    tables = tuple(sorted({(db, t) for db, t, _ in scans}))
                    cases.append((name, plan, index, site, tables))
    assert cases, "no shipped scan fragments to corrupt"
    _STATE["relocations"] = cases
    return cases


@settings(
    max_examples=EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_non_compliant_replica_reads_always_flagged(data):
    """Sensitivity: a runtime that reads a registered-but-ungranted
    replica produces a trace the auditor rejects with the dedicated
    ``non-compliant-replica`` category (not merely displaced-scan),
    through a JSONL round-trip."""
    world = _world()
    catalog = world["catalog"]
    name, plan, index, site, tables = data.draw(
        st.sampled_from(_relocation_cases(world)), label="case"
    )
    added = []
    try:
        for db, table in tables:
            catalog.add_replica(db, table, site)
            added.append((db, table))
        corrupted = relocate_fragment(
            plan, fragment_plan(plan).fragments[index], site
        )
        engine = ExecutionEngine(
            world["database"], world["network"], parallel=True
        )
        recorder = TraceRecorder()
        with tracing(recorder):
            engine.execute(corrupted)
        report = ComplianceAuditor(world["policies"]).audit_events(
            parse_trace(recorder.to_jsonl())
        )
        key = (name, index, site)
        assert not report.ok, key
        assert any(
            v.category == "non-compliant-replica" for v in report.violations
        ), (key, [str(v) for v in report.violations])
    finally:
        for db, table in added:
            catalog.drop_replica(db, table, site)
