"""Serving-layer equivalence: every query the concurrent server
*serves* must return rows identical — ordered identity, not just
multiset equality — to a sequential single-query execution of the same
plan, for both the row and batch executors.  Concurrency, admission
control, shared breaker state, and clock offsets must be invisible in
results; they may only change *when* things happen.

Also locks down the degradation contract under sustained faults: every
non-served request carries a typed error (no hangs, no silent drops)
and the outcome buckets reconcile to the workload size.
"""

import pytest

from repro.errors import ReproError
from repro.execution import ExecutionEngine, parse_fault_spec
from repro.optimizer import CompliantOptimizer
from repro.server import (
    BreakerRegistry,
    QueryServer,
    workload_from_queries,
)
from repro.tpch import QUERIES, curated_policies

SERVED_QUERIES = [(name, QUERIES[name]) for name in sorted(QUERIES)]


@pytest.fixture(scope="module")
def world(tpch_small, tpch_network):
    catalog, database = tpch_small
    optimizer = CompliantOptimizer(
        catalog, curated_policies(catalog, "CR"), tpch_network
    )
    return catalog, database, tpch_network, optimizer


@pytest.fixture(scope="module")
def references(world):
    """Sequential single-query executions, per executor."""
    catalog, database, network, optimizer = world
    out = {}
    for executor in ("row", "batch"):
        engine = ExecutionEngine(
            database,
            network,
            policy_guard=optimizer.evaluator,
            parallel=True,
            executor=executor,
        )
        out[executor] = {
            name: engine.execute(optimizer.optimize(sql).plan)
            for name, sql in SERVED_QUERIES
        }
    return out


@pytest.mark.parametrize("executor", ["row", "batch"])
def test_served_rows_are_ordered_identical_to_sequential(
    world, references, executor
):
    catalog, database, network, optimizer = world
    server = QueryServer(
        database,
        network,
        optimizer=optimizer,
        evaluator=optimizer.evaluator,
        concurrency=3,
        executor=executor,
        breakers=BreakerRegistry(),
    )
    workload = workload_from_queries(SERVED_QUERIES, interarrival=0.02, repeat=2)
    result = server.serve(workload)
    assert result.metrics.served == len(workload)
    assert result.metrics.reconciles()
    for outcome in result.outcomes:
        name = outcome.request.name.split("#")[0]
        reference = references[executor][name]
        assert outcome.columns == reference.columns
        assert outcome.rows == reference.rows


def test_row_and_batch_serving_agree(world, references):
    for name, _ in SERVED_QUERIES:
        assert references["row"][name].rows == references["batch"][name].rows


def test_degradation_is_typed_and_reconciles_under_faults(world):
    catalog, database, network, optimizer = world
    server = QueryServer(
        database,
        network,
        optimizer=optimizer,
        evaluator=optimizer.evaluator,
        concurrency=2,
        queue_depth=2,
        default_deadline=0.5,
        breakers=BreakerRegistry(),
        faults=parse_fault_spec(
            "flaky:Europe->NorthAmerica@0+1000", locations=catalog.locations
        ),
    )
    workload = workload_from_queries(SERVED_QUERIES, interarrival=0.01, repeat=2)
    result = server.serve(workload)
    metrics = result.metrics
    assert metrics.total == len(workload)
    assert metrics.reconciles()
    assert len(result.outcomes) == len(workload)
    for outcome in result.outcomes:
        if outcome.status == "served":
            assert outcome.error is None
            assert outcome.rows is not None
        else:
            assert isinstance(outcome.error, ReproError)
            assert str(outcome.error)  # a real message, not a bare type
