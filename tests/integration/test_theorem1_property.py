"""Property-based test of Theorem 1 (soundness).

Random policy catalogs (drawn from the TPC-H template generator) and
random ad-hoc queries: whenever the compliance-based optimizer produces a
plan, that plan must pass the independent Definition-1 validator, and its
execution traits must never be empty.  Rejections are allowed (the
optimizer is incomplete) — silent non-compliance is not.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import NonCompliantQueryError
from repro.optimizer import CompliantOptimizer, check_compliance
from repro.policy import PolicyEvaluator
from repro.tpch import (
    AdHocQueryGenerator,
    PolicyGenerator,
    build_catalog,
    default_network,
)

_CATALOG = build_catalog(scale=0.1)
_NETWORK = default_network()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    policy_seed=st.integers(0, 10_000),
    query_seed=st.integers(0, 10_000),
    template=st.sampled_from(["T", "C", "CR", "CR+A"]),
    expression_count=st.integers(8, 40),
    with_hub=st.booleans(),
)
def test_optimizer_never_emits_noncompliant_plan(
    policy_seed, query_seed, template, expression_count, with_hub
):
    generator = PolicyGenerator(
        _CATALOG,
        seed=policy_seed,
        hub="NorthAmerica" if with_hub else None,
    )
    policies = generator.generate(template, expression_count)
    optimizer = CompliantOptimizer(
        _CATALOG, policies, _NETWORK, max_expressions=2000
    )
    evaluator = PolicyEvaluator(policies)
    queries = AdHocQueryGenerator(seed=query_seed).generate(3)
    for query in queries:
        try:
            result = optimizer.optimize(query.sql)
        except NonCompliantQueryError:
            if with_hub:
                pytest.fail(
                    "hub coverage guarantees a compliant plan exists; "
                    f"rejected: {query.sql}"
                )
            continue
        violations = check_compliance(result.plan, evaluator)
        assert not violations, (
            f"Theorem 1 violated for {query.sql}: "
            + "; ".join(str(v) for v in violations)
        )
        for node in result.annotate.root.walk():
            assert node.execution_trait
            assert node.execution_trait <= node.shipping_trait
