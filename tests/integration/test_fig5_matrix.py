"""Integration reproduction of Fig. 5(a): the traditional optimizer's
compliance matrix over the six TPC-H queries and the four curated
expression sets, plus the compliant optimizer's 100% success."""

import pytest

from repro.errors import NonCompliantQueryError
from repro.optimizer import CompliantOptimizer, TraditionalOptimizer, check_compliance
from repro.policy import PolicyEvaluator
from repro.tpch import QUERIES, build_catalog, curated_policies, default_network

#: The paper's Fig. 5(a): which queries the *traditional* optimizer gets
#: wrong under each expression set.
PAPER_NC = {
    "T": {"Q2"},
    "C": {"Q2"},
    "CR": {"Q2", "Q3", "Q10"},
    "CR+A": {"Q2", "Q3", "Q10"},
}


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(scale=1.0)


@pytest.fixture(scope="module")
def network():
    return default_network()


@pytest.mark.parametrize("set_name", list(PAPER_NC))
def test_fig5a_matrix(catalog, network, set_name):
    policies = curated_policies(catalog, set_name)
    evaluator = PolicyEvaluator(policies)
    compliant = CompliantOptimizer(catalog, policies, network)
    traditional = TraditionalOptimizer(catalog, network)

    traditional_nc = set()
    for name, sql in QUERIES.items():
        result = compliant.optimize(sql)  # must never raise (effectiveness)
        assert not check_compliance(result.plan, evaluator), (set_name, name)
        t_result = traditional.optimize(sql)
        if check_compliance(t_result.plan, evaluator):
            traditional_nc.add(name)
    assert traditional_nc == PAPER_NC[set_name]


def test_q2_compliant_plan_ships_supplier_side_not_part(catalog, network):
    """Fig. 5(b)/(c): the traditional plan ships Part into Africa; the
    compliant plan assembles on the Asia side instead."""
    from repro.plan import ship_operators

    policies = curated_policies(catalog, "CR")
    compliant = CompliantOptimizer(catalog, policies, network)
    result = compliant.optimize(QUERIES["Q2"])
    for ship in ship_operators(result.plan):
        if ship.target == "Africa":
            names = {f.name for f in ship.fields}
            assert not any(n.startswith("p.") for n in names)


def test_cra_pushes_lineitem_aggregation_below_ship(catalog, network):
    """Fig. 5(e): under CR+A the compliant Q3 plan pre-aggregates lineitem
    revenue before shipping it to Europe."""
    from repro.plan import HashAggregate, ship_operators

    policies = curated_policies(catalog, "CR+A")
    compliant = CompliantOptimizer(catalog, policies, network)
    result = compliant.optimize(QUERIES["Q3"])
    lineitem_ships = [
        s
        for s in ship_operators(result.plan)
        if s.source == "NorthAmerica"  # lineitem's home
    ]
    assert lineitem_ships
    for ship in lineitem_ships:
        assert isinstance(ship.child, HashAggregate)
