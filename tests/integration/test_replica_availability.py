"""Replica availability: seeded site crashes and link loss against a
fully replicated TPC-H catalog.

The tentpole's acceptance property: under policy set T every base table
has at least one *compliant* replica at another site, so any
single-site crash leaves a legal copy of everything — the failover
planner's replica-first resort must then serve **100%** of the sweep
with zero row divergence, where the identical sweep against the
replica-free catalog degrades at least some runs to typed
``PartialFailure``s (never wrong rows).  Traced faulted runs must audit
clean against the replicated catalog.
"""

import pytest

from repro.execution import (
    ExecutionEngine,
    RetryPolicy,
    fragment_plan,
    parse_fault_spec,
)
from repro.optimizer import CompliantOptimizer
from repro.tpch import QUERIES, build_benchmark, curated_policies, default_network
from repro.trace import ComplianceAuditor, TraceRecorder, tracing

from ..conftest import rows_as_multiset

#: Compliant replicas giving every TPC-H table a copy at *both* Europe
#: and NorthAmerica — the two sites inside every table's full-scan grant
#: 𝒜 under set T.  Dual-site coverage matters: replica-aware placement
#: collapses whole plans into one fragment, and a collapsed fragment can
#: only fail over if all its scans share a common alternate site.
REPLICAS = (
    ("db1", "customer", "NorthAmerica"),
    ("db1", "orders", "NorthAmerica"),
    ("db2", "supplier", "Europe"),
    ("db2", "supplier", "NorthAmerica"),
    ("db2", "partsupp", "Europe"),
    ("db2", "partsupp", "NorthAmerica"),
    ("db3", "part", "Europe"),
    ("db3", "part", "NorthAmerica"),
    ("db4", "lineitem", "Europe"),
    ("db5", "nation", "Europe"),
    ("db5", "nation", "NorthAmerica"),
    ("db5", "region", "Europe"),
    ("db5", "region", "NorthAmerica"),
)

QUERY_NAMES = ("Q3", "Q5", "Q10")
RETRIES = RetryPolicy(max_retries=3)


def build_world(replicated: bool):
    catalog, database = build_benchmark(scale=0.002)
    if replicated:
        for db, table, site in REPLICAS:
            catalog.add_replica(db, table, site)
    network = default_network()
    policies = curated_policies(catalog, "T")
    optimizer = CompliantOptimizer(catalog, policies, network)
    plans = {name: optimizer.optimize(QUERIES[name]).plan for name in QUERY_NAMES}
    baselines = {
        name: ExecutionEngine(database, network, parallel=True).execute(plan)
        for name, plan in plans.items()
    }
    return catalog, database, network, optimizer, plans, baselines


@pytest.fixture(scope="module")
def replicated():
    return build_world(replicated=True)


@pytest.fixture(scope="module")
def replica_free():
    return build_world(replicated=False)


def crash_sweep(world):
    """Run every query under a crash of every location; yields
    (key, baseline, result)."""
    catalog, database, network, optimizer, plans, baselines = world
    for name, plan in plans.items():
        for site in sorted(catalog.locations):
            faults = parse_fault_spec(
                f"crash:{site}@0", locations=catalog.locations
            )
            engine = ExecutionEngine(
                database,
                network,
                parallel=True,
                faults=faults,
                retry_policy=RETRIES,
                policy_guard=optimizer.evaluator,
            )
            yield (name, site), baselines[name], engine.execute(plan)


def test_replicated_catalog_survives_every_single_site_crash(replicated):
    """100% availability: every (query, crashed site) combo serves
    row-identical results — no partial failures anywhere."""
    served = 0
    failovers = 0
    avoided = 0
    for key, baseline, result in crash_sweep(replicated):
        assert result.partial_failure is None, key
        assert rows_as_multiset(result.rows) == rows_as_multiset(
            baseline.rows
        ), key
        served += 1
        failovers += result.metrics.replica_failovers
        avoided += result.metrics.partial_failures_avoided
        for record in result.metrics.recoveries:
            assert record.validated, key
    assert served == len(QUERY_NAMES) * 5
    # The sweep must actually exercise the replica path, including
    # saves of fragments whose own scan site died.
    assert failovers > 0
    assert avoided > 0


def test_replica_free_catalog_degrades_on_the_same_sweep(replica_free):
    """Control: the identical sweep without replicas yields at least one
    typed PartialFailure (pinned scan sites) and zero wrong answers."""
    degraded = 0
    for key, baseline, result in crash_sweep(replica_free):
        if result.partial_failure is not None:
            degraded += 1
            assert result.rows == [], key
            assert result.metrics.replica_failovers == 0, key
        else:
            assert rows_as_multiset(result.rows) == rows_as_multiset(
                baseline.rows
            ), key
    assert degraded > 0


def test_replicated_plans_collapse_away_cross_border_ships(replicated):
    """With every table legally copied to a common site, placement
    collapses each plan into a single local fragment: the baseline
    schedules use **zero** cross-site links."""
    _, _, _, _, _, baselines = replicated
    for name, base in baselines.items():
        links = {
            (s.source, s.target)
            for s in base.metrics.ships
            if s.source != s.target
        }
        assert links == set(), name


def test_sustained_link_loss_spares_the_replicated_catalog(
    replicated, replica_free
):
    """Permanently drop every link the *replica-free* schedules depend
    on.  Replicated plans never touch those links, so every run serves
    row-identically; replica-free runs may degrade (typed partial
    failure) but must never return wrong rows."""
    catalog, database, network, optimizer, plans, baselines = replicated
    _, free_db, _, free_opt, free_plans, free_base = replica_free
    links = sorted(
        {
            (s.source, s.target)
            for base in free_base.values()
            for s in base.metrics.ships
            if s.source != s.target
        }
    )
    assert links  # replica-free schedules do ship cross-site
    for src, dst in links:
        faults = parse_fault_spec(
            f"drop:{src}->{dst}@0", locations=catalog.locations
        )
        for name, plan in plans.items():
            engine = ExecutionEngine(
                database,
                network,
                parallel=True,
                faults=faults,
                retry_policy=RETRIES,
                policy_guard=optimizer.evaluator,
            )
            result = engine.execute(plan)
            key = (name, src, dst)
            assert result.partial_failure is None, key
            assert rows_as_multiset(result.rows) == rows_as_multiset(
                baselines[name].rows
            ), key
        for name, plan in free_plans.items():
            engine = ExecutionEngine(
                free_db,
                network,
                parallel=True,
                faults=faults,
                retry_policy=RETRIES,
                policy_guard=free_opt.evaluator,
            )
            result = engine.execute(plan)
            if result.partial_failure is None:
                assert rows_as_multiset(result.rows) == rows_as_multiset(
                    free_base[name].rows
                ), (name, src, dst)
            else:
                assert result.rows == [], (name, src, dst)


def test_faulted_replica_runs_audit_clean(replicated):
    """Satellite contract: a traced run that failed over to replicas
    audits clean — the auditor independently re-confirms each replica
    read against the replicated catalog."""
    catalog, database, network, optimizer, plans, baselines = replicated
    audited = 0
    policies = optimizer.policies
    for name, plan in plans.items():
        for site in sorted({f.location for f in fragment_plan(plan).fragments}):
            faults = parse_fault_spec(
                f"crash:{site}@0", locations=catalog.locations
            )
            engine = ExecutionEngine(
                database,
                network,
                parallel=True,
                faults=faults,
                retry_policy=RETRIES,
                policy_guard=optimizer.evaluator,
            )
            recorder = TraceRecorder()
            with tracing(recorder):
                result = engine.execute(plan)
            assert result.partial_failure is None, (name, site)
            report = ComplianceAuditor(policies).audit_events(recorder.events())
            assert report.ok, (
                (name, site),
                [str(v) for v in report.violations],
            )
            audited += 1
    assert audited >= 1
