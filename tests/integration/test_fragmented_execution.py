"""End-to-end over GAV-fragmented tables (paper §7.5 setup): binding
produces UNION ALL of fragment scans, the optimizer places them, and the
executor must still produce exactly the centralized answer."""

import pytest

from repro.execution import ExecutionEngine, reference_plan
from repro.optimizer import (
    CompliantOptimizer,
    TraditionalOptimizer,
    check_compliance,
    normalize,
)
from repro.optimizer.compliant import _strip_sort
from repro.plan import UnionAll
from repro.policy import PolicyEvaluator
from repro.sql import Binder
from repro.tpch import build_benchmark, default_network
from repro.bench import fragmented_policies

from ..conftest import rows_as_multiset


@pytest.fixture(scope="module")
def world():
    catalog, database = build_benchmark(
        scale=0.002, fragmented=("customer", "orders"), fragment_locations=3
    )
    network = default_network()
    policies = fragmented_policies(catalog)
    compliant = CompliantOptimizer(catalog, policies, network)
    engine = ExecutionEngine(database, network)
    return catalog, policies, compliant, engine


QUERY = """
SELECT c.c_mktsegment, COUNT(*) AS n, SUM(o.o_totalprice) AS total
FROM customer c, orders o
WHERE c.c_custkey = o.o_custkey AND o.o_totalprice > 1000
GROUP BY c.c_mktsegment
"""


def test_fragmented_scan_becomes_union(world):
    catalog, _policies, compliant, _engine = world
    result = compliant.optimize(QUERY)
    unions = [n for n in result.plan.walk() if isinstance(n, UnionAll)]
    assert len(unions) == 2  # customer and orders


def test_fragmented_results_match_reference(world):
    catalog, _policies, compliant, engine = world
    logical = Binder(catalog).bind_sql(QUERY)
    core, _sort = _strip_sort(logical)
    expected = engine.execute(reference_plan(normalize(core))).rows
    actual = engine.execute(compliant.optimize(core).plan).rows
    assert rows_as_multiset(actual) == rows_as_multiset(expected)
    assert len(actual) == 5  # the five market segments


def test_fragmented_plan_is_compliant(world):
    catalog, policies, compliant, _engine = world
    result = compliant.optimize(QUERY)
    assert not check_compliance(result.plan, PolicyEvaluator(policies))


def test_fragment_scans_placed_at_their_homes(world):
    from repro.plan import TableScan

    catalog, _policies, compliant, _engine = world
    result = compliant.optimize(QUERY)
    for node in result.plan.walk():
        if isinstance(node, TableScan) and node.table == "customer":
            stored = catalog.stored_table(node.database, "customer")
            assert node.location == stored.location


def test_cross_fragment_join_with_lineitem(world):
    catalog, _policies, compliant, engine = world
    sql = """
        SELECT o.o_orderkey, SUM(l.l_quantity) AS q
        FROM orders o, lineitem l
        WHERE o.o_orderkey = l.l_orderkey AND l.l_quantity > 25
        GROUP BY o.o_orderkey
    """
    logical = Binder(catalog).bind_sql(sql)
    core, _sort = _strip_sort(logical)
    expected = engine.execute(reference_plan(normalize(core))).rows
    actual = engine.execute(compliant.optimize(core).plan).rows
    assert rows_as_multiset(actual) == rows_as_multiset(expected)
