"""Trace determinism: the recorder's JSONL serialization is a pure
function of (query, policies, seed, executor) — byte-identical across
runs, even though the fragment scheduler completes transfers in
nondeterministic ``FIRST_COMPLETED`` order and the server runs queries
on a thread pool.

Determinism is what makes traces diffable (CI can compare a trace
against a golden file) and what lets the auditor's verdict be
reproduced exactly from a stored artifact.  It holds because events
carry only simulated-clock timestamps (never wall-clock), serialization
sorts canonically, and scheduler-emitted events are explicitly marked
order-unstable so their tie-break is content-based.
"""

from __future__ import annotations

import pytest

from repro.execution import ExecutionEngine, FaultPlan, RetryPolicy
from repro.optimizer import CompliantOptimizer
from repro.server import QueryRequest, QueryServer
from repro.tpch import QUERIES, curated_policies
from repro.trace import TraceRecorder, parse_trace, tracing


def _traced_engine_run(tpch_small, tpch_network, executor, parallel, fault_seed):
    """One full optimize + execute pass under a fresh recorder."""
    catalog, database = tpch_small
    optimizer = CompliantOptimizer(
        catalog, curated_policies(catalog, "CR"), tpch_network
    )
    faults = (
        FaultPlan.random(fault_seed, catalog.locations)
        if parallel and fault_seed is not None
        else None
    )
    engine = ExecutionEngine(
        database,
        tpch_network,
        policy_guard=optimizer.evaluator,
        parallel=parallel,
        executor=executor,
        faults=faults,
        retry_policy=RetryPolicy(max_retries=6) if faults else None,
    )
    recorder = TraceRecorder()
    with tracing(recorder):
        plan = optimizer.optimize(QUERIES["Q5"]).plan
        engine.execute(plan)
    return recorder.to_jsonl()


@pytest.mark.parametrize("executor", ["row", "batch"])
@pytest.mark.parametrize(
    "parallel,fault_seed",
    [(False, None), (True, None), (True, 11)],
    ids=["sequential", "parallel", "parallel-faults"],
)
def test_engine_trace_is_byte_identical(
    tpch_small, tpch_network, executor, parallel, fault_seed
):
    first = _traced_engine_run(
        tpch_small, tpch_network, executor, parallel, fault_seed
    )
    second = _traced_engine_run(
        tpch_small, tpch_network, executor, parallel, fault_seed
    )
    assert first == second
    assert first.endswith("\n")
    events = parse_trace(first)
    assert events, "trace must not be empty"
    kinds = {event.kind for event in events}
    assert {"query_start", "optimized", "ship", "query_end"} <= kinds


def _traced_server_run(tpch_small, tpch_network):
    catalog, database = tpch_small
    optimizer = CompliantOptimizer(
        catalog, curated_policies(catalog, "CR"), tpch_network
    )
    server = QueryServer(
        database,
        tpch_network,
        optimizer=optimizer,
        evaluator=optimizer.evaluator,
        concurrency=2,
        queue_depth=4,
        faults=FaultPlan.random(3, catalog.locations),
        retry_policy=RetryPolicy(max_retries=6),
    )
    requests = [
        QueryRequest(sql=QUERIES["Q3"], arrival=0.0, name="Q3"),
        QueryRequest(sql=QUERIES["Q5"], arrival=0.01, name="Q5"),
        QueryRequest(sql=QUERIES["Q10"], arrival=0.02, name="Q10"),
    ]
    recorder = TraceRecorder()
    with tracing(recorder):
        server.serve(requests)
    return recorder.to_jsonl()


def test_server_workload_trace_is_byte_identical(tpch_small, tpch_network):
    first = _traced_server_run(tpch_small, tpch_network)
    second = _traced_server_run(tpch_small, tpch_network)
    assert first == second
    kinds = {event.kind for event in parse_trace(first)}
    assert "request" in kinds, "admission events must be traced"


def test_trace_round_trips_through_jsonl(tpch_small, tpch_network):
    """parse(serialize(events)) reproduces the events exactly: the
    auditor sees the same data whether fed live events or a file."""
    text = _traced_engine_run(tpch_small, tpch_network, "row", True, 11)
    events = parse_trace(text)
    recorder = TraceRecorder()
    for event in events:
        recorder.emit(event)
    assert recorder.to_jsonl() == text
