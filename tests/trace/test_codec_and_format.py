"""Unit tests for the trace wire format: payload codec round-trips,
typed-event validation, recorder bracketing, and the
:class:`~repro.errors.TraceFormatError` paths that protect the auditor
from malformed input."""

from __future__ import annotations

import json

import pytest

from repro.errors import TraceFormatError
from repro.optimizer import CompliantOptimizer
from repro.optimizer.validator import to_logical
from repro.sql import Binder
from repro.tpch import QUERIES, build_catalog, curated_policies, default_network
from repro.trace import (
    QueryStart,
    ShipEvent,
    TraceRecorder,
    current_recorder,
    decode_expression,
    decode_logical,
    encode_expression,
    encode_logical,
    event_from_dict,
    parse_trace,
    read_trace,
    tracing,
)


@pytest.fixture(scope="module")
def optimizer(tpch_stats_catalog, tpch_network):
    return CompliantOptimizer(
        tpch_stats_catalog,
        curated_policies(tpch_stats_catalog, "CR+A"),
        tpch_network,
    )


# -- codec round-trips ---------------------------------------------------------


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_logical_payloads_round_trip(optimizer, name):
    """encode/decode is the identity on every subquery payload of every
    curated TPC-H plan — including dates, LIKE patterns, IN lists, and
    aggregate calls — and the encoding itself is JSON-serializable."""
    plan = optimizer.optimize(QUERIES[name]).plan
    logical = to_logical(plan)
    encoded = encode_logical(logical)
    json.dumps(encoded)  # must be pure JSON
    assert decode_logical(encoded) == logical


def test_expression_round_trip(tpch_stats_catalog):
    plan = Binder(tpch_stats_catalog).bind_sql(
        "SELECT o_orderkey FROM orders WHERE o_orderdate >= DATE '1995-01-01'"
        " AND o_orderpriority LIKE '1-URG%' AND o_orderstatus IN ('O', 'F')"
    )
    predicates = [
        node.predicate
        for node in plan.walk()
        if getattr(node, "predicate", None) is not None
    ]
    assert predicates
    for predicate in predicates:
        encoded = encode_expression(predicate)
        json.dumps(encoded)
        assert decode_expression(encoded) == predicate


@pytest.mark.parametrize(
    "payload",
    [
        "not-a-dict",
        {"op": "teleport"},
        {"op": "scan"},  # missing required keys
        {"op": "filter", "child": {"op": "scan"}, "predicate": {"e": "warp"}},
    ],
)
def test_malformed_payloads_raise_typed_errors(payload):
    with pytest.raises(TraceFormatError):
        decode_logical(payload)


def test_malformed_expressions_raise_typed_errors():
    for bad in (42, {"e": "nope"}, {"e": "cmp", "op": "=="}):
        with pytest.raises(TraceFormatError):
            decode_expression(bad)


# -- typed event validation ----------------------------------------------------


def test_event_dict_round_trip():
    event = ShipEvent(
        query=3,
        at=0.25,
        source="Europe",
        target="Asia",
        rows=10,
        bytes=420,
        attempt=2,
        outcome="transient",
        columns=["a", "b"],
    )
    assert event_from_dict(event.to_dict()) == event


@pytest.mark.parametrize(
    "data,match",
    [
        ([], "must be an object"),
        ({"kind": "teleport"}, "unknown trace event kind"),
        ({"kind": "ship"}, "missing required"),
        ({"kind": "query_start", "query": 1, "at": 0.0, "label": "q",
          "executor": "row", "parallel": False, "warp": 9}, "unknown field"),
        ({"kind": "query_start", "query": "one", "at": 0.0, "label": "q",
          "executor": "row", "parallel": False}, "mistyped query/at"),
        ({"kind": "ship", "query": 1, "at": 0.0, "source": "A", "target": "B",
          "rows": 1, "bytes": 1, "attempt": 1, "outcome": "beamed"},
         "unknown ship outcome"),
    ],
)
def test_invalid_events_raise_typed_errors(data, match):
    with pytest.raises(TraceFormatError, match=match):
        event_from_dict(data)


# -- recorder ------------------------------------------------------------------


def test_recorder_is_inert_when_not_installed():
    assert current_recorder() is None
    recorder = TraceRecorder()
    with tracing(recorder):
        assert current_recorder() is recorder
        with tracing(TraceRecorder()) as inner:
            assert current_recorder() is inner
        assert current_recorder() is recorder
    assert current_recorder() is None


def test_query_brackets_assign_scoped_ids():
    recorder = TraceRecorder()
    first = recorder.begin_query(label="a", executor="row", parallel=False)
    recorder.end_query(first, at=1.0, status="ok", rows=1)
    second = recorder.begin_query(label="b", executor="row", parallel=False)
    recorder.end_query(second, at=1.0, status="ok", rows=1)
    assert (first, second) == (1, 2)
    starts = [e for e in recorder.events() if isinstance(e, QueryStart)]
    assert [e.query for e in starts] == [1, 2]


def test_parse_trace_reports_line_numbers():
    good = QueryStart(query=1, label="q", executor="row", parallel=False)
    line = json.dumps(good.to_dict())
    with pytest.raises(TraceFormatError, match="line 2"):
        parse_trace(line + "\n{broken\n")
    with pytest.raises(TraceFormatError, match="line 3"):
        parse_trace(line + "\n" + line + '\n{"kind": "warp"}\n')
    assert parse_trace(line + "\n\n" + line) == [good, good]  # blanks skipped


def test_read_trace_wraps_io_errors(tmp_path):
    with pytest.raises(TraceFormatError, match="cannot read trace file"):
        read_trace(str(tmp_path / "missing.jsonl"))
    path = tmp_path / "trace.jsonl"
    recorder = TraceRecorder()
    query = recorder.begin_query(label="q", executor="row", parallel=True)
    recorder.end_query(query, at=0.5, status="ok", rows=3)
    assert recorder.write(str(path)) == 2
    assert read_trace(str(path)) == recorder.events()
