"""Audit invariance under chunked streaming SHIP.

Chunking is a transport detail: the auditor must reach the same verdict
whatever the chunk size.  Every fault-free streamed run audits clean at
any granularity, each logical transfer contributes exactly one
payload-carrying SHIP descriptor (chunk events are payload-less and
join to it), and a chunk event whose recorded destination is rewritten
to a non-permitted site flips the verdict — the chunk stream is
audited evidence, not decoration.
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

from repro.execution import ExecutionEngine, ShipConfig
from repro.optimizer import CompliantOptimizer
from repro.tpch import QUERIES, curated_policies
from repro.trace import ComplianceAuditor, TraceRecorder, parse_trace, tracing


@pytest.fixture(scope="module")
def world(tpch_small, tpch_network):
    catalog, database = tpch_small
    policies = curated_policies(catalog, "CR")
    optimizer = CompliantOptimizer(catalog, policies, tpch_network)
    auditor = ComplianceAuditor(policies)
    return catalog, database, tpch_network, optimizer, auditor


def traced_stream_run(world, name, chunk_rows, compression="auto"):
    _catalog, database, network, optimizer, _auditor = world
    plan = optimizer.optimize(QUERIES[name]).plan
    engine = ExecutionEngine(
        database,
        network,
        parallel=True,
        ship=ShipConfig(chunk_rows=chunk_rows, compression=compression),
    )
    recorder = TraceRecorder()
    with tracing(recorder):
        result = engine.execute(plan)
    assert result.partial_failure is None
    return recorder


@pytest.mark.parametrize("chunk_rows", [None, 1, 7, 64, 4096])
@pytest.mark.parametrize("name", ["Q3", "Q5"])
def test_audit_verdict_invariant_under_chunk_size(world, name, chunk_rows):
    auditor = world[4]
    recorder = traced_stream_run(world, name, chunk_rows)
    report = auditor.audit_events(recorder.events())
    assert report.ok, (name, chunk_rows, report.violations)
    if chunk_rows is not None:
        assert report.chunk_attempts > 0, (name, chunk_rows)


@pytest.mark.parametrize("name", ["Q3", "Q5", "Q10"])
def test_one_payload_descriptor_per_logical_transfer(world, name):
    """Streaming emits many chunk events but exactly one payload-carrying
    SHIP descriptor per logical transfer — the same set of descriptors a
    monolithic run of the same plan records."""
    streamed = traced_stream_run(world, name, chunk_rows=16)
    monolithic = traced_stream_run(world, name, chunk_rows=None, compression="none")

    def payload_keys(recorder):
        keys = Counter()
        for event in recorder.events():
            if event.kind == "ship" and getattr(event, "payload", None):
                keys[
                    (event.query, event.producer, event.consumer, event.outcome)
                ] += 1
        return keys

    streamed_keys = payload_keys(streamed)
    assert streamed_keys == payload_keys(monolithic)
    for key, count in streamed_keys.items():
        assert count == 1, key

    # Every chunk event joins to one of those payload descriptors.
    descriptors = {key[:3] for key in streamed_keys}
    for event in streamed.events():
        if event.kind == "chunk":
            assert (event.query, event.producer, event.consumer) in descriptors


def test_corrupted_chunk_destination_is_flagged(world):
    """Rewriting one delivered chunk's destination to a site outside the
    payload's permitted set must flip the verdict."""
    auditor = world[4]
    recorder = traced_stream_run(world, "Q5", chunk_rows=16)
    assert auditor.audit_events(recorder.events()).ok

    mutated = []
    flipped = 0
    for line in recorder.to_jsonl().splitlines():
        entry = json.loads(line)
        if (
            not flipped
            and entry.get("kind") == "chunk"
            and entry.get("outcome") == "delivered"
            and entry["source"] != entry["target"]
        ):
            entry["target"] = "Atlantis"  # never in any permitted set
            flipped += 1
        mutated.append(json.dumps(entry, sort_keys=True))
    assert flipped == 1, "no cross-border chunk to mutate"
    report = auditor.audit_events(parse_trace("\n".join(mutated)))
    assert len(report.violations) >= 1
    assert report.violations[0].category in (
        "forbidden-destination",
        "unauditable",
    )


def test_orphan_chunk_is_unauditable(world):
    """A chunk event that joins to no payload-carrying transfer
    descriptor cannot be checked against any policy — the auditor must
    fail it closed rather than ignore it."""
    auditor = world[4]
    recorder = traced_stream_run(world, "Q3", chunk_rows=16)

    mutated = []
    orphaned = 0
    for line in recorder.to_jsonl().splitlines():
        entry = json.loads(line)
        if (
            not orphaned
            and entry.get("kind") == "chunk"
            and entry.get("outcome") == "delivered"
        ):
            # Detach the chunk from its transfer: a producer fragment
            # index nothing in the trace describes.
            entry["producer"] = 4095
            entry["consumer"] = 4096
            orphaned += 1
        mutated.append(json.dumps(entry, sort_keys=True))
    assert orphaned == 1
    report = auditor.audit_events(parse_trace("\n".join(mutated)))
    assert any(v.category == "unauditable" for v in report.violations)
