"""The auditor's per-scan freshness verdicts.

The trace carries a *claim* (``staleness_at_read`` on scan_read events
and payload scan descriptors); the auditor trusts none of it — it
re-derives every read's staleness from the catalog's replica set and
refresh schedules and classifies each read fresh / stale-within-bound /
bound-violated.  A claim that disagrees with the derivation is itself a
violation, and evidence the auditor cannot re-derive fails closed.
"""

import dataclasses

import pytest

from repro.catalog import FreshnessTracker, RefreshSchedule
from repro.errors import FreshnessAuditError
from repro.execution import FragmentScheduler, FreshnessPolicy
from repro.policy import PolicyCatalog
from repro.trace import (
    ComplianceAuditor,
    OptimizedEvent,
    ScanReadEvent,
    ShipEvent,
    TraceRecorder,
    annotate_payload_reads,
    payload_reads,
    strip_payload_reads,
    parse_trace,
    tracing,
)

from ..execution.test_freshness_runtime import freshness_world, scan_plan


def traced_run(mode="plan-only", bound=None, start_at=0.0):
    """One traced run of the replicated scan plan; returns the world's
    catalog, its policy set, and the recorded events (through a full
    JSONL serialize/parse round-trip)."""
    catalog, database, network = freshness_world()
    policies = PolicyCatalog(catalog)
    policies.add_text("ship id from emp to *")
    policy = FreshnessPolicy(
        FreshnessTracker(catalog), mode=mode, max_staleness=bound
    )
    scheduler = FragmentScheduler(database, network, freshness=policy)
    recorder = TraceRecorder()
    with tracing(recorder):
        _, metrics = scheduler.run(scan_plan("L2"), start_at=start_at)
    assert metrics.partial_failure is None
    events = parse_trace(recorder.to_jsonl())
    return catalog, policies, events, metrics


def test_roundtrip_verdicts_and_counter_reconciliation():
    catalog, policies, events, metrics = traced_run(mode="plan-only")
    auditor = ComplianceAuditor(policies, freshness=FreshnessTracker(catalog))
    report = auditor.audit_events(events)
    assert report.ok
    assert report.scan_reads == 1
    assert report.fresh_reads == 0
    assert report.stale_within_bound == 1  # 0.3s stale, no bound declared
    assert report.bound_violated == 0
    assert "1 replica reads" in report.summary()
    # Runtime counters reconcile 1:1 against the trace.
    scan_events = [e for e in events if isinstance(e, ScanReadEvent)]
    assert len(scan_events) == len(metrics.scan_reads)
    assert (
        sum(1 for e in scan_events if e.staleness_at_read > 1e-9)
        == metrics.stale_reads
    )
    # The ship out of the scan fragment carries the freshness claim.
    ships = [e for e in events if isinstance(e, ShipEvent)]
    assert any(e.staleness_at_read == pytest.approx(0.3) for e in ships)
    annotated = [e for e in ships if payload_reads(e.payload or {})]
    assert annotated


def test_auditor_bound_flags_stale_reads_plan_only_served():
    catalog, policies, events, metrics = traced_run(mode="plan-only")
    assert metrics.stale_reads == 1  # plan-only served the stale read
    auditor = ComplianceAuditor(
        policies, freshness=FreshnessTracker(catalog), max_staleness=0.1
    )
    report = auditor.audit_events(events)
    assert report.bound_violated == 1
    assert any(v.category == "stale-read" for v in report.violations)


def test_traced_per_query_bound_overrides_auditor_default():
    catalog, policies, events, _ = traced_run(mode="plan-only")
    (scan_event,) = [e for e in events if isinstance(e, ScanReadEvent)]
    declared = OptimizedEvent(query=scan_event.query, at=0.0, max_staleness=1.0)
    auditor = ComplianceAuditor(
        policies, freshness=FreshnessTracker(catalog), max_staleness=0.1
    )
    # The traced bound (1.0s) wins over the auditor's 0.1s default.
    report = auditor.audit_events([declared, *events])
    assert report.bound_violated == 0
    assert report.stale_within_bound == 1


def test_missing_tracker_fails_closed():
    _, policies, events, _ = traced_run(mode="plan-only")
    with pytest.raises(FreshnessAuditError, match="no freshness tracker"):
        ComplianceAuditor(policies).audit_events(events)


def test_mismatched_catalog_fails_closed():
    catalog, policies, events, _ = traced_run(mode="plan-only")
    catalog.drop_replica("db1", "emp", "L2")  # audit-side catalog diverges
    auditor = ComplianceAuditor(policies, freshness=FreshnessTracker(catalog))
    with pytest.raises(FreshnessAuditError, match="cannot re-derive"):
        auditor.audit_events(events)


def test_tampered_scan_read_is_a_misreport():
    catalog, policies, events, _ = traced_run(mode="plan-only")
    tampered = [
        dataclasses.replace(e, staleness_at_read=0.0)
        if isinstance(e, ScanReadEvent)
        else e
        for e in events
    ]
    auditor = ComplianceAuditor(policies, freshness=FreshnessTracker(catalog))
    report = auditor.audit_events(tampered)
    assert any(v.category == "freshness-misreport" for v in report.violations)
    # The verdict still uses the *derived* staleness, not the claim.
    assert report.stale_within_bound == 1


def test_tampered_payload_claim_is_a_misreport():
    catalog, policies, events, _ = traced_run(mode="plan-only")
    tampered = []
    for event in events:
        if isinstance(event, ShipEvent) and payload_reads(event.payload or {}):
            payload = event.payload
            for node in payload_reads(payload):
                node["staleness_at_read"] = 0.0
            event = dataclasses.replace(event, payload=payload)
        tampered.append(event)
    auditor = ComplianceAuditor(policies, freshness=FreshnessTracker(catalog))
    report = auditor.audit_events(tampered)
    assert any(v.category == "freshness-misreport" for v in report.violations)


def test_ship_claim_without_annotated_scan_fails_closed():
    catalog, policies, events, _ = traced_run(mode="plan-only")
    stripped = []
    for event in events:
        if isinstance(event, ShipEvent) and event.staleness_at_read is not None:
            event = dataclasses.replace(
                event, payload=strip_payload_reads(event.payload)
            )
        stripped.append(event)
    auditor = ComplianceAuditor(policies, freshness=FreshnessTracker(catalog))
    with pytest.raises(FreshnessAuditError, match="no annotated scan"):
        auditor.audit_events(stripped)


def test_scheduled_replica_derivation_matches_runtime():
    """With a refresh schedule, the audit-side catalog must carry the
    same schedule for verdicts to re-derive — and then they agree with
    the runtime to the misreport tolerance."""
    catalog, database, network = freshness_world()
    catalog.set_refresh("db1", "emp", "L2", RefreshSchedule(period=0.2))
    policies = PolicyCatalog(catalog)
    policies.add_text("ship id from emp to *")
    policy = FreshnessPolicy(FreshnessTracker(catalog), mode="plan-only")
    scheduler = FragmentScheduler(database, network, freshness=policy)
    recorder = TraceRecorder()
    with tracing(recorder):
        _, metrics = scheduler.run(scan_plan("L2"), start_at=0.35)
    events = parse_trace(recorder.to_jsonl())
    (read,) = metrics.scan_reads
    assert read.staleness_seconds == pytest.approx(0.15)  # 0.35 - 0.2
    report = ComplianceAuditor(
        policies, freshness=FreshnessTracker(catalog)
    ).audit_events(events)
    assert report.ok
    assert report.stale_within_bound == 1


def test_payload_annotation_codec_roundtrip():
    """annotate/read/strip are inverse: annotations attach to matching
    scan descriptors, are discoverable, and strip back to the original
    payload (the auditor's permitted-set cache key)."""
    from repro.execution import fragment_plan
    from repro.execution.metrics import ScanRead
    from repro.trace import encode_payload

    plan = scan_plan("L2")
    dag = fragment_plan(plan)
    payload = encode_payload(dag.fragments[0].root)
    before = strip_payload_reads(payload)
    reads = (ScanRead("db1", "emp", "L2", 0.4, 0.15),)
    annotated = annotate_payload_reads(payload, reads)
    (node,) = payload_reads(annotated)
    assert node["read_at"] == 0.4
    assert node["staleness_at_read"] == 0.15
    assert payload == before  # the original was never mutated
    assert strip_payload_reads(annotated) == before
