"""Differential soundness suite for the tracer + compliance auditor.

Theorem 1 as a *runtime* property: every execution the stack actually
performs — random TPC-H-derived queries x random curated policy sets x
random fault schedules, on both operator backends, sequential and
fragment-parallel — must produce a trace the independent auditor
declares compliant (zero violations).  And the auditor must not be
vacuous: corrupting a single fragment's placement post-hoc (the same
mutation a buggy failover would make) has to be flagged on **every**
corrupted run, and rewriting a recorded transfer's destination to a
non-permitted site has to flag the mutated trace.

The auditor is differential by construction: it never sees the
optimizer's annotations, only the serialized payload descriptors in the
trace, and recomputes each payload's permitted-location set from the
policy catalog alone.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import NonCompliantQueryError
from repro.execution import (
    ExecutionEngine,
    FaultPlan,
    RetryPolicy,
    fragment_plan,
    relocate_fragment,
)
from repro.optimizer import CompliantOptimizer, check_compliance
from repro.plan import Ship, TableScan
from repro.tpch import AdHocQueryGenerator, QUERIES, curated_policies
from repro.trace import ComplianceAuditor, TraceRecorder, parse_trace, tracing

#: Curated policy-expression sets fuzzed over ("T" grants everything and
#: never rejects; the interesting sets are the restrictive ones).
POLICY_SETS = ("C", "CR", "CR+A")

#: Satellite requirement: >= 30 fuzzed (query, policies, faults) combos.
FUZZ_EXAMPLES = 30

_STATE: dict = {}


def _world(tpch_small, tpch_network):
    """Module cache: optimizers per policy set plus every compliant
    (query, policy-set, plan) combo from the TPC-H + ad-hoc pool."""
    if _STATE:
        return _STATE
    catalog, database = tpch_small
    queries = [(name, QUERIES[name]) for name in ("Q3", "Q5", "Q10")]
    queries += [
        (f"adhoc{i}", q.sql)
        for i, q in enumerate(AdHocQueryGenerator(seed=77).generate(6))
    ]
    optimizers = {
        pset: CompliantOptimizer(
            catalog, curated_policies(catalog, pset), tpch_network
        )
        for pset in POLICY_SETS
    }
    auditors = {
        pset: ComplianceAuditor(curated_policies(catalog, pset))
        for pset in POLICY_SETS
    }
    combos = []
    for label, sql in queries:
        for pset in POLICY_SETS:
            try:
                plan = optimizers[pset].optimize(sql).plan
            except NonCompliantQueryError:
                continue
            combos.append((label, pset, plan))
    assert len(combos) >= 15, "query pool too restrictive to fuzz"
    _STATE.update(
        catalog=catalog,
        database=database,
        network=tpch_network,
        optimizers=optimizers,
        auditors=auditors,
        combos=combos,
    )
    return _STATE


def _traced_run(world, plan, pset, executor, parallel, fault_seed):
    faults = None
    retry_policy = None
    if parallel and fault_seed is not None:
        faults = FaultPlan.random(fault_seed, world["catalog"].locations)
        retry_policy = RetryPolicy(max_retries=6)
    engine = ExecutionEngine(
        world["database"],
        world["network"],
        policy_guard=world["optimizers"][pset].evaluator,
        parallel=parallel,
        executor=executor,
        faults=faults,
        retry_policy=retry_policy,
    )
    recorder = TraceRecorder()
    with tracing(recorder):
        engine.execute(plan)
    return recorder


@settings(
    max_examples=FUZZ_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_every_traced_execution_audits_clean(tpch_small, tpch_network, data):
    """Soundness: random query x policies x faults x mode, both
    executors — the auditor must report zero violations, through a full
    JSONL serialize/parse round-trip."""
    world = _world(tpch_small, tpch_network)
    label, pset, plan = data.draw(
        st.sampled_from(world["combos"]), label="combo"
    )
    parallel = data.draw(st.booleans(), label="parallel")
    fault_seed = (
        data.draw(st.integers(0, 9_999), label="fault_seed")
        if parallel
        else None
    )
    for executor in ("row", "batch"):
        recorder = _traced_run(world, plan, pset, executor, parallel, fault_seed)
        events = parse_trace(recorder.to_jsonl())
        report = world["auditors"][pset].audit_events(events)
        key = (label, pset, executor, parallel, fault_seed)
        assert report.ok, (key, [str(v) for v in report.violations])
        assert report.queries == 1, key
        # Every cross-border attempt carried an auditable payload.
        if report.cross_border:
            assert report.payloads >= 1, key


def _displaced_shipped_scan(plan, catalog) -> bool:
    """True when some scan below a SHIP runs away from its table's
    stored location.  Scans in the *root* fragment never enter any
    shipped payload — the trace records data movement, so a scan that
    moves without any transfer is invisible to the auditor (and caught
    instead by ``check_recovery_placement`` at failover time)."""
    shipped: set[int] = set()
    for node in plan.walk():
        if isinstance(node, Ship) and node.child is not None:
            shipped.update(id(n) for n in node.child.walk())
    return any(
        isinstance(node, TableScan)
        and id(node) in shipped
        and catalog.stored_table(node.database, node.table).location
        != node.location
        for node in plan.walk()
    )


def _corruption_cases(world):
    """Every single-fragment relocation of a compliant plan that an
    auditor *must* flag: the corrupted plan either ships a payload over
    a border to a non-permitted site, or ships a payload whose scan ran
    away from the table's stored location."""
    if "corruptions" in _STATE:
        return _STATE["corruptions"]
    catalog = world["catalog"]
    cases = []
    for label, pset, plan in world["combos"]:
        evaluator = world["optimizers"][pset].evaluator
        fragments = fragment_plan(plan).fragments
        for index, fragment in enumerate(fragments):
            for site in sorted(catalog.locations):
                if site == fragment.location:
                    continue
                corrupted = relocate_fragment(plan, fragment, site)
                cross_border = any(
                    isinstance(v.node, Ship) and v.node.target != v.node.source
                    for v in check_compliance(corrupted, evaluator)
                )
                if cross_border or _displaced_shipped_scan(corrupted, catalog):
                    cases.append((label, pset, index, site, corrupted))
    assert len(cases) >= 30, "relocation mutations should be plentiful"
    _STATE["corruptions"] = cases
    return cases


@settings(
    max_examples=FUZZ_EXAMPLES,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_corrupted_placements_are_flagged(tpch_small, tpch_network, data):
    """Sensitivity: execute a plan whose fragment placement was
    corrupted post-optimization (no policy guard — we *want* the bad
    run) and the audit of its trace must report >= 1 violation."""
    world = _world(tpch_small, tpch_network)
    label, pset, index, site, corrupted = data.draw(
        st.sampled_from(_corruption_cases(world)), label="corruption"
    )
    executor = data.draw(st.sampled_from(["row", "batch"]), label="executor")
    engine = ExecutionEngine(
        world["database"], world["network"], parallel=True, executor=executor
    )
    recorder = TraceRecorder()
    with tracing(recorder):
        engine.execute(corrupted)
    report = world["auditors"][pset].audit_events(recorder.events())
    assert not report.ok, (label, pset, index, site, executor)
    assert all(
        v.category in ("forbidden-destination", "displaced-scan")
        for v in report.violations
    )


def test_mutated_trace_destination_is_flagged(tpch_small, tpch_network):
    """Trace-level sensitivity: rewriting one delivered cross-border
    event's destination to a site outside the payload's permitted set
    must flip the verdict from COMPLIANT to >= 1 violation."""
    world = _world(tpch_small, tpch_network)
    label, pset, plan = next(
        c for c in world["combos"] if c[1] == "CR"
    )
    auditor = world["auditors"][pset]
    recorder = _traced_run(world, plan, pset, "row", parallel=True, fault_seed=None)
    assert auditor.audit_events(recorder.events()).ok

    lines = recorder.to_jsonl().splitlines()
    mutated = []
    flipped = 0
    for line in lines:
        entry = json.loads(line)
        if (
            not flipped
            and entry.get("kind") == "ship"
            and entry.get("outcome") == "delivered"
            and entry["source"] != entry["target"]
        ):
            # An off-catalog region is never in any permitted set.
            entry["target"] = "Atlantis"
            flipped += 1
        mutated.append(json.dumps(entry, sort_keys=True))
    assert flipped == 1, f"{label}: no cross-border transfer to mutate"
    report = auditor.audit_events(parse_trace("\n".join(mutated)))
    assert len(report.violations) >= 1
    assert report.violations[0].category == "forbidden-destination"


def test_unobservable_relocations_stay_clean(tpch_small, tpch_network):
    """The oracle is two-sided: a relocation that produces *no* illegal
    observable movement (no cross-border ship of a forbidden payload, no
    displaced scan inside any shipped payload) must audit clean — the
    auditor flags illegal data movement, not movement per se."""
    world = _world(tpch_small, tpch_network)
    catalog = world["catalog"]
    checked = 0
    for label, pset, plan in world["combos"]:
        if checked >= 5:
            break
        evaluator = world["optimizers"][pset].evaluator
        fragments = fragment_plan(plan).fragments
        for index, fragment in enumerate(fragments):
            for site in sorted(catalog.locations):
                if site == fragment.location or checked >= 5:
                    continue
                moved = relocate_fragment(plan, fragment, site)
                cross_border = any(
                    isinstance(v.node, Ship) and v.node.target != v.node.source
                    for v in check_compliance(moved, evaluator)
                )
                if cross_border or _displaced_shipped_scan(moved, catalog):
                    continue
                engine = ExecutionEngine(
                    world["database"], world["network"], parallel=True
                )
                recorder = TraceRecorder()
                with tracing(recorder):
                    engine.execute(moved)
                report = world["auditors"][pset].audit_events(recorder.events())
                assert report.ok, (label, pset, index, site)
                checked += 1
    assert checked >= 1, "expected at least one clean relocation in the pool"
