"""Optimizer robustness: budgets, cross products, reuse across queries."""

import pytest

from repro.optimizer import CompliantOptimizer, TraditionalOptimizer, check_compliance
from repro.plan import NestedLoopJoin
from repro.policy import PolicyCatalog


def test_exhausted_budget_still_yields_valid_plan(carco):
    """When the memo budget stops exploration early, the initial plan is
    always registered, so a (possibly suboptimal) compliant plan or a
    clean rejection must still come out — never a crash."""
    optimizer = CompliantOptimizer(
        carco.catalog, carco.policies, carco.network, max_expressions=12
    )
    result = optimizer.optimize(
        "SELECT C.name, O.totprice FROM customer C, orders O "
        "WHERE C.custkey = O.custkey"
    )
    assert not check_compliance(result.plan, optimizer.evaluator)


def test_cross_product_query_supported(carco):
    """Queries with no join predicate need cross products; both the
    binder and the executor-facing plan must handle them."""
    optimizer = TraditionalOptimizer(carco.catalog, carco.network)
    result = optimizer.optimize(
        "SELECT C.name, S.quantity FROM customer C, supply S "
        "WHERE C.acctbal > 990 AND S.quantity > 8"
    )
    assert any(isinstance(n, NestedLoopJoin) for n in result.plan.walk())


def test_allow_cross_products_flag_expands_search(carco):
    restricted = CompliantOptimizer(
        carco.catalog, carco.policies, carco.network, allow_cross_products=False
    )
    permissive = CompliantOptimizer(
        carco.catalog, carco.policies, carco.network, allow_cross_products=True
    )
    sql = (
        "SELECT C.name, SUM(S.quantity) AS q FROM customer C, orders O, supply S "
        "WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey GROUP BY C.name"
    )
    r_restricted = restricted.optimize(sql)
    r_permissive = permissive.optimize(sql)
    assert (
        r_permissive.annotate.expression_count
        >= r_restricted.annotate.expression_count
    )


def test_optimizer_reuse_across_many_queries(carco):
    """One optimizer instance must stay correct across queries (the AR4
    grant cache is memo-local — the regression this guards against)."""
    optimizer = CompliantOptimizer(carco.catalog, carco.policies, carco.network)
    queries = [
        "SELECT C.name FROM customer C",
        "SELECT O.custkey, SUM(O.totprice) AS t FROM orders O GROUP BY O.custkey",
        "SELECT S.ordkey, SUM(S.quantity) AS q FROM supply S GROUP BY S.ordkey",
        "SELECT C.name, O.totprice FROM customer C, orders O WHERE C.custkey = O.custkey",
    ] * 2
    for sql in queries:
        result = optimizer.optimize(sql)
        assert not check_compliance(result.plan, optimizer.evaluator), sql


def test_empty_policy_catalog_keeps_local_queries_working(carco):
    optimizer = CompliantOptimizer(
        carco.catalog, PolicyCatalog(carco.catalog), carco.network
    )
    result = optimizer.optimize("SELECT O.ordkey FROM orders O WHERE O.totprice > 50")
    assert result.plan.location == "Europe"


def test_binding_error_propagates(carco):
    optimizer = CompliantOptimizer(carco.catalog, carco.policies, carco.network)
    from repro.errors import BindingError

    with pytest.raises(BindingError):
        optimizer.optimize("SELECT nothere FROM customer C")
