"""Compliance validators must catch hand-built violations."""

import pytest

from repro.optimizer import check_compliance, check_compliance_strict, is_compliant, to_logical
from repro.optimizer.validator import _grant
from repro.plan import Field, Project, Ship, TableScan
from repro.policy import PolicyEvaluator
from repro.sql import Binder
from repro.execution import reference_plan
from repro.datatypes import DataType


@pytest.fixture()
def evaluator(carco):
    return PolicyEvaluator(carco.policies)


def scan_customer(carco, location="NorthAmerica"):
    plan = Binder(carco.catalog).bind_sql("SELECT * FROM customer")
    physical = reference_plan(plan.child, location)  # bare scan
    return physical


def test_raw_customer_ship_violates(carco, evaluator):
    scan = scan_customer(carco)
    ship = Ship(
        fields=scan.fields, location="Europe", child=scan,
        source="NorthAmerica", target="Europe",
    )
    violations = check_compliance(ship, evaluator)
    assert violations
    assert "Europe" in str(violations[0])
    assert not is_compliant(ship, evaluator)


def test_masked_customer_ship_compliant(carco, evaluator):
    plan = Binder(carco.catalog).bind_sql("SELECT C.custkey, C.name FROM customer C")
    physical = reference_plan(plan, "NorthAmerica")
    ship = Ship(
        fields=physical.fields, location="Europe", child=physical,
        source="NorthAmerica", target="Europe",
    )
    assert is_compliant(ship, evaluator)
    assert not check_compliance_strict(ship, evaluator)


def test_raw_supply_ship_violates_both_checkers(carco, evaluator):
    # P_A: only aggregated supply data may leave Asia.
    plan = Binder(carco.catalog).bind_sql("SELECT S.ordkey, S.quantity FROM supply S")
    raw = reference_plan(plan, "Asia")
    ship = Ship(
        fields=raw.fields, location="Europe", child=raw,
        source="Asia", target="Europe",
    )
    assert check_compliance(ship, evaluator)
    assert check_compliance_strict(ship, evaluator)


def test_consumption_outside_crossing_grant_flagged(carco, evaluator):
    """An operator consuming border-crossed data at a location outside the
    crossing subquery's legal set violates Definition 1 (condition c2)."""
    plan = Binder(carco.catalog).bind_sql(
        "SELECT S.ordkey, SUM(S.quantity) AS q FROM supply S GROUP BY S.ordkey"
    )
    aggregated = reference_plan(plan, "Asia")  # legal to ship to Europe only
    ship = Ship(
        fields=aggregated.fields, location="NorthAmerica", child=aggregated,
        source="Asia", target="NorthAmerica",
    )
    consumer = Project(
        fields=aggregated.fields, location="NorthAmerica", child=ship,
        exprs=tuple(f.to_ref() for f in aggregated.fields),
        names=aggregated.field_names,
    )
    assert check_compliance(consumer, evaluator)
    assert check_compliance_strict(consumer, evaluator)


def test_scan_away_from_home_flagged_strict(carco, evaluator):
    scan = scan_customer(carco, location="Asia")
    violations = check_compliance_strict(scan, evaluator)
    assert violations
    assert "lives at" in str(violations[0])


def test_to_logical_round_trip(carco, evaluator):
    compliant_sql = "SELECT C.custkey, C.name FROM customer C WHERE C.custkey > 5"
    logical = Binder(carco.catalog).bind_sql(compliant_sql)
    physical = reference_plan(logical, "NorthAmerica")
    rebuilt = to_logical(physical)
    assert rebuilt.field_names == logical.field_names
    assert rebuilt.source_databases == logical.source_databases


def test_grant_empty_for_multi_db_subplans(carco, evaluator):
    logical = Binder(carco.catalog).bind_sql(
        "SELECT C.name, O.totprice FROM customer C, orders O WHERE C.custkey = O.custkey"
    )
    physical = reference_plan(logical, "Europe")
    assert _grant(evaluator, to_logical(physical)) == frozenset()


def test_compliant_optimizer_output_passes_both(carco):
    from repro.optimizer import CompliantOptimizer

    optimizer = CompliantOptimizer(carco.catalog, carco.policies, carco.network)
    result = optimizer.optimize(carco.query)
    assert not check_compliance(result.plan, optimizer.evaluator)
    assert not check_compliance_strict(result.plan, optimizer.evaluator)
