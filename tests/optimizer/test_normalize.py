"""Normalization: pushdown, pruning, and semantics preservation."""

import pytest

from repro.execution import ExecutionEngine, reference_plan
from repro.optimizer import normalize, prune_columns, push_predicates
from repro.plan import (
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalScan,
    LogicalUnion,
)
from repro.sql import Binder

from ..conftest import rows_as_multiset


@pytest.fixture(scope="module")
def binder(carco):
    return Binder(carco.catalog)


def find(plan, kind):
    return [n for n in plan.walk() if isinstance(n, kind)]


def feeds_scan(node):
    """True when node is a Scan or a pruning Project directly over one."""
    if isinstance(node, LogicalScan):
        return True
    return isinstance(node, LogicalProject) and isinstance(node.child, LogicalScan)


def test_single_table_predicates_reach_scans(binder):
    plan = binder.bind_sql(
        "SELECT C.name FROM customer C, orders O "
        "WHERE C.custkey = O.custkey AND C.acctbal > 10 AND O.totprice < 5"
    )
    normalized = normalize(plan)
    filters = find(normalized, LogicalFilter)
    assert len(filters) == 2
    for f in filters:
        assert feeds_scan(f.child)


def test_join_condition_extracted(binder):
    plan = binder.bind_sql(
        "SELECT C.name FROM customer C, orders O WHERE C.custkey = O.custkey"
    )
    normalized = normalize(plan)
    joins = find(normalized, LogicalJoin)
    assert len(joins) == 1
    assert joins[0].condition is not None
    # No residual filter nodes remain.
    assert not find(normalized, LogicalFilter)


def test_pruning_projects_inserted_above_scans(binder):
    # customer has 5 columns; only name must flow above the scan (the
    # pruning project may be merged into the output project).
    plan = binder.bind_sql("SELECT C.name FROM customer C")
    normalized = normalize(plan)
    projects = [
        p
        for p in find(normalized, LogicalProject)
        if isinstance(p.child, LogicalScan)
    ]
    assert projects
    assert len(projects[0].exprs) == 1
    refs = projects[0].exprs[0].references()
    assert refs == {"c.name"}


def test_pruning_masks_restricted_columns_in_join(binder):
    # The Fig. 1(b) masking projection: only custkey and name cross.
    plan = binder.bind_sql(
        "SELECT C.name, O.totprice FROM customer C, orders O "
        "WHERE C.custkey = O.custkey"
    )
    normalized = normalize(plan)
    scans_projected = [
        p
        for p in find(normalized, LogicalProject)
        if isinstance(p.child, LogicalScan) and p.child.table == "customer"
    ]
    assert scans_projected
    assert set(scans_projected[0].names) == {"c.custkey", "c.name"}


def test_predicate_pushdown_through_project(binder):
    plan = binder.bind_sql(
        "SELECT x.name FROM (SELECT name, acctbal FROM customer) AS x "
        "WHERE x.acctbal > 100"
    )
    normalized = normalize(plan)
    filters = find(normalized, LogicalFilter)
    assert len(filters) == 1
    assert feeds_scan(filters[0].child)


def test_having_predicate_stays_above_aggregate(binder):
    plan = binder.bind_sql(
        "SELECT C.mktseg FROM customer C GROUP BY C.mktseg HAVING COUNT(*) > 1"
    )
    normalized = normalize(plan)
    filters = find(normalized, LogicalFilter)
    assert len(filters) == 1
    from repro.plan import LogicalAggregate

    assert isinstance(filters[0].child, LogicalAggregate)


def test_group_key_predicate_pushed_below_aggregate(binder):
    plan = binder.bind_sql(
        "SELECT C.mktseg, COUNT(*) FROM customer C GROUP BY C.mktseg "
        "HAVING C.mktseg = 'a'"
    )
    normalized = normalize(plan)
    filters = find(normalized, LogicalFilter)
    assert len(filters) == 1
    assert feeds_scan(filters[0].child)


@pytest.mark.parametrize(
    "sql",
    [
        "SELECT C.name, C.acctbal FROM customer C WHERE C.acctbal > 500",
        "SELECT C.name, O.totprice FROM customer C, orders O "
        "WHERE C.custkey = O.custkey AND O.totprice > 50",
        "SELECT C.mktseg, SUM(O.totprice) AS t FROM customer C, orders O "
        "WHERE C.custkey = O.custkey GROUP BY C.mktseg",
        "SELECT S.ordkey, SUM(S.quantity) AS q FROM supply S "
        "WHERE S.extprice > 2 GROUP BY S.ordkey",
    ],
)
def test_normalization_preserves_semantics(carco, sql):
    binder = Binder(carco.catalog)
    engine = ExecutionEngine(carco.database, carco.network)
    plan = binder.bind_sql(sql)
    before = engine.execute(reference_plan(plan)).rows
    after = engine.execute(reference_plan(normalize(plan))).rows
    assert rows_as_multiset(before) == rows_as_multiset(after)


def test_pushdown_into_union_branches():
    from repro.catalog import Catalog, Column, TableSchema, uniform_stats
    from repro.datatypes import DataType

    c = Catalog()
    c.add_database("db1", "L1")
    c.add_database("db2", "L2")
    schema = TableSchema("f", (Column("a", DataType.INTEGER), Column("b", DataType.INTEGER)))
    c.add_fragmented_table(
        schema, [("db1", uniform_stats(schema, 5)), ("db2", uniform_stats(schema, 5))]
    )
    plan = Binder(c).bind_sql("SELECT a FROM f WHERE b > 1")
    normalized = normalize(plan)
    unions = find(normalized, LogicalUnion)
    assert len(unions) == 1
    for branch in unions[0].inputs:
        branch_filters = find(branch, LogicalFilter)
        assert len(branch_filters) == 1
