"""Plan annotator (phase 1) and site selector (phase 2) tests, driven by
the paper's CarCo running example."""

import pytest

from repro.errors import NonCompliantQueryError
from repro.optimizer import (
    CompliantOptimizer,
    TraditionalOptimizer,
    check_compliance,
    check_compliance_strict,
)
from repro.plan import HashAggregate, Project, Ship, TableScan, ship_operators
from repro.policy import PolicyCatalog, PolicyEvaluator


@pytest.fixture()
def optimizer(carco):
    return CompliantOptimizer(carco.catalog, carco.policies, carco.network)


class TestAnnotator:
    def test_carco_query_is_legal(self, optimizer, carco):
        assert optimizer.is_legal(carco.query)

    def test_annotated_traits_respect_ar1(self, optimizer, carco):
        result = optimizer.optimize(carco.query)
        for node in result.annotate.root.walk():
            from repro.plan import LogicalScan

            if isinstance(node.op, LogicalScan):
                assert node.execution_trait == {node.op.location}

    def test_annotated_traits_shipping_superset_of_execution(self, optimizer, carco):
        result = optimizer.optimize(carco.query)
        for node in result.annotate.root.walk():
            assert node.execution_trait <= node.shipping_trait
            assert node.execution_trait  # compliance-adapted cost: never empty

    def test_illegal_query_rejected(self, optimizer, carco):
        # Raw account balances can never leave North America.
        with pytest.raises(NonCompliantQueryError):
            optimizer.optimize(
                "SELECT C.acctbal, O.totprice FROM customer C, orders O "
                "WHERE C.custkey = O.custkey"
            )

    def test_legal_with_masked_projection(self, optimizer):
        # Same join but without acctbal: compliant (mask via projection).
        result = optimizer.optimize(
            "SELECT C.name, O.totprice FROM customer C, orders O "
            "WHERE C.custkey = O.custkey"
        )
        assert not check_compliance(result.plan, optimizer.evaluator)

    def test_fig1b_plan_structure(self, optimizer, carco):
        """The compliant plan must mask Customer via projection before its
        SHIP and pre-aggregate Supply in Asia (paper Fig. 1(b))."""
        result = optimizer.optimize(carco.query)
        ships = ship_operators(result.plan)
        assert ships, "geo-distributed plan must ship something"
        # Customer leaves North America only after the masking projection.
        for ship in ships:
            if ship.source == "NorthAmerica":
                names = {f.name for f in ship.fields}
                assert "c.acctbal" not in names
        # Supply leaves Asia only pre-aggregated.
        for ship in ships:
            if ship.source == "Asia":
                assert isinstance(ship.child, HashAggregate)

    def test_rejects_when_no_policies(self, carco):
        empty = PolicyCatalog(carco.catalog)
        optimizer = CompliantOptimizer(carco.catalog, empty, carco.network)
        with pytest.raises(NonCompliantQueryError):
            optimizer.optimize(carco.query)

    def test_single_site_query_always_legal(self, carco):
        empty = PolicyCatalog(carco.catalog)
        optimizer = CompliantOptimizer(carco.catalog, empty, carco.network)
        result = optimizer.optimize("SELECT O.totprice FROM orders O")
        assert result.plan.location == "Europe"
        assert not ship_operators(result.plan)


class TestSiteSelector:
    def test_ships_only_on_location_changes(self, optimizer, carco):
        result = optimizer.optimize(carco.query)

        def check(node):
            for child in node.children():
                if isinstance(node, Ship):
                    # A SHIP's input lives at the source site.
                    assert child.location == node.source
                    assert node.source != node.target
                    assert node.location == node.target
                else:
                    assert child.location == node.location
                check(child)

        check(result.plan)

    def test_result_location_constraint(self, optimizer, carco):
        result = optimizer.optimize(carco.query, result_location="Europe")
        assert result.plan.location == "Europe"

    def test_result_location_via_partial_aggregation(self, optimizer, carco):
        # P_E allows *aggregated* order prices into Asia, so the result can
        # be produced in Asia too (orders pre-aggregated before shipping).
        result = optimizer.optimize(carco.query, result_location="Asia")
        assert result.plan.location == "Asia"
        assert not check_compliance(result.plan, optimizer.evaluator)

    def test_unreachable_result_location_rejected(self, optimizer, carco):
        # Order prices may never reach North America in any form (P_E).
        with pytest.raises(NonCompliantQueryError):
            optimizer.optimize(carco.query, result_location="NorthAmerica")

    def test_phase2_is_fast_relative_to_phase1(self, optimizer, carco):
        result = optimizer.optimize(carco.query)
        # Site selection is a small DP; the paper reports ~1-2ms.
        assert result.phase2_seconds < result.phase1_seconds

    def test_scan_placed_at_table_location(self, optimizer, carco):
        result = optimizer.optimize(carco.query)
        for node in result.plan.walk():
            if isinstance(node, TableScan):
                stored = carco.catalog.stored_table(node.database, node.table)
                assert node.location == stored.location


class TestSoundnessTheorem1:
    QUERIES = [
        "SELECT C.name FROM customer C",
        "SELECT C.name, O.totprice FROM customer C, orders O WHERE C.custkey = O.custkey",
        "SELECT S.ordkey, SUM(S.quantity) AS q FROM supply S GROUP BY S.ordkey",
        "SELECT C.name, SUM(S.quantity) AS q FROM customer C, orders O, supply S "
        "WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey GROUP BY C.name",
        "SELECT O.custkey, SUM(O.totprice) AS t FROM orders O GROUP BY O.custkey",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_compliant_output_always_validates(self, optimizer, sql):
        result = optimizer.optimize(sql)
        assert not check_compliance(result.plan, optimizer.evaluator)

    @pytest.mark.parametrize("sql", QUERIES)
    def test_compliant_output_validates_strictly(self, optimizer, sql):
        result = optimizer.optimize(sql)
        assert not check_compliance_strict(result.plan, optimizer.evaluator)


class TestTraditionalBaseline:
    def test_traditional_ignores_policies(self, carco):
        traditional = TraditionalOptimizer(carco.catalog, carco.network)
        result = traditional.optimize(carco.query)
        evaluator = PolicyEvaluator(carco.policies)
        assert check_compliance(result.plan, evaluator)  # NC, as in Fig. 1(a)

    def test_traditional_plan_still_executable_shape(self, carco):
        traditional = TraditionalOptimizer(carco.catalog, carco.network)
        result = traditional.optimize(carco.query)
        assert isinstance(result.plan, Project)

    def test_same_plan_when_traditional_is_compliant(self, carco):
        """Paper §7.4: whenever the traditional plan is compliant, the
        compliance-based optimizer produces the same plan."""
        from repro.plan import explain_physical

        sql = "SELECT C.custkey, C.name FROM customer C WHERE C.acctbal > 100"
        compliant = CompliantOptimizer(carco.catalog, carco.policies, carco.network)
        traditional = TraditionalOptimizer(carco.catalog, carco.network)
        c_plan = compliant.optimize(sql).plan
        t_plan = traditional.optimize(sql).plan
        assert explain_physical(c_plan) == explain_physical(t_plan)
