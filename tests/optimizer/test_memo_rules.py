"""Memo mechanics and transformation-rule correctness.

Rule outputs are checked both structurally and *semantically*: every
alternative a rule adds to a group must produce exactly the same rows as
the original expression when executed.
"""

import pytest

from repro.execution import ExecutionEngine, reference_plan
from repro.optimizer import GroupRef, Memo, explore, normalize
from repro.optimizer.rules import (
    AggregateJoinTranspose,
    JoinAssociate,
    JoinCommute,
    ordered_conjunction,
)
from repro.plan import LogicalAggregate, LogicalJoin, LogicalScan
from repro.sql import Binder

from ..conftest import rows_as_multiset


def full_plan(memo, plan):
    """Expand GroupRefs into representative subplans, recursively."""
    children = tuple(
        memo.group(c.group_id).representative if isinstance(c, GroupRef) else full_plan(memo, c)
        for c in plan.children()
    )
    return plan.with_children(children) if children else plan


def run_named(engine, logical):
    """Execute a logical plan and return rows with columns in sorted-name
    order (join commutation permutes field order; names stay unique)."""
    result = engine.execute(reference_plan(logical))
    order = sorted(range(len(result.columns)), key=lambda i: result.columns[i])
    return [tuple(row[i] for i in order) for row in result.rows]


def core_group(memo, root):
    """The group below the root output projection (joins/aggregates live
    there; rules never fire on the projection itself)."""
    root_expr = memo.group(root).exprs[0]
    child_groups = root_expr.child_groups
    return memo.group(child_groups[0]) if child_groups else memo.group(root)


@pytest.fixture()
def binder(carco):
    return Binder(carco.catalog)


@pytest.fixture()
def engine(carco):
    return ExecutionEngine(carco.database, carco.network)


THREE_WAY = (
    "SELECT C.name, O.totprice, S.quantity FROM customer C, orders O, supply S "
    "WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey"
)

AGG_JOIN = (
    "SELECT C.name, SUM(S.quantity) AS q, SUM(O.totprice) AS p, COUNT(*) AS n "
    "FROM customer C, orders O, supply S "
    "WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey GROUP BY C.name"
)


class TestMemo:
    def test_register_deduplicates_identical_subplans(self, binder):
        plan = normalize(binder.bind_sql("SELECT C.name FROM customer C"))
        memo = Memo()
        g1 = memo.register_plan(plan)
        g2 = memo.register_plan(plan)
        assert g1 == g2

    def test_join_children_canonicalized_by_group_id(self, binder):
        plan = normalize(binder.bind_sql(THREE_WAY))
        memo = Memo()
        memo.register_plan(plan)
        for group in memo.groups:
            for mexpr in group.exprs:
                if isinstance(mexpr.plan, LogicalJoin):
                    left, right = mexpr.plan.left, mexpr.plan.right
                    if isinstance(left, GroupRef) and isinstance(right, GroupRef):
                        assert left.group_id < right.group_id

    def test_budget_stops_exploration(self, binder):
        plan = normalize(binder.bind_sql(THREE_WAY))
        unbounded = Memo()
        unbounded.register_plan(plan)
        explore(unbounded, [JoinCommute(), JoinAssociate()])

        memo = Memo()
        initial = memo.register_plan(plan) and memo.expression_count
        memo = Memo(max_expressions=memo.expression_count + 1)
        memo.register_plan(plan)
        stats = explore(memo, [JoinCommute(), JoinAssociate()])
        assert stats.budget_exhausted
        assert memo.expression_count < unbounded.expression_count

    def test_exploration_reaches_fixpoint(self, binder):
        plan = normalize(binder.bind_sql(THREE_WAY))
        memo = Memo()
        memo.register_plan(plan)
        stats1 = explore(memo, [JoinCommute(), JoinAssociate()])
        added_first = stats1.expressions_added
        stats2 = explore(memo, [JoinCommute(), JoinAssociate()])
        assert added_first > 0
        assert stats2.expressions_added == 0


class TestJoinRules:
    def test_commute_adds_swapped_alternative(self, binder):
        plan = normalize(binder.bind_sql(THREE_WAY))
        memo = Memo()
        root = memo.register_plan(plan)
        explore(memo, [JoinCommute()])
        joins = [
            m.plan
            for g in memo.groups
            for m in g.exprs
            if isinstance(m.plan, LogicalJoin)
        ]
        # Each join appears in both orientations.
        keys = {(j.left.group_id, j.right.group_id) for j in joins}
        assert all((b, a) in keys for a, b in keys)

    def test_associate_explores_all_join_orders(self, binder):
        plan = normalize(binder.bind_sql(THREE_WAY))
        memo = Memo()
        memo.register_plan(plan)
        explore(memo, [JoinCommute(), JoinAssociate()])
        # With 3 relations and no cross products, both join orders
        # ((C⋈O)⋈S and C⋈(O⋈S)) must exist somewhere in the memo.
        group_reps = set()
        for g in memo.groups:
            rep = g.representative
            scans = sorted(
                n.table for n in rep.walk() if isinstance(n, LogicalScan)
            )
            if len(scans) == 2:
                group_reps.add(tuple(scans))
        assert ("customer", "orders") in group_reps
        assert ("orders", "supply") in group_reps

    def test_rule_outputs_semantically_equal(self, binder, engine, carco):
        plan = normalize(binder.bind_sql(THREE_WAY))
        memo = Memo()
        root = memo.register_plan(plan)
        explore(memo, [JoinCommute(), JoinAssociate()])
        group = core_group(memo, root)
        expected = rows_as_multiset(run_named(engine, group.representative))
        assert len(group.exprs) > 1
        for mexpr in group.exprs:
            alternative = full_plan(memo, mexpr.plan)
            assert rows_as_multiset(run_named(engine, alternative)) == expected

    def test_no_cross_products_by_default(self, binder):
        plan = normalize(binder.bind_sql(THREE_WAY))
        memo = Memo()
        memo.register_plan(plan)
        explore(memo, [JoinCommute(), JoinAssociate()])
        for g in memo.groups:
            for m in g.exprs:
                if isinstance(m.plan, LogicalJoin):
                    assert m.plan.condition is not None


class TestAggregateJoinTranspose:
    def test_partial_aggregate_created(self, binder):
        plan = normalize(binder.bind_sql(AGG_JOIN))
        memo = Memo()
        memo.register_plan(plan)
        explore(memo, [JoinCommute(), JoinAssociate(), AggregateJoinTranspose()])
        partials = [
            m.plan
            for g in memo.groups
            for m in g.exprs
            if isinstance(m.plan, LogicalAggregate)
            and any(n.startswith("$p") for n in m.plan.agg_names)
        ]
        assert partials

    def test_all_alternatives_semantically_equal(self, binder, engine):
        plan = normalize(binder.bind_sql(AGG_JOIN))
        memo = Memo()
        root = memo.register_plan(plan)
        explore(memo, [JoinCommute(), JoinAssociate(), AggregateJoinTranspose()])
        group = core_group(memo, root)
        expected = rows_as_multiset(run_named(engine, group.representative))
        seen_rewrite = False
        for mexpr in group.exprs:
            alternative = full_plan(memo, mexpr.plan)
            if isinstance(alternative, LogicalAggregate) and any(
                isinstance(n, LogicalAggregate) and n is not alternative
                for n in alternative.walk()
            ):
                seen_rewrite = True
            assert rows_as_multiset(run_named(engine, alternative)) == expected, str(
                alternative
            )
        assert seen_rewrite

    def test_avg_blocks_rewrite(self, binder):
        plan = normalize(
            binder.bind_sql(
                "SELECT C.name, AVG(S.quantity) FROM customer C, orders O, supply S "
                "WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey GROUP BY C.name"
            )
        )
        memo = Memo()
        memo.register_plan(plan)
        explore(memo, [AggregateJoinTranspose()])
        partials = [
            m.plan
            for g in memo.groups
            for m in g.exprs
            if isinstance(m.plan, LogicalAggregate)
            and any(n.startswith("$p") for n in m.plan.agg_names)
        ]
        assert not partials


def test_ordered_conjunction_is_deterministic():
    from repro.datatypes import DataType
    from repro.expr import ColumnRef, Comparison, ComparisonOp, Literal

    a = Comparison(
        ComparisonOp.GT, ColumnRef("a", DataType.INTEGER), Literal(1, DataType.INTEGER)
    )
    b = Comparison(
        ComparisonOp.LT, ColumnRef("b", DataType.INTEGER), Literal(2, DataType.INTEGER)
    )
    assert ordered_conjunction([a, b]) == ordered_conjunction([b, a])
    assert ordered_conjunction([]) is None
