"""Property-based hot-reload suite for the compliant plan cache.

Fuzzes interleavings of query optimizations and policy-catalog
mutations (``add`` / ``remove`` / ``replace``) and asserts, after every
step:

* **soundness** — every plan the cached optimizer serves (warm or cold)
  passes the independent Definition-1 validator against the *current*
  policy set: no post-reload execution ever uses a plan whose
  permitted-location derivation read a changed policy;
* **acceptance equivalence** — the cached optimizer accepts exactly the
  queries a cache-less optimizer over the same live catalog accepts;
* **precision** — a model tracking each entry's recorded dependency set
  predicts hits: entries whose dependencies were untouched by the
  mutations survive them (including pure additions, which must never
  invalidate anything).

The query pool is chosen so literal classification is reload-stable
(every literal column is doubly constrained, hence always pinned), so a
surviving entry is observable as a cache hit rather than a shape miss.

An injected-bug oracle runs the same machinery over a deliberately
broken cache whose ``lookup`` skips revalidation, and asserts the suite
flags it — evidence the soundness oracle has teeth.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.errors import NonCompliantQueryError
from repro.geo import synthetic_network
from repro.optimizer import CompliantOptimizer, PlanCache, check_compliance
from repro.policy import PolicyCatalog, PolicyEvaluator, parse_policy

POLICY_POOL = (
    "ship k, v from t to x where v > 10",
    "ship k from t to y",
    "ship k, w from u to y",
    "ship k, w from u to x where w > 0",
    "ship seg from t to y",
)

#: Every literal's column is constrained twice, so the parameterizer
#: pins it under *any* policy subset — cache keys survive reloads.
QUERY_POOL = (
    "SELECT k, v FROM t WHERE v > 20 AND v < 1000",
    "SELECT k FROM t WHERE k > 3 AND k < 900",
    "SELECT k, w FROM u WHERE w > 4 AND w < 900",
    "SELECT seg FROM t",
    "SELECT k, v FROM t",
)

LOCATIONS = (None, "x", "y")


def build_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_database("db1", "home")
    for loc in ("x", "y"):
        catalog.add_database(f"db_{loc}", loc)
    catalog.add_table(
        "db1",
        TableSchema(
            "t",
            (
                Column("k", DataType.INTEGER),
                Column("v", DataType.INTEGER),
                Column("seg", DataType.VARCHAR),
            ),
            primary_key=("k",),
        ),
        row_count=50,
    )
    catalog.add_table(
        "db1",
        TableSchema(
            "u",
            (Column("k", DataType.INTEGER), Column("w", DataType.INTEGER)),
            primary_key=("k",),
        ),
        row_count=30,
    )
    return catalog


class BrokenPlanCache(PlanCache):
    """Deliberately buggy invalidator: lookups never revalidate, so a
    hot reload keeps serving stale derivations."""

    def lookup(self, prepared, result_location=None, variant=None):
        key = prepared.key(result_location, variant)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return entry


def run_interleaving(operations, cache_class=PlanCache):
    """Drive one interleaving; return (violations, precision_failures).

    ``violations`` are Definition-1 breaches of *served* plans under the
    live policy set (must be empty for a correct cache); a precision
    failure is a survivor entry that missed, or a stale one that hit.
    """
    catalog = build_catalog()
    network = synthetic_network(catalog.locations)
    policies = PolicyCatalog(catalog)
    cache = cache_class(policies)
    optimizer = CompliantOptimizer(catalog, policies, network, plan_cache=cache)

    active = {}  # pool index -> live PolicyExpression
    # (sql, loc) -> (dependencies, expect_hit) model of stored entries.
    model = {}
    violations = []
    precision_failures = []

    def mutate_invalidates(pid):
        for proxy, (deps, _) in list(model.items()):
            if pid in deps:
                model[proxy] = (deps, False)

    for op in operations:
        kind = op[0]
        if kind == "add":
            index = op[1]
            if index in active:
                continue
            active[index] = policies.add_text(POLICY_POOL[index])
            # Additions are monotone: every expectation stands.
        elif kind == "remove":
            index = op[1]
            if index not in active:
                continue
            pid = policies.id_of(active[index])
            policies.remove(active.pop(index))
            mutate_invalidates(pid)
        elif kind == "replace":
            index = op[1]
            if index not in active:
                continue
            pid = policies.id_of(active[index])
            active[index] = policies.replace(
                active[index], parse_policy(POLICY_POOL[index], catalog)
            )
            mutate_invalidates(pid)
        else:  # run
            _, query_index, location_index = op
            sql = QUERY_POOL[query_index]
            location = LOCATIONS[location_index]
            proxy = (sql, location)
            stores_before = cache.stats.stores
            try:
                result = optimizer.optimize(sql, result_location=location)
            except NonCompliantQueryError:
                result = None
            fresh = CompliantOptimizer(catalog, policies, network)
            try:
                fresh.optimize(sql, result_location=location)
                fresh_accepts = True
            except NonCompliantQueryError:
                fresh_accepts = False

            if result is None:
                if fresh_accepts:
                    violations.append((proxy, "cached rejected, fresh accepts"))
                model.pop(proxy, None)  # rejections are never cached
                continue
            if not fresh_accepts:
                violations.append((proxy, "cached accepted, fresh rejects"))
            # Soundness: the served plan is compliant under the *live*
            # policy set, judged by an independent evaluator.
            found = check_compliance(result.plan, PolicyEvaluator(policies))
            if found:
                violations.append((proxy, found))
            expected = model.get(proxy)
            if expected is not None and expected[1] != result.cache_hit:
                precision_failures.append((proxy, expected[1], result.cache_hit))
            if not result.cache_hit:
                # A store appends (lookup drops a stale entry *before*
                # re-storing under the same key, so key-set diffing
                # would miss invalidate-then-restore round-trips).
                if cache.stats.stores > stores_before:
                    entry = cache._entries[next(reversed(cache._entries))]
                    model[proxy] = (set(entry.dependencies), True)
            elif proxy in model:
                model[proxy] = (model[proxy][0], True)
    return violations, precision_failures


operation = st.one_of(
    st.tuples(
        st.just("run"),
        st.integers(0, len(QUERY_POOL) - 1),
        st.integers(0, len(LOCATIONS) - 1),
    ),
    st.tuples(st.just("add"), st.integers(0, len(POLICY_POOL) - 1)),
    st.tuples(st.just("remove"), st.integers(0, len(POLICY_POOL) - 1)),
    st.tuples(st.just("replace"), st.integers(0, len(POLICY_POOL) - 1)),
)


@settings(max_examples=40, deadline=None)
@given(st.lists(operation, min_size=2, max_size=14))
def test_hot_reload_soundness_and_precision(operations):
    violations, precision_failures = run_interleaving(operations)
    assert not violations, violations
    assert not precision_failures, precision_failures


#: A deterministic interleaving whose stale entry is non-compliant
#: after the reload: store under the v-policy, remove it, re-run.
LEAKY_INTERLEAVING = (
    ("add", 0),  # ship k, v from t to x where v > 10
    ("run", 0, 1),  # SELECT k, v ... WHERE v > 20 AND v < 1000 -> x
    ("remove", 0),
    ("run", 0, 1),  # must now be rejected, not served stale
)


def test_injected_bug_is_detected():
    """The suite's oracle must flag a cache that skips revalidation."""
    honest, _ = run_interleaving(LEAKY_INTERLEAVING)
    assert not honest
    broken, _ = run_interleaving(LEAKY_INTERLEAVING, cache_class=BrokenPlanCache)
    assert broken, "broken invalidator served a stale plan undetected"
    # The flagged problem is the real one: a Definition-1 violation or
    # an acceptance divergence on the post-reload run.
    proxy = ("SELECT k, v FROM t WHERE v > 20 AND v < 1000", "x")
    assert any(entry[0] == proxy for entry in broken)


def test_broken_cache_serves_noncompliant_plan_directly():
    """Sanity-check the mechanism without the harness: after the
    reload, the broken cache hands out a plan the honest optimizer
    refuses to produce."""
    catalog = build_catalog()
    network = synthetic_network(catalog.locations)
    policies = PolicyCatalog(catalog)
    broken = CompliantOptimizer(
        catalog, policies, network, plan_cache=BrokenPlanCache(policies)
    )
    expression = policies.add_text(POLICY_POOL[0])
    sql = "SELECT k, v FROM t WHERE v > 20 AND v < 1000"
    broken.optimize(sql, result_location="x")
    policies.remove(expression)
    stale = broken.optimize(sql, result_location="x")
    assert stale.cache_hit
    assert check_compliance(stale.plan, PolicyEvaluator(policies))
    honest = CompliantOptimizer(catalog, policies, network, plan_cache=True)
    with pytest.raises(NonCompliantQueryError):
        honest.optimize(sql, result_location="x")
