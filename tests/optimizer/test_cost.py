"""Cost model: selectivities, cardinalities, operator costs."""

import pytest

from repro.optimizer import CostModel, normalize
from repro.optimizer.cost import CostWeights
from repro.plan import LogicalAggregate, LogicalFilter, LogicalJoin, LogicalScan
from repro.sql import Binder
from repro.tpch import build_catalog


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(scale=0.1)


@pytest.fixture(scope="module")
def model(catalog):
    return CostModel(catalog)


@pytest.fixture(scope="module")
def binder(catalog):
    return Binder(catalog)


def node(plan, kind):
    return next(n for n in plan.walk() if isinstance(n, kind))


def test_scan_cardinality_from_stats(model, binder):
    plan = binder.bind_sql("SELECT c_custkey FROM customer")
    scan = node(plan, LogicalScan)
    assert model.estimate_rows(scan) == 15_000


def test_equality_selectivity_uses_ndv(model, binder):
    plan = normalize(binder.bind_sql(
        "SELECT c_custkey FROM customer WHERE c_mktsegment = 'BUILDING'"
    ))
    filt = node(plan, LogicalFilter)
    # 5 market segments -> 1/5 of the table.
    assert model.estimate_rows(filt) == pytest.approx(15_000 / 5)


def test_range_selectivity_default_third(model, binder):
    plan = normalize(binder.bind_sql("SELECT c_custkey FROM customer WHERE c_acctbal > 0"))
    filt = node(plan, LogicalFilter)
    assert model.estimate_rows(filt) == pytest.approx(15_000 / 3)


def test_conjunction_multiplies_selectivities(model, binder):
    plan = normalize(binder.bind_sql(
        "SELECT c_custkey FROM customer "
        "WHERE c_mktsegment = 'BUILDING' AND c_acctbal > 0"
    ))
    filt = node(plan, LogicalFilter)
    assert model.estimate_rows(filt) == pytest.approx(15_000 / 5 / 3)


def test_pk_fk_join_cardinality(model, binder):
    plan = normalize(binder.bind_sql(
        "SELECT o_orderkey FROM customer, orders WHERE c_custkey = o_custkey"
    ))
    join = node(plan, LogicalJoin)
    # |orders| rows survive a PK-FK join.
    assert model.estimate_rows(join) == pytest.approx(150_000, rel=0.01)


def test_group_count_capped_by_input(model, binder):
    plan = normalize(binder.bind_sql(
        "SELECT c_nationkey, COUNT(*) FROM customer GROUP BY c_nationkey"
    ))
    agg = node(plan, LogicalAggregate)
    assert model.estimate_rows(agg) == 25  # nations


def test_estimates_never_below_one(model, binder):
    plan = normalize(binder.bind_sql(
        "SELECT c_custkey FROM customer "
        "WHERE c_mktsegment = 'X' AND c_mktsegment = 'Y' AND c_acctbal > 0 "
        "AND c_acctbal < 0"
    ))
    assert model.estimate_rows(plan) >= 1.0


def test_or_selectivity_capped_at_one(model, binder):
    plan = normalize(binder.bind_sql(
        "SELECT c_custkey FROM customer "
        "WHERE c_acctbal > 0 OR c_acctbal < 100 OR c_acctbal > -50 OR c_acctbal < 200"
    ))
    filt = node(plan, LogicalFilter)
    assert model.estimate_rows(filt) <= 15_000


def test_hash_join_cheaper_than_nested_loop(model, binder):
    equi = normalize(binder.bind_sql(
        "SELECT o_orderkey FROM customer, orders WHERE c_custkey = o_custkey"
    ))
    theta = normalize(binder.bind_sql(
        "SELECT o_orderkey FROM customer, orders WHERE c_custkey < o_custkey"
    ))
    equi_join = node(equi, LogicalJoin)
    theta_join = node(theta, LogicalJoin)
    child_rows = (15_000.0, 150_000.0)
    equi_cost = model.operator_cost(equi_join, child_rows, 150_000.0)
    theta_cost = model.operator_cost(theta_join, child_rows, 1e6)
    assert equi_cost < theta_cost


def test_custom_weights_respected(catalog, binder):
    heavy = CostModel(catalog, CostWeights(scan=100.0))
    light = CostModel(catalog, CostWeights(scan=0.1))
    plan = node(binder.bind_sql("SELECT c_custkey FROM customer"), LogicalScan)
    rows = heavy.estimate_rows(plan)
    assert heavy.operator_cost(plan, (), rows) > light.operator_cost(plan, (), rows)


def test_row_cache_consistency(model, binder):
    plan = binder.bind_sql("SELECT c_custkey FROM customer")
    scan = node(plan, LogicalScan)
    assert model.estimate_rows(scan) == model.estimate_rows(scan)
