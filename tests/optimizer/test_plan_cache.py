"""Plan-cache unit tests: parameter signatures, pinning rules,
invalidation precision, and the evaluator stats-window regression.

The parameterization contract under test (see
``optimizer/plancache.py``): literal-only differences share one cache
entry and still return correct per-binding results; differences in
shape, literal type, or compared column never collide; and a literal is
deliberately *pinned* (not parameterized) whenever rebinding it could
change a policy-implication verdict — concretely, whenever its column
is mentioned by any policy predicate of a scanned table, is constrained
more than once, or the value itself is ambiguous in the plan.
"""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.errors import NonCompliantQueryError
from repro.execution import ExecutionEngine
from repro.geo import GeoDatabase, synthetic_network
from repro.optimizer import CompliantOptimizer, PlanCache, prepare_query
from repro.policy import PolicyCatalog
from repro.sql import Binder

from ..conftest import rows_as_multiset


def build_world():
    catalog = Catalog()
    catalog.add_database("db1", "home")
    for loc in ("x", "y"):
        catalog.add_database(f"db_{loc}", loc)
    catalog.add_table(
        "db1",
        TableSchema(
            "t",
            (
                Column("k", DataType.INTEGER),
                Column("v", DataType.INTEGER),
                Column("seg", DataType.VARCHAR),
                Column("price", DataType.DECIMAL),
            ),
            primary_key=("k",),
        ),
        row_count=20,
    )
    catalog.add_table(
        "db1",
        TableSchema(
            "u",
            (Column("k", DataType.INTEGER), Column("w", DataType.INTEGER)),
            primary_key=("k",),
        ),
        row_count=10,
    )
    database = GeoDatabase(catalog)
    database.load(
        "db1",
        "t",
        [
            (i, i * 3, ["a", "b", "c"][i % 3], round(i * 1.5, 2))
            for i in range(20)
        ],
    )
    database.load("db1", "u", [(i, i * i) for i in range(10)])
    return catalog, database


def build_policies(catalog):
    policies = PolicyCatalog(catalog)
    # v is the only column mentioned by a policy *predicate* — the only
    # "sensitive" key for queries over t.
    p_v = policies.add_text("ship k, v from t to x where v > 10")
    p_u = policies.add_text("ship k, w from u to y")
    return policies, p_v, p_u


@pytest.fixture()
def world():
    catalog, database = build_world()
    policies, p_v, p_u = build_policies(catalog)
    network = synthetic_network(catalog.locations)
    optimizer = CompliantOptimizer(catalog, policies, network, plan_cache=True)
    engine = ExecutionEngine(database, network, policy_guard=optimizer.evaluator)
    return catalog, database, policies, optimizer, engine, p_v, p_u


def fresh_rows(catalog, database, policies, sql, result_location=None):
    """Cold-optimize and execute ``sql`` with a cache-less optimizer."""
    network = synthetic_network(catalog.locations)
    optimizer = CompliantOptimizer(catalog, policies, network)
    engine = ExecutionEngine(database, network, policy_guard=optimizer.evaluator)
    return engine.execute(
        optimizer.optimize(sql, result_location=result_location).plan
    ).rows


# -- sharing ---------------------------------------------------------------------


def test_literal_only_difference_shares_entry_with_correct_results(world):
    catalog, database, policies, optimizer, engine, _, _ = world
    template = "SELECT k, price FROM t WHERE seg = '{s}'"
    results = {}
    for binding in ("a", "b", "c", "a"):
        result = optimizer.optimize(template.format(s=binding))
        results[binding] = engine.execute(result).rows
    stats = optimizer.plan_cache.stats
    assert stats.stores == 1  # one shared entry for all four submissions
    assert stats.hits == 3 and stats.misses == 1
    for binding in ("a", "b", "c"):
        expected = fresh_rows(
            catalog, database, policies, template.format(s=binding)
        )
        assert rows_as_multiset(results[binding]) == rows_as_multiset(expected)
    # The bindings return *different* data — the hit is not an echo.
    assert rows_as_multiset(results["a"]) != rows_as_multiset(results["b"])


def test_in_list_values_are_parameterized(world):
    catalog, database, policies, optimizer, engine, _, _ = world
    first = optimizer.optimize("SELECT k FROM t WHERE seg IN ('a', 'b')")
    second = optimizer.optimize("SELECT k FROM t WHERE seg IN ('b', 'c')")
    assert second.cache_hit
    expected = fresh_rows(
        catalog, database, policies, "SELECT k FROM t WHERE seg IN ('b', 'c')"
    )
    assert rows_as_multiset(engine.execute(second).rows) == rows_as_multiset(
        expected
    )
    assert engine.execute(first).rows  # template still has its own rows


def test_swapped_values_rebind_simultaneously(world):
    """{5 -> 7, 7 -> 5} must substitute in one pass, not sequentially."""
    catalog, database, policies, optimizer, engine, _, _ = world
    template = "SELECT k FROM t WHERE k > {a} AND price < {b}"
    optimizer.optimize(template.format(a=5, b=7))
    swapped = optimizer.optimize(template.format(a=7, b=5))
    assert swapped.cache_hit
    expected = fresh_rows(catalog, database, policies, template.format(a=7, b=5))
    assert rows_as_multiset(engine.execute(swapped).rows) == rows_as_multiset(
        expected
    )


# -- non-collision ---------------------------------------------------------------


def test_shape_difference_never_collides(world):
    catalog, _, policies, optimizer, _, _, _ = world
    optimizer.optimize("SELECT k FROM t WHERE seg = 'a'")
    other = optimizer.optimize("SELECT k FROM t WHERE seg = 'a' AND k > 5")
    assert not other.cache_hit
    assert optimizer.plan_cache.stats.stores == 2


def test_type_and_column_differences_never_collide(world):
    catalog, _, policies, optimizer, _, _, _ = world
    binder = Binder(catalog)

    def prepared(sql):
        return prepare_query(binder.bind_sql(sql), policies)

    by_seg = prepared("SELECT k FROM t WHERE seg = 'a'")
    by_k = prepared("SELECT k FROM t WHERE k = 1")
    by_price = prepared("SELECT k FROM t WHERE price = 1.0")
    # Different compared column => different shape, regardless of the
    # signature; different literal type shows up in the signature too.
    assert by_seg.key(None) != by_k.key(None)
    assert by_k.key(None) != by_price.key(None)
    assert by_seg.signature == (DataType.VARCHAR,)
    assert by_k.signature == (DataType.INTEGER,)
    assert by_price.signature == (DataType.DECIMAL,)


def test_result_location_is_part_of_the_key(world):
    catalog, _, _, optimizer, _, _, _ = world
    optimizer.optimize("SELECT k, w FROM u WHERE w > 4", result_location="y")
    home = optimizer.optimize("SELECT k, w FROM u WHERE w > 4")
    assert not home.cache_hit
    assert optimizer.plan_cache.stats.stores == 2


# -- pinning (deliberate non-caching) --------------------------------------------


def test_policy_relevant_literal_is_pinned(world):
    """v appears in a policy predicate: v-literals must never be
    parameterized, because rebinding them can flip the implication
    verdict ``P_q => (v > 10)`` — the paper's predicate-strengthening
    grant would then leak."""
    catalog, _, policies, optimizer, _, _, _ = world
    binder = Binder(catalog)
    prepared = prepare_query(
        binder.bind_sql("SELECT k, v FROM t WHERE v > 20"), policies
    )
    assert prepared.signature == ()  # pinned: no free parameters

    # End to end: the v > 20 plan may ship to x, the v > 5 one may not.
    # If the cache wrongly shared the entry, the second query would be
    # served a compliant-looking plan instead of being rejected.
    granted = optimizer.optimize(
        "SELECT k, v FROM t WHERE v > 20", result_location="x"
    )
    assert not granted.rejected
    with pytest.raises(NonCompliantQueryError):
        optimizer.optimize("SELECT k, v FROM t WHERE v > 5", result_location="x")


def test_multiply_constrained_key_is_pinned(world):
    catalog, _, policies, _, _, _, _ = world
    prepared = prepare_query(
        Binder(catalog).bind_sql("SELECT k FROM t WHERE k > 3 AND k < 10"),
        policies,
    )
    assert prepared.signature == ()


def test_ambiguous_repeated_value_is_pinned(world):
    catalog, _, policies, _, _, _, _ = world
    prepared = prepare_query(
        Binder(catalog).bind_sql("SELECT k FROM t WHERE k > 3 AND v > 3"),
        policies,
    )
    # (INTEGER, 3) occurs twice; rebinding by value would be ambiguous —
    # and v is policy-sensitive besides.  Nothing is parameterized.
    assert prepared.signature == ()


def test_projection_literals_are_pinned(world):
    catalog, _, policies, _, _, _, _ = world
    prepared = prepare_query(
        Binder(catalog).bind_sql("SELECT k + 7 FROM t WHERE seg = 'a'"),
        policies,
    )
    # Only the predicate literal is free; normalization may substitute
    # projection expressions into predicates, so 7 stays inline.
    assert prepared.signature == (DataType.VARCHAR,)
    assert [b.value for b in prepared.bindings] == ["a"]


# -- invalidation ----------------------------------------------------------------


def test_invalidation_is_precise_and_sound(world):
    catalog, database, policies, optimizer, engine, p_v, p_u = world
    # v is doubly constrained, so its literals are pinned *independently
    # of the policy set* — the cache key survives the reloads below and
    # the lookups exercise the dependency-based invalidation path (a
    # singly-constrained v would change classification after the remove
    # and simply miss on shape, which is the other sound path; see
    # test_policy_relevant_literal_is_pinned).
    t_query = "SELECT k, v FROM t WHERE v > 20 AND v < 1000"
    u_query = "SELECT k, w FROM u WHERE w > 4"
    optimizer.optimize(t_query, result_location="x")
    optimizer.optimize(u_query, result_location="y")

    # Removing the u policy must invalidate only the u entry...
    policies.remove(p_u)
    survivor = None
    try:
        survivor = optimizer.optimize(t_query, result_location="x")
    except NonCompliantQueryError:  # pragma: no cover - would be a bug
        pytest.fail("unrelated reload invalidated the t entry")
    assert survivor.cache_hit  # precision: untouched entry survives
    with pytest.raises(NonCompliantQueryError):
        # soundness: the stale u plan is not served; re-derivation
        # (now policy-less for u) rejects the placement.
        optimizer.optimize(u_query, result_location="y")
    assert optimizer.plan_cache.stats.invalidations == 1

    # ... and removing the t policy flushes the t entry too.
    policies.remove(p_v)
    with pytest.raises(NonCompliantQueryError):
        optimizer.optimize(t_query, result_location="x")
    assert optimizer.plan_cache.stats.invalidations == 2


def test_policy_addition_does_not_invalidate(world):
    catalog, _, policies, optimizer, _, _, _ = world
    sql = "SELECT k, v FROM t WHERE v > 20"
    optimizer.optimize(sql, result_location="x")
    policies.add_text("ship seg from t to y")
    again = optimizer.optimize(sql, result_location="x")
    # Monotonicity: a new policy only widens grants; the entry stays.
    assert again.cache_hit
    assert optimizer.plan_cache.stats.invalidations == 0


def test_replace_invalidates_like_remove(world):
    catalog, _, policies, optimizer, _, p_v, _ = world
    sql = "SELECT k, v FROM t WHERE v > 20"
    optimizer.optimize(sql, result_location="x")
    from repro.policy import parse_policy

    policies.replace(p_v, parse_policy("ship k, v from t to x where v > 30", catalog))
    with pytest.raises(NonCompliantQueryError):
        # v > 20 no longer implies the tightened policy predicate.
        optimizer.optimize(sql, result_location="x")
    assert optimizer.plan_cache.stats.invalidations == 1


# -- cache mechanics -------------------------------------------------------------


def test_lru_eviction(world):
    catalog, _, policies, _, _, _, _ = world
    network = synthetic_network(catalog.locations)
    cache = PlanCache(policies, capacity=2)
    optimizer = CompliantOptimizer(catalog, policies, network, plan_cache=cache)
    optimizer.optimize("SELECT k FROM t")
    optimizer.optimize("SELECT v FROM t")
    optimizer.optimize("SELECT seg FROM t")  # evicts the oldest entry
    assert len(cache) == 2
    assert cache.stats.evictions == 1
    assert not optimizer.optimize("SELECT k FROM t").cache_hit  # was evicted
    assert optimizer.optimize("SELECT seg FROM t").cache_hit


def test_engine_guard_skip_requires_same_evaluator(world):
    catalog, database, policies, optimizer, engine, _, _ = world
    result = optimizer.optimize("SELECT k FROM t WHERE seg = 'a'")
    assert result.compliance_validated
    assert result.validated_by is optimizer.evaluator
    # A *different* guard must not be skipped: an engine guarding with
    # another evaluator still re-checks (and here still passes).
    other = CompliantOptimizer(catalog, policies, synthetic_network(catalog.locations))
    foreign = ExecutionEngine(
        database, synthetic_network(catalog.locations), policy_guard=other.evaluator
    )
    assert foreign.execute(result).rows == engine.execute(result).rows


# -- satellite 4: stats windows across a long-lived evaluator --------------------


def test_stats_window_invariant_across_queries(world):
    """reset_stats() opens a per-query window in which the counter
    invariant ``checks == hits + warm_hits + misses`` holds, with
    cross-window amortization split out as warm hits."""
    catalog, _, policies, _, _, _, _ = world
    optimizer = CompliantOptimizer(
        catalog, policies, synthetic_network(catalog.locations)
    )
    evaluator = optimizer.evaluator
    sql = "SELECT k, v FROM t WHERE v > 20"

    optimizer.optimize(sql)
    first = evaluator.stats
    assert first.implication_checks > 0
    assert first.implication_cache_warm_hits == 0
    assert first.implication_checks == (
        first.implication_cache_hits
        + first.implication_cache_warm_hits
        + first.implication_cache_misses
    )

    evaluator.reset_stats()
    optimizer.optimize(sql)
    second = evaluator.stats
    # Same query, fresh window: every check resolves from the kept
    # cache, but as *warm* hits — not conflated with intra-window hits.
    assert second.implication_cache_misses == 0
    assert second.implication_cache_warm_hits > 0
    assert second.implication_checks == (
        second.implication_cache_hits
        + second.implication_cache_warm_hits
        + second.implication_cache_misses
    )

    # Re-running within the *same* window upgrades the entries to
    # ordinary hits (they were re-tagged to the current generation).
    warm_before = second.implication_cache_warm_hits
    optimizer.optimize(sql)
    assert evaluator.stats.implication_cache_warm_hits == warm_before
    assert evaluator.stats.implication_cache_hits > 0

    # Clearing the cache starts truly cold again.
    evaluator.reset_stats(clear_implication_cache=True)
    optimizer.optimize(sql)
    cold = evaluator.stats
    assert cold.implication_cache_warm_hits == 0
    assert cold.implication_cache_misses > 0
    assert cold.implication_checks == (
        cold.implication_cache_hits
        + cold.implication_cache_misses
    )
