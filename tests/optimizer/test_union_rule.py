"""AggregateUnionTranspose: correctness and compliance value.

The rule lets fragments export *pre-aggregated* data when a per-fragment
policy forbids raw rows — extending the paper's aggregation-masking idea
to GAV-fragmented tables (§7.5)."""

import pytest

from repro.catalog import Catalog, Column, TableSchema, uniform_stats
from repro.datatypes import DataType
from repro.errors import NonCompliantQueryError
from repro.execution import ExecutionEngine, reference_plan
from repro.geo import GeoDatabase, synthetic_network
from repro.optimizer import (
    CompliantOptimizer,
    Memo,
    check_compliance,
    explore,
    normalize,
)
from repro.optimizer.rules import AggregateUnionTranspose
from repro.plan import HashAggregate, LogicalAggregate, Ship, UnionAll
from repro.policy import PolicyCatalog
from repro.sql import Binder

from ..conftest import rows_as_multiset


@pytest.fixture()
def world():
    """A sales table fragmented over two locations."""
    catalog = Catalog()
    catalog.add_database("db1", "L1")
    catalog.add_database("db2", "L2")
    schema = TableSchema(
        "sales",
        (
            Column("region", DataType.INTEGER),
            Column("amount", DataType.INTEGER),
        ),
    )
    catalog.add_fragmented_table(
        schema,
        [("db1", uniform_stats(schema, 100)), ("db2", uniform_stats(schema, 100))],
    )
    database = GeoDatabase(catalog)
    database.load("db1", "sales", [(r % 5, r * 3) for r in range(100)])
    database.load("db2", "sales", [(r % 5, r * 7 + 1) for r in range(100)])
    network = synthetic_network(["L1", "L2"])
    return catalog, database, network


SQL = "SELECT region, SUM(amount) AS total, COUNT(*) AS n FROM sales GROUP BY region"


def test_rule_produces_semantically_equal_plan(world):
    catalog, database, network = world
    engine = ExecutionEngine(database, network)
    plan = normalize(Binder(catalog).bind_sql(SQL))
    memo = Memo()
    root = memo.register_plan(plan)
    explore(memo, [AggregateUnionTranspose()])

    expected = rows_as_multiset(engine.execute(reference_plan(plan)).rows)
    core = memo.group(memo.group(root).exprs[0].child_groups[0])
    rewrites = 0
    for mexpr in core.exprs:
        full_children = tuple(
            memo.group(c.group_id).representative for c in mexpr.plan.children()
        )
        alternative = mexpr.plan.with_children(full_children)
        if isinstance(alternative, LogicalAggregate) and any(
            isinstance(n, LogicalAggregate) and n is not alternative
            for n in alternative.walk()
        ):
            rewrites += 1
        rows = engine.execute(reference_plan(alternative)).rows
        assert rows_as_multiset(rows) == expected
    assert rewrites == 1


def test_aggregate_only_fragment_policy_needs_the_rule(world):
    """Fragment db2 may export its sales only aggregated: without partial
    aggregation below the union the query is rejected; with the rule the
    optimizer ships a per-fragment aggregate and combines at L1."""
    catalog, database, network = world
    policies = PolicyCatalog(catalog)
    # db1's raw rows must stay at L1; db2's rows may reach L1 only
    # aggregated — so no single site can assemble the raw union.
    policies.add_text("ship region, amount from db1.sales to L1")
    policies.add_text(
        "ship amount as aggregates sum, count from db2.sales to L1 group by region"
    )

    optimizer = CompliantOptimizer(catalog, policies, network)
    result = optimizer.optimize(SQL)
    assert not check_compliance(result.plan, optimizer.evaluator)
    # The fragment's data leaves L2 pre-aggregated.
    for node in result.plan.walk():
        if isinstance(node, Ship) and node.source == "L2":
            assert isinstance(node.child, HashAggregate)

    # Ablation: drop the union rule -> false rejection.
    from repro.optimizer.rules import AggregateJoinTranspose, JoinAssociate, JoinCommute

    ablated = CompliantOptimizer(catalog, policies, network)
    ablated._annotator.rules = [
        JoinCommute(),
        JoinAssociate(),
        AggregateJoinTranspose(),
    ]
    with pytest.raises(NonCompliantQueryError):
        ablated.optimize(SQL)

    # And the compliant plan computes the right answer.
    engine = ExecutionEngine(database, network, policy_guard=optimizer.evaluator)
    expected = ExecutionEngine(database, network).execute(
        reference_plan(normalize(Binder(catalog).bind_sql(SQL)))
    )
    actual = engine.execute(result.plan)
    assert rows_as_multiset(actual.rows) == rows_as_multiset(expected.rows)


def test_avg_blocks_union_rewrite(world):
    catalog, _database, _network = world
    plan = normalize(
        Binder(catalog).bind_sql("SELECT region, AVG(amount) FROM sales GROUP BY region")
    )
    memo = Memo()
    memo.register_plan(plan)
    stats = explore(memo, [AggregateUnionTranspose()])
    assert stats.expressions_added == 0
