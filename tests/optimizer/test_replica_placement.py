"""Replica-aware compliant placement.

The tentpole contract at the optimizer layer:

* **AR1 extension** — a scan's execution traits ℰ are its home site plus
  every *compliant* replica site (replicas the policies would not let
  the whole table ship to never enter ℰ);
* **cheapest compliant copy** — the site-selection DP prices each
  replica's link like any other candidate, so a replica co-located with
  the join partner wins and the cross-border ship disappears;
* **validator source check** — the independent validator accepts scans
  at compliant replica sites and rejects both unregistered sites
  (displaced scans) and registered-but-ungranted replicas;
* **plan-cache invalidation** — replica add/drop bumps the catalog
  version and drops cached entries; ``max_staleness`` is part of the
  cache key, so optimizers with different freshness floors never share
  an entry.
"""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.execution import fragment_plan, relocate_fragment
from repro.geo import synthetic_network
from repro.optimizer import CompliantOptimizer, PlanCache, check_compliance
from repro.optimizer.validator import check_compliance_strict
from repro.plan import TableScan
from repro.policy import PolicyCatalog, PolicyEvaluator
from repro.policy.replicas import ReplicaResolver

QUERY = "SELECT t.k, t.v, u.w FROM t, u WHERE t.k = u.k"


def build_world():
    """t lives at home, u at near; policies let all of t travel to near
    (and only near), so a t-replica at near is compliant and one at far
    is not."""
    catalog = Catalog()
    catalog.add_database("db1", "home")
    catalog.add_database("db2", "near")
    catalog.add_database("db3", "far")
    catalog.add_table(
        "db1",
        TableSchema(
            "t",
            (Column("k", DataType.INTEGER), Column("v", DataType.INTEGER)),
            primary_key=("k",),
        ),
        row_count=1000,
    )
    catalog.add_table(
        "db2",
        TableSchema(
            "u",
            (Column("k", DataType.INTEGER), Column("w", DataType.INTEGER)),
            primary_key=("k",),
        ),
        row_count=10,
    )
    policies = PolicyCatalog(catalog)
    policies.add_text("ship k, v from t to near")
    policies.add_text("ship k, w from u to *")
    return catalog, policies


def scan_locations(plan):
    return {
        (node.database, node.table): node.location
        for node in plan.walk()
        if isinstance(node, TableScan)
    }


class TestReplicaTraits:
    def test_resolver_compliant_sites(self):
        catalog, policies = build_world()
        catalog.add_replica("db1", "t", "near")
        catalog.add_replica("db1", "t", "far")
        resolver = ReplicaResolver(catalog, PolicyEvaluator(policies))
        assert resolver.full_scan_grant("db1", "t") == frozenset({"home", "near"})
        assert resolver.compliant_sites("db1", "t") == frozenset({"near"})
        assert resolver.all_sites("db1", "t") == frozenset({"near", "far"})

    def test_scan_traits_include_only_compliant_replicas(self):
        catalog, policies = build_world()
        catalog.add_replica("db1", "t", "near")
        catalog.add_replica("db1", "t", "far")
        optimizer = CompliantOptimizer(
            catalog, policies, synthetic_network(catalog.locations)
        )
        result = optimizer.optimize(QUERY)
        for node in result.annotate.root.walk():
            if getattr(node.op, "table", None) == "t":
                assert node.execution_trait == frozenset({"home", "near"})
                break
        else:  # pragma: no cover
            pytest.fail("no scan of t in the annotated plan")

    def test_staleness_bound_filters_planning_candidates(self):
        catalog, policies = build_world()
        catalog.add_replica("db1", "t", "near", staleness_seconds=10.0)
        fresh = CompliantOptimizer(
            catalog, policies, synthetic_network(catalog.locations),
            max_staleness=1.0,
        )
        result = fresh.optimize(QUERY)
        # The only replica is too stale for this optimizer: the t-scan
        # must stay home.
        assert scan_locations(result.plan)[("db1", "t")] == "home"
        stale_ok = CompliantOptimizer(
            catalog, policies, synthetic_network(catalog.locations),
            max_staleness=30.0,
        )
        assert scan_locations(stale_ok.optimize(QUERY).plan)[("db1", "t")] == "near"


class TestReplicaPlacement:
    def test_compliant_replica_removes_cross_border_ship(self):
        catalog, policies = build_world()
        network = synthetic_network(catalog.locations)
        baseline = CompliantOptimizer(catalog, policies, network).optimize(QUERY)
        assert baseline.estimated_shipping_cost > 0.0
        catalog.add_replica("db1", "t", "near")
        replicated = CompliantOptimizer(catalog, policies, network).optimize(QUERY)
        assert scan_locations(replicated.plan)[("db1", "t")] == "near"
        assert replicated.estimated_shipping_cost == 0.0

    def test_replica_plan_passes_both_validators(self):
        catalog, policies = build_world()
        catalog.add_replica("db1", "t", "near")
        optimizer = CompliantOptimizer(
            catalog, policies, synthetic_network(catalog.locations)
        )
        plan = optimizer.optimize(QUERY).plan
        assert scan_locations(plan)[("db1", "t")] == "near"
        assert check_compliance(plan, optimizer.evaluator) == []
        assert check_compliance_strict(plan, optimizer.evaluator) == []


class TestValidatorSourceCheck:
    def relocated_scan_plan(self, catalog, policies, site):
        """Optimize with the t-scan at home, then forcibly relocate the
        scan fragment to ``site`` — the validator's input for a scan
        claiming a non-primary source."""
        optimizer = CompliantOptimizer(
            catalog, policies, synthetic_network(catalog.locations)
        )
        plan = optimizer.optimize(QUERY).plan
        dag = fragment_plan(plan)
        (scan_fragment,) = [
            f
            for f in dag.fragments
            if any(
                isinstance(n, TableScan) and n.table == "t"
                for n in f.root.walk()
            )
        ]
        return relocate_fragment(plan, scan_fragment, site), optimizer.evaluator

    def test_unregistered_site_is_displaced_scan(self):
        catalog, policies = build_world()
        plan, evaluator = self.relocated_scan_plan(catalog, policies, "near")
        violations = check_compliance(plan, evaluator)
        assert violations
        assert any("no replica" in str(v) for v in violations)

    def test_non_compliant_replica_rejected(self):
        catalog, policies = build_world()
        catalog.add_replica("db1", "t", "far")
        plan, evaluator = self.relocated_scan_plan(catalog, policies, "far")
        violations = check_compliance(plan, evaluator)
        assert any("do not admit" in str(v) for v in violations)
        assert check_compliance_strict(plan, evaluator)

    def test_compliant_replica_accepted_even_if_stale(self):
        catalog, policies = build_world()
        # Staleness is a planning preference, not a policy property:
        # the validator admits any *compliant* replica.
        catalog.add_replica("db1", "t", "near", staleness_seconds=60.0)
        plan, evaluator = self.relocated_scan_plan(catalog, policies, "near")
        assert check_compliance(plan, evaluator) == []


class TestPlanCacheReplicaInvalidation:
    def test_add_and_drop_replica_invalidate(self):
        catalog, policies = build_world()
        optimizer = CompliantOptimizer(
            catalog,
            policies,
            synthetic_network(catalog.locations),
            plan_cache=True,
        )
        cache = optimizer.plan_cache
        first = optimizer.optimize(QUERY)
        assert not first.cache_hit
        assert optimizer.optimize(QUERY).cache_hit

        catalog.add_replica("db1", "t", "near")
        refreshed = optimizer.optimize(QUERY)
        assert not refreshed.cache_hit  # stale pre-replica entry dropped
        assert cache.stats.invalidations >= 1
        assert scan_locations(refreshed.plan)[("db1", "t")] == "near"
        assert optimizer.optimize(QUERY).cache_hit

        catalog.drop_replica("db1", "t", "near")
        replanned = optimizer.optimize(QUERY)
        assert not replanned.cache_hit  # cached plan read a dropped replica
        assert scan_locations(replanned.plan)[("db1", "t")] == "home"

    def test_max_staleness_is_part_of_the_cache_key(self):
        catalog, policies = build_world()
        catalog.add_replica("db1", "t", "near", staleness_seconds=10.0)
        network = synthetic_network(catalog.locations)
        shared = PlanCache(policies)
        fresh = CompliantOptimizer(
            catalog, policies, network, plan_cache=shared, max_staleness=1.0
        )
        stale_ok = CompliantOptimizer(
            catalog, policies, network, plan_cache=shared, max_staleness=30.0
        )
        fresh_plan = fresh.optimize(QUERY)
        stale_plan = stale_ok.optimize(QUERY)
        # Different freshness floors must not share an entry: the two
        # first submissions are both misses with distinct placements.
        assert not fresh_plan.cache_hit
        assert not stale_plan.cache_hit
        assert scan_locations(fresh_plan.plan)[("db1", "t")] == "home"
        assert scan_locations(stale_plan.plan)[("db1", "t")] == "near"
        assert fresh.optimize(QUERY).cache_hit
        assert stale_ok.optimize(QUERY).cache_hit
