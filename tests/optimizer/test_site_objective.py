"""The response-time site-selection objective (paper §3.3 discussion:
the methods "can also be adapted to other cost models (e.g., that
determine query response time)")."""

import pytest

from repro.optimizer import CompliantOptimizer, TraditionalOptimizer, check_compliance
from repro.optimizer.site_selector import SiteSelector


def test_invalid_objective_rejected(carco):
    with pytest.raises(ValueError):
        SiteSelector(carco.network, objective="latency")


def test_response_time_plans_remain_compliant(carco):
    optimizer = CompliantOptimizer(
        carco.catalog, carco.policies, carco.network, site_objective="response_time"
    )
    result = optimizer.optimize(carco.query)
    assert not check_compliance(result.plan, optimizer.evaluator)


def test_response_time_cost_is_critical_path(carco):
    """For the same annotated plan, the response-time objective reports a
    cost no larger than the total-transfer objective (max ≤ sum)."""
    total = CompliantOptimizer(
        carco.catalog, carco.policies, carco.network, site_objective="total"
    ).optimize(carco.query)
    response = CompliantOptimizer(
        carco.catalog, carco.policies, carco.network, site_objective="response_time"
    ).optimize(carco.query)
    assert response.selection.shipping_cost <= total.selection.shipping_cost + 1e-12


def test_traditional_supports_objective_too(carco):
    optimizer = TraditionalOptimizer(
        carco.catalog, carco.network, site_objective="response_time"
    )
    result = optimizer.optimize(carco.query)
    assert result.plan is not None
