"""CLI smoke tests (python -m repro ...)."""

import pytest

from repro.cli import main


def test_queries_listing(capsys):
    assert main(["queries"]) == 0
    out = capsys.readouterr().out
    for name in ("Q2", "Q3", "Q5", "Q8", "Q9", "Q10"):
        assert f"-- {name}" in out


def test_policies_listing(capsys):
    assert main(["policies", "--set", "CR+A"]) == 0
    out = capsys.readouterr().out
    assert "as aggregates sum from lineitem" in out


def test_explain_named_query(capsys):
    assert main(["explain", "Q3", "--set", "CR"]) == 0
    out = capsys.readouterr().out
    assert "TableScan" in out
    assert "memo groups" in out


def test_explain_with_traits(capsys):
    assert main(["explain", "Q3", "--set", "CR+A", "--traits"]) == 0
    out = capsys.readouterr().out
    assert "Annotated plan" in out
    assert "E={" in out and "S={" in out


def test_explain_traditional_reports_compliance(capsys):
    assert main(["explain", "Q3", "--set", "CR", "--traditional"]) == 0
    out = capsys.readouterr().out
    assert "compliant under set CR: False" in out
    assert "violation:" in out


def test_explain_rejected_query_exit_code(capsys):
    code = main(
        [
            "explain",
            "SELECT o_comment, c_name FROM orders, customer "
            "WHERE o_custkey = c_custkey AND c_nationkey = 3",
            "--set",
            "T",
            "--result-location",
            "Asia",
        ]
    )
    assert code == 2
    assert "REJECTED" in capsys.readouterr().err


def test_audit_command(capsys):
    assert main(
        ["audit", "SELECT l_orderkey, l_extendedprice FROM lineitem", "--set", "CR+A"]
    ) == 0
    out = capsys.readouterr().out
    assert "NorthAmerica  ALLOWED" in out.replace("   ", " ").replace("  ", " ") or "ALLOWED" in out


def test_run_small_query(capsys):
    assert main(
        [
            "run",
            "SELECT n_name, COUNT(*) AS cnt FROM nation, region "
            "WHERE n_regionkey = r_regionkey AND r_name = 'EUROPE' GROUP BY n_name",
            "--scale",
            "0.001",
            "--limit",
            "3",
        ]
    ) == 0
    captured = capsys.readouterr()
    assert "n_name" in captured.out
    assert "shipped across borders" in captured.err


def test_invalid_sql_exit_code(capsys):
    assert main(["explain", "SELEKT broken"]) == 1
    assert "error:" in capsys.readouterr().err


def test_serve_workload(tmp_path, capsys):
    workload = tmp_path / "workload.json"
    workload.write_text(
        '[{"query": "Q3", "arrival": 0.0},'
        ' {"query": "Q3", "arrival": 0.0, "deadline": 1e-6}]'
    )
    # concurrency 1: the second request waits behind the first and its
    # deadline passes in the queue -> shed, never started.
    assert main(
        ["serve", str(workload), "--scale", "0.001", "--concurrency", "1"]
    ) == 0
    captured = capsys.readouterr()
    assert "Q3: served" in captured.out
    assert "SHED" in captured.out
    assert "1 shed" in captured.err
    assert "breakers:" in captured.err


def test_serve_missing_workload_file_exit_code(tmp_path, capsys):
    assert main(["serve", str(tmp_path / "absent.json")]) == 1
    assert "cannot read workload file" in capsys.readouterr().err


def test_serve_invalid_knob_exit_code(tmp_path, capsys):
    workload = tmp_path / "workload.json"
    workload.write_text('["Q3"]')
    assert main(["serve", str(workload), "--concurrency", "0"]) == 1
    assert "positive integer" in capsys.readouterr().err


def test_run_writes_trace_and_audit_accepts_it(tmp_path, capsys):
    trace = tmp_path / "q3.jsonl"
    assert main(
        ["run", "Q3", "--scale", "0.001", "--parallel", "--trace", str(trace)]
    ) == 0
    captured = capsys.readouterr()
    assert f"-> {trace}" in captured.err
    assert trace.exists()
    assert main(["audit", str(trace), "--set", "CR"]) == 0
    assert "audit: COMPLIANT" in capsys.readouterr().out


def test_audit_flags_mutated_trace_with_exit_4(tmp_path, capsys):
    import json

    trace = tmp_path / "q3.jsonl"
    assert main(
        ["run", "Q3", "--scale", "0.001", "--parallel", "--trace", str(trace)]
    ) == 0
    capsys.readouterr()
    mutated = []
    for line in trace.read_text().splitlines():
        entry = json.loads(line)
        if entry.get("kind") == "ship":
            entry["target"] = "Atlantis"  # off-catalog: never permitted
        mutated.append(json.dumps(entry))
    trace.write_text("\n".join(mutated) + "\n")
    assert main(["audit", str(trace)]) == 4
    out = capsys.readouterr().out
    assert "NON-COMPLIANT" in out
    assert "VIOLATION" in out
    assert "forbidden-destination" in out


def test_audit_malformed_trace_exit_code(tmp_path, capsys):
    trace = tmp_path / "broken.jsonl"
    trace.write_text('{"kind": "ship"\n')
    assert main(["audit", str(trace)]) == 1
    err = capsys.readouterr().err
    assert "error:" in err and "line 1" in err


def test_audit_with_policy_file(tmp_path, capsys):
    trace = tmp_path / "q3.jsonl"
    assert main(
        ["run", "Q3", "--scale", "0.001", "--parallel", "--trace", str(trace)]
    ) == 0
    capsys.readouterr()
    # A policy file granting nothing: every cross-border ship violates.
    policies = tmp_path / "strict.policies"
    policies.write_text("# deny-all: no ship expressions\n")
    assert main(["audit", str(trace), "--policies", str(policies)]) == 4
    capsys.readouterr()
    # The curated CR set, exported and re-imported, audits clean.
    assert main(["policies", "--set", "CR"]) == 0
    exported = capsys.readouterr().out
    allow = tmp_path / "cr.policies"
    allow.write_text(exported)
    assert main(["audit", str(trace), "--policies", str(allow)]) == 0
    assert "COMPLIANT" in capsys.readouterr().out


def test_audit_policies_flag_requires_trace_file(tmp_path, capsys):
    policies = tmp_path / "p.policies"
    policies.write_text("")
    assert main(["audit", "Q3", "--policies", str(policies)]) == 1
    assert "--policies requires a trace file" in capsys.readouterr().err


def test_serve_trace_flag_records_workload(tmp_path, capsys):
    workload = tmp_path / "workload.json"
    workload.write_text('[{"query": "Q3", "arrival": 0.0}]')
    trace = tmp_path / "serve.jsonl"
    assert main(
        ["serve", str(workload), "--scale", "0.001", "--trace", str(trace)]
    ) == 0
    capsys.readouterr()
    assert trace.exists()
    assert main(["audit", str(trace)]) == 0
    assert "audit: COMPLIANT" in capsys.readouterr().out


REPLICA_SPEC = "db1.customer@NorthAmerica;db1.orders@NorthAmerica"


def test_run_with_replicas_and_audit_roundtrip(tmp_path, capsys):
    """A faulted replicated run serves (exit 0) and audits clean when
    the auditor re-registers the same replicas; omitting the spec or
    auditing under policies that do not admit the replica exits 4."""
    trace = tmp_path / "replicas.jsonl"
    assert main(
        [
            "run", "Q3", "--scale", "0.001", "--set", "T", "--parallel",
            "--replicas", REPLICA_SPEC, "--result-location", "Europe",
            "--faults", "flaky:NorthAmerica->Europe@0+0.05",
            "--retries", "6", "--trace", str(trace),
        ]
    ) == 0
    capsys.readouterr()
    assert main(["audit", str(trace), "--set", "T", "--replicas", REPLICA_SPEC]) == 0
    assert "COMPLIANT" in capsys.readouterr().out
    # Fail-closed: no spec -> the replica read is a displaced scan.
    assert main(["audit", str(trace), "--set", "T"]) == 4
    assert "displaced-scan" in capsys.readouterr().out
    # Registered but ungranted under CR -> the dedicated category.
    assert main(["audit", str(trace), "--set", "CR", "--replicas", REPLICA_SPEC]) == 4
    assert "non-compliant-replica" in capsys.readouterr().out


def test_run_replica_failover_summary_line(capsys):
    """Crashing the collapsed plan's site surfaces the replica-failover
    counters on the CLI (exit 0, not a partial failure)."""
    spec = REPLICA_SPEC + ";db4.lineitem@Europe"
    assert main(
        [
            "run", "Q3", "--scale", "0.001", "--set", "T", "--parallel",
            "--replicas", spec, "--faults", "crash:Europe@0", "--retries", "6",
        ]
    ) == 0
    captured = capsys.readouterr()
    out = captured.out + captured.err  # run diagnostics go to stderr
    assert "failover (replica):" in out
    assert "replica failovers: 1" in out
    assert "1 partial failures avoided" in out


def test_bad_replica_spec_exit_code(capsys):
    assert main(["explain", "Q3", "--set", "T", "--replicas", "customer@X"]) == 1


STALE_REPLICAS = "db1.customer@NorthAmerica+0.5;db1.orders@NorthAmerica+0.5"


def test_run_with_freshness_and_audit_exit_code_matrix(tmp_path, capsys):
    """One stale replicated run, three audits: same specs re-derive ->
    exit 0; staleness evidence without --replicas fails closed -> exit
    1; a tighter audit-side bound flags the served reads -> exit 4."""
    trace = tmp_path / "freshness.jsonl"
    assert main(
        [
            "run", "Q3", "--scale", "0.001", "--set", "T",
            "--replicas", STALE_REPLICAS, "--result-location", "Europe",
            "--staleness-policy", "read-stale", "--trace", str(trace),
        ]
    ) == 0
    err = capsys.readouterr().err
    assert "freshness (read-stale" in err
    assert "2 replica reads" in err
    assert "2 stale" in err
    # The same replica spec: every claim re-derives exactly.
    assert (
        main(["audit", str(trace), "--set", "T", "--replicas", STALE_REPLICAS])
        == 0
    )
    out = capsys.readouterr().out
    assert "COMPLIANT" in out
    assert "2 replica reads" in out
    # Fail-closed: freshness evidence without the replica spec is an
    # audit *error* (exit 1), never a clean report.
    assert main(["audit", str(trace), "--set", "T"]) == 1
    assert "--replicas" in capsys.readouterr().err
    # A tighter audit-side bound flags the served stale reads.
    assert (
        main(
            [
                "audit", str(trace), "--set", "T",
                "--replicas", STALE_REPLICAS, "--max-staleness", "0.2",
            ]
        )
        == 4
    )
    assert "stale-read" in capsys.readouterr().out


def test_bad_refresh_spec_exit_code(capsys):
    assert (
        main(
            [
                "run", "Q1", "--set", "T", "--replicas", REPLICA_SPEC,
                "--refresh", "warp:db1.customer@NorthAmerica@0.1",
            ]
        )
        == 1
    )
    assert "unknown refresh event kind" in capsys.readouterr().err
