"""Catalog, schema, and statistics tests."""

import pytest

from repro.catalog import (
    Catalog,
    Column,
    ForeignKey,
    TableSchema,
    stats_from_rows,
    uniform_stats,
)
from repro.datatypes import DataType
from repro.errors import CatalogError


def simple_schema(name="t"):
    return TableSchema(
        name,
        (
            Column("a", DataType.INTEGER),
            Column("b", DataType.VARCHAR, width_bytes=10),
        ),
        primary_key=("a",),
    )


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", (Column("a", DataType.INTEGER), Column("a", DataType.INTEGER)))

    def test_pk_must_exist(self):
        with pytest.raises(CatalogError):
            TableSchema("t", (Column("a", DataType.INTEGER),), primary_key=("z",))

    def test_fk_columns_must_exist(self):
        with pytest.raises(CatalogError):
            TableSchema(
                "t",
                (Column("a", DataType.INTEGER),),
                foreign_keys=(ForeignKey(("z",), "u", ("a",)),),
            )

    def test_row_width_uses_overrides_and_defaults(self):
        schema = simple_schema()
        assert schema.row_width == 8 + 10

    def test_column_lookup(self):
        schema = simple_schema()
        assert schema.column("b").dtype == DataType.VARCHAR
        assert schema.column_index("b") == 1
        with pytest.raises(CatalogError):
            schema.column("zz")


class TestCatalog:
    def test_database_and_table_registration(self):
        c = Catalog()
        c.add_database("db1", "L1")
        table = c.add_table("db1", simple_schema(), row_count=50)
        assert table.fragments[0].location == "L1"
        assert c.table("T").name == "t"  # case-insensitive lookup
        assert c.locations == ["L1"]

    def test_duplicate_database_rejected(self):
        c = Catalog()
        c.add_database("db1", "L1")
        with pytest.raises(CatalogError):
            c.add_database("db1", "L2")

    def test_duplicate_table_rejected(self):
        c = Catalog()
        c.add_database("db1", "L1")
        c.add_table("db1", simple_schema())
        with pytest.raises(CatalogError):
            c.add_table("db1", simple_schema())

    def test_unknown_lookups_raise(self):
        c = Catalog()
        with pytest.raises(CatalogError):
            c.database("nope")
        with pytest.raises(CatalogError):
            c.table("nope")

    def test_fragmented_table(self):
        c = Catalog()
        c.add_database("db1", "L1")
        c.add_database("db2", "L2")
        schema = simple_schema("f")
        table = c.add_fragmented_table(
            schema,
            [("db1", uniform_stats(schema, 10)), ("db2", uniform_stats(schema, 30))],
        )
        assert table.is_fragmented
        assert table.total_rows == 40
        assert c.stored_table("db2", "f").stats.row_count == 30
        with pytest.raises(CatalogError):
            c.stored_table("db3", "f")

    def test_empty_fragments_rejected(self):
        c = Catalog()
        with pytest.raises(CatalogError):
            c.add_fragmented_table(simple_schema("f"), [])

    def test_locations_deduplicated_in_order(self):
        c = Catalog()
        c.add_database("db1", "L1")
        c.add_database("db2", "L2")
        c.add_database("db3", "L1")
        assert c.locations == ["L1", "L2"]


class TestStatistics:
    def test_stats_from_rows(self):
        schema = simple_schema()
        rows = [(1, "x"), (2, "x"), (3, None), (3, "y")]
        stats = stats_from_rows(schema, rows)
        assert stats.row_count == 4
        assert stats.columns["a"].distinct_count == 3
        assert stats.columns["a"].min_value == 1
        assert stats.columns["a"].max_value == 3
        assert stats.columns["b"].null_fraction == pytest.approx(0.25)

    def test_stats_from_empty_rows(self):
        stats = stats_from_rows(simple_schema(), [])
        assert stats.row_count == 0
        assert stats.columns["a"].distinct_count == 1  # floor of 1

    def test_uniform_stats_pk_gets_row_count(self):
        stats = uniform_stats(simple_schema(), 1000)
        assert stats.columns["a"].distinct_count == 1000
        assert stats.columns["b"].distinct_count == 100

    def test_uniform_stats_overrides(self):
        stats = uniform_stats(simple_schema(), 1000, {"b": 5})
        assert stats.columns["b"].distinct_count == 5

    def test_unknown_column_stats_default(self):
        stats = uniform_stats(simple_schema(), 1000)
        fallback = stats.column("zzz")
        assert fallback.distinct_count >= 1
