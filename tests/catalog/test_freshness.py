"""Refresh schedules, the --refresh spec grammar, and the tracker.

The freshness model is declarative on the simulated clock: every
replica is synchronized at t=0, a schedule derives its refresh
completions, and :class:`FreshnessTracker` turns those into staleness
at any instant — identically for the scheduler and the independent
trace auditor.
"""

import pytest

from repro.catalog import (
    Catalog,
    Column,
    FreshnessTracker,
    RefreshDegrade,
    RefreshPause,
    RefreshSchedule,
    TableSchema,
    apply_refresh_spec,
    parse_refresh_spec,
    random_refresh_schedules,
)
from repro.datatypes import DataType
from repro.errors import CatalogError


def build_catalog():
    catalog = Catalog()
    catalog.add_database("db1", "home")
    catalog.add_database("db2", "near")
    catalog.add_database("db3", "far")
    catalog.add_table(
        "db1",
        TableSchema(
            "t",
            (Column("k", DataType.INTEGER), Column("v", DataType.INTEGER)),
            primary_key=("k",),
        ),
        row_count=10,
    )
    catalog.add_replica("db1", "t", "near", staleness_seconds=0.25)
    catalog.add_replica("db1", "t", "far")
    return catalog


# -- schedule math -------------------------------------------------------------


def test_periodic_refreshes_and_last_next():
    schedule = RefreshSchedule(period=0.1)
    assert list(schedule.refreshes(0.35)) == pytest.approx([0.1, 0.2, 0.3])
    assert schedule.last_refresh(0.05) == 0.0  # synchronized at load
    assert schedule.last_refresh(0.25) == pytest.approx(0.2)
    assert schedule.next_refresh(0.25) == pytest.approx(0.3)
    # A refresh instant is "at or before": staleness resets exactly there.
    assert schedule.last_refresh(0.2) == pytest.approx(0.2)


def test_phase_shifts_first_refresh_only():
    schedule = RefreshSchedule(period=0.1, phase=0.03)
    assert list(schedule.refreshes(0.25)) == pytest.approx([0.03, 0.13, 0.23])


def test_bounded_pause_defers_refreshes_to_window_end():
    schedule = RefreshSchedule(
        period=0.1, pauses=(RefreshPause(at=0.15, duration=0.3),)
    )
    # 0.1 lands; 0.2, 0.3, 0.4 all fall in [0.15, 0.45) and defer to
    # 0.45; subsequent nominal instants resume from the deferred one.
    assert list(schedule.refreshes(0.6)) == pytest.approx([0.1, 0.45, 0.55])


def test_unbounded_pause_cancels_all_later_refreshes():
    schedule = RefreshSchedule(period=0.1, pauses=(RefreshPause(at=0.15),))
    assert list(schedule.refreshes(10.0)) == pytest.approx([0.1])
    assert schedule.next_refresh(0.1) is None
    assert schedule.last_refresh(5.0) == pytest.approx(0.1)  # stale forever


def test_degrade_window_multiplies_scheduled_gap():
    schedule = RefreshSchedule(
        period=0.1, degradations=(RefreshDegrade(factor=2.0, at=0.06, duration=0.1),)
    )
    # The gap scheduled *from* 0.1 (inside the window) doubles.
    assert list(schedule.refreshes(0.45)) == pytest.approx([0.1, 0.3, 0.4])


def test_schedule_validation():
    with pytest.raises(CatalogError):
        RefreshSchedule(period=0.0)
    with pytest.raises(CatalogError):
        RefreshSchedule(period=0.1, phase=-1.0)
    with pytest.raises(CatalogError):
        RefreshPause(at=-1.0)
    with pytest.raises(CatalogError):
        RefreshDegrade(factor=0.5)
    # Pathological period x late horizon fails loudly, never spins.
    with pytest.raises(CatalogError, match="too small"):
        RefreshSchedule(period=1e-9).last_refresh(10.0)


# -- registration and versioning ----------------------------------------------


def test_set_refresh_bumps_catalog_version():
    catalog = build_catalog()
    before = catalog.version
    catalog.set_refresh("db1", "t", "near", RefreshSchedule(period=0.1))
    assert catalog.version == before + 1
    assert catalog.refresh_schedule("db1", "t", "near").period == 0.1
    # Replacing the schedule bumps again: a period change alters which
    # replicas satisfy a bound, so cached derived state must re-derive.
    catalog.set_refresh("db1", "t", "near", RefreshSchedule(period=0.2))
    assert catalog.version == before + 2


def test_set_refresh_unknown_replica_fails():
    catalog = build_catalog()
    with pytest.raises(CatalogError, match="no replica"):
        catalog.set_refresh("db1", "t", "home", RefreshSchedule(period=0.1))


def test_drop_replica_drops_its_schedule():
    catalog = build_catalog()
    catalog.set_refresh("db1", "t", "near", RefreshSchedule(period=0.1))
    catalog.drop_replica("db1", "t", "near")
    catalog.add_replica("db1", "t", "near")
    assert catalog.refresh_schedule("db1", "t", "near") is None


# -- the tracker ---------------------------------------------------------------


def test_tracker_primary_scheduled_and_static_replicas():
    catalog = build_catalog()
    catalog.set_refresh("db1", "t", "far", RefreshSchedule(period=0.1))
    tracker = FreshnessTracker(catalog)
    # Primary: exact by definition, at any instant.
    assert tracker.staleness("db1", "t", "home", 7.0) == 0.0
    # Unscheduled replica: the declared bound is its constant lag (the
    # static PR 8 model).
    assert tracker.staleness("db1", "t", "near", 7.0) == pytest.approx(0.25)
    # Scheduled replica: now - last refresh completion.
    assert tracker.staleness("db1", "t", "far", 0.05) == pytest.approx(0.05)
    assert tracker.staleness("db1", "t", "far", 0.25) == pytest.approx(0.05)
    assert tracker.next_refresh("db1", "t", "far", 0.25) == pytest.approx(0.3)
    assert tracker.next_refresh("db1", "t", "near", 0.25) is None


def test_tracker_unknown_site_fails_closed():
    tracker = FreshnessTracker(build_catalog())
    with pytest.raises(CatalogError, match="no replica"):
        tracker.staleness("db1", "t", "nowhere", 0.0)


# -- the --refresh spec grammar ------------------------------------------------


def test_parse_refresh_spec_grammar():
    schedules = parse_refresh_spec(
        "every:db1.t@near@0.05+0.01; pause:db1.t@near@0.1+0.2;"
        "every:db1.t@far@0.1; degrade:db1.t@far@0+0.5x4"
    )
    near = schedules[("db1", "t", "near")]
    assert near.period == 0.05 and near.phase == 0.01
    assert near.pauses == (RefreshPause(at=0.1, duration=0.2),)
    far = schedules[("db1", "t", "far")]
    assert far.degradations == (RefreshDegrade(factor=4.0, at=0.0, duration=0.5),)


def test_parse_refresh_spec_event_order_does_not_matter():
    a = parse_refresh_spec("pause:db1.t@near@0.1; every:db1.t@near@0.05")
    b = parse_refresh_spec("every:db1.t@near@0.05; pause:db1.t@near@0.1")
    assert a == b


@pytest.mark.parametrize(
    "spec, match",
    [
        ("warp:db1.t@near@0.1", "unknown refresh event kind"),
        ("every:db1.t@near", "bad refresh event"),
        ("every:t@near@0.1", "qualified name"),
        ("every:db1.t@near@zero", "bad refresh event"),
        ("pause:db1.t@near@0.1", "no every: schedule"),
        ("degrade:db1.t@near@0x2", "no every: schedule"),
        ("every:db1.t@near@0.1; every:db1.t@near@0.2", "duplicate"),
    ],
)
def test_parse_refresh_spec_rejects(spec, match):
    with pytest.raises(CatalogError, match=match):
        parse_refresh_spec(spec)


def test_random_refresh_schedules_deterministic_and_cover_all_replicas():
    catalog = build_catalog()
    a = random_refresh_schedules(42, catalog.all_replicas())
    b = random_refresh_schedules(42, catalog.all_replicas())
    assert a == b
    assert set(a) == {("db1", "t", "near"), ("db1", "t", "far")}
    assert a != random_refresh_schedules(43, catalog.all_replicas())
    via_spec = parse_refresh_spec("random:42", replicas=catalog.all_replicas())
    assert via_spec == a


def test_apply_refresh_spec_registers_and_bumps():
    catalog = build_catalog()
    before = catalog.version
    count = apply_refresh_spec(catalog, "every:db1.t@near@0.05")
    assert count == 1
    assert catalog.version == before + 1
    assert catalog.refresh_schedule("db1", "t", "near").period == 0.05
    with pytest.raises(CatalogError, match="no replica"):
        apply_refresh_spec(catalog, "every:db1.t@home@0.05")
