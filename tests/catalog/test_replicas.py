"""Replica declarations: the dataclass, the CLI spec grammar, and the
catalog's add/drop/version/staleness bookkeeping."""

import pytest

from repro.catalog import Catalog, Column, Replica, TableSchema, parse_replica_spec
from repro.datatypes import DataType
from repro.errors import CatalogError


def build_catalog() -> Catalog:
    catalog = Catalog()
    catalog.add_database("db1", "home")
    catalog.add_database("db2", "near")
    catalog.add_database("db3", "far")
    catalog.add_table(
        "db1",
        TableSchema(
            "t",
            (Column("k", DataType.INTEGER), Column("v", DataType.INTEGER)),
            primary_key=("k",),
        ),
        row_count=10,
    )
    return catalog


class TestReplica:
    def test_describe_with_and_without_staleness(self):
        assert Replica("db1", "t", "near").describe() == "db1.t@near"
        assert Replica("db1", "t", "near", 0.5).describe() == "db1.t@near+0.5"

    def test_negative_staleness_rejected(self):
        with pytest.raises(CatalogError, match="staleness"):
            Replica("db1", "t", "near", -1.0)


class TestParseReplicaSpec:
    def test_single_entry(self):
        (replica,) = parse_replica_spec("db1.t@near")
        assert replica == Replica("db1", "t", "near", 0.0)

    def test_multiple_entries_with_staleness_and_whitespace(self):
        replicas = parse_replica_spec(" db1.t@near+0.5 ; db2.U@far , db1.t@far;")
        assert replicas == [
            Replica("db1", "t", "near", 0.5),
            Replica("db2", "u", "far", 0.0),  # table lowercased
            Replica("db1", "t", "far", 0.0),
        ]

    @pytest.mark.parametrize(
        "bad",
        [
            "db1.t",  # no @site
            "t@near",  # unqualified table
            "db1.t@",  # empty site
            ".t@near",  # empty database
            "db1.t@near+fast",  # non-numeric staleness
        ],
    )
    def test_malformed_entries_rejected(self, bad):
        with pytest.raises(CatalogError, match="replica spec|staleness"):
            parse_replica_spec(bad)


class TestCatalogReplicas:
    def test_add_and_list(self):
        catalog = build_catalog()
        assert catalog.replicas("db1", "t") == []
        assert catalog.replica_sites("db1", "t") == frozenset()
        catalog.add_replica("db1", "t", "near")
        catalog.add_replica("db1", "t", "far", staleness_seconds=2.0)
        assert {r.site for r in catalog.replicas("db1", "t")} == {"near", "far"}
        assert catalog.replica_sites("db1", "t") == frozenset({"near", "far"})
        assert len(catalog.all_replicas()) == 2

    def test_staleness_filter(self):
        catalog = build_catalog()
        catalog.add_replica("db1", "t", "near", staleness_seconds=0.5)
        catalog.add_replica("db1", "t", "far", staleness_seconds=5.0)
        assert catalog.replica_sites("db1", "t", max_staleness=1.0) == frozenset(
            {"near"}
        )
        assert catalog.replica_sites("db1", "t", max_staleness=0.0) == frozenset()
        assert catalog.replica_sites("db1", "t", max_staleness=None) == frozenset(
            {"near", "far"}
        )

    def test_version_bumps_on_add_and_drop(self):
        catalog = build_catalog()
        v0 = catalog.version
        catalog.add_replica("db1", "t", "near")
        v1 = catalog.version
        assert v1 > v0
        catalog.drop_replica("db1", "t", "near")
        assert catalog.version > v1
        assert catalog.replica_sites("db1", "t") == frozenset()

    def test_invalid_placements_rejected(self):
        catalog = build_catalog()
        with pytest.raises(CatalogError):
            catalog.add_replica("db1", "t", "nowhere")  # unknown location
        with pytest.raises(CatalogError):
            catalog.add_replica("db1", "t", "home")  # primary site
        catalog.add_replica("db1", "t", "near")
        with pytest.raises(CatalogError):
            catalog.add_replica("db1", "t", "near")  # duplicate
        with pytest.raises(CatalogError):
            catalog.drop_replica("db1", "t", "far")  # not registered
