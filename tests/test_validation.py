"""Shared parameter-validator tests (satellite of the serving PR):
every tuning knob across the CLI, engine, scheduler, retry policy, and
server fails with the same typed error and message shape."""

import math

import pytest

from repro.errors import ExecutionError, InvalidParameterError
from repro.execution import RetryPolicy
from repro.execution.scheduler import validate_worker_count
from repro.validation import (
    validate_non_negative_int,
    validate_positive_int,
    validate_timeout,
)


class TestValidatePositiveInt:
    def test_accepts_positive(self):
        assert validate_positive_int(3, "knob") == 3

    @pytest.mark.parametrize("value", [0, -1, 2.5, "4", True, None])
    def test_rejects_non_positive_and_non_int(self, value):
        with pytest.raises(InvalidParameterError, match="knob must be a positive integer"):
            validate_positive_int(value, "knob")


class TestValidateNonNegativeInt:
    def test_accepts_zero(self):
        assert validate_non_negative_int(0, "knob") == 0

    @pytest.mark.parametrize("value", [-1, 0.5, False])
    def test_rejects(self, value):
        with pytest.raises(InvalidParameterError, match="knob"):
            validate_non_negative_int(value, "knob")


class TestValidateTimeout:
    def test_none_means_unbounded(self):
        assert validate_timeout(None, "deadline") is None

    def test_accepts_positive_numbers(self):
        assert validate_timeout(1.5, "deadline") == 1.5
        assert validate_timeout(2, "deadline") == 2

    @pytest.mark.parametrize("value", [0.0, -1.0, math.nan, "soon"])
    def test_rejects_non_positive_and_nan(self, value):
        with pytest.raises(InvalidParameterError):
            validate_timeout(value, "deadline")


class TestAppliedAcrossLayers:
    """The same typed error surfaces from every entry point."""

    def test_worker_count_uses_shared_validator(self):
        with pytest.raises(InvalidParameterError, match="worker count"):
            validate_worker_count(0)
        # And InvalidParameterError stays catchable as ExecutionError,
        # preserving the pre-existing contract.
        with pytest.raises(ExecutionError, match="positive integer"):
            validate_worker_count(-2)

    def test_retry_policy_uses_shared_validators(self):
        with pytest.raises(InvalidParameterError, match="max_retries"):
            RetryPolicy(max_retries=-1)
        with pytest.raises(InvalidParameterError, match="fragment_timeout"):
            RetryPolicy(fragment_timeout=0.0)
