"""Binder tests: name resolution, typing, aggregation shaping, GAV."""

import pytest

from repro.catalog import Catalog, Column, TableSchema, uniform_stats
from repro.datatypes import DataType
from repro.errors import BindingError
from repro.expr import BaseColumn, ColumnRef
from repro.plan import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
)
from repro.sql import Binder


@pytest.fixture()
def catalog():
    c = Catalog()
    c.add_database("db1", "L1")
    c.add_database("db2", "L2")
    c.add_table(
        "db1",
        TableSchema(
            "t",
            (
                Column("a", DataType.INTEGER),
                Column("b", DataType.VARCHAR),
                Column("d", DataType.DATE),
            ),
            primary_key=("a",),
        ),
        row_count=100,
    )
    c.add_table(
        "db2",
        TableSchema("u", (Column("a", DataType.INTEGER), Column("x", DataType.DECIMAL))),
        row_count=200,
    )
    return c


@pytest.fixture()
def binder(catalog):
    return Binder(catalog)


def test_simple_projection(binder):
    plan = binder.bind_sql("SELECT a, b FROM t")
    assert isinstance(plan, LogicalProject)
    assert plan.field_names == ("a", "b")
    assert plan.fields[0].base == BaseColumn("db1", "t", "a")


def test_star_expansion(binder):
    plan = binder.bind_sql("SELECT * FROM t")
    assert plan.field_names == ("a", "b", "d")


def test_where_typed_boolean(binder):
    plan = binder.bind_sql("SELECT a FROM t WHERE a > 1")
    assert isinstance(plan.child, LogicalFilter)


def test_non_boolean_where_rejected(binder):
    with pytest.raises(BindingError):
        binder.bind_sql("SELECT a FROM t WHERE a + 1")


def test_unknown_table_and_column(binder):
    with pytest.raises(Exception):
        binder.bind_sql("SELECT a FROM nope")
    with pytest.raises(BindingError):
        binder.bind_sql("SELECT zz FROM t")


def test_ambiguous_column_rejected(binder):
    with pytest.raises(BindingError, match="ambiguous"):
        binder.bind_sql("SELECT a FROM t, u")


def test_qualified_resolution(binder):
    plan = binder.bind_sql("SELECT t.a, u.a FROM t, u WHERE t.a = u.a")
    assert plan.field_names == ("a", "a_1")  # deduplicated output names


def test_duplicate_alias_rejected(binder):
    with pytest.raises(BindingError, match="duplicate"):
        binder.bind_sql("SELECT x.a FROM t x, u x")


def test_cross_join_shape(binder):
    plan = binder.bind_sql("SELECT t.a FROM t, u")
    join = plan.child
    assert isinstance(join, LogicalJoin)
    assert join.condition is None
    assert isinstance(join.left, LogicalScan)
    assert isinstance(join.right, LogicalScan)


def test_aggregate_plan_shape(binder):
    plan = binder.bind_sql("SELECT b, SUM(a) AS total FROM t GROUP BY b")
    assert isinstance(plan, LogicalProject)
    agg = plan.child
    assert isinstance(agg, LogicalAggregate)
    assert [k.name for k in agg.group_keys] == ["t.b"]
    assert plan.field_names == ("b", "total")


def test_global_aggregate_without_group_by(binder):
    plan = binder.bind_sql("SELECT COUNT(*) FROM t")
    agg = plan.child
    assert isinstance(agg, LogicalAggregate)
    assert agg.group_keys == ()


def test_non_grouped_output_rejected(binder):
    with pytest.raises(BindingError, match="non-grouped"):
        binder.bind_sql("SELECT a, SUM(a) FROM t GROUP BY b")


def test_computed_group_key_materialized(binder):
    plan = binder.bind_sql("SELECT YEAR(d), COUNT(*) FROM t GROUP BY YEAR(d)")
    agg = plan.child
    assert isinstance(agg, LogicalAggregate)
    assert agg.group_keys[0].name == "$gk0"
    pre = agg.child
    assert isinstance(pre, LogicalProject)
    assert "$gk0" in pre.names


def test_group_expr_reuse_in_output(binder):
    # YEAR(d) in SELECT must resolve to the materialized group key.
    plan = binder.bind_sql("SELECT YEAR(d) AS y, COUNT(*) FROM t GROUP BY YEAR(d)")
    assert plan.exprs[0] == ColumnRef("$gk0", DataType.INTEGER, None)


def test_having_becomes_filter_above_aggregate(binder):
    plan = binder.bind_sql("SELECT b FROM t GROUP BY b HAVING COUNT(*) > 1")
    having = plan.child
    assert isinstance(having, LogicalFilter)
    assert isinstance(having.child, LogicalAggregate)


def test_aggregate_in_where_rejected(binder):
    with pytest.raises(BindingError):
        binder.bind_sql("SELECT a FROM t WHERE SUM(a) > 1")


def test_count_star_only_for_count(binder):
    with pytest.raises(Exception):
        binder.bind_sql("SELECT SUM(*) FROM t")


def test_order_by_alias_and_limit(binder):
    plan = binder.bind_sql("SELECT a AS k FROM t ORDER BY k DESC LIMIT 3")
    assert isinstance(plan, LogicalSort)
    assert plan.sort_keys == (("k", True),)
    assert plan.limit == 3


def test_order_by_unknown_column_rejected(binder):
    with pytest.raises(BindingError):
        binder.bind_sql("SELECT a FROM t ORDER BY nope")


def test_derived_table_binding(binder):
    plan = binder.bind_sql(
        "SELECT x.total FROM (SELECT b, SUM(a) AS total FROM t GROUP BY b) AS x "
        "WHERE x.total > 10"
    )
    assert plan.field_names == ("total",)


def test_between_translated(binder):
    plan = binder.bind_sql("SELECT a FROM t WHERE a BETWEEN 1 AND 5")
    predicate = plan.child.predicate
    assert "(t.a >= 1)" in str(predicate) and "(t.a <= 5)" in str(predicate)


def test_fragmented_table_becomes_union():
    c = Catalog()
    c.add_database("db1", "L1")
    c.add_database("db2", "L2")
    schema = TableSchema("f", (Column("a", DataType.INTEGER),))
    c.add_fragmented_table(
        schema,
        [("db1", uniform_stats(schema, 10)), ("db2", uniform_stats(schema, 20))],
    )
    plan = Binder(c).bind_sql("SELECT a FROM f")
    union = plan.child
    assert isinstance(union, LogicalUnion)
    assert len(union.inputs) == 2
    assert {s.database for s in union.inputs} == {"db1", "db2"}
    # Union output fields drop fragment provenance.
    assert union.fields[0].base is None


def test_distinct_aggregate_rejected(binder):
    with pytest.raises(BindingError, match="DISTINCT"):
        binder.bind_sql("SELECT COUNT(DISTINCT a) FROM t")
