"""SQL parser tests."""

import datetime

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import parse_expression, parse_query
from repro.sql.ast import (
    AstAggregate,
    AstBetween,
    AstBinary,
    AstColumn,
    AstFunction,
    AstIn,
    AstIsNull,
    AstLike,
    AstLiteral,
    AstUnary,
    DerivedTableRef,
    TableRef,
)


def test_minimal_select():
    q = parse_query("SELECT a FROM t")
    assert q.items[0].expr == AstColumn(None, "a")
    assert q.from_items == (TableRef("t", None),)
    assert q.where is None


def test_star_select():
    q = parse_query("SELECT * FROM t")
    assert q.star


def test_aliases_with_and_without_as():
    q = parse_query("SELECT a AS x, b y FROM t AS u, s v")
    assert q.items[0].alias == "x"
    assert q.items[1].alias == "y"
    assert q.from_items[0] == TableRef("t", "u")
    assert q.from_items[1] == TableRef("s", "v")


def test_join_on_folds_into_where():
    q = parse_query("SELECT a FROM t JOIN s ON t.x = s.y WHERE t.z > 1")
    assert isinstance(q.where, AstBinary) and q.where.op == "AND"


def test_operator_precedence():
    e = parse_expression("a + b * c")
    assert isinstance(e, AstBinary) and e.op == "+"
    assert isinstance(e.right, AstBinary) and e.right.op == "*"


def test_and_or_precedence():
    e = parse_expression("a = 1 OR b = 2 AND c = 3")
    assert isinstance(e, AstBinary) and e.op == "OR"
    assert isinstance(e.right, AstBinary) and e.right.op == "AND"


def test_not_like_in_between_isnull():
    assert parse_expression("a NOT LIKE 'x%'") == AstLike(AstColumn(None, "a"), "x%", True)
    e = parse_expression("a NOT IN (1, 2)")
    assert isinstance(e, AstIn) and e.negated
    e = parse_expression("a BETWEEN 1 AND 2")
    assert isinstance(e, AstBetween) and not e.negated
    e = parse_expression("a IS NOT NULL")
    assert isinstance(e, AstIsNull) and e.negated


def test_date_literal():
    e = parse_expression("d >= DATE '1994-01-01'")
    assert isinstance(e, AstBinary)
    assert e.right == AstLiteral(datetime.date(1994, 1, 1))


def test_negative_literal_in_in_list():
    e = parse_expression("a IN (-1, 2)")
    assert e.values[0] == AstLiteral(-1)


def test_aggregates_and_count_star():
    q = parse_query("SELECT COUNT(*), SUM(a * 2), AVG(b) FROM t GROUP BY c")
    assert q.items[0].expr == AstAggregate("COUNT", None)
    assert isinstance(q.items[1].expr, AstAggregate)
    assert q.group_by == (AstColumn(None, "c"),)


def test_scalar_function_call():
    e = parse_expression("YEAR(o_orderdate)")
    assert e == AstFunction("YEAR", (AstColumn(None, "o_orderdate"),))


def test_group_by_expression():
    q = parse_query("SELECT YEAR(d) FROM t GROUP BY YEAR(d)")
    assert q.group_by == (AstFunction("YEAR", (AstColumn(None, "d"),)),)


def test_order_by_and_limit():
    q = parse_query("SELECT a FROM t ORDER BY a DESC, b ASC LIMIT 5")
    assert q.order_by[0].descending is True
    assert q.order_by[1].descending is False
    assert q.limit == 5


def test_derived_table():
    q = parse_query("SELECT x.a FROM (SELECT a FROM t GROUP BY a) AS x")
    item = q.from_items[0]
    assert isinstance(item, DerivedTableRef)
    assert item.alias == "x"
    assert item.query.group_by


def test_having_clause():
    q = parse_query("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2")
    assert q.having is not None


def test_unary_minus():
    e = parse_expression("-a + 1")
    assert isinstance(e, AstBinary)
    assert e.left == AstUnary("-", AstColumn(None, "a"))


def test_parenthesized_expression():
    e = parse_expression("(a + b) * c")
    assert isinstance(e, AstBinary) and e.op == "*"


@pytest.mark.parametrize(
    "bad",
    [
        "SELECT",
        "SELECT a",
        "SELECT a FROM",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t LIMIT x",
        "SELECT a FROM t GROUP a",
        "SELECT a FROM (SELECT a FROM t)",  # derived table needs alias
        "SELECT a FROM t trailing nonsense ,",
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(SqlSyntaxError):
        parse_query(bad)


def test_trailing_input_rejected():
    with pytest.raises(SqlSyntaxError):
        parse_expression("a = 1 )")
