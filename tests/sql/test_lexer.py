"""Tokenizer tests."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import TokenStream, TokenType, tokenize


def kinds(text):
    return [(t.type, t.text) for t in tokenize(text) if t.type != TokenType.END]


def test_basic_tokens():
    assert kinds("SELECT a, b FROM t") == [
        (TokenType.IDENT, "SELECT"),
        (TokenType.IDENT, "a"),
        (TokenType.SYMBOL, ","),
        (TokenType.IDENT, "b"),
        (TokenType.IDENT, "FROM"),
        (TokenType.IDENT, "t"),
    ]


def test_numbers_integer_and_decimal():
    assert kinds("1 2.5 .75") == [
        (TokenType.NUMBER, "1"),
        (TokenType.NUMBER, "2.5"),
        (TokenType.NUMBER, ".75"),
    ]


def test_qualified_name_not_swallowed_by_number():
    tokens = kinds("t1.col")
    assert tokens == [
        (TokenType.IDENT, "t1"),
        (TokenType.SYMBOL, "."),
        (TokenType.IDENT, "col"),
    ]


def test_string_with_escaped_quote():
    tokens = kinds("'it''s'")
    assert tokens == [(TokenType.STRING, "it's")]


def test_unterminated_string_raises():
    with pytest.raises(SqlSyntaxError):
        tokenize("'oops")


def test_multichar_operators():
    assert [t for _, t in kinds("a <= b <> c >= d != e")] == [
        "a", "<=", "b", "<>", "c", ">=", "d", "!=", "e",
    ]


def test_line_comments_skipped():
    assert kinds("a -- comment here\n b") == [
        (TokenType.IDENT, "a"),
        (TokenType.IDENT, "b"),
    ]


def test_unexpected_character_raises():
    with pytest.raises(SqlSyntaxError):
        tokenize("a ; b")


def test_stream_helpers():
    stream = TokenStream(tokenize("SELECT x"))
    assert stream.at_keyword("SELECT")
    assert stream.accept_keyword("SELECT")
    token = stream.expect_ident()
    assert token.text == "x"
    stream.expect_end()
    assert stream.exhausted


def test_stream_expect_errors():
    stream = TokenStream(tokenize("a b"))
    with pytest.raises(SqlSyntaxError):
        stream.expect_keyword("SELECT")
    with pytest.raises(SqlSyntaxError):
        stream.expect_symbol("(")
    stream.advance()
    stream.advance()
    with pytest.raises(SqlSyntaxError):
        stream.expect_ident()
