"""Property tests for :func:`repro.geo.synthetic_network`.

The docstring promises a *metric* WAN: positions on the unit circle,
costs affine in euclidean distance with positive bases.  Two documented
consequences are load-bearing for the optimizer:

* **Triangle inequality** — relaying ``a -> b -> c`` never beats the
  direct ``a -> c`` link, for any payload size.  Otherwise the site
  selector would produce degenerate relay plans and the makespan
  simulation would reward artificial ships.
* **Symmetry of existence** — whenever ``(a, b)`` is explicitly
  modeled, so is ``(b, a)`` (and with equal cost: positions do not
  depend on direction), for *all* location pairs.

Hypothesis drives both over random location-name sets, so the
guarantees hold for arbitrary deployments, not just the curated TPC-H
locations.  The pessimistic-default fallback for unmodeled pairs is
unit-tested exactly.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import LinkCost, NetworkModel, synthetic_network

location_names = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=12,
    ),
    min_size=2,
    max_size=6,
    unique=True,
)


@settings(max_examples=60, deadline=None)
@given(locations=location_names, nbytes=st.integers(min_value=0, max_value=10**9))
def test_triangle_inequality_for_any_payload(locations, nbytes):
    network = synthetic_network(locations)
    for a, b, c in itertools.permutations(locations, 3):
        direct = network.transfer_time(a, c, nbytes)
        relayed = network.transfer_time(a, b, nbytes) + network.transfer_time(
            b, c, nbytes
        )
        assert direct <= relayed + 1e-9


@settings(max_examples=60, deadline=None)
@given(locations=location_names)
def test_symmetry_of_existence_and_cost(locations):
    network = synthetic_network(locations)
    for a, b in itertools.permutations(locations, 2):
        assert network.has_link(a, b)
        assert network.has_link(b, a)
        assert network.link(a, b) == network.link(b, a)
    for name in locations:
        assert not network.has_link(name, name)  # local is the free fast path


@settings(max_examples=60, deadline=None)
@given(locations=location_names)
def test_every_cross_pair_costs_more_than_local(locations):
    network = synthetic_network(locations)
    for a, b in itertools.permutations(locations, 2):
        cost = network.link(a, b)
        assert cost.alpha > 0
        assert cost.beta > 0
        assert network.transfer_time(a, b, 1) > network.transfer_time(a, a, 1)


class TestPessimisticDefault:
    """Unknown pairs must not get a free ride over unmodeled links."""

    def test_unknown_pair_uses_documented_default(self):
        network = NetworkModel()
        assert not network.has_link("X", "Y")
        assert network.link("X", "Y") == LinkCost(alpha=0.5, beta=2e-7)

    def test_default_is_worse_than_synthetic_links(self):
        network = synthetic_network(["A", "B"])
        default = NetworkModel().link("X", "Y")
        modeled = network.link("A", "B")
        assert default.alpha >= modeled.alpha

    def test_default_transfer_time_is_affine_in_bytes(self):
        network = NetworkModel()
        assert network.transfer_time("X", "Y", 0) == pytest.approx(0.5)
        assert network.transfer_time("X", "Y", 10**7) == pytest.approx(0.5 + 2.0)

    def test_same_site_bypasses_default_and_links(self):
        network = NetworkModel()
        network.set_link("A", "A", alpha=99.0, beta=1.0)  # must be ignored
        assert network.link("A", "A") == LinkCost(0.0, 0.0)
        assert network.transfer_time("A", "A", 10**9) == 0.0
