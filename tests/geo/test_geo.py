"""Network model and geo-database tests."""

import itertools

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.errors import CatalogError, ExecutionError
from repro.geo import GeoDatabase, LinkCost, NetworkModel, synthetic_network


class TestNetworkModel:
    def test_local_transfer_is_free(self):
        n = NetworkModel()
        assert n.transfer_time("A", "A", 1_000_000) == 0.0

    def test_explicit_link(self):
        n = NetworkModel()
        n.set_link("A", "B", alpha=0.1, beta=1e-6)
        assert n.transfer_time("A", "B", 1_000_000) == pytest.approx(0.1 + 1.0)

    def test_unknown_link_pessimistic_default(self):
        n = NetworkModel()
        assert n.transfer_time("A", "B", 0) > 0

    def test_synthetic_is_symmetric(self):
        n = synthetic_network(["A", "B", "C"])
        for a, b in itertools.permutations(["A", "B", "C"], 2):
            assert n.link(a, b) == n.link(b, a)

    def test_synthetic_is_deterministic(self):
        n1 = synthetic_network(["A", "B"])
        n2 = synthetic_network(["A", "B"])
        assert n1.link("A", "B") == n2.link("A", "B")

    def test_synthetic_satisfies_triangle_inequality(self):
        """Relaying through a third site must never be cheaper — otherwise
        the site selector produces degenerate relay plans."""
        locations = ["A", "B", "C", "D", "E", "F"]
        n = synthetic_network(locations)
        nbytes = 10_000_000
        for a, b, c in itertools.permutations(locations, 3):
            direct = n.transfer_time(a, c, nbytes)
            relayed = n.transfer_time(a, b, nbytes) + n.transfer_time(b, c, nbytes)
            assert direct <= relayed + 1e-9

    def test_costs_grow_with_bytes(self):
        n = synthetic_network(["A", "B"])
        assert n.transfer_time("A", "B", 10) < n.transfer_time("A", "B", 10_000_000)


class TestGeoDatabase:
    @pytest.fixture()
    def world(self):
        c = Catalog()
        c.add_database("db1", "L1")
        c.add_table(
            "db1",
            TableSchema("t", (Column("a", DataType.INTEGER), Column("b", DataType.VARCHAR))),
        )
        return c, GeoDatabase(c)

    def test_load_and_read(self, world):
        catalog, db = world
        db.load("db1", "t", [(1, "x"), (2, "y")])
        assert db.rows("db1", "t") == [(1, "x"), (2, "y")]
        assert db.row_count("db1", "t") == 2
        assert db.has_data("db1", "t")

    def test_load_updates_stats(self, world):
        catalog, db = world
        db.load("db1", "t", [(1, "x"), (2, "y"), (2, "y")])
        assert catalog.stored_table("db1", "t").stats.row_count == 3
        assert catalog.stored_table("db1", "t").stats.columns["a"].distinct_count == 2

    def test_columns_transposes_and_caches(self, world):
        _, db = world
        db.load("db1", "t", [(1, "x"), (2, "y")])
        cols = db.columns("db1", "t")
        assert cols == [(1, 2), ("x", "y")]
        assert db.columns("db1", "T") is cols  # cached, case-insensitive

    def test_columns_empty_table_has_schema_width(self, world):
        _, db = world
        db.load("db1", "t", [])
        assert db.columns("db1", "t") == [(), ()]

    def test_columns_cache_invalidated_on_reload(self, world):
        _, db = world
        db.load("db1", "t", [(1, "x")])
        assert db.columns("db1", "t") == [(1,), ("x",)]
        db.load("db1", "t", [(2, "y"), (3, "z")])
        assert db.columns("db1", "t") == [(2, 3), ("y", "z")]

    def test_row_width_mismatch_rejected(self, world):
        _, db = world
        with pytest.raises(ExecutionError):
            db.load("db1", "t", [(1,)])

    def test_validation_catches_type_errors(self, world):
        _, db = world
        with pytest.raises(ExecutionError):
            db.load("db1", "t", [("not-int", "x")], validate=True)
        db.load("db1", "t", [(None, None)], validate=True)  # NULLs always ok

    def test_missing_data_raises(self, world):
        _, db = world
        with pytest.raises(CatalogError):
            db.rows("db1", "t")
