"""Strict network-model tests (satellite of the serving PR): a
transfer over a link the model does not describe raises one typed
:class:`~repro.errors.UnknownLinkError` — identically from the row and
batch SHIP paths — instead of silently substituting the pessimistic
default link."""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.errors import UnknownLinkError
from repro.execution import ExecutionEngine
from repro.geo import GeoDatabase, NetworkModel
from repro.plan import Field, Project, Ship, TableScan


class TestStrictModel:
    def test_default_is_lenient(self):
        n = NetworkModel()
        assert not n.strict
        assert n.transfer_time("A", "B", 0) > 0  # pessimistic default

    def test_strict_raises_typed_error_with_endpoints(self):
        n = NetworkModel(strict=True)
        n.set_link("A", "B", alpha=0.1, beta=1e-6)
        assert n.transfer_time("A", "B", 0) == pytest.approx(0.1)
        with pytest.raises(UnknownLinkError, match="no link modeled") as info:
            n.link("B", "A")  # only the forward direction was described
        assert info.value.source == "B"
        assert info.value.target == "A"

    def test_strict_local_transfer_stays_free(self):
        n = NetworkModel(strict=True)
        assert n.transfer_time("A", "A", 1_000_000) == 0.0


@pytest.fixture()
def world():
    catalog = Catalog()
    catalog.add_database("db1", "L1")
    catalog.add_table(
        "db1",
        TableSchema("t", (Column("x", DataType.INTEGER),), primary_key=("x",)),
    )
    database = GeoDatabase(catalog)
    database.load("db1", "t", [(i,) for i in range(5)])
    network = NetworkModel(strict=True)  # no links described at all
    return database, network


def ship_plan():
    """scan t @ L1 -> ship -> project @ L2 (a link the model omits)."""
    fields = (Field("x", DataType.INTEGER),)
    scan = TableScan(
        fields=fields, location="L1", table="t", database="db1", alias="t"
    )
    ship = Ship(fields=fields, location="L2", child=scan, source="L1", target="L2")
    return Project(
        fields=fields,
        location="L2",
        child=ship,
        exprs=tuple(f.to_ref() for f in fields),
        names=("x",),
    )


class TestShipPathsRaiseIdentically:
    @pytest.mark.parametrize("executor", ["row", "batch"])
    def test_typed_error_from_both_executors(self, world, executor):
        database, network = world
        engine = ExecutionEngine(database, network, executor=executor)
        with pytest.raises(UnknownLinkError) as info:
            engine.execute(ship_plan())
        assert info.value.source == "L1"
        assert info.value.target == "L2"

    def test_error_is_identical_across_executors(self, world):
        database, network = world
        messages = {}
        for executor in ("row", "batch"):
            engine = ExecutionEngine(database, network, executor=executor)
            with pytest.raises(UnknownLinkError) as info:
                engine.execute(ship_plan())
            messages[executor] = str(info.value)
        assert messages["row"] == messages["batch"]

    def test_lenient_model_executes_the_same_plan(self, world):
        database, _ = world
        engine = ExecutionEngine(database, NetworkModel())
        output = engine.execute(ship_plan())
        assert sorted(output.rows) == [(i,) for i in range(5)]
