"""Policy expression parsing and binding tests."""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.errors import PolicySyntaxError
from repro.expr import AggregateFunction, BaseColumn
from repro.policy import PolicyCatalog, parse_policy


@pytest.fixture()
def catalog():
    c = Catalog()
    c.add_database("db1", "L1")
    c.add_database("db2", "L2")
    c.add_table(
        "db1",
        TableSchema(
            "customer",
            (
                Column("custkey", DataType.INTEGER),
                Column("name", DataType.VARCHAR),
                Column("acctbal", DataType.DECIMAL),
                Column("mktseg", DataType.VARCHAR),
            ),
            primary_key=("custkey",),
        ),
    )
    c.add_table(
        "db1",
        TableSchema(
            "orders",
            (
                Column("custkey", DataType.INTEGER),
                Column("ordkey", DataType.INTEGER),
                Column("totprice", DataType.DECIMAL),
            ),
        ),
    )
    return c


def test_basic_expression(catalog):
    e = parse_policy("ship custkey, name from customer to L2, L3", catalog)
    assert e.database == "db1"
    assert e.tables == ("customer",)
    assert e.ship_attributes == {
        BaseColumn("db1", "customer", "custkey"),
        BaseColumn("db1", "customer", "name"),
    }
    assert e.destinations == {"L2", "L3"}
    assert not e.is_aggregate


def test_ship_star_expands_all_columns(catalog):
    e = parse_policy("ship * from customer to *", catalog)
    assert len(e.ship_attributes) == 4
    assert e.destinations is None
    assert e.destinations_resolved(frozenset(["L1", "L2"])) == {"L1", "L2"}


def test_where_clause_bound_with_provenance(catalog):
    e = parse_policy(
        "ship name from customer to L2 where mktseg = 'commercial'", catalog
    )
    assert e.predicate is not None
    refs = [r for r in e.predicate.references()]
    assert refs == ["customer.mktseg"]


def test_table_alias(catalog):
    e = parse_policy("ship name from customer C to L2 where C.mktseg = 'x'", catalog)
    assert e.predicate is not None


def test_aggregate_expression(catalog):
    e = parse_policy(
        "ship acctbal as aggregates sum, avg from customer to * group by mktseg",
        catalog,
    )
    assert e.is_aggregate
    assert e.agg_functions == {AggregateFunction.SUM, AggregateFunction.AVG}
    assert e.group_by == {BaseColumn("db1", "customer", "mktseg")}


def test_group_by_requires_aggregates(catalog):
    with pytest.raises(PolicySyntaxError):
        parse_policy("ship acctbal from customer to * group by mktseg", catalog)


def test_where_and_group_by_in_either_order(catalog):
    e1 = parse_policy(
        "ship acctbal as aggregates sum from customer to * "
        "where mktseg = 'x' group by mktseg",
        catalog,
    )
    e2 = parse_policy(
        "ship acctbal as aggregates sum from customer to * "
        "group by mktseg where mktseg = 'x'",
        catalog,
    )
    assert e1.group_by == e2.group_by
    assert e1.predicate == e2.predicate


def test_qualified_table_name(catalog):
    e = parse_policy("ship name from db1.customer to L2", catalog)
    assert e.database == "db1"


def test_multi_table_expression_needs_join_predicate(catalog):
    with pytest.raises(PolicySyntaxError, match="join predicate"):
        parse_policy("ship name, totprice from customer, orders to L2", catalog)
    e = parse_policy(
        "ship name, totprice from customer c, orders o to L2 "
        "where c.custkey = o.custkey",
        catalog,
    )
    assert set(e.tables) == {"customer", "orders"}
    assert e.mentions(BaseColumn("db1", "orders", "totprice"))


def test_unknown_aggregate_function(catalog):
    with pytest.raises(PolicySyntaxError):
        parse_policy("ship acctbal as aggregates median from customer to *", catalog)


def test_unknown_column_raises(catalog):
    with pytest.raises(Exception):
        parse_policy("ship nosuch from customer to *", catalog)


def test_catalog_registration_and_lookup(catalog):
    policies = PolicyCatalog(catalog)
    policies.add_text("ship custkey, name from customer to L2")
    policies.add_text("ship totprice from orders to L2")
    assert len(policies) == 2
    custkey = BaseColumn("db1", "customer", "custkey")
    assert len(policies.for_attribute(custkey)) == 1
    assert policies.for_table("db1", "orders")
    assert not policies.for_table("db2", "orders")
    assert policies.all_locations == {"L1", "L2"}
    assert len(policies.expressions) == 2
