"""Exact reproduction of Table 1 of the paper (§5).

Relation T(A,...,G) with policy expressions e1–e4; the algorithm must
yield 𝒜(q1) = {l3} and 𝒜(q2) = {l1, l2} (the ``include_home=False``
variant matches the table, which ignores T's own location)."""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.policy import PolicyCatalog, PolicyEvaluator, describe_local_query
from repro.sql import Binder


@pytest.fixture(scope="module")
def world():
    catalog = Catalog()
    catalog.add_database("db0", "l0")  # T's home location
    for loc in ("l1", "l2", "l3", "l4"):
        catalog.add_database(f"db_{loc}", loc)
    catalog.add_table(
        "db0",
        TableSchema("t", tuple(Column(x, DataType.INTEGER) for x in "abcdefg")),
        row_count=100,
    )
    policies = PolicyCatalog(catalog)
    policies.add_text("ship a, b, c from t to l2, l3")  # e1
    policies.add_text("ship a, b from t to l1, l2, l3, l4")  # e2
    policies.add_text("ship a, d from t to l1, l3 where b > 10")  # e3
    policies.add_text(
        "ship f, g as aggregates sum, avg from t to l1, l2 group by e, c"
    )  # e4
    return catalog, policies


def evaluate(world, sql, include_home=False):
    catalog, policies = world
    plan = Binder(catalog).bind_sql(sql)
    local = describe_local_query(plan)
    return PolicyEvaluator(policies).evaluate(local, include_home=include_home)


def test_q1_matches_paper(world):
    # q1 = Π_{A,C,D}(σ_{B>15}(T)) — the paper's Table 1 gives {l3}.
    assert evaluate(world, "SELECT a, c, d FROM t WHERE b > 15") == {"l3"}


def test_q2_matches_paper(world):
    # q2 = Γ_{C; SUM(F*(1-G))}(T) — the paper's text gives {l1, l2}.
    assert evaluate(world, "SELECT c, SUM(f * (1 - g)) FROM t GROUP BY c") == {
        "l1",
        "l2",
    }


def test_home_location_always_included_when_requested(world):
    result = evaluate(world, "SELECT a, c, d FROM t WHERE b > 15", include_home=True)
    assert result == {"l0", "l3"}


def test_q1_without_predicate_loses_e3(world):
    # Without B > 15 the implication B > 10 fails, so D gets nothing.
    assert evaluate(world, "SELECT a, c, d FROM t") == set()


def test_attribute_wise_intersection(world):
    # A alone is the most permissive attribute.
    assert evaluate(world, "SELECT a FROM t WHERE b > 15") == {"l1", "l2", "l3", "l4"}
    # A and C intersect to e1's destinations.
    assert evaluate(world, "SELECT a, c FROM t") == {"l2", "l3"}


def test_aggregate_with_wrong_function_rejected(world):
    # MIN is not among e4's {sum, avg}.
    assert evaluate(world, "SELECT c, MIN(f) FROM t GROUP BY c") == set()


def test_aggregate_with_non_subset_grouping_rejected(world):
    # Grouping by d is not covered by e4's GROUP BY e, c.
    assert evaluate(world, "SELECT d, SUM(f) FROM t GROUP BY d") == set()


def test_full_column_aggregate_allowed(world):
    # Empty G_q ⊆ G_e ("includes empty subset", Algorithm 1 line 7).
    assert evaluate(world, "SELECT SUM(f) FROM t") == {"l1", "l2"}


def test_raw_projection_of_aggregatable_column_rejected(world):
    # Π_F(T): F may only leave aggregated (paper Example 2's last case).
    assert evaluate(world, "SELECT f FROM t") == set()


def test_aggregate_query_and_basic_expression(world):
    # Case (2) of §5: SUM(A) is "more aggregated" than e2 already allows,
    # so A keeps e1 ∪ e2 = {l1..l4}; C gets e1 ∪ e4 = {l1, l2, l3}.
    assert evaluate(world, "SELECT c, SUM(a) FROM t GROUP BY c") == {
        "l1",
        "l2",
        "l3",
    }
