"""The paper's §4 worked examples (Example 1 and Example 2), verbatim.

Customer lives in North America; the three locations are N, A, E as in
the running example.  Each assertion mirrors a sentence of the paper.
"""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.policy import PolicyCatalog, PolicyEvaluator, describe_local_query
from repro.sql import Binder


@pytest.fixture(scope="module")
def world():
    catalog = Catalog()
    catalog.add_database("db_n", "N")
    catalog.add_database("db_e", "E")
    catalog.add_database("db_a", "A")
    catalog.add_table(
        "db_n",
        TableSchema(
            "customer",
            (
                Column("custkey", DataType.INTEGER),
                Column("name", DataType.VARCHAR),
                Column("acctbal", DataType.DECIMAL),
                Column("mktseg", DataType.VARCHAR),
                Column("region", DataType.VARCHAR),
            ),
            primary_key=("custkey",),
        ),
        row_count=100,
    )
    return catalog


def evaluate(catalog, policies, sql):
    plan = Binder(catalog).bind_sql(sql)
    return PolicyEvaluator(policies).evaluate(describe_local_query(plan))


@pytest.fixture()
def example1(world):
    policies = PolicyCatalog(world)
    policies.add_text("ship custkey, name from customer C to A, E")
    policies.add_text(
        "ship mktseg, region from customer C to E where mktseg = 'commercial'"
    )
    return policies


class TestExample1:
    def test_name_projection_ships_everywhere(self, world, example1):
        # "the output of Π_{c,n}(σ_{n LIKE 'A%'}(C)) can be shipped to all
        # locations" — custkey+name to A and E, plus the home location N.
        result = evaluate(
            world, example1, "SELECT custkey, name FROM customer WHERE name LIKE 'A%'"
        )
        assert result == {"N", "A", "E"}

    def test_adding_region_without_predicate_stays_home(self, world, example1):
        # "Π_{c,n,r}(σ_{n LIKE 'A%'}(C)) cannot be shipped outside of North
        # America" — region needs the mktseg predicate, which is absent.
        result = evaluate(
            world,
            example1,
            "SELECT custkey, name, region FROM customer WHERE name LIKE 'A%'",
        )
        assert result == {"N"}

    def test_commercial_predicate_unlocks_europe_only(self, world, example1):
        # "Π_{c,n,r}(σ_{n LIKE 'A%' ∧ mktseg='commercial'}(C)) must only be
        # shipped to Europe."
        result = evaluate(
            world,
            example1,
            "SELECT custkey, name, region FROM customer "
            "WHERE name LIKE 'A%' AND mktseg = 'commercial'",
        )
        assert result == {"N", "E"}


@pytest.fixture()
def example2(world):
    policies = PolicyCatalog(world)
    policies.add_text(
        "ship acctbal as aggregates sum, avg from customer C to * "
        "group by mktseg, region"
    )
    return policies


class TestExample2:
    def test_global_sum_ships_everywhere(self, world, example2):
        # "output of G_sum(acctbal)(C) ... can be shipped to all locations"
        assert evaluate(world, example2, "SELECT SUM(acctbal) FROM customer") == {
            "N",
            "A",
            "E",
        }

    def test_grouped_avg_ships_everywhere(self, world, example2):
        # "... and region G_avg(acctbal)(C) can be shipped to all locations"
        assert evaluate(
            world, example2, "SELECT region, AVG(acctbal) FROM customer GROUP BY region"
        ) == {"N", "A", "E"}

    def test_raw_projection_stays_home(self, world, example2):
        # "Π_acctbal(C) cannot be shipped at all."
        assert evaluate(world, example2, "SELECT acctbal FROM customer") == {"N"}

    def test_min_not_among_allowed_functions(self, world, example2):
        assert evaluate(world, example2, "SELECT MIN(acctbal) FROM customer") == {"N"}

    def test_grouping_by_unlisted_column_stays_home(self, world, example2):
        assert evaluate(
            world, example2, "SELECT name, SUM(acctbal) FROM customer GROUP BY name"
        ) == {"N"}

    def test_filtered_aggregate_follows_algorithm_1(self, world, example2):
        # Example 2's prose claims G_sum(acctbal)(σ_{name='abc'}(C)) "cannot
        # be shipped at all", but Algorithm 1 (line 3: P_q ⇒ P_e with
        # P_e = TRUE) grants it — and the paper's own Fig. 5(e) plan ships
        # a *filtered* pre-aggregate under the predicate-free expression e5.
        # We follow the algorithm (and the system behaviour it implies);
        # see docs/POLICY_LANGUAGE.md.
        result = evaluate(
            world,
            example2,
            "SELECT SUM(acctbal) FROM customer WHERE name = 'abc'",
        )
        assert result == {"N", "A", "E"}
