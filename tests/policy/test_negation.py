"""Negative (DENY) policies compiled under the closed-world assumption."""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.errors import PolicySyntaxError
from repro.policy import (
    PolicyCatalog,
    PolicyEvaluator,
    apply_closed_world,
    compile_negative_policies,
    describe_local_query,
    parse_negative,
)
from repro.sql import Binder


@pytest.fixture()
def world():
    c = Catalog()
    c.add_database("db1", "home")
    for loc in ("x", "y", "z"):
        c.add_database(f"db_{loc}", loc)
    c.add_table(
        "db1",
        TableSchema(
            "t",
            (
                Column("k", DataType.INTEGER),
                Column("v", DataType.INTEGER),
                Column("secret", DataType.VARCHAR),
            ),
        ),
        row_count=10,
    )
    return c


def evaluate(catalog, policies, sql):
    plan = Binder(catalog).bind_sql(sql)
    return PolicyEvaluator(policies).evaluate(describe_local_query(plan))


def test_parse_negative_forms(world):
    deny = parse_negative("deny secret from t to *", world)
    assert deny.attributes == {"secret"}
    assert deny.locations is None
    star = parse_negative("deny * from t to x, y", world)
    assert star.attributes is None
    assert star.locations == {"x", "y"}
    cond = parse_negative("deny v from t to x where v > 5", world)
    assert cond.conditional


def test_parse_negative_unknown_column(world):
    with pytest.raises(PolicySyntaxError):
        parse_negative("deny nosuch from t to x", world)


def test_closed_world_compilation(world):
    denies = [
        parse_negative("deny secret from t to *", world),
        parse_negative("deny v from t to z", world),
    ]
    compiled = compile_negative_policies(world, denies)
    by_columns = {
        tuple(sorted(a.column for a in e.ship_attributes)): e.destinations
        for e in compiled
    }
    # k keeps every location; v loses z; secret shippable nowhere (no expr).
    assert by_columns[("k",)] == {"home", "x", "y", "z"}
    assert by_columns[("v",)] == {"home", "x", "y"}
    assert ("secret",) not in by_columns


def test_end_to_end_with_evaluator(world):
    policies = PolicyCatalog(world)
    apply_closed_world(
        policies,
        ["deny secret from t to *", "deny v from t to z"],
    )
    assert evaluate(world, policies, "SELECT k FROM t") == {"home", "x", "y", "z"}
    assert evaluate(world, policies, "SELECT k, v FROM t") == {"home", "x", "y"}
    assert evaluate(world, policies, "SELECT secret FROM t") == {"home"}


def test_conditional_deny_is_conservative(world):
    policies = PolicyCatalog(world)
    apply_closed_world(policies, ["deny v from t to x where v > 5"])
    # The row condition cannot be negated into a basic allow expression,
    # so v loses x entirely.
    assert "x" not in evaluate(world, policies, "SELECT v FROM t")
    assert "y" in evaluate(world, policies, "SELECT v FROM t")


def test_deny_everything(world):
    policies = PolicyCatalog(world)
    apply_closed_world(policies, ["deny * from t to *"])
    assert evaluate(world, policies, "SELECT k, v FROM t") == {"home"}


def test_grouping_merges_columns_with_same_destinations(world):
    denies = [parse_negative("deny secret from t to *", world)]
    compiled = compile_negative_policies(world, denies)
    # k and v share the full destination set -> single expression.
    assert len(compiled) == 1
    assert {a.column for a in compiled[0].ship_attributes} == {"k", "v"}
