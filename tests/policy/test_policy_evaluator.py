"""Policy evaluator behaviour beyond the Table 1 reproduction."""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.policy import PolicyCatalog, PolicyEvaluator, describe_local_query
from repro.sql import Binder


@pytest.fixture()
def world():
    c = Catalog()
    c.add_database("db1", "home")
    for loc in ("x", "y", "z"):
        c.add_database(f"db_{loc}", loc)
    c.add_table(
        "db1",
        TableSchema(
            "t",
            (
                Column("k", DataType.INTEGER),
                Column("v", DataType.INTEGER),
                Column("seg", DataType.VARCHAR),
            ),
            primary_key=("k",),
        ),
        row_count=100,
    )
    return c


def evaluate(catalog, policies, sql, include_home=True):
    plan = Binder(catalog).bind_sql(sql)
    evaluator = PolicyEvaluator(policies)
    return evaluator.evaluate(describe_local_query(plan), include_home=include_home), evaluator


def test_no_policies_means_home_only(world):
    policies = PolicyCatalog(world)
    result, _ = evaluate(world, policies, "SELECT k FROM t")
    assert result == {"home"}


def test_conservative_default_no_grant_without_mention(world):
    policies = PolicyCatalog(world)
    policies.add_text("ship k from t to x")
    result, _ = evaluate(world, policies, "SELECT k, v FROM t")
    assert result == {"home"}  # v is never granted anywhere


def test_union_of_expressions_per_attribute(world):
    policies = PolicyCatalog(world)
    policies.add_text("ship k from t to x")
    policies.add_text("ship k from t to y")
    result, _ = evaluate(world, policies, "SELECT k FROM t")
    assert result == {"home", "x", "y"}


def test_predicate_strengthening_monotone(world):
    policies = PolicyCatalog(world)
    policies.add_text("ship k, v from t to x where v > 10")
    weak, _ = evaluate(world, policies, "SELECT k, v FROM t")
    strong, _ = evaluate(world, policies, "SELECT k, v FROM t WHERE v > 20")
    assert weak == {"home"}
    assert strong == {"home", "x"}


def test_aggregate_expression_does_not_cover_raw_query(world):
    policies = PolicyCatalog(world)
    policies.add_text("ship v as aggregates sum from t to x group by seg")
    raw, _ = evaluate(world, policies, "SELECT v FROM t")
    aggregated, _ = evaluate(world, policies, "SELECT seg, SUM(v) FROM t GROUP BY seg")
    assert raw == {"home"}
    assert aggregated == {"home", "x"}


def test_avg_not_covered_by_sum_only_expression(world):
    policies = PolicyCatalog(world)
    policies.add_text("ship v as aggregates sum from t to x group by seg")
    result, _ = evaluate(world, policies, "SELECT seg, AVG(v) FROM t GROUP BY seg")
    assert result == {"home"}


def test_grouping_attribute_alone_not_shippable_raw(world):
    # seg is only a grouping attribute; a plain projection of seg is not an
    # aggregate query, so the aggregate expression gives it nothing.
    policies = PolicyCatalog(world)
    policies.add_text("ship v as aggregates sum from t to x group by seg")
    result, _ = evaluate(world, policies, "SELECT seg FROM t")
    assert result == {"home"}


def test_multi_table_policy_expression(world):
    # Footnote 4: expression over a join within one database.
    catalog = world
    catalog.add_table(
        "db1",
        TableSchema("u", (Column("k", DataType.INTEGER), Column("w", DataType.INTEGER))),
        row_count=50,
    )
    policies = PolicyCatalog(catalog)
    policies.add_text(
        "ship v, w from t, u to x where t.k = u.k"
    )
    matching, _ = evaluate(
        world, policies, "SELECT t.v, u.w FROM t, u WHERE t.k = u.k"
    )
    assert matching == {"home", "x"}
    # Without the join predicate the implication fails.
    non_matching, _ = evaluate(world, policies, "SELECT t.v, u.w FROM t, u")
    assert non_matching == {"home"}


def test_stats_counters(world):
    policies = PolicyCatalog(world)
    policies.add_text("ship k from t to x")
    policies.add_text("ship v from t to y where v > 10")
    _, evaluator = evaluate(world, policies, "SELECT k, v FROM t WHERE v > 20")
    stats = evaluator.stats
    assert stats.evaluations == 1
    assert stats.expressions_scanned == 2
    assert stats.implication_passes == 2
    assert stats.eta == 2
    stats.reset()
    assert stats.eta == 0


def test_implication_cache_hit(world):
    policies = PolicyCatalog(world)
    policies.add_text("ship k from t to x where v > 10")
    plan = Binder(world).bind_sql("SELECT k FROM t WHERE v > 20")
    local = describe_local_query(plan)
    evaluator = PolicyEvaluator(policies)
    evaluator.evaluate(local)
    evaluator.evaluate(local)
    assert evaluator.stats.implication_checks == 2
    assert len(evaluator._implication_cache) == 1
