"""Lineage analysis of local subplans (the evaluator's view of a query)."""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.errors import OptimizerError
from repro.expr import AggregateFunction, BaseColumn
from repro.policy import describe_local_query
from repro.sql import Binder


@pytest.fixture(scope="module")
def world():
    c = Catalog()
    c.add_database("db1", "L1")
    c.add_table(
        "db1",
        TableSchema(
            "t",
            (
                Column("a", DataType.INTEGER),
                Column("b", DataType.INTEGER),
                Column("c", DataType.INTEGER),
            ),
        ),
        row_count=10,
    )
    c.add_table(
        "db1",
        TableSchema("u", (Column("a", DataType.INTEGER), Column("x", DataType.INTEGER))),
        row_count=10,
    )
    c.add_database("db2", "L2")
    c.add_table("db2", TableSchema("far", (Column("a", DataType.INTEGER),)), row_count=5)
    return c


def col(t, name):
    return BaseColumn("db1", t, name)


def describe(world, sql):
    return describe_local_query(Binder(world).bind_sql(sql))


def test_projection_lineage(world):
    q = describe(world, "SELECT a, b + c AS s FROM t")
    assert q.output_attributes == {col("t", "a"), col("t", "b"), col("t", "c")}
    assert not q.is_aggregate
    assert q.predicate is None


def test_predicate_collection_through_join(world):
    q = describe(world, "SELECT t.a FROM t, u WHERE t.a = u.a AND t.b > 5")
    assert q.predicate is not None
    text = str(q.predicate)
    assert "u.a" in text and "t.b" in text
    # Output only exposes t.a even though the join touches u.
    assert q.output_attributes == {col("t", "a")}


def test_aggregate_lineage_and_group_bases(world):
    q = describe(world, "SELECT b, SUM(a * c) FROM t WHERE c < 9 GROUP BY b")
    assert q.is_aggregate
    assert q.group_bases == {col("t", "b")}
    sum_lineages = q.lineages_of(col("t", "a"))
    assert len(sum_lineages) == 1
    assert sum_lineages[0].aggs == {AggregateFunction.SUM}
    b_lineage = q.lineages_of(col("t", "b"))[0]
    assert b_lineage.is_raw


def test_count_star_exposes_nothing(world):
    q = describe(world, "SELECT COUNT(*) FROM t")
    assert q.is_aggregate
    assert q.output_attributes == set()


def test_nested_aggregation_accumulates_functions(world):
    q = describe(
        world,
        "SELECT MAX(s) FROM (SELECT b, SUM(a) AS s FROM t GROUP BY b) AS x",
    )
    lineages = q.lineages_of(col("t", "a"))
    assert lineages[0].aggs == {AggregateFunction.SUM, AggregateFunction.MAX}


def test_multi_database_plan_rejected(world):
    plan = Binder(world).bind_sql("SELECT t.a FROM t, far WHERE t.a = far.a")
    with pytest.raises(OptimizerError):
        describe_local_query(plan)
