"""TPC-H substrate: generator determinism, distribution, query binding."""

import pytest

from repro.sql import Binder
from repro.tpch import (
    JOIN_COMPLEXITY,
    LOCATIONS,
    QUERIES,
    TABLE_PLACEMENT,
    TpchGenerator,
    build_benchmark,
    build_catalog,
    home_database,
    row_count,
)


class TestDataGenerator:
    def test_fixed_tables(self):
        gen = TpchGenerator(scale=0.001)
        assert len(list(gen.region())) == 5
        assert len(list(gen.nation())) == 25

    def test_scaled_counts(self):
        gen = TpchGenerator(scale=0.01)
        assert len(list(gen.customer())) == 1500
        assert len(list(gen.orders())) == 15000

    def test_determinism(self):
        a = list(TpchGenerator(scale=0.001, seed=5).customer())
        b = list(TpchGenerator(scale=0.001, seed=5).customer())
        assert a == b
        c = list(TpchGenerator(scale=0.001, seed=6).customer())
        assert a != c

    def test_referential_integrity(self):
        gen = TpchGenerator(scale=0.001)
        nations = {r[0] for r in gen.nation()}
        customers = list(gen.customer())
        assert {c[3] for c in customers} <= nations
        orders = list(gen.orders())
        custkeys = {c[0] for c in customers}
        assert {o[1] for o in orders} <= custkeys
        order_dates = {o[0]: o[4] for o in orders}
        for li in gen.lineitem():
            assert li[0] in order_dates
            assert li[10] > order_dates[li[0]]  # shipdate after orderdate

    def test_part_types_cover_paper_vocabulary(self):
        gen = TpchGenerator(scale=0.01)
        types = {p[4] for p in gen.part()}
        assert any("COPPER" in t for t in types)
        assert any("BRASS" in t for t in types)


class TestDistribution:
    def test_table_2_placement(self):
        catalog = build_catalog(scale=0.01)
        assert catalog.locations == list(LOCATIONS)
        for db, (location, tables) in TABLE_PLACEMENT.items():
            for table in tables:
                stored = catalog.stored_table(db, table)
                assert stored.location == location

    def test_home_database(self):
        assert home_database("lineitem") == "db4"
        assert home_database("nation") == "db5"
        with pytest.raises(KeyError):
            home_database("nope")

    def test_fk_distinct_counts_synthesized(self):
        catalog = build_catalog(scale=1.0)
        lineitem = catalog.stored_table("db4", "lineitem")
        assert lineitem.stats.columns["l_partkey"].distinct_count == row_count("part", 1.0)
        assert lineitem.stats.columns["l_suppkey"].distinct_count == row_count("supplier", 1.0)

    def test_fragmented_tables(self):
        catalog = build_catalog(scale=0.01, fragmented=("customer",), fragment_locations=3)
        table = catalog.table("customer")
        assert table.is_fragmented
        assert len(table.fragments) == 3
        assert {f.location for f in table.fragments} == set(LOCATIONS[:3])

    def test_build_benchmark_loads_all_tables(self):
        catalog, database = build_benchmark(scale=0.001)
        for db, (_loc, tables) in TABLE_PLACEMENT.items():
            for table in tables:
                assert database.row_count(db, table) > 0
        # Stats became exact.
        assert catalog.stored_table("db1", "customer").stats.row_count == 150

    def test_fragmented_benchmark_round_robin(self):
        catalog, database = build_benchmark(
            scale=0.001, fragmented=("customer",), fragment_locations=5
        )
        total = sum(database.row_count(f"db{i}", "customer") for i in range(1, 6))
        assert total == 150


class TestQueries:
    @pytest.mark.parametrize("name", list(QUERIES))
    def test_all_queries_bind(self, name, tpch_stats_catalog):
        plan = Binder(tpch_stats_catalog).bind_sql(QUERIES[name])
        assert plan.fields

    def test_join_complexity_labels(self):
        assert JOIN_COMPLEXITY["Q2"] > JOIN_COMPLEXITY["Q8"] > JOIN_COMPLEXITY["Q3"]

    def test_q2_has_derived_table_block(self, tpch_stats_catalog):
        from repro.plan import LogicalAggregate

        plan = Binder(tpch_stats_catalog).bind_sql(QUERIES["Q2"])
        aggregates = [n for n in plan.walk() if isinstance(n, LogicalAggregate)]
        assert aggregates  # the MIN(ps_supplycost) block
