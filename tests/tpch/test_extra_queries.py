"""The extra adapted TPC-H queries (Q1, Q6, Q7) through the full stack."""

import pytest

from repro.execution import ExecutionEngine, reference_plan
from repro.optimizer import CompliantOptimizer, check_compliance, normalize
from repro.optimizer.compliant import _strip_sort
from repro.sql import Binder
from repro.tpch import EXTRA_QUERIES, curated_policies

from ..conftest import rows_as_multiset


@pytest.mark.parametrize("name", list(EXTRA_QUERIES))
def test_extra_queries_bind(name, tpch_stats_catalog):
    plan = Binder(tpch_stats_catalog).bind_sql(EXTRA_QUERIES[name])
    assert plan.fields


@pytest.mark.parametrize("name", list(EXTRA_QUERIES))
def test_extra_queries_optimize_compliantly(name, tpch_stats_catalog, tpch_network):
    policies = curated_policies(tpch_stats_catalog, "CR")
    optimizer = CompliantOptimizer(tpch_stats_catalog, policies, tpch_network)
    result = optimizer.optimize(EXTRA_QUERIES[name])
    assert not check_compliance(result.plan, optimizer.evaluator)


@pytest.mark.parametrize("name", list(EXTRA_QUERIES))
def test_extra_queries_execution_matches_reference(name, tpch_small, tpch_network):
    catalog, database = tpch_small
    policies = curated_policies(catalog, "CR")
    optimizer = CompliantOptimizer(catalog, policies, tpch_network)
    engine = ExecutionEngine(database, tpch_network)
    core, _sort = _strip_sort(Binder(catalog).bind_sql(EXTRA_QUERIES[name]))
    expected = engine.execute(reference_plan(normalize(core))).rows
    actual = engine.execute(optimizer.optimize(core).plan).rows
    assert rows_as_multiset(actual) == rows_as_multiset(expected)


def test_q1_is_local_to_north_america(tpch_stats_catalog, tpch_network):
    """Q1 touches only lineitem: the whole plan stays at its home site."""
    from repro.plan import ship_operators

    policies = curated_policies(tpch_stats_catalog, "CR")
    optimizer = CompliantOptimizer(tpch_stats_catalog, policies, tpch_network)
    result = optimizer.optimize(EXTRA_QUERIES["Q1"])
    assert not ship_operators(result.plan)
    assert result.plan.location == "NorthAmerica"


def test_q7_or_predicate_handled(tpch_small, tpch_network):
    """Q7's nation-pair OR predicate spans both join sides and must be
    evaluated as a residual/filter without losing rows."""
    catalog, database = tpch_small
    engine = ExecutionEngine(database, tpch_network)
    core, _sort = _strip_sort(Binder(catalog).bind_sql(EXTRA_QUERIES["Q7"]))
    result = engine.execute(reference_plan(normalize(core)))
    # Every output row names the FRANCE/GERMANY pair in one orientation.
    for row in result.rows:
        assert {row[0], row[1]} <= {"FRANCE", "GERMANY"}
