"""Policy-expression and ad-hoc query workload generators (§7.1)."""

import pytest

from repro.errors import NonCompliantQueryError
from repro.optimizer import CompliantOptimizer, TraditionalOptimizer, check_compliance
from repro.policy import PolicyEvaluator
from repro.sql import Binder
from repro.tpch import (
    CURATED_SETS,
    AdHocQueryGenerator,
    PolicyGenerator,
    QUERIES,
    curated_policies,
    locations_sweep_policies,
)


class TestCuratedSets:
    @pytest.mark.parametrize("name", list(CURATED_SETS))
    def test_sets_parse_and_register(self, tpch_stats_catalog, name):
        policies = curated_policies(tpch_stats_catalog, name)
        assert len(policies) == len(CURATED_SETS[name])

    def test_set_sizes_match_paper(self):
        # The paper uses 8 expressions for T and 10 for the other sets;
        # our CR+A needs one extra lineitem expression (11) to reproduce
        # the paper's Fig. 5(a) pattern under our cost model.
        assert len(CURATED_SETS["T"]) == 8
        assert len(CURATED_SETS["C"]) == 10
        assert len(CURATED_SETS["CR"]) == 10
        assert len(CURATED_SETS["CR+A"]) == 11

    def test_cra_contains_paper_e5(self):
        assert any(
            "as aggregates sum from lineitem" in text for text in CURATED_SETS["CR+A"]
        )


class TestPolicyGenerator:
    @pytest.mark.parametrize("template", ["T", "C", "CR", "CR+A"])
    def test_generates_requested_count(self, tpch_stats_catalog, template):
        generator = PolicyGenerator(tpch_stats_catalog, seed=3)
        policies = generator.generate(template, 25)
        assert len(policies) == 25

    def test_deterministic_per_seed(self, tpch_stats_catalog):
        a = PolicyGenerator(tpch_stats_catalog, seed=9).expression_texts("CR", 20)
        b = PolicyGenerator(tpch_stats_catalog, seed=9).expression_texts("CR", 20)
        assert a == b

    def test_hub_coverage_guarantees_feasibility(self, tpch_stats_catalog, tpch_network):
        generator = PolicyGenerator(tpch_stats_catalog, seed=11, hub="NorthAmerica")
        policies = generator.generate("CR+A", 30)
        optimizer = CompliantOptimizer(
            tpch_stats_catalog, policies, tpch_network, max_expressions=4000
        )
        # Feasible for every TPC-H query thanks to the hub expressions.
        for name in ("Q3", "Q10", "Q9"):
            optimizer.optimize(QUERIES[name])  # must not raise

    def test_templates_have_expected_shape(self, tpch_stats_catalog):
        generator = PolicyGenerator(tpch_stats_catalog, seed=2, hub=None)
        t_texts = generator.expression_texts("T", 10)
        assert all(t.startswith("ship * from") for t in t_texts)
        cr_texts = PolicyGenerator(tpch_stats_catalog, seed=2, hub=None).expression_texts("CR", 30)
        assert any(" where " in t for t in cr_texts)
        cra_texts = PolicyGenerator(tpch_stats_catalog, seed=2, hub=None).expression_texts("CR+A", 40)
        assert any(" as aggregates " in t for t in cra_texts)


class TestLocationsSweep:
    def test_synthesizes_extra_locations(self):
        catalog, policies = locations_sweep_policies(None, 10)
        assert len(catalog.locations) >= 10
        assert len(policies) == 8
        for expression in policies.expressions:
            assert len(expression.destinations) == 10


class TestAdHocQueries:
    def test_distribution_shape(self):
        queries = AdHocQueryGenerator(seed=1).generate(300)
        two = sum(1 for q in queries if len(q.tables) == 2)
        three = sum(1 for q in queries if len(q.tables) == 3)
        four = sum(1 for q in queries if len(q.tables) == 4)
        aggregates = sum(1 for q in queries if q.is_aggregate)
        assert 0.45 < two / 300 < 0.65
        assert 0.25 < three / 300 < 0.45
        assert 0.03 < four / 300 < 0.20
        assert 0.20 < aggregates / 300 < 0.40

    def test_queries_span_multiple_locations(self):
        for q in AdHocQueryGenerator(seed=2).generate(100):
            assert len(q.locations) >= 2

    def test_all_queries_bind(self, tpch_stats_catalog):
        binder = Binder(tpch_stats_catalog)
        for q in AdHocQueryGenerator(seed=3).generate(100):
            plan = binder.bind_sql(q.sql)
            assert plan.fields

    def test_compliant_optimizer_handles_sample(self, tpch_stats_catalog, tpch_network):
        """Mini Fig. 6(a): the compliant optimizer succeeds on every query;
        the traditional one is non-compliant for a meaningful fraction."""
        generator = PolicyGenerator(tpch_stats_catalog, seed=5, hub="NorthAmerica")
        policies = generator.generate("CR", 25)
        evaluator = PolicyEvaluator(policies)
        compliant = CompliantOptimizer(
            tpch_stats_catalog, policies, tpch_network, max_expressions=3000
        )
        traditional = TraditionalOptimizer(
            tpch_stats_catalog, tpch_network, max_expressions=3000
        )
        queries = AdHocQueryGenerator(seed=6).generate(25)
        traditional_compliant = 0
        for q in queries:
            result = compliant.optimize(q.sql)  # must never raise
            assert not check_compliance(result.plan, evaluator)
            t_result = traditional.optimize(q.sql)
            if not check_compliance(t_result.plan, evaluator):
                traditional_compliant += 1
        assert traditional_compliant < len(queries)  # some NC plans exist
