"""Logical/physical plan node tests: schemas, provenance, printing."""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.errors import OptimizerError
from repro.expr import (
    AggregateCall,
    AggregateFunction,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Literal,
)
from repro.plan import (
    Field,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
    Ship,
    TableScan,
    explain_logical,
    explain_physical,
    ship_operators,
)
from repro.sql import Binder


@pytest.fixture(scope="module")
def plan():
    c = Catalog()
    c.add_database("db1", "L1")
    c.add_database("db2", "L2")
    c.add_table(
        "db1",
        TableSchema("t", (Column("a", DataType.INTEGER), Column("b", DataType.INTEGER))),
        row_count=10,
    )
    c.add_table("db2", TableSchema("u", (Column("a", DataType.INTEGER),)), row_count=10)
    return Binder(c).bind_sql(
        "SELECT t.b, SUM(u.a) AS s FROM t, u WHERE t.a = u.a GROUP BY t.b"
    )


def test_fields_flow_through_operators(plan):
    assert plan.field_names == ("b", "s")
    agg = plan.child
    assert isinstance(agg, LogicalAggregate)
    assert agg.field_names == ("t.b", "$agg0")


def test_provenance_preserved_through_project(plan):
    field = plan.field("b")
    assert field.base is not None
    assert field.base.table == "t"
    assert plan.field("s").base is None  # computed


def test_source_databases(plan):
    assert plan.source_databases == {"db1", "db2"}


def test_unknown_field_raises(plan):
    with pytest.raises(OptimizerError):
        plan.field("zzz")


def test_walk_covers_all_nodes(plan):
    kinds = [type(n).__name__ for n in plan.walk()]
    assert kinds.count("LogicalScan") == 2
    assert "LogicalAggregate" in kinds


def test_row_width_positive(plan):
    assert plan.row_width > 0


def test_explain_logical_renders_tree(plan):
    text = explain_logical(plan)
    assert "Project" in text and "Aggregate" in text and "Scan" in text
    assert text.splitlines()[0].startswith("Project")


def test_project_is_pruning_only():
    scan = LogicalScan(
        "t", "db1", "L1", "t",
        (Field("t.a", DataType.INTEGER), Field("t.b", DataType.INTEGER)),
    )
    pruning = LogicalProject(scan, (ColumnRef("t.a", DataType.INTEGER),), ("t.a",))
    assert pruning.is_pruning_only
    computed = LogicalProject(
        scan,
        (Arithmetic(ArithmeticOp.ADD, ColumnRef("t.a", DataType.INTEGER), Literal(1, DataType.INTEGER)),),
        ("x",),
    )
    assert not computed.is_pruning_only


def test_union_drops_provenance():
    base = Field("t.a", DataType.INTEGER, None)
    scan1 = LogicalScan("t", "db1", "L1", "t", (Field("t.a", DataType.INTEGER, base=None),))
    scan2 = LogicalScan("t", "db2", "L2", "t", (Field("t.a", DataType.INTEGER, base=None),))
    union = LogicalUnion((scan1, scan2))
    assert union.fields[0].base is None
    assert union.field_names == ("t.a",)


def test_explain_physical_and_ship_collection():
    scan = TableScan(
        fields=(Field("t.a", DataType.INTEGER),),
        location="L1",
        estimated_rows=10,
        table="t",
        database="db1",
        alias="t",
    )
    ship = Ship(
        fields=scan.fields, location="L2", estimated_rows=10,
        child=scan, source="L1", target="L2",
    )
    text = explain_physical(ship, show_rows=True)
    assert "Ship L1 -> L2 @ L2" in text
    assert "~10 rows" in text
    assert ship_operators(ship) == [ship]
    assert ship.estimated_bytes == 10 * ship.row_width
