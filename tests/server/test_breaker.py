"""Circuit-breaker unit tests: the three-state machine on the
simulated clock, and the per-link registry."""

import pytest

from repro.errors import InvalidParameterError
from repro.server import BreakerConfig, BreakerRegistry, BreakerState, CircuitBreaker

FAST_TRIP = BreakerConfig(failure_threshold=1.0, window=4, min_volume=2, cooldown=1.0)


def trip(breaker: CircuitBreaker, at: float = 0.0) -> None:
    """Drive a FAST_TRIP breaker open with two failures ending at ``at``."""
    breaker.record(at - 0.1, ok=False)
    breaker.record(at, ok=False)


class TestConfig:
    def test_defaults_valid(self):
        BreakerConfig()

    @pytest.mark.parametrize("threshold", [0.0, -0.5, 1.5])
    def test_threshold_range(self, threshold):
        with pytest.raises(InvalidParameterError):
            BreakerConfig(failure_threshold=threshold)

    def test_window_and_volume_positive(self):
        with pytest.raises(InvalidParameterError, match="positive integer"):
            BreakerConfig(window=0)
        with pytest.raises(InvalidParameterError, match="positive integer"):
            BreakerConfig(min_volume=-1)

    def test_cooldown_positive(self):
        with pytest.raises(InvalidParameterError):
            BreakerConfig(cooldown=0.0)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker(FAST_TRIP)
        assert breaker.state_at(0.0) is BreakerState.CLOSED
        assert breaker.allow(123.0)
        assert breaker.transitions() == []

    def test_single_failure_below_min_volume_does_not_trip(self):
        breaker = CircuitBreaker(FAST_TRIP)
        breaker.record(1.0, ok=False)
        assert breaker.state_at(2.0) is BreakerState.CLOSED

    def test_trips_at_threshold(self):
        breaker = CircuitBreaker(FAST_TRIP)
        trip(breaker, at=1.0)
        assert breaker.state_at(1.0) is BreakerState.OPEN
        assert not breaker.allow(1.5)
        assert breaker.trip_count() == 1

    def test_mixed_window_respects_threshold(self):
        # 50% threshold over a window of 4: two failures out of four trip.
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=0.5, window=4, min_volume=4, cooldown=1.0)
        )
        for when, ok in [(1.0, True), (2.0, False), (3.0, True), (4.0, False)]:
            breaker.record(when, ok)
        assert breaker.state_at(4.0) is BreakerState.OPEN

    def test_successes_age_out_of_window(self):
        # Window of 2: old successes cannot dilute recent failures.
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=1.0, window=2, min_volume=2, cooldown=1.0)
        )
        for when in (1.0, 2.0, 3.0):
            breaker.record(when, ok=True)
        breaker.record(4.0, ok=False)
        breaker.record(5.0, ok=False)
        assert breaker.state_at(5.0) is BreakerState.OPEN

    def test_half_open_after_cooldown(self):
        breaker = CircuitBreaker(FAST_TRIP)
        trip(breaker, at=1.0)
        assert breaker.state_at(1.9) is BreakerState.OPEN
        assert breaker.state_at(2.0) is BreakerState.HALF_OPEN
        assert breaker.allow(2.0)

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(FAST_TRIP)
        trip(breaker, at=1.0)
        breaker.record(2.5, ok=True)  # the half-open probe
        assert breaker.state_at(2.5) is BreakerState.CLOSED
        # The window was reset: one new failure is below min_volume.
        breaker.record(3.0, ok=False)
        assert breaker.state_at(3.0) is BreakerState.CLOSED

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(FAST_TRIP)
        trip(breaker, at=1.0)
        breaker.record(2.5, ok=False)  # failed probe
        assert breaker.state_at(2.5) is BreakerState.OPEN
        assert breaker.state_at(3.4) is BreakerState.OPEN  # 2.5 + 1.0 > 3.4
        assert breaker.state_at(3.5) is BreakerState.HALF_OPEN
        assert breaker.trip_count() == 2

    def test_events_during_open_before_cooldown_are_ignored(self):
        # A layer running without the registry may record outcomes the
        # breaker would have fast-failed; they carry no probe semantics.
        breaker = CircuitBreaker(FAST_TRIP)
        trip(breaker, at=1.0)
        breaker.record(1.5, ok=True)  # within cooldown: not a probe
        assert breaker.state_at(1.6) is BreakerState.OPEN
        assert breaker.state_at(2.0) is BreakerState.HALF_OPEN

    def test_out_of_order_recording_matches_timeline(self):
        # Overlapping queries record at interleaved instants; the replay
        # must reflect the timeline, not the recording order.
        in_order = CircuitBreaker(FAST_TRIP)
        shuffled = CircuitBreaker(FAST_TRIP)
        events = [(1.0, False), (2.0, False), (3.5, True)]
        for when, ok in events:
            in_order.record(when, ok)
        for when, ok in [events[2], events[0], events[1]]:
            shuffled.record(when, ok)
        for when in (0.5, 1.0, 2.0, 2.9, 3.0, 3.5, 4.0):
            assert in_order.state_at(when) is shuffled.state_at(when)
        assert in_order.transitions() == shuffled.transitions()

    def test_transition_sequence(self):
        breaker = CircuitBreaker(FAST_TRIP)
        trip(breaker, at=1.0)
        breaker.record(2.5, ok=False)  # failed probe -> reopen
        breaker.record(4.0, ok=True)  # probe after second cooldown -> close
        assert breaker.transitions() == [
            (1.0, BreakerState.OPEN),
            (2.0, BreakerState.HALF_OPEN),
            (2.5, BreakerState.OPEN),
            (3.5, BreakerState.HALF_OPEN),
            (4.0, BreakerState.CLOSED),
        ]


class TestRegistry:
    def test_per_link_isolation(self):
        registry = BreakerRegistry(FAST_TRIP)
        registry.record_failure("A", "B", 1.0)
        registry.record_failure("A", "B", 1.1)
        assert not registry.allow("A", "B", 1.5)
        assert registry.allow("B", "A", 1.5)  # reverse direction untouched
        assert registry.allow("A", "C", 1.5)

    def test_total_trips_and_snapshot(self):
        registry = BreakerRegistry(FAST_TRIP)
        registry.record_failure("A", "B", 1.0)
        registry.record_failure("A", "B", 1.1)
        registry.record_success("B", "A", 1.0)
        assert registry.total_trips() == 1
        assert registry.snapshot(when=1.5) == {
            "A->B": "open",
            "B->A": "closed",
        }
        assert registry.snapshot(when=2.5) == {
            "A->B": "half-open",
            "B->A": "closed",
        }
