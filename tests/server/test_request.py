"""Workload parsing and request validation tests."""

import json

import pytest

from repro.errors import ExecutionError, InvalidParameterError
from repro.server import QueryRequest, load_workload, workload_from_queries


class TestQueryRequest:
    def test_defaults(self):
        request = QueryRequest(sql="SELECT 1")
        assert request.arrival == 0.0
        assert request.deadline is None
        assert request.priority == 0
        assert request.absolute_deadline(None) is None
        assert request.absolute_deadline(2.0) == 2.0

    def test_deadline_is_relative_to_arrival(self):
        request = QueryRequest(sql="SELECT 1", arrival=1.5, deadline=0.5)
        assert request.absolute_deadline(None) == 2.0
        assert request.absolute_deadline(100.0) == 2.0  # own deadline wins

    def test_label_prefers_name_then_truncates_sql(self):
        assert QueryRequest(sql="SELECT 1", name="Q1").label == "Q1"
        long = QueryRequest(sql="SELECT " + ", ".join(f"c{i}" for i in range(30)))
        assert len(long.label) == 40
        assert long.label.endswith("...")

    def test_invalid_fields_raise_typed_errors(self):
        with pytest.raises(ExecutionError):
            QueryRequest(sql="SELECT 1", arrival=-0.1)
        with pytest.raises(InvalidParameterError):
            QueryRequest(sql="SELECT 1", deadline=-1.0)


class TestWorkloadFromQueries:
    def test_spacing_and_repeat(self):
        workload = workload_from_queries(
            [("a", "SELECT 1"), ("b", "SELECT 2")],
            interarrival=0.5,
            deadline=2.0,
            repeat=2,
        )
        assert [r.arrival for r in workload] == [0.0, 0.5, 1.0, 1.5]
        assert [r.name for r in workload] == ["a#0", "b#0", "a#1", "b#1"]
        assert all(r.deadline == 2.0 for r in workload)


class TestLoadWorkload:
    def test_parses_objects_and_bare_strings(self, tmp_path):
        path = tmp_path / "wl.json"
        path.write_text(
            json.dumps(
                [
                    "SELECT 1",
                    {"query": "Q3", "arrival": 0.5, "deadline": 1.0, "priority": 2},
                ]
            )
        )
        workload = load_workload(path, resolve=lambda t: t.lower())
        assert [r.sql for r in workload] == ["select 1", "q3"]
        assert workload[1].name == "Q3"  # resolved entries keep their name
        assert workload[1].priority == 2

    def test_queries_wrapper_and_arrival_sort(self, tmp_path):
        path = tmp_path / "wl.json"
        path.write_text(
            json.dumps(
                {
                    "queries": [
                        {"query": "b", "arrival": 1.0},
                        {"query": "a", "arrival": 0.0},
                    ]
                }
            )
        )
        assert [r.sql for r in load_workload(path)] == ["a", "b"]

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(ExecutionError, match="cannot read workload file"):
            load_workload(tmp_path / "absent.json")

    def test_invalid_json_is_typed(self, tmp_path):
        path = tmp_path / "wl.json"
        path.write_text("{nope")
        with pytest.raises(ExecutionError, match="not valid JSON"):
            load_workload(path)

    def test_non_list_payload_is_typed(self, tmp_path):
        path = tmp_path / "wl.json"
        path.write_text('{"wrong": 1}')
        with pytest.raises(ExecutionError, match="must be a JSON list"):
            load_workload(path)

    def test_entry_without_query_is_typed(self, tmp_path):
        path = tmp_path / "wl.json"
        path.write_text('[{"arrival": 0.0}]')
        with pytest.raises(ExecutionError, match="entry #0"):
            load_workload(path)

    def test_bad_field_type_is_typed(self, tmp_path):
        path = tmp_path / "wl.json"
        path.write_text('[{"query": "q", "arrival": "soon"}]')
        with pytest.raises(ExecutionError, match="bad workload entry #0"):
            load_workload(path)
