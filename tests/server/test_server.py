"""Query-server behavior tests on the CarCo world: admission control,
deadline shedding, priorities, per-site limits, and the served-rows
identity guarantee (a served query returns exactly what a sequential
single-query execution returns, for both executors)."""

import pytest

from repro.errors import AdmissionRejected, DeadlineExceeded, InvalidParameterError
from repro.execution import ExecutionEngine
from repro.optimizer import CompliantOptimizer
from repro.server import (
    BreakerRegistry,
    QueryRequest,
    QueryServer,
    workload_from_queries,
)


@pytest.fixture(scope="module")
def carco_optimizer(carco):
    return CompliantOptimizer(carco.catalog, carco.policies, carco.network)


def make_server(carco, carco_optimizer, **kwargs):
    kwargs.setdefault("evaluator", carco_optimizer.evaluator)
    return QueryServer(
        carco.database, carco.network, optimizer=carco_optimizer, **kwargs
    )


@pytest.fixture(scope="module")
def reference(carco, carco_optimizer):
    """Sequential single-query execution of the CarCo query."""
    plan = carco_optimizer.optimize(carco.query).plan
    engine = ExecutionEngine(
        carco.database,
        carco.network,
        policy_guard=carco_optimizer.evaluator,
        parallel=True,
    )
    return engine.execute(plan)


class TestServing:
    @pytest.mark.parametrize("executor", ["row", "batch"])
    def test_served_rows_identical_to_sequential_execution(
        self, carco, carco_optimizer, reference, executor
    ):
        server = make_server(carco, carco_optimizer, executor=executor)
        result = server.serve(
            [
                QueryRequest(sql=carco.query, arrival=0.0, name="a"),
                QueryRequest(sql=carco.query, arrival=0.01, name="b"),
            ]
        )
        assert result.metrics.served == 2
        for outcome in result.outcomes:
            # Ordered identity, not multiset equality: concurrency must
            # not perturb results in any way.
            assert outcome.columns == reference.columns
            assert outcome.rows == reference.rows
            assert outcome.error is None

    def test_overlapping_service_windows_on_shared_clock(
        self, carco, carco_optimizer
    ):
        server = make_server(carco, carco_optimizer, concurrency=2)
        result = server.serve(
            [
                QueryRequest(sql=carco.query, arrival=0.0, name="a"),
                QueryRequest(sql=carco.query, arrival=0.001, name="b"),
            ]
        )
        a, b = result.outcomes
        assert a.started_at == 0.0
        assert b.started_at == 0.001  # dispatched before a finished
        assert b.started_at < a.finished_at  # genuinely overlapping
        # Each query's own service time is measured from its admission.
        assert a.metrics.service_seconds == pytest.approx(
            a.finished_at - a.started_at
        )

    def test_prebuilt_plan_requests_need_no_optimizer(self, carco, carco_optimizer):
        plan = carco_optimizer.optimize(carco.query).plan
        server = QueryServer(carco.database, carco.network)
        result = server.serve([QueryRequest(sql=carco.query, plan=plan)])
        assert result.metrics.served == 1

    def test_serve_is_deterministic(self, carco, carco_optimizer):
        workload = workload_from_queries(
            [("q", carco.query)], interarrival=0.005, repeat=3
        )
        servers = [
            make_server(carco, carco_optimizer, concurrency=2)
            for _ in range(2)
        ]
        first, second = (s.serve(workload) for s in servers)
        assert [o.status for o in first.outcomes] == [
            o.status for o in second.outcomes
        ]
        assert [o.finished_at for o in first.outcomes] == [
            o.finished_at for o in second.outcomes
        ]
        assert first.metrics.finished_at_seconds == second.metrics.finished_at_seconds


class TestAdmissionControl:
    def test_rejects_when_queue_full(self, carco, carco_optimizer):
        server = make_server(
            carco, carco_optimizer, concurrency=1, queue_depth=1
        )
        result = server.serve(
            [QueryRequest(sql=carco.query, name=f"r{i}") for i in range(4)]
        )
        assert result.metrics.served == 2  # the running one + the queued one
        assert result.metrics.rejected == 2
        assert result.metrics.reconciles()
        for outcome in result.by_status("rejected"):
            assert isinstance(outcome.error, AdmissionRejected)
            assert outcome.error.queue_depth == 1
            assert outcome.started_at is None

    def test_per_site_inflight_limit_serializes(self, carco, carco_optimizer):
        limited = make_server(
            carco, carco_optimizer, concurrency=4, site_inflight=1
        )
        workload = [
            QueryRequest(sql=carco.query, arrival=0.0, name="a"),
            QueryRequest(sql=carco.query, arrival=0.001, name="b"),
        ]
        result = limited.serve(workload)
        a, b = result.outcomes
        assert result.metrics.served == 2
        # Identical queries contend on every site, so the second query
        # cannot start until the first releases its fragments.
        assert b.started_at >= a.finished_at
        unlimited = make_server(carco, carco_optimizer, concurrency=4)
        overlapped = unlimited.serve(workload)
        assert overlapped.outcomes[1].started_at < overlapped.outcomes[0].finished_at

    def test_priority_orders_the_queue(self, carco, carco_optimizer):
        server = make_server(carco, carco_optimizer, concurrency=1)
        result = server.serve(
            [
                QueryRequest(sql=carco.query, arrival=0.0, name="first"),
                QueryRequest(sql=carco.query, arrival=0.001, name="low", priority=0),
                QueryRequest(sql=carco.query, arrival=0.002, name="high", priority=5),
            ]
        )
        by_name = {o.request.name: o for o in result.outcomes}
        assert result.metrics.served == 3
        assert by_name["high"].started_at < by_name["low"].started_at

    def test_invalid_knobs_raise_typed_errors(self, carco, carco_optimizer):
        for kwargs in (
            {"concurrency": 0},
            {"queue_depth": -1},
            {"site_inflight": 0},
            {"default_deadline": -2.0},
        ):
            with pytest.raises(InvalidParameterError):
                make_server(carco, carco_optimizer, **kwargs)


class TestLoadShedding:
    def test_sheds_queued_request_past_deadline(self, carco, carco_optimizer):
        server = make_server(carco, carco_optimizer, concurrency=1)
        result = server.serve(
            [
                QueryRequest(sql=carco.query, arrival=0.0, name="runs"),
                QueryRequest(
                    sql=carco.query, arrival=0.0, deadline=1e-6, name="starves"
                ),
            ]
        )
        runs, starves = result.outcomes
        assert runs.status == "served"
        assert starves.status == "shed"
        assert isinstance(starves.error, DeadlineExceeded)
        assert starves.started_at is None  # shed before ever starting
        assert result.metrics.shed == 1 and result.metrics.reconciles()

    def test_cancels_running_query_at_fragment_boundary(
        self, tpch_small, tpch_network
    ):
        # A deep plan (TPC-H Q5: a four-fragment chain) with a deadline
        # that passes mid-chain: the query starts, early fragments run,
        # and the root fragment is refused admission — cancelled
        # cooperatively before committing its input transfers.
        from repro.tpch import QUERIES, curated_policies

        catalog, database = tpch_small
        optimizer = CompliantOptimizer(
            catalog, curated_policies(catalog, "CR"), tpch_network
        )
        plan = optimizer.optimize(QUERIES["Q5"]).plan
        reference = ExecutionEngine(
            database, tpch_network, policy_guard=optimizer.evaluator, parallel=True
        ).execute(plan)
        root = next(f for f in reference.metrics.fragments if f.consumer is None)
        root_base = max(
            f.sim_start_seconds
            for f in reference.metrics.fragments
            if f.index in root.inputs
        )
        assert root_base > 0.0, "Q5 must be a multi-level fragment chain"
        server = QueryServer(database, tpch_network, optimizer=optimizer)
        result = server.serve(
            [QueryRequest(sql=QUERIES["Q5"], deadline=root_base * 0.99, name="doomed")]
        )
        (doomed,) = result.outcomes
        assert doomed.status == "shed"
        assert isinstance(doomed.error, DeadlineExceeded)
        assert doomed.started_at == 0.0  # it was dispatched
        # Cancelled at the root fragment's admission instant.
        assert doomed.finished_at == pytest.approx(root_base)
        assert result.metrics.shed == 1 and result.metrics.reconciles()

    def test_server_default_deadline_applies_to_queued_requests(
        self, carco, carco_optimizer
    ):
        server = make_server(
            carco, carco_optimizer, concurrency=1, default_deadline=1e-6
        )
        result = server.serve(
            [
                QueryRequest(sql=carco.query, arrival=0.0, name="runs"),
                QueryRequest(sql=carco.query, arrival=0.0, name="starves"),
            ]
        )
        assert result.outcomes[0].status == "served"  # late, but served
        assert result.outcomes[1].status == "shed"
        assert isinstance(result.outcomes[1].error, DeadlineExceeded)

    def test_late_service_is_flagged_not_shed(self, carco, carco_optimizer, reference):
        # Deadline checks cut only where a fragment commits new WAN
        # work; a deadline passing while the root fragment's inputs are
        # already in flight yields a *late* serve (flagged), not a shed.
        root = next(f for f in reference.metrics.fragments if f.consumer is None)
        root_base = max(
            f.sim_start_seconds
            for f in reference.metrics.fragments
            if f.index in root.inputs
        )
        deadline = (root_base + reference.makespan_seconds) / 2
        assert deadline < reference.makespan_seconds, "no late window"
        server = make_server(carco, carco_optimizer)
        result = server.serve(
            [QueryRequest(sql=carco.query, deadline=deadline, name="late")]
        )
        (late,) = result.outcomes
        assert late.status == "served"
        assert late.late
        assert late.rows == reference.rows
        assert result.metrics.served_late == 1


class TestMetrics:
    def test_buckets_reconcile_on_mixed_workload(self, carco, carco_optimizer):
        server = make_server(
            carco,
            carco_optimizer,
            concurrency=1,
            queue_depth=1,
            breakers=BreakerRegistry(),
        )
        requests = [
            QueryRequest(sql=carco.query, arrival=0.0, name="served"),
            QueryRequest(sql=carco.query, arrival=0.0, deadline=1e-6, name="shed"),
            QueryRequest(sql=carco.query, arrival=0.0, name="rejected-1"),
            QueryRequest(sql=carco.query, arrival=0.0, name="rejected-2"),
        ]
        result = server.serve(requests)
        metrics = result.metrics
        assert metrics.total == len(requests)
        assert metrics.reconciles()
        assert (metrics.served, metrics.shed, metrics.rejected) == (1, 1, 2)
        assert metrics.queue_wait_seconds >= 0.0
        assert metrics.transfer_attempts > 0
        assert metrics.breaker_trips == 0
        assert set(metrics.breaker_states.values()) == {"closed"}
        # Every non-served outcome carries a typed error — no silent drops.
        for outcome in result.outcomes:
            assert (outcome.error is None) == (outcome.status == "served")
        assert metrics.summary().startswith("1/4 served")
