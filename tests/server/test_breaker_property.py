"""Property tests for the circuit-breaker state machine (satellite of
the serving PR): the three invariants the docs promise.

1. **No silent recovery**: a breaker never goes OPEN -> CLOSED without
   a HALF_OPEN probe in between, for *any* event history.
2. **Probe semantics**: at a HALF_OPEN instant, a success closes the
   breaker and a failure re-opens it.
3. **Purity**: breaker decisions are a pure function of the
   (time-ordered) event history and the clock — recording order is
   irrelevant, and events after ``when`` cannot influence
   ``state_at(when)``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server import BreakerConfig, BreakerState, CircuitBreaker

configs = st.builds(
    BreakerConfig,
    failure_threshold=st.sampled_from([0.25, 0.5, 0.75, 1.0]),
    window=st.integers(min_value=1, max_value=8),
    min_volume=st.integers(min_value=1, max_value=6),
    cooldown=st.sampled_from([0.25, 0.5, 1.0]),
)

# Instants on a coarse grid so histories genuinely collide with
# cooldown boundaries; outcomes are (when, ok) pairs.
instants = st.integers(min_value=0, max_value=40).map(lambda i: i * 0.25)
events = st.lists(st.tuples(instants, st.booleans()), max_size=30)


def replay(config: BreakerConfig, history) -> CircuitBreaker:
    breaker = CircuitBreaker(config)
    for when, ok in history:
        breaker.record(when, ok)
    return breaker


@given(config=configs, history=events)
def test_never_open_to_closed_without_probe(config, history):
    trace = replay(config, history).transitions()
    for (_, before), (_, after) in zip(trace, trace[1:]):
        if before is BreakerState.OPEN:
            assert after is BreakerState.HALF_OPEN
        if after is BreakerState.CLOSED:
            assert before is BreakerState.HALF_OPEN


@given(
    config=configs,
    history=st.lists(
        st.tuples(instants, st.booleans()),
        max_size=30,
        unique_by=lambda e: e[0],  # one event per instant: the state an
        # event was applied in is unambiguous from the transition trace
    ),
)
def test_half_open_probe_decides(config, history):
    breaker = replay(config, history)
    for when, ok in history:
        trace = breaker.transitions(when)
        # State the machine was in when this event was applied: the
        # last transition strictly before the event instant (the event
        # itself may appear in the trace at the same instant).
        prior = [s for t, s in trace if t < when]
        state_then = prior[-1] if prior else BreakerState.CLOSED
        if state_then is BreakerState.HALF_OPEN:
            after = breaker.state_at(when)
            assert after is (BreakerState.CLOSED if ok else BreakerState.OPEN)


@given(
    config=configs,
    history=st.lists(
        st.tuples(instants, st.booleans()),
        max_size=20,
        unique_by=lambda e: e[0],  # distinct instants: one true timeline
    ),
    probe=instants,
    data=st.data(),
)
@settings(max_examples=200)
def test_purity_recording_order_is_irrelevant(config, history, probe, data):
    shuffled = data.draw(st.permutations(history))
    ordered = replay(config, history)
    reordered = replay(config, shuffled)
    assert ordered.state_at(probe) is reordered.state_at(probe)
    assert ordered.transitions() == reordered.transitions()


@given(config=configs, history=events, later=events)
def test_purity_future_events_do_not_rewrite_the_past(config, history, later):
    breaker = replay(config, history)
    horizon = max((when for when, _ in history), default=0.0)
    before = {when: breaker.state_at(when) for when, _ in history}
    trace_before = breaker.transitions(horizon)
    for when, ok in later:
        breaker.record(horizon + 0.25 + when, ok)
    assert {when: breaker.state_at(when) for when, _ in history} == before
    assert breaker.transitions(horizon) == trace_before
