"""Server-level plan-cache smoke: a warm serve run reports a positive
hit rate and serves exactly the rows a cold (cache-less) server serves.
This is the test the CI plan-cache smoke job runs."""

import pytest

from repro.optimizer import CompliantOptimizer
from repro.server import QueryRequest, QueryServer


def template_workload(carco):
    """Repeated query templates: the CarCo query plus literal-varied
    selections — the workload shape the cache exists for."""
    requests = []
    at = 0.0
    for wave in range(3):
        requests.append(QueryRequest(sql=carco.query, arrival=at, name=f"carco-{wave}"))
        at += 0.01
        for seg in ("a", "b"):
            requests.append(
                QueryRequest(
                    sql=(
                        "SELECT custkey, name FROM customer "
                        f"WHERE mktseg = '{seg}'"
                    ),
                    arrival=at,
                    name=f"seg-{seg}-{wave}",
                )
            )
            at += 0.01
    return requests


def serve_with(carco, plan_cache):
    optimizer = CompliantOptimizer(
        carco.catalog, carco.policies, carco.network, plan_cache=plan_cache
    )
    server = QueryServer(
        carco.database,
        carco.network,
        optimizer=optimizer,
        evaluator=optimizer.evaluator,
    )
    return server.serve(template_workload(carco)), optimizer


def test_warm_serve_hits_and_matches_cold(carco):
    warm, warm_optimizer = serve_with(carco, plan_cache=True)
    cold, _ = serve_with(carco, plan_cache=False)

    assert warm.metrics.served == cold.metrics.served == 9
    # Hit rate > 0: the repeated templates actually reused entries.
    assert warm.metrics.plan_cache_hits > 0
    assert (
        warm.metrics.plan_cache_hits + warm.metrics.plan_cache_misses
        == len(template_workload(carco))
    )
    assert warm.metrics.plan_cache_invalidations == 0
    assert warm_optimizer.plan_cache.stats.hit_rate > 0

    # Zero served-row divergence: ordered identity per request.
    for warm_outcome, cold_outcome in zip(warm.outcomes, cold.outcomes):
        assert warm_outcome.request.name == cold_outcome.request.name
        assert warm_outcome.status == cold_outcome.status == "served"
        assert warm_outcome.columns == cold_outcome.columns
        assert warm_outcome.rows == cold_outcome.rows

    # The cold server reports no cache activity at all.
    assert cold.metrics.plan_cache_hits == 0
    assert cold.metrics.plan_cache_misses == 0
    assert "plan cache" in warm.metrics.summary()
    assert "plan cache" not in cold.metrics.summary()


def test_hot_reload_during_serving_is_sound(carco):
    """A policy removal between serve waves invalidates dependent
    entries; subsequent requests re-derive instead of reusing."""
    optimizer = CompliantOptimizer(
        carco.catalog, carco.policies, carco.network, plan_cache=True
    )
    server = QueryServer(
        carco.database,
        carco.network,
        optimizer=optimizer,
        evaluator=optimizer.evaluator,
    )
    request = [QueryRequest(sql=carco.query, arrival=0.0)]
    first = server.serve(request)
    assert first.metrics.served == 1

    # Replace some policy the CarCo derivation read with itself: the
    # entry's read set is table-wide, so the swap must invalidate it.
    target = carco.policies.expressions[0]
    from repro.policy import parse_policy

    carco.policies.replace(
        target, parse_policy(target.source_text, carco.catalog)
    )
    second = server.serve(request)
    assert second.metrics.served == 1
    assert second.metrics.plan_cache_invalidations == 1
    assert second.metrics.plan_cache_misses == 1
    third = server.serve(request)
    assert third.metrics.plan_cache_hits == 1
    assert first.outcomes[0].rows == second.outcomes[0].rows == third.outcomes[0].rows
