"""Smoke tests of the experiment functions behind the benchmarks, at
miniature configurations — so `pytest tests/` exercises the harness code
paths without the benchmarks' runtimes."""

import pytest

from repro.bench import (
    effectiveness_adhoc,
    effectiveness_tpch,
    fragmented_policies,
    minimal_policies,
    optimization_overhead,
    plan_quality,
    scalability_expressions,
    scalability_fragments,
    scalability_policy_locations,
)
from repro.tpch import build_catalog, default_network


@pytest.fixture(scope="module")
def catalog():
    return build_catalog(scale=1.0)


@pytest.fixture(scope="module")
def network():
    return default_network()


def test_minimal_policies_cover_all_tables(catalog):
    policies = minimal_policies(catalog)
    assert len(policies) == 8


def test_effectiveness_tpch_small(catalog, network):
    matrix = effectiveness_tpch(
        catalog, network, set_names=("T",), query_names=("Q3", "Q10")
    )
    assert matrix.cells["T"]["Q3"] == ("C", "C")
    assert "Q3" in matrix.table()


def test_effectiveness_adhoc_small(catalog, network):
    result = effectiveness_adhoc(
        catalog,
        network,
        queries_per_set=4,
        expression_counts={"CR": 12},
        max_expressions=1500,
    )
    n, _trad, comp = result.per_set["CR"]
    assert n == 4
    assert comp == 4  # hub coverage guarantees success
    assert "CR" in result.table()


def test_overhead_small(catalog, network):
    result = optimization_overhead(
        catalog,
        network,
        minimal_policies(catalog),
        label="smoke",
        query_names=("Q3",),
        repetitions=2,
    )
    assert result.per_query["Q3"][0].runs == 2
    assert result.overhead_factor("Q3") > 0
    assert "Q3" in result.table()


def test_plan_quality_small():
    result = plan_quality("CR", scale=0.002, query_names=("Q3",))
    row = result.row("Q3")
    assert row.traditional_label == "NC"
    assert row.compliant_cost > 0
    assert "Q3" in result.table()


def test_scalability_expressions_small(catalog, network):
    result = scalability_expressions(
        catalog, network, "Q3", counts=(12, 25), repetitions=1
    )
    assert len(result.points) == 2
    assert all(eta >= 0 for _n, _t, eta in result.points)
    assert "Q3" in result.table()


def test_scalability_fragments_small():
    result = scalability_fragments("Q3", location_counts=(1, 2), repetitions=1)
    assert len(result.points) == 2
    assert "fragmented" in result.table()


def test_scalability_policy_locations_small():
    result = scalability_policy_locations("Q3", location_counts=(3, 5), repetitions=1)
    assert len(result.points) == 2
    assert result.points[0][2] >= 0  # phase-2 milliseconds
    assert "Q3" in result.table()


def test_fragmented_policies_cover_each_fragment():
    catalog = build_catalog(scale=0.01, fragmented=("customer",), fragment_locations=3)
    policies = fragmented_policies(catalog)
    customer_expressions = [
        e
        for db in ("db1", "db2", "db3")
        for e in policies.for_table(db, "customer")
    ]
    assert len(customer_expressions) == 3
