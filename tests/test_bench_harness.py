"""Benchmark-harness utilities."""

import pytest

from repro.bench import Report, TimedRun, format_table, scaled


def test_timed_run_measures_and_averages():
    calls = []
    run = TimedRun.measure(lambda: calls.append(1), repetitions=5)
    assert run.runs == 5
    assert len(calls) == 5
    assert run.mean_ms >= 0
    assert "ms" in str(run)


def test_timed_run_single_repetition_no_stdev():
    run = TimedRun.measure(lambda: None, repetitions=1)
    assert run.stdev_ms == 0.0


def test_format_table_alignment():
    text = format_table(
        ["name", "value"],
        [["short", 1], ["a-much-longer-name", 22]],
        title="My Title",
    )
    lines = text.splitlines()
    assert lines[0] == "My Title"
    assert set(lines[1]) == {"="}
    # All data lines share the header's column layout.
    header = lines[2]
    assert header.index("value") == lines[4].index("1")


def test_report_emits_to_disk_and_stdout(tmp_path, capsys):
    report = Report(tmp_path)
    path = report.emit("my_experiment", "hello world")
    assert path.read_text() == "hello world\n"
    assert "hello world" in capsys.readouterr().out


def test_scaled():
    assert scaled(2.0, 1.0) == 2.0
    assert scaled(2.0, 0.0) == 1.0  # degenerate baseline
