"""Shared fixtures: the CarCo running example and small TPC-H setups."""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.geo import GeoDatabase, NetworkModel, synthetic_network
from repro.policy import PolicyCatalog, PolicyEvaluator
from repro.tpch import build_benchmark, build_catalog, default_network


@dataclass
class CarCoWorld:
    """The paper's Section 2 running example, with loaded data."""

    catalog: Catalog
    policies: PolicyCatalog
    evaluator: PolicyEvaluator
    database: GeoDatabase
    network: NetworkModel
    query: str


CARCO_QUERY = """
SELECT C.name, SUM(O.totprice) AS total_price, SUM(S.quantity) AS total_qty
FROM customer AS C, orders AS O, supply AS S
WHERE C.custkey = O.custkey AND O.ordkey = S.ordkey
GROUP BY C.name
"""


def build_carco(seed: int = 7, customers: int = 50, orders: int = 300, supplies: int = 900) -> CarCoWorld:
    catalog = Catalog()
    catalog.add_database("dbn", "NorthAmerica")
    catalog.add_database("dbe", "Europe")
    catalog.add_database("dba", "Asia")
    catalog.add_table(
        "dbn",
        TableSchema(
            "customer",
            (
                Column("custkey", DataType.INTEGER),
                Column("name", DataType.VARCHAR),
                Column("acctbal", DataType.DECIMAL),
                Column("mktseg", DataType.VARCHAR),
                Column("region", DataType.VARCHAR),
            ),
            primary_key=("custkey",),
        ),
        row_count=customers,
    )
    catalog.add_table(
        "dbe",
        TableSchema(
            "orders",
            (
                Column("custkey", DataType.INTEGER),
                Column("ordkey", DataType.INTEGER),
                Column("totprice", DataType.DECIMAL),
            ),
            primary_key=("ordkey",),
        ),
        row_count=orders,
    )
    catalog.add_table(
        "dba",
        TableSchema(
            "supply",
            (
                Column("ordkey", DataType.INTEGER),
                Column("quantity", DataType.INTEGER),
                Column("extprice", DataType.DECIMAL),
            ),
        ),
        row_count=supplies,
    )

    policies = PolicyCatalog(catalog)
    # P_N: customer data only after suppressing the account balance.
    policies.add_text("ship custkey, name, mktseg, region from customer to *")
    # P_E: only aggregated order prices to Asia; order keys may travel.
    policies.add_text(
        "ship totprice as aggregates sum from orders to Asia group by custkey, ordkey"
    )
    policies.add_text("ship custkey, ordkey from orders to Asia, Europe")
    # P_A: only aggregated supply data to Europe.
    policies.add_text(
        "ship quantity, extprice as aggregates sum from supply to Europe group by ordkey"
    )

    rng = random.Random(seed)
    database = GeoDatabase(catalog)
    database.load(
        "dbn",
        "customer",
        [
            (i, f"name{i % 17}", round(rng.uniform(0, 1000), 2), rng.choice(["a", "b"]), "r")
            for i in range(customers)
        ],
    )
    database.load(
        "dbe",
        "orders",
        [(rng.randrange(customers), k, round(rng.uniform(1, 100), 2)) for k in range(orders)],
    )
    database.load(
        "dba",
        "supply",
        [
            (rng.randrange(orders), rng.randrange(1, 10), round(rng.uniform(1, 5), 2))
            for _ in range(supplies)
        ],
    )
    network = synthetic_network(catalog.locations)
    return CarCoWorld(
        catalog=catalog,
        policies=policies,
        evaluator=PolicyEvaluator(policies),
        database=database,
        network=network,
        query=CARCO_QUERY,
    )


@pytest.fixture(scope="session")
def carco() -> CarCoWorld:
    return build_carco()


@pytest.fixture(scope="session")
def tpch_stats_catalog() -> Catalog:
    """Stats-only TPC-H catalog at SF 1 (for optimization tests)."""
    return build_catalog(scale=1.0)


@pytest.fixture(scope="session")
def tpch_small():
    """Loaded TPC-H benchmark at a tiny scale (for execution tests)."""
    return build_benchmark(scale=0.002)


@pytest.fixture(scope="session")
def tpch_network() -> NetworkModel:
    return default_network()


def rows_as_multiset(rows, float_digits: int = 6):
    """Order-insensitive, float-tolerant row comparison key."""
    normalized = []
    for row in rows:
        normalized.append(
            tuple(
                round(v, float_digits) if isinstance(v, float) else v for v in row
            )
        )
    return sorted(normalized, key=repr)
