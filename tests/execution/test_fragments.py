"""Fragment DAG construction: cutting located plans at SHIP boundaries."""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.execution import (
    explain_fragments,
    fragment_plan,
    independent_pairs,
    reference_plan,
)
from repro.plan import NestedLoopJoin, Ship
from repro.sql import Binder


@pytest.fixture(scope="module")
def catalog():
    c = Catalog()
    c.add_database("db1", "L1")
    c.add_database("db2", "L2")
    c.add_database("db3", "L3")
    c.add_table(
        "db1",
        TableSchema("a", (Column("x", DataType.INTEGER),), primary_key=("x",)),
    )
    c.add_table(
        "db2",
        TableSchema("b", (Column("y", DataType.INTEGER),), primary_key=("y",)),
    )
    return c


def scan(catalog, table, database, location):
    plan = Binder(catalog).bind_sql(f"SELECT * FROM {table}")
    return reference_plan(plan, location)


def ship(child, source, target):
    return Ship(
        fields=child.fields, location=target, child=child, source=source, target=target
    )


def test_no_ship_plan_is_one_fragment(catalog):
    plan = scan(catalog, "a", "db1", "L1")
    dag = fragment_plan(plan)
    assert len(dag.fragments) == 1
    fragment = dag.root
    assert fragment.root is plan
    assert fragment.location == "L1"
    assert fragment.inputs == ()
    assert fragment.output is None
    assert fragment.consumer is None
    assert dag.independent_pairs() == 0


def test_single_ship_makes_linear_two_fragment_chain(catalog):
    inner = scan(catalog, "a", "db1", "L1")
    plan = ship(inner, "L1", "L2")
    dag = fragment_plan(plan)
    assert len(dag.fragments) == 2
    producer, consumer = dag.fragments
    # Producer-before-consumer topological order, root fragment last.
    assert producer.root is inner
    assert producer.output is plan
    assert producer.consumer == consumer.index
    assert consumer.root is plan  # relay fragment: body is the Ship leaf
    assert consumer.location == "L2"
    assert consumer.inputs[0].producer == producer.index
    assert consumer.inputs[0].ship is plan
    assert dag.independent_pairs() == 0


def test_nested_ship_relay_chain(catalog):
    inner = scan(catalog, "a", "db1", "L1")
    relay = ship(ship(inner, "L1", "L2"), "L2", "L3")
    dag = fragment_plan(relay)
    assert len(dag.fragments) == 3
    assert [f.location for f in dag.fragments] == ["L1", "L2", "L3"]
    # Middle fragment's body is just the inner Ship leaf.
    middle = dag.fragments[1]
    assert isinstance(middle.root, Ship)
    assert middle.operator_count == 1
    assert dag.independent_pairs() == 0


def _bushy_join(catalog):
    """Two scans at different sites, both shipped into a join at L3."""
    left = ship(scan(catalog, "a", "db1", "L1"), "L1", "L3")
    right = ship(scan(catalog, "b", "db2", "L2"), "L2", "L3")
    return NestedLoopJoin(
        fields=left.fields + right.fields,
        location="L3",
        left=left,
        right=right,
        condition=None,
    )


def test_bushy_join_has_independent_producers(catalog):
    dag = fragment_plan(_bushy_join(catalog))
    assert len(dag.fragments) == 3
    join_fragment = dag.root
    assert isinstance(join_fragment.root, NestedLoopJoin)
    assert {f.location for f in dag.fragments} == {"L1", "L2", "L3"}
    assert len(join_fragment.inputs) == 2
    # The two scan fragments have no dependency on each other.
    assert dag.independent_pairs() == 1
    assert independent_pairs(_bushy_join(catalog)) == 1


def test_ancestors_follow_consumer_chain(catalog):
    dag = fragment_plan(_bushy_join(catalog))
    root = dag.root_index
    for fragment in dag.fragments:
        if fragment.index == root:
            assert dag.ancestors(fragment.index) == set()
        else:
            assert dag.ancestors(fragment.index) == {root}


def test_fragment_operator_count_excludes_producer_subtrees(catalog):
    dag = fragment_plan(_bushy_join(catalog))
    # Join fragment: the join node plus two cut Ship leaves.
    assert dag.root.operator_count == 3
    # Producer fragments contain their full ship-free subtree.
    for fragment in dag.fragments[:-1]:
        assert not isinstance(fragment.root, Ship)
        assert fragment.operator_count == sum(1 for _ in fragment.root.walk())


def test_explain_fragments_renders_cut_edges(catalog):
    text = explain_fragments(fragment_plan(_bushy_join(catalog)))
    assert "Fragment f0 @ L1 feeds f2 via L1 -> L3" in text
    assert "Fragment f1 @ L2 feeds f2 via L2 -> L3" in text
    assert "Fragment f2 @ L3 produces the query result" in text
    assert "[input from f0: Ship L1 -> L3]" in text
    assert "[input from f1: Ship L2 -> L3]" in text
    # The producer subtrees are not re-rendered inside the consumer.
    assert text.count("TableScan db1.a") == 1


def test_fragmenting_optimized_tpch_plan(tpch_small, tpch_network):
    from repro.optimizer import CompliantOptimizer
    from repro.optimizer.compliant import _strip_sort
    from repro.tpch import QUERIES, curated_policies

    catalog, _database = tpch_small
    optimizer = CompliantOptimizer(
        catalog, curated_policies(catalog, "CR+A"), tpch_network
    )
    core, _sort = _strip_sort(Binder(catalog).bind_sql(QUERIES["Q9"]))
    plan = optimizer.optimize(core).plan
    dag = fragment_plan(plan)
    ships = [n for n in plan.walk() if isinstance(n, Ship)]
    # One fragment per cut Ship plus the root fragment.
    assert len(dag.fragments) == len(ships) + 1
    # Every fragment runs where its root operator is located, and every
    # cut edge's target is its consumer's location.
    for fragment in dag.fragments:
        assert fragment.location == fragment.root.location
        if fragment.output is not None:
            consumer = dag.fragments[fragment.consumer]
            assert fragment.output.target == consumer.location
            assert fragment.output.source == fragment.location
