"""Runtime freshness: staleness-checked admission and failover.

Plan-time replica filtering (PR 8's ``--max-staleness``) trusts the
catalog's *declared* bounds; these tests exercise the runtime half —
every scan-bearing fragment admission re-derives each replica's
staleness at that instant and demotes (or waits, or refuses) per the
configured policy, with every decision visible in metrics and recovery
records.
"""

import pytest

from repro.catalog import (
    Catalog,
    Column,
    FreshnessTracker,
    RefreshPause,
    RefreshSchedule,
    TableSchema,
)
from repro.datatypes import DataType
from repro.errors import ExecutionError, InvalidParameterError
from repro.expr import BaseColumn
from repro.execution import (
    ExecutionEngine,
    FailoverPlanner,
    FragmentScheduler,
    FreshnessPolicy,
    RetryPolicy,
    fragment_plan,
)
from repro.geo import GeoDatabase, NetworkModel
from repro.optimizer import CompliantOptimizer
from repro.plan import Field, Project, Ship, TableScan

from ..conftest import rows_as_multiset

SITES = ("L1", "L2", "L3", "L4")
ROWS = [(i,) for i in range(8)]


def freshness_world(near=0.3, far=0.3):
    """emp primary at L1 with replicas at L2 (``near`` seconds stale,
    statically) and L3 (``far``); the result is pinned at L4 over a
    network with identical link costs everywhere."""
    catalog = Catalog()
    for i, site in enumerate(SITES):
        catalog.add_database(f"db{i + 1}", site)
    catalog.add_table(
        "db1",
        TableSchema("emp", (Column("id", DataType.INTEGER),), primary_key=("id",)),
        row_count=len(ROWS),
    )
    catalog.add_replica("db1", "emp", "L2", staleness_seconds=near)
    catalog.add_replica("db1", "emp", "L3", staleness_seconds=far)
    database = GeoDatabase(catalog)
    database.load("db1", "emp", ROWS)
    network = NetworkModel()
    for src in SITES:
        for dst in SITES:
            if src != dst:
                network.set_link(src, dst, alpha=0.05, beta=1e-6)
    return catalog, database, network


def scan_plan(scan_site, trait=("L1", "L2", "L3")):
    """Hand-built scan@``scan_site`` shipping to a pinned root at L4."""
    fields = (Field("id", DataType.INTEGER, base=BaseColumn("db1", "emp", "id")),)
    scan = TableScan(
        fields=fields,
        location=scan_site,
        execution_trait=frozenset(trait),
        table="emp",
        database="db1",
        alias="e",
    )
    ship = Ship(
        fields=fields, location="L4", child=scan, source=scan_site, target="L4"
    )
    return Project(
        fields=fields,
        location="L4",
        execution_trait=frozenset({"L4"}),
        child=ship,
        exprs=tuple(f.to_ref() for f in fields),
        names=tuple(f.name for f in fields),
    )


def run_with(
    catalog,
    database,
    network,
    plan,
    mode,
    bound=None,
    retry_policy=None,
    start_at=0.0,
):
    policy = FreshnessPolicy(
        FreshnessTracker(catalog), mode=mode, max_staleness=bound
    )
    scheduler = FragmentScheduler(
        database, network, retry_policy=retry_policy, freshness=policy
    )
    return scheduler.run(plan, start_at=start_at)


def baseline_rows(database, network, plan):
    return rows_as_multiset(
        ExecutionEngine(database, network, parallel=True).execute(plan).rows
    )


# -- policy validation ---------------------------------------------------------


def test_policy_rejects_unknown_mode_and_negative_bound():
    catalog, _, _ = freshness_world()
    tracker = FreshnessTracker(catalog)
    with pytest.raises(InvalidParameterError, match="unknown staleness policy"):
        FreshnessPolicy(tracker, mode="yolo")
    with pytest.raises(InvalidParameterError, match="must be >= 0"):
        FreshnessPolicy(tracker, max_staleness=-1.0)


def test_engine_requires_parallel_for_freshness():
    catalog, database, network = freshness_world()
    policy = FreshnessPolicy(FreshnessTracker(catalog))
    with pytest.raises(ExecutionError, match="parallel=True"):
        ExecutionEngine(database, network, freshness=policy)


# -- read-stale: bounded staleness, minimum disruption ------------------------


def test_read_stale_commits_within_bound():
    catalog, database, network = freshness_world()
    plan = scan_plan("L2")
    batch, metrics = run_with(
        catalog, database, network, plan, "read-stale", bound=0.5
    )
    assert metrics.partial_failure is None
    assert rows_as_multiset(batch.rows) == baseline_rows(database, network, plan)
    assert metrics.stale_reads == 1
    assert metrics.freshness_demotions == 0
    (read,) = metrics.scan_reads
    assert (read.database, read.table, read.site) == ("db1", "emp", "L2")
    assert read.staleness_seconds == pytest.approx(0.3)


def test_read_stale_demotes_on_bound_violation():
    catalog, database, network = freshness_world()
    plan = scan_plan("L2")
    batch, metrics = run_with(
        catalog, database, network, plan, "read-stale", bound=0.1
    )
    assert metrics.partial_failure is None
    assert rows_as_multiset(batch.rows) == baseline_rows(database, network, plan)
    # L3 is as stale as L2: only the primary satisfies the bound.
    assert metrics.freshness_demotions == 1
    assert metrics.stale_reads == 0
    (record,) = metrics.recoveries
    assert record.kind == "replica"
    assert (record.from_site, record.to_site) == ("L2", "L1")
    assert record.staleness_at_read == pytest.approx(0.3)


def test_bound_violation_with_no_legal_copy_is_partial_failure():
    catalog, database, network = freshness_world()
    plan = scan_plan("L2", trait=("L2", "L3"))  # primary not compliant
    batch, metrics = run_with(
        catalog, database, network, plan, "read-stale", bound=0.1
    )
    assert metrics.partial_failure is not None
    assert metrics.partial_failure.error_type == "ReplicaStaleError"
    assert metrics.stale_reads == 0  # the violating read was never committed
    assert batch.rows == []


# -- prefer-fresh: demote whenever a fresher copy exists ----------------------


def test_prefer_fresh_soft_demotes_to_primary():
    catalog, database, network = freshness_world()
    plan = scan_plan("L2")
    batch, metrics = run_with(catalog, database, network, plan, "prefer-fresh")
    assert metrics.partial_failure is None
    assert rows_as_multiset(batch.rows) == baseline_rows(database, network, plan)
    assert metrics.freshness_demotions == 1
    assert metrics.stale_reads == 0
    assert metrics.scan_reads == []  # primary reads are exact, untracked
    (record,) = metrics.recoveries
    assert record.kind == "replica"
    assert record.to_site == "L1"
    assert record.staleness_at_read == pytest.approx(0.3)


def test_prefer_fresh_commits_when_nothing_fresher_is_placeable():
    catalog, database, network = freshness_world()
    plan = scan_plan("L2", trait=("L2", "L3"))  # both copies equally stale
    batch, metrics = run_with(catalog, database, network, plan, "prefer-fresh")
    assert metrics.partial_failure is None
    assert rows_as_multiset(batch.rows) == baseline_rows(database, network, plan)
    assert metrics.freshness_demotions == 0
    assert metrics.stale_reads == 1  # in-bound (no bound): committed as-is


# -- wait-for-refresh ----------------------------------------------------------


def test_wait_for_refresh_parks_until_the_refresh_lands():
    catalog, database, network = freshness_world()
    catalog.set_refresh("db1", "emp", "L2", RefreshSchedule(period=0.5))
    plan = scan_plan("L2", trait=("L2",))  # pinned: waiting is the only option
    batch, metrics = run_with(
        catalog,
        database,
        network,
        plan,
        "wait-for-refresh",
        bound=0.1,
        start_at=0.3,
    )
    assert metrics.partial_failure is None
    assert rows_as_multiset(batch.rows) == baseline_rows(database, network, plan)
    assert metrics.refresh_waits == 1
    assert metrics.refresh_wait_seconds == pytest.approx(0.2)
    assert metrics.stale_reads == 0  # read exactly at the refresh instant
    (read,) = metrics.scan_reads
    assert read.at_seconds == pytest.approx(0.5)
    assert metrics.makespan_seconds >= 0.5


def test_wait_for_refresh_demotes_when_wait_blows_fragment_timeout():
    catalog, database, network = freshness_world()
    catalog.set_refresh("db1", "emp", "L2", RefreshSchedule(period=0.5))
    plan = scan_plan("L2")
    batch, metrics = run_with(
        catalog,
        database,
        network,
        plan,
        "wait-for-refresh",
        bound=0.1,
        retry_policy=RetryPolicy(fragment_timeout=0.1),
        start_at=0.3,
    )
    assert metrics.partial_failure is None
    assert rows_as_multiset(batch.rows) == baseline_rows(database, network, plan)
    assert metrics.refresh_waits == 0
    assert metrics.freshness_demotions == 1
    (record,) = metrics.recoveries
    assert record.to_site == "L1"


def test_wait_for_refresh_paused_forever_degrades():
    catalog, database, network = freshness_world()
    catalog.set_refresh(
        "db1", "emp", "L2",
        RefreshSchedule(period=0.5, pauses=(RefreshPause(at=0.0),)),
    )
    plan = scan_plan("L2", trait=("L2",))
    batch, metrics = run_with(
        catalog,
        database,
        network,
        plan,
        "wait-for-refresh",
        bound=0.1,
        start_at=0.3,
    )
    # No refresh is ever coming and no alternative copy is legal: the
    # query degrades rather than serve a bound-violating read.
    assert metrics.partial_failure is not None
    assert metrics.partial_failure.error_type == "ReplicaStaleError"


# -- plan-only: the experiment baseline ---------------------------------------


def test_plan_only_serves_bound_violating_rows_but_records_them():
    catalog, database, network = freshness_world()
    plan = scan_plan("L2")
    batch, metrics = run_with(
        catalog, database, network, plan, "plan-only", bound=0.1
    )
    assert metrics.partial_failure is None
    assert rows_as_multiset(batch.rows) == baseline_rows(database, network, plan)
    assert metrics.freshness_demotions == 0
    assert metrics.stale_reads == 1  # recorded, not enforced
    (read,) = metrics.scan_reads
    assert read.staleness_seconds == pytest.approx(0.3)


# -- scheduled staleness varies with the admission instant --------------------


def test_scheduled_replica_staleness_depends_on_admission_instant():
    catalog, database, network = freshness_world()
    catalog.set_refresh("db1", "emp", "L2", RefreshSchedule(period=10.0, phase=10.0))
    plan = scan_plan("L2")
    # Admitted at t=0.05 the copy is 0.05s stale — within the bound.
    _, early = run_with(
        catalog, database, network, plan, "read-stale", bound=0.1, start_at=0.05
    )
    assert early.freshness_demotions == 0
    assert early.stale_reads == 1
    # The *same plan* admitted at t=0.3 violates the bound and demotes:
    # plan-time legality is never trusted at runtime.
    _, late = run_with(
        catalog, database, network, plan, "read-stale", bound=0.1, start_at=0.3
    )
    assert late.freshness_demotions == 1
    assert late.stale_reads == 0


# -- failover-planner ranking (satellite: deterministic tie-break) ------------


def equal_cost_failover(near, far, mode="read-stale", bound=None):
    catalog, database, network = freshness_world(near=near, far=far)
    plan = scan_plan("L1")
    dag = fragment_plan(plan)
    policy = FreshnessPolicy(
        FreshnessTracker(catalog), mode=mode, max_staleness=bound
    )
    planner = FailoverPlanner(network, freshness=policy)
    return planner.plan_failover(
        plan, dag, 0, unavailable=frozenset({"L1"}), reason="crash", at=1.0
    )


def test_equally_priced_replicas_tie_break_freshest_first():
    choice = equal_cost_failover(near=0.2, far=0.1)
    assert choice is not None
    assert choice.to_site == "L3"  # identical link costs: freshest wins
    assert choice.staleness == pytest.approx(0.1)
    # Flip the staleness profile: the ranking flips with it.
    assert equal_cost_failover(near=0.1, far=0.2).to_site == "L2"


def test_equally_stale_replicas_tie_break_lexicographic():
    choice = equal_cost_failover(near=0.2, far=0.2)
    assert choice is not None
    assert choice.to_site == "L2"


def test_enforcing_planner_drops_bound_violating_candidates():
    choice = equal_cost_failover(near=0.05, far=0.3, bound=0.1)
    assert choice is not None
    assert choice.to_site == "L2"  # L3 violates the bound: never chosen
    # Nothing within the bound -> no failover at all (fail closed).
    assert equal_cost_failover(near=0.3, far=0.3, bound=0.1) is None


# -- plan cache x refresh schedules (satellite: precise invalidation) ---------


def test_refresh_schedule_change_invalidates_warm_plan_cache():
    from .test_replica_failover import QUERY, build_world

    catalog, database, network, _ = build_world()
    from repro.policy import PolicyCatalog

    policies = PolicyCatalog(catalog)
    policies.add_text("ship k, v from t to near, far")
    policies.add_text("ship k, w from u to *")
    optimizer = CompliantOptimizer(
        catalog, policies, network, plan_cache=True
    )
    optimizer.optimize(QUERY)
    warm = optimizer.optimize(QUERY)
    assert warm.cache_hit
    # Registering a refresh schedule bumps the catalog version: the
    # cached located plan pinned its scan under the old freshness
    # profile, so the next lookup must re-derive.
    catalog.set_refresh("db1", "t", "near", RefreshSchedule(period=0.1))
    after = optimizer.optimize(QUERY)
    assert not after.cache_hit
    assert optimizer.plan_cache.stats.invalidations == 1
    # And the re-stored entry serves hits again at the new version.
    assert optimizer.optimize(QUERY).cache_hit
