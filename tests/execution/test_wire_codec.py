"""Property suite for the compressed columnar SHIP wire format.

The codec sits on the data path (the scheduler hands *decoded* rows to
consumer fragments), so round-trip exactness is a correctness property,
not an optimization detail.  Hypothesis fuzzes columns over every dtype
the executor ships — ints, floats (NaN and signed zeros included),
bools, strings, dates, timestamps, NULLs, and mixed columns — and the
chunked transfer encoder over varied chunk sizes, asserting:

* ``decode(encode(x)) == x`` value-for-value (NaN by identity: the
  plain fallback passes the original objects through by reference);
* ``auto`` never produces more wire bytes than ``plain``;
* chunk row counts tile the batch exactly, in order;
* the declared ``nbytes`` equals the independently recomputed size
  model for whichever encoding was chosen.

Plus deterministic cases: empty and single-row chunks, dictionary and
RLE selection on shaped inputs, type-strict grouping (``1`` vs ``1.0``
vs ``True``), and real low-cardinality TPC-H columns compressing.
"""

from __future__ import annotations

import datetime
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.execution.wire import (
    DEFAULT_CHUNK_ROWS,
    EncodedColumn,
    ShipConfig,
    WireFormatError,
    _value_nbytes,
    encode_column,
    encode_ship,
)

# -- value strategies ----------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.text(max_size=12),
    st.dates(
        min_value=datetime.date(1992, 1, 1), max_value=datetime.date(2000, 1, 1)
    ),
    st.datetimes(
        min_value=datetime.datetime(1992, 1, 1),
        max_value=datetime.datetime(2000, 1, 1),
    ),
)

#: Low-cardinality strategies — these make dict/RLE actually win.
_low_card = st.one_of(
    st.sampled_from(["BUILDING", "MACHINERY", "AUTOMOBILE"]),
    st.sampled_from([0, 1, 2]),
    st.booleans(),
)

_columns = st.one_of(
    st.lists(_scalars, max_size=80),
    st.lists(_low_card, max_size=80),
)


def values_equal(a, b) -> bool:
    """Exact equality with NaN-by-identity (plain passes references)."""
    if a is b:
        return True
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return repr(a) == repr(b)  # -0.0 stays distinct from 0.0
    return type(a) is type(b) and a == b


# -- column round-trips --------------------------------------------------------

@given(column=_columns, compression=st.sampled_from(["none", "auto"]))
def test_column_round_trip(column, compression):
    encoded = encode_column(column, compression)
    decoded = encoded.decode()
    assert len(decoded) == len(column)
    for original, restored in zip(column, decoded):
        assert values_equal(original, restored), (original, restored)


@given(column=_columns)
def test_auto_never_exceeds_plain(column):
    plain = encode_column(column, "none")
    auto = encode_column(column, "auto")
    assert plain.encoding == "plain"
    assert auto.nbytes <= plain.nbytes
    assert plain.nbytes == sum(_value_nbytes(v) for v in column)


@given(column=_columns)
def test_declared_nbytes_matches_size_model(column):
    encoded = encode_column(column, "auto")
    if encoded.encoding == "plain":
        expected = sum(_value_nbytes(v) for v in encoded.values)
    elif encoded.encoding == "dict":
        width = 1 if len(encoded.values) <= 256 else 2
        expected = (
            sum(_value_nbytes(v) for v in encoded.values)
            + len(encoded.codes) * width
        )
    else:  # rle
        expected = sum(_value_nbytes(v) for v in encoded.values) + 4 * len(
            encoded.values
        )
    assert encoded.nbytes == expected


# -- chunked transfer round-trips ----------------------------------------------

@settings(max_examples=60)
@given(
    rows=st.lists(
        st.tuples(_scalars, _low_card, _scalars),
        max_size=60,
    ),
    chunk_rows=st.one_of(st.none(), st.integers(min_value=1, max_value=20)),
    compression=st.sampled_from(["none", "auto"]),
)
def test_transfer_round_trip(rows, chunk_rows, compression):
    config = ShipConfig(chunk_rows=chunk_rows, compression=compression)
    wire = encode_ship(["a", "b", "c"], rows, config=config)
    decoded = wire.decode_rows()
    assert len(decoded) == len(rows) == wire.rows
    for original, restored in zip(rows, decoded):
        assert len(restored) == len(original)
        for x, y in zip(original, restored):
            assert values_equal(x, y), (x, y)
    # Chunks tile the batch exactly: sizes per chunk sum to the total,
    # every chunk but the last holds exactly chunk_rows rows.
    assert sum(chunk.rows for chunk in wire.chunks) == len(rows)
    if chunk_rows is None or not rows:
        assert len(wire.chunks) == 1
    else:
        assert len(wire.chunks) == -(-len(rows) // chunk_rows)
        assert all(c.rows == chunk_rows for c in wire.chunks[:-1])
    assert wire.wire_bytes == sum(wire.chunk_sizes)
    if compression == "auto":
        plain = encode_ship(
            ["a", "b", "c"], rows, config=ShipConfig(chunk_rows=chunk_rows)
        )
        assert wire.wire_bytes <= plain.wire_bytes


# -- deterministic shapes ------------------------------------------------------

def test_empty_batch_is_one_empty_chunk():
    """An empty SHIP still sends one (empty) chunk so the link's α
    latency is billed exactly like the monolithic path."""
    wire = encode_ship(["a", "b"], [], config=ShipConfig(chunk_rows=4))
    assert len(wire.chunks) == 1
    assert wire.chunks[0].rows == 0
    assert wire.wire_bytes == 0
    assert wire.decode_rows() == []


def test_single_row_chunks():
    rows = [(i, "x") for i in range(5)]
    wire = encode_ship(["k", "v"], rows, config=ShipConfig(chunk_rows=1))
    assert len(wire.chunks) == 5
    assert [c.rows for c in wire.chunks] == [1] * 5
    assert wire.decode_rows() == rows


def test_zero_column_rows_round_trip():
    wire = encode_ship([], [(), (), ()], config=ShipConfig(chunk_rows=2))
    assert wire.decode_rows() == [(), (), ()]
    assert wire.wire_bytes == 0


def test_dict_encoding_wins_on_low_cardinality_strings():
    column = ["BUILDING", "MACHINERY"] * 50
    encoded = encode_column(column, "auto")
    assert encoded.encoding == "dict"
    # Size model: one copy of each distinct string + 1 byte per row.
    assert encoded.nbytes == len("BUILDING") + len("MACHINERY") + 100
    assert encoded.decode() == column


def test_rle_encoding_wins_on_runs():
    column = ["AAAA"] * 60 + ["BBBB"] * 40
    encoded = encode_column(column, "auto")
    assert encoded.encoding == "rle"
    assert encoded.nbytes == 4 + 4 + 2 * 4  # two run values + two counters
    assert encoded.decode() == column


def test_high_cardinality_stays_plain():
    column = [f"unique-{i:06d}" for i in range(50)]
    encoded = encode_column(column, "auto")
    assert encoded.encoding == "plain"


def test_type_strict_grouping_never_collapses():
    column = [1, 1.0, True, 1, 1.0, True] * 10
    encoded = encode_column(column, "auto")
    decoded = encoded.decode()
    assert [type(v) for v in decoded] == [type(v) for v in column]
    assert all(values_equal(a, b) for a, b in zip(column, decoded))


def test_nan_column_falls_back_to_plain():
    nan = float("nan")
    column = [nan, nan, 1.5, nan] * 10
    encoded = encode_column(column, "auto")
    assert encoded.encoding == "plain"
    decoded = encoded.decode()
    assert decoded[0] is nan  # reference-passing exactness


def test_unhashable_column_falls_back_to_plain():
    column = [[1, 2], [1, 2], [3]] * 5
    encoded = encode_column(column, "auto")
    assert encoded.encoding == "plain"
    assert encoded.decode() == column


def test_signed_zero_stays_distinct():
    column = [0.0, -0.0] * 30
    encoded = encode_column(column, "auto")
    decoded = encoded.decode()
    assert [repr(v) for v in decoded] == [repr(v) for v in column]


def test_ship_config_validation():
    with pytest.raises(WireFormatError):
        ShipConfig(chunk_rows=0)
    with pytest.raises(WireFormatError):
        ShipConfig(chunk_rows=-5)
    with pytest.raises(WireFormatError):
        ShipConfig(compression="zstd")
    with pytest.raises(WireFormatError):
        encode_column([1, 2], "gzip")
    assert not ShipConfig().active
    assert ShipConfig(compression="auto").active
    streaming = ShipConfig(chunk_rows=DEFAULT_CHUNK_ROWS)
    assert streaming.streaming and streaming.active


def test_unknown_encoding_rejected_on_decode():
    with pytest.raises(WireFormatError):
        EncodedColumn("delta", (1, 2), (), 16).decode()


# -- real TPC-H columns --------------------------------------------------------

def test_low_cardinality_tpch_columns_compress(tpch_small):
    """The columns the paper's workload actually ships include
    low-cardinality ones (flags, segments, priorities); ``auto`` must
    beat plain on each of them and round-trip exactly."""
    catalog, database = tpch_small
    cases = [
        ("customer", "c_mktsegment"),
        ("orders", "o_orderpriority"),
        ("lineitem", "l_quantity"),
        # Single-character flags are already 1 byte/row — plain is
        # optimal there, and auto must not make them bigger.
        ("orders", "o_orderstatus"),
        ("lineitem", "l_returnflag"),
        ("lineitem", "l_linestatus"),
    ]
    compressed = 0
    for table, column_name in cases:
        for fragment in catalog.table(table).fragments:
            schema = fragment.schema
            position = [c.name for c in schema.columns].index(column_name)
            column = [
                row[position] for row in database.rows(fragment.database, table)
            ]
            assert len(column) > 0
            plain = encode_column(column, "none")
            auto = encode_column(column, "auto")
            assert auto.decode() == column
            assert auto.nbytes <= plain.nbytes
            compressed += auto.nbytes < plain.nbytes
    assert compressed >= 3  # the real data genuinely compresses
