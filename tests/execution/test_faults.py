"""Fault model unit tests: the deterministic fault schedule, the CLI
fault-spec grammar, the fault-aware network view, and the retry policy's
deterministic backoff."""

import pytest

from repro.errors import ExecutionError, SiteUnavailableError, TransferError
from repro.execution import (
    FaultPlan,
    FlakyLink,
    LinkDown,
    RetryPolicy,
    SiteCrash,
    SlowLink,
    parse_fault_spec,
    stable_fraction,
)
from repro.geo import FaultAwareNetwork, NetworkModel


class TestFaultPlan:
    def test_site_crash_is_permanent(self):
        plan = FaultPlan([SiteCrash("Asia", at=1.0)])
        assert not plan.site_down("Asia", 0.999)
        assert plan.site_down("Asia", 1.0)
        assert plan.site_down("Asia", 100.0)
        assert not plan.site_down("Europe", 5.0)
        assert plan.crashed_sites(0.5) == frozenset()
        assert plan.crashed_sites(2.0) == frozenset({"Asia"})

    def test_link_down_window(self):
        outage = LinkDown("A", "B", at=1.0, duration=0.5)
        plan = FaultPlan([outage])
        assert plan.link_down("A", "B", 0.9) is None
        assert plan.link_down("A", "B", 1.0) is outage
        assert plan.link_down("A", "B", 1.49) is outage
        assert plan.link_down("A", "B", 1.5) is None
        assert plan.link_down("B", "A", 1.2) is None  # directed

    def test_link_down_permanent(self):
        plan = FaultPlan([LinkDown("A", "B", at=1.0)])
        assert plan.link_down("A", "B", 99.0) is not None

    def test_flaky_window(self):
        plan = FaultPlan([FlakyLink("A", "B", at=0.0, duration=0.2)])
        assert plan.link_flaky("A", "B", 0.0) is not None
        assert plan.link_flaky("A", "B", 0.2) is None

    def test_slow_factors_stack(self):
        plan = FaultPlan(
            [
                SlowLink("A", "B", factor=2.0, at=0.0, duration=1.0),
                SlowLink("A", "B", factor=3.0, at=0.5, duration=1.0),
            ]
        )
        assert plan.slow_factor("A", "B", 0.1) == pytest.approx(2.0)
        assert plan.slow_factor("A", "B", 0.7) == pytest.approx(6.0)
        assert plan.slow_factor("A", "B", 1.2) == pytest.approx(3.0)
        assert plan.slow_factor("A", "B", 2.0) == pytest.approx(1.0)
        assert plan.slow_factor("B", "A", 0.7) == pytest.approx(1.0)

    def test_bool_and_str(self):
        assert not FaultPlan()
        assert str(FaultPlan()) == "(no faults)"
        plan = FaultPlan([SiteCrash("X", at=0.25)])
        assert plan
        assert str(plan) == "crash:X@0.25"

    def test_random_is_deterministic(self):
        sites = ("A", "B", "C")
        one = FaultPlan.random(7, sites)
        two = FaultPlan.random(7, sites)
        assert one.events == two.events
        assert FaultPlan.random(8, sites).events != one.events

    def test_random_transient_only_draws_no_permanent_faults(self):
        sites = ("A", "B", "C", "D")
        for seed in range(30):
            plan = FaultPlan.random(seed, sites)
            assert plan.events
            assert all(
                isinstance(e, (FlakyLink, SlowLink)) for e in plan.events
            )

    def test_random_pairs_restrict_links(self):
        pairs = [("A", "B")]
        for seed in range(10):
            plan = FaultPlan.random(seed, ("A", "B", "C"), pairs=pairs)
            assert all((e.source, e.target) == ("A", "B") for e in plan.events)

    def test_random_single_site_is_empty(self):
        assert not FaultPlan.random(1, ("Solo",))


class TestParseFaultSpec:
    def test_grammar(self):
        plan = parse_fault_spec(
            "crash:Asia@0.5; drop:A->B@1+0.25; slow:A->B@0x4; flaky:B->A@0.1+0.2"
        )
        crash, drop, slow, flaky = plan.events
        assert crash == SiteCrash("Asia", at=0.5)
        assert drop == LinkDown("A", "B", at=1.0, duration=0.25)
        assert slow == SlowLink("A", "B", factor=4.0, at=0.0, duration=None)
        assert flaky == FlakyLink("B", "A", at=0.1, duration=0.2)

    def test_roundtrip_through_str(self):
        spec = "crash:Asia@0.5; drop:A->B@1+0.25; slow:A->B@0x4; flaky:B->A@0.1+0.2"
        plan = parse_fault_spec(spec)
        assert parse_fault_spec(str(plan)).events == plan.events

    def test_random_spec_needs_locations(self):
        with pytest.raises(ExecutionError, match="site list"):
            parse_fault_spec("random:42")
        plan = parse_fault_spec("random:42", locations=["A", "B", "C"])
        assert plan.events == FaultPlan.random(42, ["A", "B", "C"]).events

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:Asia@1",
            "drop:AB@1",
            "slow:A->B@1",  # missing xFACTOR
            "flaky:A->B@1",  # missing +DURATION
            "crash:Asia@oops",
        ],
    )
    def test_bad_events_raise(self, bad):
        with pytest.raises(ExecutionError, match="bad fault event"):
            parse_fault_spec(bad)

    def test_empty_segments_ignored(self):
        assert parse_fault_spec(" ; ;crash:X@1; ").events == [SiteCrash("X", at=1.0)]


@pytest.fixture()
def wan():
    base = NetworkModel()
    base.set_link("A", "B", alpha=0.1, beta=1e-6)
    base.set_link("B", "A", alpha=0.1, beta=1e-6)
    return base


class TestFaultAwareNetwork:
    def test_no_faults_matches_base(self, wan):
        net = FaultAwareNetwork(wan, FaultPlan())
        assert net.attempt_transfer("A", "B", 1000, 0.0) == pytest.approx(
            wan.transfer_time("A", "B", 1000)
        )
        assert net.transfer_time("A", "B", 1000) == wan.transfer_time("A", "B", 1000)

    def test_crashed_endpoint_raises(self, wan):
        net = FaultAwareNetwork(wan, FaultPlan([SiteCrash("B", at=1.0)]))
        assert net.site_available("B", 0.5)
        assert not net.site_available("B", 1.5)
        net.attempt_transfer("A", "B", 10, 0.5)  # before the crash: fine
        with pytest.raises(SiteUnavailableError) as excinfo:
            net.attempt_transfer("A", "B", 10, 1.5)
        assert excinfo.value.site == "B"

    def test_permanent_link_down_is_not_transient(self, wan):
        net = FaultAwareNetwork(wan, FaultPlan([LinkDown("A", "B", at=0.0)]))
        with pytest.raises(TransferError) as excinfo:
            net.attempt_transfer("A", "B", 10, 5.0)
        assert not excinfo.value.transient

    def test_bounded_link_down_is_transient(self, wan):
        net = FaultAwareNetwork(
            wan, FaultPlan([LinkDown("A", "B", at=0.0, duration=1.0)])
        )
        with pytest.raises(TransferError) as excinfo:
            net.attempt_transfer("A", "B", 10, 0.5)
        assert excinfo.value.transient
        net.attempt_transfer("A", "B", 10, 1.5)  # after recovery

    def test_flaky_is_transient_and_directed(self, wan):
        net = FaultAwareNetwork(
            wan, FaultPlan([FlakyLink("A", "B", at=0.0, duration=0.3)])
        )
        with pytest.raises(TransferError) as excinfo:
            net.attempt_transfer("A", "B", 10, 0.1)
        assert excinfo.value.transient
        net.attempt_transfer("B", "A", 10, 0.1)  # reverse direction is fine
        net.attempt_transfer("A", "B", 10, 0.31)  # past the window

    def test_slow_link_multiplies_time(self, wan):
        net = FaultAwareNetwork(
            wan, FaultPlan([SlowLink("A", "B", factor=3.0, at=0.0, duration=1.0)])
        )
        healthy = wan.transfer_time("A", "B", 1000)
        assert net.attempt_transfer("A", "B", 1000, 0.5) == pytest.approx(3 * healthy)
        assert net.attempt_transfer("A", "B", 1000, 1.5) == pytest.approx(healthy)

    def test_local_move_only_fails_when_site_down(self, wan):
        net = FaultAwareNetwork(
            wan,
            FaultPlan([LinkDown("A", "A", at=0.0), SiteCrash("A", at=1.0)]),
        )
        assert net.attempt_transfer("A", "A", 10, 0.5) == 0.0
        with pytest.raises(SiteUnavailableError):
            net.attempt_transfer("A", "A", 10, 1.5)


class TestStableFraction:
    def test_deterministic_and_bounded(self):
        assert stable_fraction("a", 1) == stable_fraction("a", 1)
        assert stable_fraction("a", 1) != stable_fraction("a", 2)
        for i in range(100):
            assert 0.0 <= stable_fraction("x", i) < 1.0


class TestRetryPolicy:
    def test_backoff_grows_exponentially_with_bounded_jitter(self):
        policy = RetryPolicy(backoff_seconds=0.1, backoff_multiplier=2.0, jitter=0.25)
        for n in (1, 2, 3, 4):
            base = 0.1 * 2 ** (n - 1)
            wait = policy.backoff(n, "f0", "A", "B")
            assert base <= wait < base * 1.25
        # Deterministic: identical transfer identity, identical schedule.
        assert policy.backoff(2, "f0", "A", "B") == policy.backoff(2, "f0", "A", "B")
        assert policy.backoff(2, "f0", "A", "B") != policy.backoff(2, "f1", "A", "B")

    def test_max_attempts(self):
        assert RetryPolicy(max_retries=0).max_attempts == 1
        assert RetryPolicy(max_retries=3).max_attempts == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"backoff_seconds": -0.1},
            {"backoff_multiplier": 0.5},
            {"fragment_timeout": 0.0},
            {"fragment_timeout": -1.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ExecutionError):
            RetryPolicy(**kwargs)
