"""Per-operator executor tests over a tiny hand-built world."""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.errors import ComplianceViolationError
from repro.execution import ExecutionEngine, actual_bytes, reference_plan
from repro.geo import GeoDatabase, synthetic_network
from repro.policy import PolicyCatalog, PolicyEvaluator
from repro.plan import Ship
from repro.sql import Binder


@pytest.fixture(scope="module")
def world():
    c = Catalog()
    c.add_database("db1", "L1")
    c.add_database("db2", "L2")
    c.add_table(
        "db1",
        TableSchema(
            "emp",
            (
                Column("id", DataType.INTEGER),
                Column("dept", DataType.VARCHAR),
                Column("salary", DataType.DECIMAL),
            ),
            primary_key=("id",),
        ),
    )
    c.add_table(
        "db2",
        TableSchema(
            "dept",
            (Column("name", DataType.VARCHAR), Column("budget", DataType.INTEGER)),
        ),
    )
    db = GeoDatabase(c)
    db.load(
        "db1",
        "emp",
        [
            (1, "eng", 100.0),
            (2, "eng", 200.0),
            (3, "sales", 150.0),
            (4, "sales", None),
            (5, None, 50.0),
        ],
    )
    db.load("db2", "dept", [("eng", 10), ("sales", 20), ("hr", 30)])
    engine = ExecutionEngine(db, synthetic_network(["L1", "L2"]))
    return c, engine


def run(world, sql):
    catalog, engine = world
    plan = Binder(catalog).bind_sql(sql)
    return engine.execute(reference_plan(plan))


def test_scan_and_project(world):
    result = run(world, "SELECT id FROM emp")
    assert sorted(r[0] for r in result.rows) == [1, 2, 3, 4, 5]
    assert result.columns == ["id"]


def test_filter_with_null_predicate(world):
    result = run(world, "SELECT id FROM emp WHERE salary > 100")
    assert sorted(r[0] for r in result.rows) == [2, 3]  # NULL salary excluded


def test_hash_join_inner_semantics(world):
    result = run(
        world,
        "SELECT emp.id, dept.budget FROM emp, dept WHERE emp.dept = dept.name",
    )
    assert sorted(result.rows) == [(1, 10), (2, 10), (3, 20), (4, 20)]


def test_join_null_keys_never_match(world):
    result = run(
        world,
        "SELECT emp.id FROM emp, dept WHERE emp.dept = dept.name",
    )
    assert 5 not in {r[0] for r in result.rows}


def test_nested_loop_join_theta(world):
    result = run(
        world,
        "SELECT emp.id, dept.name FROM emp, dept WHERE emp.salary > dept.budget",
    )
    # every non-null salary exceeds every budget in this data
    assert len(result.rows) == 4 * 3


def test_aggregate_functions_and_nulls(world):
    result = run(
        world,
        "SELECT dept, COUNT(*) AS n, COUNT(salary) AS ns, SUM(salary) AS s, "
        "AVG(salary) AS a, MIN(salary) AS lo, MAX(salary) AS hi "
        "FROM emp GROUP BY dept",
    )
    by_dept = {r[0]: r[1:] for r in result.rows}
    assert by_dept["eng"] == (2, 2, 300.0, 150.0, 100.0, 200.0)
    assert by_dept["sales"] == (2, 1, 150.0, 150.0, 150.0, 150.0)
    assert None in by_dept  # NULL is a valid group


def test_global_aggregate_on_empty_input(world):
    result = run(world, "SELECT COUNT(*) AS n, SUM(salary) AS s FROM emp WHERE id > 99")
    assert result.rows == [(0, None)]


def test_group_aggregate_on_empty_input_yields_no_rows(world):
    result = run(world, "SELECT dept, COUNT(*) FROM emp WHERE id > 99 GROUP BY dept")
    assert result.rows == []


def test_sort_order_and_limit(world):
    result = run(world, "SELECT id, salary FROM emp ORDER BY salary DESC LIMIT 2")
    assert [r[0] for r in result.rows] == [2, 3]


def test_sort_multiple_keys(world):
    result = run(world, "SELECT dept, id FROM emp ORDER BY dept, id DESC")
    non_null = [r for r in result.rows if r[0] is not None]
    assert non_null == [("eng", 2), ("eng", 1), ("sales", 4), ("sales", 3)]


def test_ship_records_metrics(world):
    catalog, engine = world
    plan = Binder(catalog).bind_sql("SELECT id FROM emp")
    physical = reference_plan(plan, "L1")
    shipped = Ship(
        fields=physical.fields, location="L2", child=physical,
        source="L1", target="L2",
    )
    result = engine.execute(shipped)
    assert len(result.metrics.ships) == 1
    record = result.metrics.ships[0]
    assert record.rows == 5
    assert record.bytes == 5 * 8
    assert record.seconds > 0
    assert result.simulated_cost == record.seconds


def test_actual_bytes_by_type():
    import datetime

    rows = [(1, 1.5, "abc", datetime.date(2020, 1, 1), None, True)]
    assert actual_bytes(rows) == 8 + 8 + 3 + 4 + 1 + 1


class TestActualBytesBranches:
    """One direct assertion per branch of the wire-size accounting."""

    def test_none_is_one_byte(self):
        assert actual_bytes([(None,)]) == 1

    def test_bool_is_one_byte_despite_being_an_int(self):
        assert isinstance(True, int)  # the trap the branch order avoids
        assert actual_bytes([(True,), (False,)]) == 2

    def test_int_is_eight_bytes(self):
        assert actual_bytes([(0,)]) == 8
        assert actual_bytes([(2**40,)]) == 8

    def test_float_is_eight_bytes(self):
        assert actual_bytes([(3.25,)]) == 8

    def test_str_is_its_length(self):
        assert actual_bytes([("",)]) == 0
        assert actual_bytes([("hello",)]) == 5

    def test_datetime_is_eight_bytes_despite_being_a_date(self):
        import datetime

        ts = datetime.datetime(2020, 1, 1, 12, 30, 0)
        assert isinstance(ts, datetime.date)  # the subclass trap
        assert actual_bytes([(ts,)]) == 8

    def test_date_is_four_bytes(self):
        import datetime

        assert actual_bytes([(datetime.date(2020, 1, 1),)]) == 4

    def test_unknown_object_is_eight_bytes(self):
        assert actual_bytes([(object(),)]) == 8

    def test_sums_over_rows_and_columns(self):
        rows = [(1, "ab"), (None, "c")]
        assert actual_bytes(rows) == (8 + 2) + (1 + 1)


def test_policy_guard_refuses_noncompliant(world):
    catalog, engine = world
    policies = PolicyCatalog(catalog)  # nothing may ship anywhere
    guarded = ExecutionEngine(
        engine.database, engine.network, policy_guard=PolicyEvaluator(policies)
    )
    plan = Binder(catalog).bind_sql("SELECT id FROM emp")
    physical = reference_plan(plan, "L1")
    shipped = Ship(
        fields=physical.fields, location="L2", child=physical,
        source="L1", target="L2",
    )
    with pytest.raises(ComplianceViolationError):
        guarded.execute(shipped)
    # Without the offending ship the guard lets it run.
    assert guarded.execute(physical).row_count == 5


def test_metrics_row_counts(world):
    result = run(world, "SELECT id FROM emp WHERE salary > 100")
    assert result.metrics.rows_scanned == 5
    assert result.metrics.rows_output == 2
    assert result.metrics.operators_executed >= 2
