"""Chunk-granular retry: faults re-send only what was never delivered.

The monolithic fault path re-ships an entire payload on every retry.
Streaming makes recovery chunk-granular: a transient link fault costs
only the undelivered chunks, every chunk is billed exactly once, and
the total billed wire bytes of a faulted run equal the fault-free
run's.  All three properties are asserted from the recorded trace —
the same evidence the auditor sees — and cross-checked against the
scheduler's metrics.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.execution import (
    ExecutionEngine,
    RetryPolicy,
    ShipConfig,
    parse_fault_spec,
)
from repro.optimizer import CompliantOptimizer
from repro.tpch import QUERIES, curated_policies
from repro.trace import TraceRecorder, tracing

#: Small chunks so every transfer in the 0.002-scale fixture splits.
STREAM = ShipConfig(chunk_rows=64, compression="auto")

#: Transient fault windows covering the early transfer instants of the
#: curated plans on the default network (drop = hard failures that
#: retry through backoff; flaky = intermittent failures).
FAULT_SPECS = [
    "drop:Europe->NorthAmerica@0.01+0.05",
    "flaky:AsiaPacific->NorthAmerica@0.0+0.1",
    "drop:Europe->NorthAmerica@0.01+0.05;flaky:MiddleEast->Europe@0.0+0.08",
]


@pytest.fixture(scope="module")
def world(tpch_small, tpch_network):
    catalog, database = tpch_small
    optimizer = CompliantOptimizer(
        catalog, curated_policies(catalog, "CR"), tpch_network
    )
    return catalog, database, tpch_network, optimizer


def traced_run(engine, plan):
    recorder = TraceRecorder()
    with tracing(recorder):
        result = engine.execute(plan)
    return result, list(recorder.events())


def chunk_events(events):
    return [e for e in events if e.kind == "chunk"]


def delivered_chunk_bytes(events):
    """Total billed wire bytes: delivered chunk events only."""
    return sum(e.bytes for e in chunk_events(events) if e.outcome == "delivered")


@pytest.mark.parametrize("name", ["Q3", "Q5", "Q10"])
@pytest.mark.parametrize("spec", FAULT_SPECS, ids=["drop", "flaky", "both"])
def test_only_undelivered_chunks_resent(world, name, spec):
    catalog, database, network, optimizer = world
    plan = optimizer.optimize(QUERIES[name]).plan

    clean_engine = ExecutionEngine(database, network, parallel=True, ship=STREAM)
    clean, clean_events = traced_run(clean_engine, plan)
    assert clean.partial_failure is None

    faults = parse_fault_spec(spec, locations=catalog.locations)
    faulted_engine = ExecutionEngine(
        database,
        network,
        parallel=True,
        faults=faults,
        retry_policy=RetryPolicy(max_retries=8),
        ship=STREAM,
    )
    faulted, faulted_events = traced_run(faulted_engine, plan)
    key = (name, spec)
    assert faulted.partial_failure is None, key
    assert faulted.rows == clean.rows, key

    # No chunk is double-billed: for every logical (producer, consumer,
    # target, chunk) key there is exactly one *delivered* chunk event;
    # any extra events for that key are failed attempts that preceded
    # the delivery — the re-sends cover only undelivered chunks.
    attempts = defaultdict(list)
    for event in chunk_events(faulted_events):
        attempts[(event.producer, event.consumer, event.target, event.chunk)].append(
            event
        )
    retried_keys = 0
    for chunk_key, events in attempts.items():
        delivered = [e for e in events if e.outcome == "delivered"]
        assert len(delivered) == 1, (key, chunk_key)
        assert events[-1].outcome == "delivered", (key, chunk_key)
        assert all(e.outcome != "delivered" for e in events[:-1]), (key, chunk_key)
        retried_keys += len(events) > 1

    # When the faults actually bit (some chunk attempt failed), the
    # re-sends never touched every chunk: delivered-before-the-fault
    # chunks are not re-shipped.
    if any(e.outcome != "delivered" for e in chunk_events(faulted_events)):
        assert 0 < retried_keys < len(attempts), key

    # Total billed wire bytes match the fault-free run — chunk-granular
    # retry adds attempts, never billed bytes.
    assert delivered_chunk_bytes(faulted_events) == delivered_chunk_bytes(
        clean_events
    ), key
    assert (
        faulted.metrics.total_wire_bytes_shipped
        == clean.metrics.total_wire_bytes_shipped
    ), key
    assert (
        faulted.metrics.total_bytes_shipped == clean.metrics.total_bytes_shipped
    ), key


def test_faults_actually_retried_chunks(world):
    """At least one (query, fault) combination in the matrix above must
    exercise per-chunk retry, or the suite is vacuous."""
    catalog, database, network, optimizer = world
    retried = 0
    for name in ("Q3", "Q5", "Q10"):
        plan = optimizer.optimize(QUERIES[name]).plan
        for spec in FAULT_SPECS:
            faults = parse_fault_spec(spec, locations=catalog.locations)
            engine = ExecutionEngine(
                database,
                network,
                parallel=True,
                faults=faults,
                retry_policy=RetryPolicy(max_retries=8),
                ship=STREAM,
            )
            result, events = traced_run(engine, plan)
            assert result.partial_failure is None
            failed = [
                e for e in chunk_events(events) if e.outcome != "delivered"
            ]
            retried += bool(failed)
    assert retried >= 2


def test_chunk_seconds_cover_makespan(world):
    """The per-record seconds of a chunked transfer sum *all* acked
    chunk times, so the makespan <= shipping-seconds invariant holds in
    streaming mode, fault-free."""
    _catalog, database, network, optimizer = world
    for name in ("Q3", "Q5", "Q10"):
        plan = optimizer.optimize(QUERIES[name]).plan
        engine = ExecutionEngine(database, network, parallel=True, ship=STREAM)
        result = engine.execute(plan)
        assert result.metrics.makespan_seconds <= (
            result.metrics.shipping_seconds + 1e-9
        ), name
