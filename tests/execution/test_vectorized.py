"""Unit tests for the columnar batch executor and its wiring.

Cross-backend equivalence at scale lives in the integration suite; this
file covers the batch-specific seams: the ColumnBatch layout and its
row-conversion boundary, columnar byte accounting, the cached RowBatch
wire size, and executor-name validation through the engine/scheduler.
"""

import datetime

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.errors import ExecutionError
from repro.execution import (
    BatchOperatorExecutor,
    ColumnBatch,
    ExecutionEngine,
    ExecutionMetrics,
    FragmentScheduler,
    OperatorExecutor,
    RowBatch,
    actual_bytes,
    column_bytes,
    reference_plan,
    validate_executor_name,
)
from repro.geo import GeoDatabase, synthetic_network
from repro.sql import Binder


@pytest.fixture(scope="module")
def world():
    c = Catalog()
    c.add_database("db1", "L1")
    c.add_database("db2", "L2")
    c.add_table(
        "db1",
        TableSchema(
            "emp",
            (
                Column("id", DataType.INTEGER),
                Column("dept", DataType.VARCHAR),
                Column("salary", DataType.DECIMAL),
            ),
            primary_key=("id",),
        ),
    )
    c.add_table(
        "db2",
        TableSchema(
            "dept",
            (Column("name", DataType.VARCHAR), Column("budget", DataType.INTEGER)),
        ),
    )
    db = GeoDatabase(c)
    db.load(
        "db1",
        "emp",
        [
            (1, "eng", 100.0),
            (2, "eng", 200.0),
            (3, "sales", 150.0),
            (4, "sales", None),
            (5, None, 50.0),
        ],
    )
    db.load("db2", "dept", [("eng", 10), ("sales", 20), ("hr", 30)])
    return c, db


def run_both(world, sql):
    catalog, db = world
    network = synthetic_network(["L1", "L2"])
    plan = reference_plan(Binder(catalog).bind_sql(sql))
    row = OperatorExecutor(db, network, ExecutionMetrics()).run(plan)
    batch = BatchOperatorExecutor(db, network, ExecutionMetrics()).run(plan)
    return row, batch


# -- ColumnBatch layout -------------------------------------------------------


def test_column_batch_row_round_trip():
    rows = [(1, "a"), (2, "b"), (3, None)]
    batch = ColumnBatch.from_rows(["x", "y"], rows)
    assert batch.nrows == 3
    assert list(batch.data[0]) == [1, 2, 3]
    assert list(batch.data[1]) == ["a", "b", None]
    assert batch.to_rows() == rows


def test_column_batch_empty_round_trip():
    batch = ColumnBatch.from_rows(["x", "y"], [])
    assert batch.nrows == 0
    assert len(batch.data) == 2
    assert batch.to_rows() == []


def test_gather_applies_selection_vector():
    batch = ColumnBatch.from_rows(["x"], [(10,), (11,), (12,), (13,)])
    picked = batch.gather([0, 2])
    assert picked.nrows == 2
    assert picked.to_rows() == [(10,), (12,)]


# -- byte accounting ----------------------------------------------------------


def test_column_bytes_matches_row_actual_bytes():
    rows = [
        (1, True, None, "abc", 2.5),
        (7, False, None, "", -1.0),
        (
            0,
            None,
            datetime.date(2020, 1, 2),
            "xy",
            None,
        ),
        (3, True, datetime.datetime(2020, 1, 2, 3, 4), "z", 9.9),
    ]
    columns = list(zip(*rows))
    assert column_bytes(columns) == actual_bytes(rows)


def test_row_batch_caches_nbytes():
    batch = RowBatch(["x"], [(1,), (2,)])
    first = batch.nbytes
    # Mutating the rows after the first measurement must NOT change the
    # reported size: retry/failover paths reuse the cached measurement.
    batch.rows.append((3,))
    assert batch.nbytes == first == 16


def test_row_batch_unpacks_like_a_tuple():
    columns, rows = RowBatch(["x"], [(1,)])
    assert columns == ["x"]
    assert rows == [(1,)]


# -- executor-name validation -------------------------------------------------


def test_unknown_executor_rejected_everywhere(world):
    _catalog, db = world
    network = synthetic_network(["L1", "L2"])
    with pytest.raises(ExecutionError, match="unknown executor"):
        validate_executor_name("bogus")
    with pytest.raises(ExecutionError, match="unknown executor"):
        ExecutionEngine(db, network, executor="bogus")
    with pytest.raises(ExecutionError, match="unknown executor"):
        FragmentScheduler(db, network, executor="vectorised")


# -- per-operator batch semantics --------------------------------------------


def test_scan_project_filter(world):
    row, batch = run_both(world, "SELECT id FROM emp WHERE salary > 100")
    assert batch.columns == row.columns
    assert batch.rows == row.rows  # row-identical, including order


def test_hash_join_skips_null_keys(world):
    row, batch = run_both(
        world, "SELECT emp.id, dept.budget FROM emp, dept WHERE emp.dept = dept.name"
    )
    assert batch.rows == row.rows
    assert sorted(batch.rows) == [(1, 10), (2, 10), (3, 20), (4, 20)]


def test_aggregate_groups_in_first_seen_order(world):
    row, batch = run_both(
        world,
        "SELECT dept, COUNT(*) AS n, SUM(salary) AS s, AVG(salary) AS a, "
        "MIN(salary) AS lo, MAX(salary) AS hi FROM emp GROUP BY dept",
    )
    assert batch.columns == row.columns
    assert batch.rows == row.rows


def test_global_aggregate_on_empty_input(world):
    row, batch = run_both(
        world, "SELECT COUNT(*) AS n, SUM(salary) AS s FROM emp WHERE id > 99"
    )
    assert batch.rows == row.rows == [(0, None)]


def test_sort_null_placement_and_limit(world):
    row, batch = run_both(
        world, "SELECT id, salary FROM emp ORDER BY salary DESC, id ASC LIMIT 3"
    )
    assert batch.rows == row.rows


def test_metrics_match_row_backend(world):
    catalog, db = world
    network = synthetic_network(["L1", "L2"])
    plan = reference_plan(
        Binder(catalog).bind_sql("SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept")
    )
    row_metrics, batch_metrics = ExecutionMetrics(), ExecutionMetrics()
    OperatorExecutor(db, network, row_metrics).run(plan)
    BatchOperatorExecutor(db, network, batch_metrics).run(plan)
    assert batch_metrics.operators_executed == row_metrics.operators_executed
    assert batch_metrics.rows_scanned == row_metrics.rows_scanned
    assert [r.rows_out for r in batch_metrics.operators] == [
        r.rows_out for r in row_metrics.operators
    ]


def test_engine_executor_switch_row_identical(world):
    catalog, db = world
    network = synthetic_network(["L1", "L2"])
    plan = reference_plan(
        Binder(catalog).bind_sql(
            "SELECT emp.dept, SUM(dept.budget) AS b FROM emp, dept "
            "WHERE emp.dept = dept.name GROUP BY emp.dept"
        )
    )
    row_run = ExecutionEngine(db, network).execute(plan)
    batch_run = ExecutionEngine(db, network, executor="batch").execute(plan)
    assert batch_run.columns == row_run.columns
    assert batch_run.rows == row_run.rows
