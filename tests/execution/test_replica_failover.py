"""Replica failover: the planner's first resort for scan-bearing
fragments.

A fragment that scans a base table used to be pinned — crashing its
site was a guaranteed partial failure.  With a *compliant* replica
registered, the scan's ℰ includes the replica site, so the failover
planner moves the whole fragment there (``kind == "replica"``), the
scheduler re-derives the payload descriptor (the replica site is the
new scan source), and the run finishes row-identically.  Breakers
steer: a candidate whose links are refused by an open circuit breaker
sorts last.
"""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.errors import CircuitOpenError
from repro.execution import (
    ExecutionEngine,
    FragmentScheduler,
    RetryPolicy,
    fragment_plan,
    fragment_scans,
    parse_fault_spec,
    scan_sites,
)
from repro.geo import GeoDatabase, synthetic_network
from repro.optimizer import CompliantOptimizer
from repro.plan import TableScan
from repro.policy import PolicyCatalog
from repro.server import BreakerConfig, BreakerRegistry

from ..conftest import rows_as_multiset

QUERY = "SELECT t.k, t.v, u.w FROM t, u WHERE t.k = u.k"


def build_world(t_replica=True, u_replica=False):
    """t (small) at home with an optional compliant replica at near;
    u (large) at far with an optional replica at near.  The join lands
    at far, so the t-scan is its own cross-border fragment."""
    catalog = Catalog()
    catalog.add_database("db1", "home")
    catalog.add_database("db2", "near")
    catalog.add_database("db3", "far")
    catalog.add_table(
        "db1",
        TableSchema(
            "t",
            (Column("k", DataType.INTEGER), Column("v", DataType.INTEGER)),
            primary_key=("k",),
        ),
        row_count=10,
    )
    catalog.add_table(
        "db3",
        TableSchema(
            "u",
            (Column("k", DataType.INTEGER), Column("w", DataType.INTEGER)),
            primary_key=("k",),
        ),
        row_count=1000,
    )
    policies = PolicyCatalog(catalog)
    policies.add_text("ship k, v from t to near, far")
    policies.add_text("ship k, w from u to *")
    if t_replica:
        catalog.add_replica("db1", "t", "near")
    if u_replica:
        catalog.add_replica("db3", "u", "near")
    database = GeoDatabase(catalog)
    database.load("db1", "t", [(i, i * 3) for i in range(10)])
    database.load("db3", "u", [(i % 10, i) for i in range(1000)])
    network = synthetic_network(catalog.locations)
    optimizer = CompliantOptimizer(catalog, policies, network)
    return catalog, database, network, optimizer


def t_scan_site(plan):
    for node in plan.walk():
        if isinstance(node, TableScan) and node.table == "t":
            return node.location
    raise AssertionError("no t scan")


def test_scan_site_crash_fails_over_to_compliant_replica():
    catalog, database, network, optimizer = build_world()
    plan = optimizer.optimize(QUERY).plan
    site = t_scan_site(plan)
    baseline = ExecutionEngine(database, network, parallel=True).execute(plan)

    faults = parse_fault_spec(f"crash:{site}@0", locations=catalog.locations)
    engine = ExecutionEngine(
        database,
        network,
        parallel=True,
        faults=faults,
        policy_guard=optimizer.evaluator,
    )
    result = engine.execute(plan)
    assert result.partial_failure is None
    assert rows_as_multiset(result.rows) == rows_as_multiset(baseline.rows)

    metrics = result.metrics
    assert metrics.replica_failovers >= 1
    # The scan's own site died: without the replica this run was a
    # guaranteed partial failure.
    assert metrics.partial_failures_avoided >= 1
    assert metrics.replica_switches_breaker == 0  # no breakers installed
    replica_recoveries = [r for r in metrics.recoveries if r.kind == "replica"]
    assert replica_recoveries
    for record in replica_recoveries:
        assert record.validated
        assert record.from_site == site
        # ℰ of the t-scan is {home, near}: the failover target is the
        # other legal copy (primary or replica, whichever was not hit).
        assert record.to_site in {"home", "near"} - {site}


def test_same_crash_without_replica_is_partial_failure():
    catalog, database, network, optimizer = build_world(t_replica=False)
    plan = optimizer.optimize(QUERY).plan
    site = t_scan_site(plan)
    faults = parse_fault_spec(f"crash:{site}@0", locations=catalog.locations)
    engine = ExecutionEngine(
        database,
        network,
        parallel=True,
        faults=faults,
        policy_guard=optimizer.evaluator,
    )
    result = engine.execute(plan)
    assert result.partial_failure is not None
    assert result.partial_failure.error_type == "SiteUnavailableError"
    assert result.metrics.replica_failovers == 0


def test_replica_failover_updates_fragment_scan_sites():
    """After a replica-kind failover the re-fragmented DAG reads the
    table at the replica site — the payload the auditor sees."""
    catalog, database, network, optimizer = build_world()
    plan = optimizer.optimize(QUERY).plan
    site = t_scan_site(plan)
    dag = fragment_plan(plan)
    before = {s for f in dag.fragments for s in scan_sites(f)}
    assert ("db1", "t", site) in before

    faults = parse_fault_spec(f"crash:{site}@0", locations=catalog.locations)
    scheduler = FragmentScheduler(
        database,
        network,
        faults=faults,
        compliance_guard=optimizer.evaluator,
    )
    _batch, metrics = scheduler.run(plan)
    assert metrics.partial_failure is None
    assert any(r.kind == "replica" for r in metrics.recoveries)


def test_breaker_steered_replica_switch():
    """An open breaker on the consumer's input link re-places the
    (scan-bearing) consumer at the replica site and counts the switch
    as breaker-steered."""
    catalog, database, network, optimizer = build_world(u_replica=True)
    # Pin the result at far so the u-scan + join fragment stays there
    # (collapsing at the near replicas would be cheaper otherwise).
    plan = optimizer.optimize(QUERY, result_location="far").plan
    t_site = t_scan_site(plan)
    assert t_site != "far"
    dag = fragment_plan(plan)
    (consumer,) = [
        f
        for f in dag.fragments
        if fragment_scans(f) and any(s[1] == "u" for s in scan_sites(f))
    ]
    assert consumer.location == "far"

    # Trip the t-site -> far breaker before the run: every delivery into
    # far fast-fails with CircuitOpenError, so the consumer must move.
    breakers = BreakerRegistry(BreakerConfig(cooldown=1e9))
    for i in range(20):
        breakers.record_failure(t_site, "far", i * 1e-4)
    assert not breakers.allow(t_site, "far", 1.0)

    scheduler = FragmentScheduler(
        database,
        network,
        retry_policy=RetryPolicy(max_retries=1),
        compliance_guard=optimizer.evaluator,
        breakers=breakers,
    )
    # Start past the failure burst so the open window covers the run.
    batch, metrics = scheduler.run(plan, start_at=1.0)
    assert metrics.partial_failure is None
    assert metrics.replica_failovers >= 1
    assert metrics.replica_switches_breaker >= 1
    moved = [r for r in metrics.recoveries if r.kind == "replica"]
    assert any(r.from_site == "far" and r.to_site == "near" for r in moved)

    baseline = ExecutionEngine(database, network, parallel=True).execute(plan)
    assert rows_as_multiset(batch.rows) == rows_as_multiset(baseline.rows)


def replicated_chain():
    """Hand-built scan@L1 (ℰ = {L1, L2, L3}: two replica alternates)
    shipping to a pinned root at L4, over a network where L3 -> L4 is
    much cheaper than L2 -> L4."""
    from repro.geo import NetworkModel
    from repro.plan import Field, Project, Ship

    sites = ("L1", "L2", "L3", "L4")
    network = NetworkModel()
    for src in sites:
        for dst in sites:
            if src != dst:
                alpha = 0.05 if dst == "L4" and src == "L3" else 0.2
                network.set_link(src, dst, alpha=alpha, beta=1e-6)
    fields = (Field("id", DataType.INTEGER),)
    scan = TableScan(
        fields=fields,
        location="L1",
        execution_trait=frozenset({"L1", "L2", "L3"}),
        table="emp",
        database="db1",
        alias="e",
    )
    ship = Ship(fields=fields, location="L4", child=scan, source="L1", target="L4")
    root = Project(
        fields=fields,
        location="L4",
        execution_trait=frozenset({"L4"}),
        child=ship,
        exprs=tuple(f.to_ref() for f in fields),
        names=tuple(f.name for f in fields),
    )
    return root, network


def test_breaker_ranking_prefers_closed_links():
    """With two compliant replica alternates, the failover planner
    ranks the candidate whose output link has an open breaker below the
    healthy one — even though the open-link site is cheaper."""
    from repro.execution import FailoverPlanner

    plan, network = replicated_chain()
    dag = fragment_plan(plan)
    assert fragment_scans(dag.fragments[0])

    healthy = FailoverPlanner(network)
    choice = healthy.plan_failover(
        plan, dag, 0, unavailable=frozenset({"L1"}), reason="crash", at=1.0
    )
    assert choice is not None
    assert choice.kind == "replica"
    assert choice.to_site == "L3"  # cheapest link to the consumer

    breakers = BreakerRegistry(BreakerConfig(cooldown=1e9))
    for i in range(20):
        breakers.record_failure("L3", "L4", i * 1e-4)
    steered = FailoverPlanner(network, breakers=breakers)
    choice = steered.plan_failover(
        plan, dag, 0, unavailable=frozenset({"L1"}), reason="crash", at=1.0
    )
    assert choice is not None
    assert choice.to_site == "L2"  # L3's link is open: sorts last

    # An open link never *removes* a candidate: when every alternate is
    # refused, availability still wins over breaker avoidance.
    for i in range(20):
        breakers.record_failure("L2", "L4", i * 1e-4)
    choice = steered.plan_failover(
        plan, dag, 0, unavailable=frozenset({"L1"}), reason="crash", at=1.0
    )
    assert choice is not None
    assert choice.to_site == "L3"  # back to cheapest among equally open
