"""Property-based aggregate correctness: the engine's hash aggregation
must agree with a straightforward Python reference on arbitrary data,
including NULLs in both grouping keys and aggregated values."""

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.execution import ExecutionEngine, reference_plan
from repro.geo import GeoDatabase, synthetic_network
from repro.sql import Binder

_rows = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(0, 3)),  # group key
        st.one_of(st.none(), st.integers(-50, 50)),  # value
    ),
    max_size=60,
)


def _world(rows):
    catalog = Catalog()
    catalog.add_database("db1", "L1")
    catalog.add_table(
        "db1",
        TableSchema("t", (Column("g", DataType.INTEGER), Column("v", DataType.INTEGER))),
    )
    database = GeoDatabase(catalog)
    database.load("db1", "t", rows)
    return catalog, ExecutionEngine(database, synthetic_network(["L1"]))


@settings(max_examples=150, deadline=None)
@given(rows=_rows)
def test_grouped_aggregates_match_reference(rows):
    catalog, engine = _world(rows)
    plan = Binder(catalog).bind_sql(
        "SELECT g, COUNT(*) AS n, COUNT(v) AS nv, SUM(v) AS s, "
        "MIN(v) AS lo, MAX(v) AS hi, AVG(v) AS a FROM t GROUP BY g"
    )
    result = engine.execute(reference_plan(plan))

    reference: dict = defaultdict(list)
    for g, v in rows:
        reference[g].append(v)
    expected = {}
    for g, values in reference.items():
        non_null = [v for v in values if v is not None]
        expected[g] = (
            len(values),
            len(non_null),
            sum(non_null) if non_null else None,
            min(non_null) if non_null else None,
            max(non_null) if non_null else None,
            (sum(non_null) / len(non_null)) if non_null else None,
        )

    actual = {row[0]: row[1:] for row in result.rows}
    assert set(actual) == set(expected)
    for g in expected:
        a, e = actual[g], expected[g]
        assert a[:5] == e[:5]
        if e[5] is None:
            assert a[5] is None
        else:
            assert a[5] == pytest.approx(e[5])


@settings(max_examples=100, deadline=None)
@given(rows=_rows)
def test_global_aggregate_matches_reference(rows):
    catalog, engine = _world(rows)
    plan = Binder(catalog).bind_sql("SELECT COUNT(*) AS n, SUM(v) AS s FROM t")
    result = engine.execute(reference_plan(plan))
    non_null = [v for _g, v in rows if v is not None]
    assert result.rows == [
        (len(rows), sum(non_null) if non_null else None)
    ]


@settings(max_examples=100, deadline=None)
@given(
    rows=_rows,
    low=st.integers(-20, 20),
)
def test_filter_then_aggregate(rows, low):
    catalog, engine = _world(rows)
    plan = Binder(catalog).bind_sql(
        f"SELECT COUNT(*) AS n FROM t WHERE v > {low}"
    )
    result = engine.execute(reference_plan(plan))
    expected = sum(1 for _g, v in rows if v is not None and v > low)
    assert result.rows == [(expected,)]
