"""Fragment scheduler: parallel execution equivalence and the simulated
makespan (critical-path response time) invariants."""

import time

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.errors import ComplianceViolationError, ExecutionError
from repro.execution import (
    ExecutionEngine,
    FragmentScheduler,
    reference_plan,
)
from repro.geo import GeoDatabase, NetworkModel
from repro.plan import NestedLoopJoin, Ship, UnionAll
from repro.policy import PolicyCatalog, PolicyEvaluator
from repro.sql import Binder

from ..conftest import rows_as_multiset


@pytest.fixture(scope="module")
def world():
    c = Catalog()
    c.add_database("db1", "L1")
    c.add_database("db2", "L2")
    c.add_database("db3", "L3")
    c.add_table(
        "db1",
        TableSchema(
            "emp",
            (
                Column("id", DataType.INTEGER),
                Column("dept", DataType.VARCHAR),
                Column("salary", DataType.DECIMAL),
            ),
            primary_key=("id",),
        ),
    )
    c.add_table(
        "db2",
        TableSchema(
            "dept",
            (Column("name", DataType.VARCHAR), Column("budget", DataType.INTEGER)),
        ),
    )
    db = GeoDatabase(c)
    db.load(
        "db1",
        "emp",
        [(i, "eng" if i % 2 else "sales", 100.0 * i) for i in range(1, 21)],
    )
    db.load("db2", "dept", [("eng", 10), ("sales", 20), ("hr", 30)])
    # Hand-built network: L1->L3 is slow, L2->L3 fast, so the critical
    # path through a bushy join is the L1 edge alone.
    network = NetworkModel()
    for src, dst, alpha, beta in [
        ("L1", "L2", 0.10, 1e-6),
        ("L2", "L1", 0.10, 1e-6),
        ("L1", "L3", 0.40, 2e-6),
        ("L3", "L1", 0.40, 2e-6),
        ("L2", "L3", 0.05, 1e-6),
        ("L3", "L2", 0.05, 1e-6),
    ]:
        network.set_link(src, dst, alpha, beta)
    return c, db, network


def scan(catalog, table, location):
    plan = Binder(catalog).bind_sql(f"SELECT * FROM {table}")
    return reference_plan(plan, location)


def ship(child, source, target):
    return Ship(
        fields=child.fields, location=target, child=child, source=source, target=target
    )


def bushy_join(catalog):
    left = ship(scan(catalog, "emp", "L1"), "L1", "L3")
    right = ship(scan(catalog, "dept", "L2"), "L2", "L3")
    return NestedLoopJoin(
        fields=left.fields + right.fields,
        location="L3",
        left=left,
        right=right,
        condition=None,
    )


def chain_plan(catalog):
    return ship(ship(scan(catalog, "emp", "L1"), "L1", "L2"), "L2", "L3")


class TestEquivalence:
    def test_bushy_join_rows_match_sequential(self, world):
        catalog, db, network = world
        plan = bushy_join(catalog)
        sequential = ExecutionEngine(db, network).execute(plan)
        parallel = ExecutionEngine(db, network, parallel=True).execute(plan)
        assert rows_as_multiset(parallel.rows) == rows_as_multiset(sequential.rows)
        assert parallel.columns == sequential.columns

    def test_metrics_totals_match_sequential(self, world):
        catalog, db, network = world
        plan = bushy_join(catalog)
        sequential = ExecutionEngine(db, network).execute(plan)
        parallel = ExecutionEngine(db, network, parallel=True).execute(plan)
        s, p = sequential.metrics, parallel.metrics
        assert p.rows_scanned == s.rows_scanned
        assert p.rows_output == s.rows_output
        assert p.operators_executed == s.operators_executed
        assert p.total_rows_shipped == s.total_rows_shipped
        assert p.total_bytes_shipped == s.total_bytes_shipped
        assert p.shipping_seconds == pytest.approx(s.shipping_seconds)
        assert len(p.ships) == len(s.ships)

    def test_per_call_parallel_override(self, world):
        catalog, db, network = world
        engine = ExecutionEngine(db, network)  # sequential default
        result = engine.execute(bushy_join(catalog), parallel=True)
        assert result.metrics.fragments  # the scheduler ran
        assert result.makespan_seconds > 0

    def test_single_fragment_plan_works_in_parallel_mode(self, world):
        catalog, db, network = world
        result = ExecutionEngine(db, network, parallel=True).execute(
            scan(catalog, "emp", "L1")
        )
        assert result.row_count == 20
        assert len(result.metrics.fragments) == 1
        assert result.makespan_seconds == 0.0  # no WAN edges at all
        assert result.metrics.shipping_seconds == 0.0


class TestMakespan:
    def test_bushy_makespan_is_critical_path(self, world):
        catalog, db, network = world
        result = ExecutionEngine(db, network, parallel=True).execute(
            bushy_join(catalog)
        )
        metrics = result.metrics
        slow, fast = sorted(
            (s.seconds for s in metrics.ships), reverse=True
        )
        # Transfers overlap: the response time is the slower edge alone,
        # strictly below the sum the sequential cost metric reports.
        assert metrics.makespan_seconds == pytest.approx(slow)
        assert metrics.makespan_seconds < metrics.shipping_seconds
        assert metrics.shipping_seconds == pytest.approx(slow + fast)

    def test_chain_makespan_equals_shipping_sum(self, world):
        catalog, db, network = world
        result = ExecutionEngine(db, network, parallel=True).execute(
            chain_plan(catalog)
        )
        metrics = result.metrics
        assert len(metrics.ships) == 2
        assert metrics.makespan_seconds == pytest.approx(metrics.shipping_seconds)

    def test_makespan_bounded_by_shipping_plus_compute(self, world):
        catalog, db, network = world
        for plan in (bushy_join(catalog), chain_plan(catalog)):
            metrics = (
                ExecutionEngine(db, network, parallel=True).execute(plan).metrics
            )
            assert (
                metrics.makespan_seconds
                <= metrics.shipping_seconds + metrics.local_compute_seconds + 1e-9
            )

    def test_site_clocks_cover_every_location(self, world):
        catalog, db, network = world
        metrics = (
            ExecutionEngine(db, network, parallel=True)
            .execute(bushy_join(catalog))
            .metrics
        )
        assert set(metrics.site_clock_seconds) == {"L1", "L2", "L3"}
        assert metrics.site_clock_seconds["L3"] == metrics.makespan_seconds


class TestObservability:
    def test_fragment_records(self, world):
        catalog, db, network = world
        metrics = (
            ExecutionEngine(db, network, parallel=True)
            .execute(bushy_join(catalog))
            .metrics
        )
        assert len(metrics.fragments) == 3
        root = metrics.fragments[-1]
        assert root.consumer is None
        assert root.rows_out == 20 * 3
        assert root.sim_finish_seconds == metrics.makespan_seconds
        for record in metrics.fragments:
            assert record.compute_seconds >= 0.0
            assert record.sim_start_seconds <= record.sim_finish_seconds
            for producer in record.inputs:
                # A consumer can only start after every input delivery.
                delivered = metrics.fragments[producer].sim_finish_seconds
                assert record.sim_start_seconds >= delivered

    def test_operator_records_cover_all_operators(self, world):
        catalog, db, network = world
        for parallel in (False, True):
            metrics = (
                ExecutionEngine(db, network, parallel=parallel)
                .execute(bushy_join(catalog))
                .metrics
            )
            assert len(metrics.operators) == metrics.operators_executed
            assert all(op.seconds >= 0.0 for op in metrics.operators)
            scans = [op for op in metrics.operators if "TableScan" in op.operator]
            assert len(scans) == 2

    def test_scheduler_direct_api(self, world):
        catalog, db, network = world
        scheduler = FragmentScheduler(db, network, max_workers=2)
        (columns, rows), metrics = scheduler.run(bushy_join(catalog))
        assert len(rows) == 60
        assert metrics.makespan_seconds > 0


class TestGuard:
    def test_policy_guard_applies_in_parallel_mode(self, world):
        catalog, db, network = world
        policies = PolicyCatalog(catalog)  # nothing may ship anywhere
        engine = ExecutionEngine(
            db,
            network,
            policy_guard=PolicyEvaluator(policies),
            parallel=True,
        )
        with pytest.raises(ComplianceViolationError):
            engine.execute(bushy_join(catalog))
        # A shipless plan passes the guard and executes fine.
        assert engine.execute(scan(catalog, "emp", "L1")).row_count == 20


class TestWorkerValidation:
    @pytest.mark.parametrize("bad", [0, -1, -8])
    def test_scheduler_rejects_nonpositive_worker_counts(self, world, bad):
        _catalog, db, network = world
        with pytest.raises(ExecutionError, match="positive integer"):
            FragmentScheduler(db, network, max_workers=bad)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_engine_rejects_nonpositive_worker_counts(self, world, bad):
        _catalog, db, network = world
        with pytest.raises(ExecutionError, match="positive integer"):
            ExecutionEngine(db, network, parallel=True, max_workers=bad)

    def test_default_and_explicit_counts_resolve(self, world):
        _catalog, db, network = world
        assert FragmentScheduler(db, network).max_workers >= 1
        assert FragmentScheduler(db, network, max_workers=3).max_workers == 3


class TestErrorPropagation:
    """A genuine operator failure (not an injected fault) must surface
    unchanged, cancel pending sibling fragments, and leave the scheduler
    reusable — never deadlock the waiting_on accounting."""

    def _union_of_scans(self, catalog, n):
        parts = tuple(
            ship(scan(catalog, "emp", "L1"), "L1", "L3") for _ in range(n)
        )
        return UnionAll(fields=parts[0].fields, location="L3", inputs=parts)

    def test_original_exception_propagates_and_siblings_cancel(self, world):
        catalog, db, network = world
        plan = self._union_of_scans(catalog, 6)
        calls = []
        original_rows = db.rows

        def instrumented_rows(database, table):
            calls.append(table)
            if len(calls) == 1:
                raise RuntimeError("boom")  # a genuine bug, not a FaultError
            time.sleep(0.05)  # keep siblings queued while the abort runs
            return original_rows(database, table)

        db.rows = instrumented_rows
        try:
            scheduler = FragmentScheduler(db, network, max_workers=1)
            with pytest.raises(RuntimeError, match="boom"):
                scheduler.run(plan)
        finally:
            db.rows = original_rows
        # The failing fragment ran; the queued siblings were cancelled
        # (at most one may have been grabbed by the worker in the race
        # between its completion callback and the coordinator's abort).
        assert 1 <= len(calls) <= 2

    def test_scheduler_usable_after_failure(self, world):
        catalog, db, network = world
        original_rows = db.rows
        db.rows = lambda database, table: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
        try:
            scheduler = FragmentScheduler(db, network, max_workers=2)
            with pytest.raises(RuntimeError, match="boom"):
                scheduler.run(bushy_join(catalog))
        finally:
            db.rows = original_rows
        # No deadlocked state: the same scheduler runs the plan cleanly.
        (columns, rows), metrics = scheduler.run(bushy_join(catalog))
        assert len(rows) == 60
        assert metrics.makespan_seconds > 0

    def test_consumer_never_runs_after_producer_failure(self, world):
        catalog, db, network = world
        plan = bushy_join(catalog)
        calls = []
        original_rows = db.rows

        def failing_rows(database, table):
            calls.append(table)
            raise RuntimeError("boom")

        db.rows = failing_rows
        try:
            with pytest.raises(RuntimeError, match="boom"):
                FragmentScheduler(db, network, max_workers=2).run(plan)
        finally:
            db.rows = original_rows
        # Only source fragments were ever attempted; the join fragment
        # (whose inputs never completed) was not admitted.
        assert set(calls) <= {"emp", "dept"}
