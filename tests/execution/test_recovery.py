"""Recovery layer unit tests: pure-copy fragment relocation, the
ℰ-restricted failover candidate rules, and the failover planner's
validation of every re-placement."""

import pytest

from repro.catalog import Catalog, Column, TableSchema
from repro.datatypes import DataType
from repro.execution import (
    ExecutionEngine,
    FailoverPlanner,
    failover_candidates,
    fragment_plan,
    relocate_fragment,
)
from repro.geo import GeoDatabase, NetworkModel
from repro.plan import Project, Ship, TableScan

from ..conftest import rows_as_multiset

ALL = frozenset({"L1", "L2", "L3"})


@pytest.fixture(scope="module")
def world():
    c = Catalog()
    c.add_database("db1", "L1")
    c.add_table(
        "db1",
        TableSchema(
            "emp",
            (Column("id", DataType.INTEGER), Column("dept", DataType.VARCHAR)),
            primary_key=("id",),
        ),
    )
    db = GeoDatabase(c)
    db.load("db1", "emp", [(i, "eng" if i % 2 else "sales") for i in range(1, 11)])
    network = NetworkModel()
    for src in ("L1", "L2", "L3"):
        for dst in ("L1", "L2", "L3"):
            if src != dst:
                # L3 is "far": makes L2 the cheapest failover target.
                far = 0.3 if "L3" in (src, dst) else 0.1
                network.set_link(src, dst, alpha=far, beta=1e-6)
    return c, db, network


def chain_plan(trait=frozenset({"L2", "L3"})):
    """scan@L1 -> ship -> project@L2 (movable within ``trait``) -> ship
    -> project@L3 (the root, pinned to the result site L3)."""
    scan = TableScan(
        fields=(),
        location="L1",
        execution_trait=frozenset({"L1"}),
        table="emp",
        database="db1",
        alias="e",
    )
    from repro.plan import Field

    fields = (Field("id", DataType.INTEGER), Field("dept", DataType.VARCHAR))
    scan.fields = fields
    exprs = tuple(f.to_ref() for f in fields)
    names = tuple(f.name for f in fields)
    ship1 = Ship(fields=fields, location="L2", child=scan, source="L1", target="L2")
    mid = Project(
        fields=fields,
        location="L2",
        execution_trait=trait,
        child=ship1,
        exprs=exprs,
        names=names,
    )
    ship2 = Ship(fields=fields, location="L3", child=mid, source="L2", target="L3")
    root = Project(
        fields=fields,
        location="L3",
        execution_trait=frozenset({"L3"}),
        child=ship2,
        exprs=exprs,
        names=names,
    )
    return root


class TestRelocateFragment:
    def test_relocation_moves_body_and_rewires_ships(self):
        plan = chain_plan()
        dag = fragment_plan(plan)
        mid = dag.fragments[1]  # the movable L2 project
        assert mid.location == "L2"
        moved = relocate_fragment(plan, mid, "L3")
        new_dag = fragment_plan(moved)
        assert len(new_dag.fragments) == len(dag.fragments)
        assert new_dag.fragments[1].location == "L3"
        # The cut input ship now delivers to the new site...
        ship_in = new_dag.fragments[1].inputs[0].ship
        assert (ship_in.source, ship_in.target) == ("L1", "L3")
        # ...and the output ship originates from it.
        ship_out = new_dag.fragments[1].output
        assert (ship_out.source, ship_out.target) == ("L3", "L3")

    def test_relocation_is_a_pure_copy(self):
        plan = chain_plan()
        dag = fragment_plan(plan)
        before = [(n.location, type(n).__name__) for n in plan.walk()]
        moved = relocate_fragment(plan, dag.fragments[1], "L3")
        assert [(n.location, type(n).__name__) for n in plan.walk()] == before
        assert all(
            id(a) != id(b) for a, b in zip(plan.walk(), moved.walk())
        )

    def test_relocated_plan_produces_identical_rows(self, world):
        _catalog, db, network = world
        plan = chain_plan()
        dag = fragment_plan(plan)
        moved = relocate_fragment(plan, dag.fragments[1], "L3")
        engine = ExecutionEngine(db, network, parallel=True)
        assert rows_as_multiset(engine.execute(moved).rows) == rows_as_multiset(
            engine.execute(plan).rows
        )


class TestFailoverCandidates:
    def test_movable_fragment_intersects_traits(self):
        dag = fragment_plan(chain_plan())
        mid = dag.fragments[1]
        assert failover_candidates(mid, frozenset(), ALL) == ("L3",)

    def test_unavailable_sites_are_excluded(self):
        dag = fragment_plan(chain_plan(trait=ALL))
        mid = dag.fragments[1]
        assert failover_candidates(mid, frozenset(), ALL) == ("L1", "L3")
        assert failover_candidates(mid, frozenset({"L3"}), ALL) == ("L1",)
        assert failover_candidates(mid, frozenset({"L1", "L3"}), ALL) == ()

    def test_scan_fragments_are_pinned(self):
        dag = fragment_plan(chain_plan())
        scan_fragment = dag.fragments[0]
        assert isinstance(scan_fragment.root, TableScan)
        assert failover_candidates(scan_fragment, frozenset(), ALL) == ()

    def test_untraited_scan_pins_even_with_fallback(self):
        plan = chain_plan()
        for node in plan.walk():
            node.execution_trait = None  # hand-built plan: no annotations
        dag = fragment_plan(plan)
        # No traits and no scan in the body: fall back to all locations.
        assert failover_candidates(dag.fragments[1], frozenset(), ALL) == ("L1", "L3")
        # No traits but the body scans a table: stay pinned to its home.
        assert failover_candidates(dag.fragments[0], frozenset(), ALL) == ()
        # Without even the fallback there is nothing legal to choose.
        assert failover_candidates(dag.fragments[1], frozenset(), None) == ()

    def test_ship_rooted_relay_fragment_is_pinned(self):
        scan = TableScan(
            fields=(),
            location="L1",
            table="emp",
            database="db1",
            alias="e",
        )
        relay = Ship(fields=(), location="L2", child=scan, source="L1", target="L2")
        root = Ship(fields=(), location="L3", child=relay, source="L2", target="L3")
        dag = fragment_plan(root)
        relays = [f for f in dag.fragments if isinstance(f.root, Ship)]
        assert relays
        for fragment in relays:
            assert failover_candidates(fragment, frozenset(), ALL) == ()


class TestFailoverPlanner:
    def test_plans_cheapest_legal_site(self, world):
        _catalog, _db, network = world
        plan = chain_plan(trait=ALL)
        dag = fragment_plan(plan)
        planner = FailoverPlanner(network, evaluator=None, all_locations=ALL)
        failover = planner.plan_failover(
            plan, dag, 1, unavailable=frozenset({"L2"}), reason="L2 crashed"
        )
        assert failover is not None
        assert failover.from_site == "L2"
        # L1 wins: re-shipping via the far L3 links costs more.
        assert failover.to_site == "L1"
        assert not failover.validated  # no evaluator installed
        assert len(failover.dag.fragments) == len(dag.fragments)
        assert failover.dag.fragments[1].location == "L1"

    def test_returns_none_when_pinned(self, world):
        _catalog, _db, network = world
        plan = chain_plan()
        dag = fragment_plan(plan)
        planner = FailoverPlanner(network, evaluator=None, all_locations=ALL)
        assert (
            planner.plan_failover(
                plan, dag, 0, unavailable=frozenset({"L1"}), reason="L1 crashed"
            )
            is None
        )

    def test_returns_none_when_all_candidates_unavailable(self, world):
        _catalog, _db, network = world
        plan = chain_plan(trait=ALL)
        dag = fragment_plan(plan)
        planner = FailoverPlanner(network, evaluator=None, all_locations=ALL)
        assert (
            planner.plan_failover(
                plan, dag, 1, unavailable=ALL, reason="everything crashed"
            )
            is None
        )


class TestFailoverDeterminism:
    """Satellite of the serving PR: equal-cost relocation candidates
    break ties stably (sorted by site name), so failover placement is
    identical across repeated runs and across executors."""

    SITES = ("L1", "L2", "L3", "L4", "L5")

    def uniform_network(self) -> NetworkModel:
        """Every directed link costs exactly the same."""
        network = NetworkModel()
        for src in self.SITES:
            for dst in self.SITES:
                if src != dst:
                    network.set_link(src, dst, alpha=0.1, beta=1e-6)
        return network

    def tie_plan(self):
        """The movable fragment may relocate to L4 or L5 — both legal,
        both exactly equal in re-shipping cost under a uniform network."""
        return chain_plan(trait=frozenset({"L2", "L4", "L5"}))

    def test_equal_cost_ties_break_by_site_name(self):
        network = self.uniform_network()
        plan = self.tie_plan()
        dag = fragment_plan(plan)
        planner = FailoverPlanner(
            network, evaluator=None, all_locations=frozenset(self.SITES)
        )
        fragment = dag.fragments[1]
        candidates = failover_candidates(
            fragment, frozenset({"L2"}), frozenset(self.SITES)
        )
        assert candidates == ("L4", "L5")
        costs = {
            site: planner._relocation_cost(dag, fragment, site)
            for site in candidates
        }
        assert costs["L4"] == pytest.approx(costs["L5"])  # a genuine tie
        for _ in range(5):
            failover = planner.plan_failover(
                plan, dag, 1, unavailable=frozenset({"L2"}), reason="L2 crashed"
            )
            assert failover is not None
            assert failover.to_site == "L4"  # lexicographically smallest

    @pytest.mark.parametrize("executor", ["row", "batch"])
    def test_placement_is_stable_across_runs_and_executors(self, world, executor):
        from repro.execution import parse_fault_spec

        _catalog, db, _network = world
        network = self.uniform_network()
        reference_rows = None
        for _ in range(3):
            engine = ExecutionEngine(
                db,
                network,
                parallel=True,
                faults=parse_fault_spec("crash:L2@0", locations=set(self.SITES)),
                executor=executor,
            )
            output = engine.execute(self.tie_plan())
            assert output.partial_failure is None
            recoveries = output.metrics.recoveries
            assert [r.to_site for r in recoveries] == ["L4"]
            assert recoveries[0].from_site == "L2"
            rows = rows_as_multiset(output.rows)
            if reference_rows is None:
                reference_rows = rows
            assert rows == reference_rows
