"""Type-system unit tests."""

import datetime

import pytest

from repro.datatypes import (
    DataType,
    arithmetic_result_type,
    default_width,
    is_comparable,
    is_numeric,
    parse_date,
    value_matches,
)


def test_default_widths_positive():
    for dtype in DataType:
        assert default_width(dtype) > 0


def test_numeric_classification():
    assert is_numeric(DataType.INTEGER)
    assert is_numeric(DataType.DECIMAL)
    assert not is_numeric(DataType.VARCHAR)
    assert not is_numeric(DataType.DATE)


def test_comparability():
    assert is_comparable(DataType.INTEGER, DataType.DECIMAL)
    assert is_comparable(DataType.DATE, DataType.DATE)
    assert not is_comparable(DataType.DATE, DataType.INTEGER)
    assert not is_comparable(DataType.VARCHAR, DataType.INTEGER)


@pytest.mark.parametrize(
    "dtype,good,bad",
    [
        (DataType.INTEGER, 5, "x"),
        (DataType.DECIMAL, 1.5, "x"),
        (DataType.DECIMAL, 3, None),  # ints are valid decimals
        (DataType.VARCHAR, "s", 1),
        (DataType.DATE, datetime.date(2020, 1, 1), "2020-01-01"),
        (DataType.BOOLEAN, True, 1),
    ],
)
def test_value_matches(dtype, good, bad):
    assert value_matches(dtype, good)
    if bad is not None:
        assert not value_matches(dtype, bad)


def test_null_matches_everything():
    for dtype in DataType:
        assert value_matches(dtype, None)


def test_bool_is_not_a_number():
    assert not value_matches(DataType.INTEGER, True)


def test_datetime_is_not_a_sql_date():
    assert not value_matches(DataType.DATE, datetime.datetime(2020, 1, 1, 12))


def test_arithmetic_result_type():
    assert arithmetic_result_type(DataType.INTEGER, DataType.INTEGER) == DataType.INTEGER
    assert arithmetic_result_type(DataType.INTEGER, DataType.DECIMAL) == DataType.DECIMAL


def test_parse_date():
    assert parse_date("1995-03-15") == datetime.date(1995, 3, 15)
    with pytest.raises(ValueError):
        parse_date("not-a-date")
