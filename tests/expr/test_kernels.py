"""Property-based agreement between batch kernels and row closures.

The batch executor is only correct if :func:`repro.expr.compile_kernel`
and :func:`repro.expr.compile_predicate_kernel` agree with the row
evaluator's :func:`repro.expr.compile_expression` /
:func:`repro.expr.compile_predicate` on *every* expression shape —
including NULL three-valued logic, LIKE wildcards, division by zero, and
selection-vector alignment.  Hypothesis generates random expression trees
over random columns (with NULLs everywhere) and this suite asserts the
two compilers produce identical values, identical selections, and — for
expression shapes without logical short-circuiting — identical errors.
(Division by zero under AND/OR is the one documented divergence: the
row evaluator may short-circuit past it while whole-column kernels
evaluate it eagerly, so predicate strategies here are division-free and
error agreement is asserted on pure arithmetic trees instead; see the
module docstring of ``repro.expr.kernels``.)
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.datatypes import DataType
from repro.errors import ExecutionError
from repro.expr import (
    And,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    compile_expression,
    compile_kernel,
    compile_predicate,
    compile_predicate_kernel,
)

# Fixed schema: three numeric columns, two string columns.  Expressions
# are typed (numeric vs string subtrees) so random trees exercise the
# kernels instead of dying on int-vs-str TypeErrors.
SCHEMA = ["n0", "n1", "n2", "s0", "s1"]
NUMERIC_NAMES = ["n0", "n1", "n2"]
STRING_NAMES = ["s0", "s1"]

_numeric_value = st.one_of(
    st.none(), st.integers(-20, 20), st.floats(-20, 20, allow_nan=False, width=32)
)
_string_value = st.one_of(st.none(), st.text(alphabet="ab%_c", max_size=4))

_rows = st.lists(
    st.tuples(
        _numeric_value, _numeric_value, _numeric_value, _string_value, _string_value
    ),
    max_size=30,
)

_numeric_column = st.sampled_from(
    [ColumnRef(name, DataType.INTEGER) for name in NUMERIC_NAMES]
)
_string_column = st.sampled_from(
    [ColumnRef(name, DataType.VARCHAR) for name in STRING_NAMES]
)
_numeric_literal = st.one_of(
    st.integers(-10, 10), st.just(None), st.floats(-10, 10, allow_nan=False, width=32)
).map(lambda v: Literal(v, DataType.INTEGER))
_like_pattern = st.text(alphabet="ab%_c", max_size=4)


def _binary_arith(children, ops):
    return st.builds(Arithmetic, st.sampled_from(ops), children, children)


#: Full numeric family, division included — used standalone, where both
#: backends evaluate every operand and error effects agree.
_numeric_expr = st.recursive(
    st.one_of(_numeric_column, _numeric_literal),
    lambda children: st.one_of(
        _binary_arith(children, list(ArithmeticOp)),
        st.builds(Negate, children),
        st.builds(FunctionCall, st.just("ABS"), st.tuples(children)),
    ),
    max_leaves=6,
)

#: Division-free numeric family for predicate subtrees, where row-side
#: short-circuiting makes division-by-zero effects backend-dependent.
_safe_numeric_expr = st.recursive(
    st.one_of(_numeric_column, _numeric_literal),
    lambda children: st.one_of(
        _binary_arith(
            children, [ArithmeticOp.ADD, ArithmeticOp.SUB, ArithmeticOp.MUL]
        ),
        st.builds(Negate, children),
        st.builds(FunctionCall, st.just("ABS"), st.tuples(children)),
    ),
    max_leaves=6,
)

_string_expr = st.one_of(
    _string_column,
    st.builds(
        FunctionCall, st.sampled_from(["LOWER", "UPPER"]), st.tuples(_string_column)
    ),
)

_comparison = st.one_of(
    st.builds(
        Comparison,
        st.sampled_from(list(ComparisonOp)),
        _safe_numeric_expr,
        _safe_numeric_expr,
    ),
    st.builds(
        Comparison,
        st.sampled_from(list(ComparisonOp)),
        _string_expr,
        _string_value.map(lambda v: Literal(v, DataType.VARCHAR)),
    ),
)

_atomic_predicate = st.one_of(
    _comparison,
    st.builds(Like, _string_expr, _like_pattern, st.booleans()),
    st.builds(
        InList,
        _safe_numeric_expr,
        st.lists(_numeric_literal, min_size=1, max_size=3).map(tuple),
        st.booleans(),
    ),
    st.builds(IsNull, st.one_of(_safe_numeric_expr, _string_expr), st.booleans()),
)

_predicate = st.recursive(
    _atomic_predicate,
    lambda children: st.one_of(
        st.builds(lambda a, b: And((a, b)), children, children),
        st.builds(lambda a, b: Or((a, b)), children, children),
        st.builds(Not, children),
    ),
    max_leaves=5,
)


def _columns(rows):
    if rows:
        return [list(c) for c in zip(*rows)]
    return [[] for _ in SCHEMA]


def _row_values(expr, rows):
    """Evaluate ``expr`` per row with the row closure; returns the value
    column or the raised :class:`ExecutionError`."""
    fn = compile_expression(expr, SCHEMA)
    try:
        return [fn(row) for row in rows]
    except ExecutionError as error:
        return error


def _kernel_values(expr, cols, sel, n):
    try:
        return compile_kernel(expr, SCHEMA)(cols, sel, n)
    except ExecutionError as error:
        return error


@settings(max_examples=300, deadline=None)
@given(rows=_rows, expr=st.one_of(_numeric_expr, _string_expr, _predicate))
def test_kernel_matches_row_closure_dense(rows, expr):
    expected = _row_values(expr, rows)
    got = _kernel_values(expr, _columns(rows), None, len(rows))
    if isinstance(expected, ExecutionError):
        # Division by zero (the only data-dependent error) must raise in
        # both backends.
        assert isinstance(got, ExecutionError)
    else:
        assert not isinstance(got, ExecutionError)
        assert list(got) == expected


@settings(max_examples=200, deadline=None)
@given(rows=_rows, expr=st.one_of(_numeric_expr, _string_expr, _predicate), data=st.data())
def test_kernel_matches_row_closure_with_selection(rows, expr, data):
    sel = data.draw(
        st.lists(
            st.integers(0, max(0, len(rows) - 1)), max_size=len(rows), unique=True
        ).map(sorted)
        if rows
        else st.just([])
    )
    expected = _row_values(expr, [rows[i] for i in sel])
    got = _kernel_values(expr, _columns(rows), sel, len(rows))
    if isinstance(expected, ExecutionError):
        assert isinstance(got, ExecutionError)
    else:
        assert not isinstance(got, ExecutionError)
        assert len(got) == len(sel)  # aligned with the selection vector
        assert list(got) == expected


@settings(max_examples=300, deadline=None)
@given(rows=_rows, expr=_predicate)
def test_selection_kernel_matches_row_predicate(rows, expr):
    row_pred = compile_predicate(expr, SCHEMA)
    try:
        expected = [i for i, row in enumerate(rows) if row_pred(row)]
    except ExecutionError:
        expected = None
    try:
        got = compile_predicate_kernel(expr, SCHEMA)(_columns(rows), None, len(rows))
    except ExecutionError:
        got = None
    if expected is None:
        assert got is None
    else:
        assert got == expected


@settings(max_examples=200, deadline=None)
@given(rows=_rows, expr=_predicate, data=st.data())
def test_selection_kernel_refines_incoming_selection(rows, expr, data):
    sel = data.draw(
        st.lists(
            st.integers(0, max(0, len(rows) - 1)), max_size=len(rows), unique=True
        ).map(sorted)
        if rows
        else st.just([])
    )
    row_pred = compile_predicate(expr, SCHEMA)
    try:
        expected = [i for i in sel if row_pred(rows[i])]
    except ExecutionError:
        expected = None
    try:
        got = compile_predicate_kernel(expr, SCHEMA)(_columns(rows), sel, len(rows))
    except ExecutionError:
        got = None
    if expected is None:
        assert got is None
    else:
        assert got == expected


# -- directed edge cases (shapes hypothesis might shrink away) ----------------


def test_null_three_valued_and_or():
    cols = [[None, True, False], [False, None, True], [0, 0, 0], [""], [""]]
    a, b = ColumnRef("n0", DataType.BOOLEAN), ColumnRef("n1", DataType.BOOLEAN)
    assert compile_kernel(And((a, b)), SCHEMA)(cols, None, 3) == [False, None, False]
    assert compile_kernel(Or((a, b)), SCHEMA)(cols, None, 3) == [None, True, True]
    # NULL is "not satisfied" for selections.
    assert compile_predicate_kernel(Or((a, b)), SCHEMA)(cols, None, 3) == [1, 2]


def test_comparison_with_null_literal_selects_nothing():
    expr = Comparison(ComparisonOp.EQ, ColumnRef("n0"), Literal(None, DataType.INTEGER))
    assert compile_predicate_kernel(expr, SCHEMA)([[1, 2], [], [], [], []], None, 2) == []


def test_like_dense_and_selected():
    col = ["alpha", None, "beta", "ALpha"]
    cols = [[0] * 4, [0] * 4, [0] * 4, col, [None] * 4]
    expr = Like(ColumnRef("s0"), "a%a")
    assert compile_predicate_kernel(expr, SCHEMA)(cols, None, 4) == [0]
    negated = Like(ColumnRef("s0"), "a%a", negated=True)
    assert compile_predicate_kernel(negated, SCHEMA)(cols, [0, 1, 2], 4) == [2]


def test_division_by_zero_raises_in_both():
    expr = Arithmetic(ArithmeticOp.DIV, ColumnRef("n0"), ColumnRef("n1"))
    cols = [[1, 2], [1, 0], [0, 0], [None, None], [None, None]]
    with pytest.raises(ExecutionError):
        compile_kernel(expr, SCHEMA)(cols, None, 2)
    with pytest.raises(ExecutionError):
        compile_expression(expr, SCHEMA)((2, 0, 0, None, None))


def test_unknown_column_raises():
    with pytest.raises(ExecutionError):
        compile_kernel(ColumnRef("nope"), SCHEMA)
    with pytest.raises(ExecutionError):
        compile_predicate_kernel(Comparison(
            ComparisonOp.EQ, ColumnRef("nope"), Literal(1, DataType.INTEGER)
        ), SCHEMA)


def test_aggregate_call_rejected():
    from repro.expr import AggregateCall, AggregateFunction

    agg = AggregateCall(AggregateFunction.SUM, ColumnRef("n0"))
    with pytest.raises(ExecutionError):
        compile_kernel(agg, SCHEMA)
