"""Unit tests for the scalar expression trees."""

import pytest

from repro.datatypes import DataType
from repro.expr import (
    AggregateCall,
    AggregateFunction,
    And,
    Arithmetic,
    ArithmeticOp,
    BaseColumn,
    ColumnRef,
    Comparison,
    ComparisonOp,
    FunctionCall,
    InList,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    TRUE,
    conjunction,
    disjunction,
    expression_dtype,
    rename_columns,
    split_conjuncts,
    substitute,
    walk,
)

A = ColumnRef("t.a", DataType.INTEGER, BaseColumn("db", "t", "a"))
B = ColumnRef("t.b", DataType.INTEGER, BaseColumn("db", "t", "b"))
TEN = Literal(10, DataType.INTEGER)


def test_references_collects_all_column_names():
    expr = And((Comparison(ComparisonOp.GT, A, TEN), Comparison(ComparisonOp.LT, B, A)))
    assert expr.references() == {"t.a", "t.b"}


def test_base_columns_collects_provenance():
    expr = Arithmetic(ArithmeticOp.ADD, A, B)
    assert expr.base_columns() == {BaseColumn("db", "t", "a"), BaseColumn("db", "t", "b")}


def test_base_columns_skips_unprovenanced_refs():
    anon = ColumnRef("x", DataType.INTEGER, None)
    expr = Arithmetic(ArithmeticOp.ADD, A, anon)
    assert expr.base_columns() == {BaseColumn("db", "t", "a")}


def test_walk_yields_every_node():
    expr = Not(Comparison(ComparisonOp.EQ, A, TEN))
    kinds = {type(node).__name__ for node in walk(expr)}
    assert kinds == {"Not", "Comparison", "ColumnRef", "Literal"}


def test_structural_equality_and_hash():
    e1 = Comparison(ComparisonOp.EQ, A, TEN)
    e2 = Comparison(ComparisonOp.EQ, A, Literal(10, DataType.INTEGER))
    assert e1 == e2
    assert hash(e1) == hash(e2)
    assert e1 != Comparison(ComparisonOp.NE, A, TEN)


def test_substitute_replaces_named_refs():
    expr = Comparison(ComparisonOp.GT, A, TEN)
    replacement = Arithmetic(ArithmeticOp.MUL, B, Literal(2, DataType.INTEGER))
    result = substitute(expr, {"t.a": replacement})
    assert result == Comparison(ComparisonOp.GT, replacement, TEN)


def test_substitute_no_change_returns_same_object():
    expr = Comparison(ComparisonOp.GT, A, TEN)
    assert substitute(expr, {"other": B}) is expr


def test_rename_columns_preserves_provenance():
    renamed = rename_columns(A, {"t.a": "x.a"})
    assert isinstance(renamed, ColumnRef)
    assert renamed.name == "x.a"
    assert renamed.base == BaseColumn("db", "t", "a")


def test_conjunction_flattens_and_drops_true():
    c1 = Comparison(ComparisonOp.GT, A, TEN)
    c2 = Comparison(ComparisonOp.LT, B, TEN)
    nested = conjunction([And((c1, c2)), TRUE, c1])
    assert isinstance(nested, And)
    assert nested.operands == (c1, c2, c1)


def test_conjunction_of_single_is_identity():
    c1 = Comparison(ComparisonOp.GT, A, TEN)
    assert conjunction([c1]) is c1


def test_conjunction_empty_is_true():
    assert conjunction([]) == TRUE


def test_disjunction_flattens():
    c1 = Comparison(ComparisonOp.GT, A, TEN)
    c2 = Comparison(ComparisonOp.LT, B, TEN)
    flat = disjunction([Or((c1, c2)), c1])
    assert isinstance(flat, Or)
    assert len(flat.operands) == 3


def test_split_conjuncts_recurses():
    c1 = Comparison(ComparisonOp.GT, A, TEN)
    c2 = Comparison(ComparisonOp.LT, B, TEN)
    c3 = Like(A, "x%")
    expr = And((And((c1, c2)), c3))
    assert split_conjuncts(expr) == [c1, c2, c3]
    assert split_conjuncts(None) == []
    assert split_conjuncts(TRUE) == []


def test_comparison_op_flip_and_negate():
    assert ComparisonOp.LT.flip() == ComparisonOp.GT
    assert ComparisonOp.LE.negate() == ComparisonOp.GT
    assert ComparisonOp.EQ.flip() == ComparisonOp.EQ


@pytest.mark.parametrize(
    "expr,expected",
    [
        (Comparison(ComparisonOp.EQ, A, TEN), DataType.BOOLEAN),
        (Arithmetic(ArithmeticOp.ADD, A, B), DataType.INTEGER),
        (Arithmetic(ArithmeticOp.MUL, A, Literal(1.5, DataType.DECIMAL)), DataType.DECIMAL),
        (Negate(A), DataType.INTEGER),
        (FunctionCall("YEAR", (ColumnRef("d", DataType.DATE),)), DataType.INTEGER),
        (AggregateCall(AggregateFunction.COUNT, None), DataType.INTEGER),
        (AggregateCall(AggregateFunction.SUM, A), DataType.INTEGER),
        (AggregateCall(AggregateFunction.AVG, A), DataType.DECIMAL),
        (AggregateCall(AggregateFunction.MIN, ColumnRef("s", DataType.VARCHAR)), DataType.VARCHAR),
        (InList(A, (TEN,)), DataType.BOOLEAN),
    ],
)
def test_expression_dtype(expr, expected):
    assert expression_dtype(expr) == expected


def test_contains_aggregate():
    agg = AggregateCall(AggregateFunction.SUM, A)
    assert Arithmetic(ArithmeticOp.ADD, agg, TEN).contains_aggregate()
    assert not Arithmetic(ArithmeticOp.ADD, A, TEN).contains_aggregate()


def test_with_children_rebuilds_each_node_type():
    cases = [
        Comparison(ComparisonOp.EQ, A, TEN),
        And((Comparison(ComparisonOp.EQ, A, TEN), Comparison(ComparisonOp.EQ, B, TEN))),
        Or((Comparison(ComparisonOp.EQ, A, TEN), Comparison(ComparisonOp.EQ, B, TEN))),
        Not(Comparison(ComparisonOp.EQ, A, TEN)),
        Arithmetic(ArithmeticOp.SUB, A, B),
        Negate(A),
        Like(A, "%x%"),
        InList(A, (TEN,)),
        FunctionCall("ABS", (A,)),
        AggregateCall(AggregateFunction.SUM, A),
    ]
    for expr in cases:
        rebuilt = expr.with_children(expr.children())
        assert rebuilt == expr


def test_str_rendering_is_deterministic():
    expr = And((Comparison(ComparisonOp.GE, A, TEN), Like(B, "a_c%")))
    assert str(expr) == "((t.a >= 10) AND (t.b LIKE 'a_c%'))"
