"""Tests of DNF normalization and range machinery."""

from repro.datatypes import DataType
from repro.expr import (
    And,
    BaseColumn,
    ColumnRef,
    Comparison,
    ComparisonOp,
    InList,
    Like,
    Literal,
    Not,
    Or,
    TRUE,
    FALSE,
)
from repro.expr.predicates import MAX_DISJUNCTS, Range, canonical_text, column_key, to_dnf

A = ColumnRef("t.a", DataType.INTEGER, BaseColumn("db", "t", "a"))
B = ColumnRef("t.b", DataType.INTEGER, BaseColumn("db", "t", "b"))


def lit(v):
    return Literal(v, DataType.INTEGER)


def cmp(op, col, v):
    return Comparison(op, col, lit(v))


class TestRange:
    def test_intersect_narrows(self):
        r = Range(low=1).intersect(Range(high=5))
        assert r == Range(low=1, high=5)

    def test_intersect_inclusive_flags(self):
        r = Range(low=3, low_inclusive=True).intersect(Range(low=3, low_inclusive=False))
        assert r is not None and not r.low_inclusive

    def test_empty_detection(self):
        assert Range(low=5, high=3).is_empty()
        assert Range(low=3, high=3, low_inclusive=False).is_empty()
        assert not Range(low=3, high=3).is_empty()

    def test_contains_value(self):
        r = Range(low=1, high=5, high_inclusive=False)
        assert r.contains_value(1)
        assert not r.contains_value(5)
        assert not r.contains_value(0)

    def test_subset(self):
        assert Range(low=2, high=4).is_subset_of(Range(low=1, high=5))
        assert not Range(low=0, high=4).is_subset_of(Range(low=1, high=5))
        assert Range(low=1, high=5).is_subset_of(Range())
        assert not Range().is_subset_of(Range(low=1))

    def test_exact_value(self):
        assert Range.equal_to(7).exact_value() == 7
        assert Range(low=1, high=2).exact_value() is None

    def test_mixed_types_do_not_crash(self):
        assert Range(low="x").intersect(Range(low=1)) is None


class TestToDnf:
    def test_true_and_none(self):
        assert len(to_dnf(None)) == 1
        assert len(to_dnf(TRUE)) == 1

    def test_false_is_empty(self):
        assert to_dnf(FALSE) == []

    def test_simple_conjunction_one_disjunct(self):
        dnf = to_dnf(And((cmp(ComparisonOp.GT, A, 1), cmp(ComparisonOp.LT, A, 9))))
        assert len(dnf) == 1
        key = column_key(A)
        assert dnf[0].ranges[key] == Range(low=1, low_inclusive=False, high=9, high_inclusive=False)

    def test_contradiction_pruned(self):
        dnf = to_dnf(And((cmp(ComparisonOp.GT, A, 9), cmp(ComparisonOp.LT, A, 1))))
        assert dnf == []

    def test_disjunction_spreads(self):
        dnf = to_dnf(Or((cmp(ComparisonOp.EQ, A, 1), cmp(ComparisonOp.EQ, A, 2))))
        assert len(dnf) == 2

    def test_negation_pushdown(self):
        dnf = to_dnf(Not(cmp(ComparisonOp.GE, A, 5)))
        assert len(dnf) == 1
        assert dnf[0].ranges[column_key(A)] == Range(high=5, high_inclusive=False)

    def test_not_in_becomes_not_equal(self):
        dnf = to_dnf(InList(A, (lit(1), lit(2)), negated=True))
        assert dnf[0].not_equal[column_key(A)] == {1, 2}

    def test_in_set_intersection(self):
        dnf = to_dnf(And((InList(A, (lit(1), lit(2))), InList(A, (lit(2), lit(3))))))
        assert dnf[0].in_sets[column_key(A)] == frozenset([2])

    def test_like_atoms_recorded(self):
        dnf = to_dnf(Like(A, "x%"))
        assert (column_key(A), "x%", False) in dnf[0].likes

    def test_flipped_literal_side(self):
        dnf = to_dnf(Comparison(ComparisonOp.GT, lit(5), A))  # 5 > a  ==  a < 5
        assert dnf[0].ranges[column_key(A)] == Range(high=5, high_inclusive=False)

    def test_opaque_atom_for_column_comparison(self):
        dnf = to_dnf(Comparison(ComparisonOp.LT, A, B))
        assert dnf[0].opaque

    def test_blowup_gives_none(self):
        # (a=1 or a=2) ^ n with n large enough to exceed MAX_DISJUNCTS.
        disjunct = Or((cmp(ComparisonOp.EQ, A, 1), cmp(ComparisonOp.EQ, B, 2)))
        big = And(tuple([disjunct] * 12))  # 2^12 > MAX_DISJUNCTS
        assert 2**12 > MAX_DISJUNCTS
        assert to_dnf(big) is None


class TestCanonicalText:
    def test_equality_sides_sorted(self):
        one = Comparison(ComparisonOp.EQ, A, B)
        other = Comparison(ComparisonOp.EQ, B, A)
        assert canonical_text(one) == canonical_text(other)

    def test_provenance_names_used(self):
        aliased = ColumnRef("x.a", DataType.INTEGER, BaseColumn("db", "t", "a"))
        assert canonical_text(Comparison(ComparisonOp.EQ, A, B)) == canonical_text(
            Comparison(ComparisonOp.EQ, aliased, B)
        )

    def test_and_operand_order_irrelevant(self):
        c1 = cmp(ComparisonOp.GT, A, 1)
        c2 = cmp(ComparisonOp.LT, B, 9)
        assert canonical_text(And((c1, c2))) == canonical_text(And((c2, c1)))
