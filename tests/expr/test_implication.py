"""Implication test: example-based cases plus a hypothesis soundness
property — whenever ``implies(p, q)`` claims True, exhaustive evaluation
over a small domain must confirm p ⇒ q (the paper requires soundness;
incompleteness is expected and explicitly tested)."""

import datetime

from hypothesis import given, settings, strategies as st

from repro.datatypes import DataType
from repro.expr import (
    And,
    BaseColumn,
    ColumnRef,
    Comparison,
    ComparisonOp,
    InList,
    Like,
    Literal,
    Not,
    Or,
    compile_predicate,
    implies,
)

A = ColumnRef("t.a", DataType.INTEGER, BaseColumn("db", "t", "a"))
B = ColumnRef("t.b", DataType.INTEGER, BaseColumn("db", "t", "b"))
S = ColumnRef("t.s", DataType.VARCHAR, BaseColumn("db", "t", "s"))


def lit(v, dtype=DataType.INTEGER):
    return Literal(v, dtype)


def cmp(op, col, v, dtype=DataType.INTEGER):
    return Comparison(op, col, lit(v, dtype))


class TestExamples:
    def test_tighter_range_implies_wider(self):
        p = And((cmp(ComparisonOp.GT, A, 10), cmp(ComparisonOp.LT, A, 20)))
        assert implies(p, cmp(ComparisonOp.GT, A, 5))
        assert not implies(cmp(ComparisonOp.GT, A, 5), p)

    def test_equality_implies_range_and_in(self):
        p = cmp(ComparisonOp.EQ, A, 7)
        assert implies(p, cmp(ComparisonOp.GE, A, 7))
        assert implies(p, InList(A, (lit(5), lit(7))))
        assert not implies(p, InList(A, (lit(5), lit(6))))

    def test_in_subset(self):
        p = InList(A, (lit(1), lit(2)))
        q = InList(A, (lit(1), lit(2), lit(3)))
        assert implies(p, q)
        assert not implies(q, p)

    def test_not_equal_entailment(self):
        assert implies(cmp(ComparisonOp.EQ, A, 3), cmp(ComparisonOp.NE, A, 4))
        assert implies(cmp(ComparisonOp.GT, A, 10), cmp(ComparisonOp.NE, A, 4))
        assert not implies(cmp(ComparisonOp.GT, A, 2), cmp(ComparisonOp.NE, A, 4))

    def test_like_syntactic_and_literal_match(self):
        p = Like(S, "BUILD%")
        assert implies(p, p)
        eq = Comparison(ComparisonOp.EQ, S, lit("BUILDING", DataType.VARCHAR))
        assert implies(eq, Like(S, "BUILD%"))
        assert not implies(eq, Like(S, "AUTO%"))

    def test_disjunctive_query_predicate(self):
        p = Or((cmp(ComparisonOp.EQ, A, 1), cmp(ComparisonOp.EQ, A, 2)))
        assert implies(p, cmp(ComparisonOp.LE, A, 2))
        assert not implies(p, cmp(ComparisonOp.EQ, A, 1))

    def test_none_policy_predicate_always_implied(self):
        assert implies(None, None)
        assert implies(cmp(ComparisonOp.EQ, A, 1), None)

    def test_none_query_predicate_rarely_implies(self):
        assert not implies(None, cmp(ComparisonOp.EQ, A, 1))

    def test_opaque_join_atoms_match_by_provenance(self):
        aliased = ColumnRef("x.a", DataType.INTEGER, BaseColumn("db", "t", "a"))
        join1 = Comparison(ComparisonOp.EQ, A, B)
        join2 = Comparison(ComparisonOp.EQ, B, aliased)
        assert implies(join1, join2)

    def test_documented_incompleteness(self):
        # The paper's own example: A=5 AND B=3 does imply A+B=8, but the
        # sound-but-incomplete test cannot prove it.
        from repro.expr import Arithmetic, ArithmeticOp

        p = And((cmp(ComparisonOp.EQ, A, 5), cmp(ComparisonOp.EQ, B, 3)))
        q = Comparison(ComparisonOp.EQ, Arithmetic(ArithmeticOp.ADD, A, B), lit(8))
        assert not implies(p, q)

    def test_dates(self):
        d = ColumnRef("t.d", DataType.DATE, BaseColumn("db", "t", "d"))
        jan94 = Literal(datetime.date(1994, 1, 1), DataType.DATE)
        jan95 = Literal(datetime.date(1995, 1, 1), DataType.DATE)
        p = And(
            (
                Comparison(ComparisonOp.GE, d, jan94),
                Comparison(ComparisonOp.LT, d, jan95),
            )
        )
        assert implies(p, Comparison(ComparisonOp.GE, d, jan94))
        assert not implies(Comparison(ComparisonOp.LT, d, jan95), p)


# -- property-based soundness --------------------------------------------------

_COLUMNS = [A, B]
_VALUES = list(range(0, 6))


def atoms():
    col = st.sampled_from(_COLUMNS)
    val = st.sampled_from(_VALUES)
    op = st.sampled_from(list(ComparisonOp))
    comparison = st.builds(lambda c, o, v: Comparison(o, c, lit(v)), col, op, val)
    in_list = st.builds(
        lambda c, vs: InList(c, tuple(lit(v) for v in sorted(vs))),
        col,
        st.sets(st.sampled_from(_VALUES), min_size=1, max_size=3),
    )
    return st.one_of(comparison, in_list)


def predicates(depth=2):
    if depth == 0:
        return atoms()
    sub = predicates(depth - 1)
    return st.one_of(
        atoms(),
        st.builds(lambda a, b: And((a, b)), sub, sub),
        st.builds(lambda a, b: Or((a, b)), sub, sub),
        st.builds(Not, sub),
    )


@settings(max_examples=300, deadline=None)
@given(p=predicates(), q=predicates())
def test_implication_is_sound(p, q):
    if not implies(p, q):
        return
    p_fn = compile_predicate(p, ["t.a", "t.b"])
    q_fn = compile_predicate(q, ["t.a", "t.b"])
    for a in _VALUES:
        for b in _VALUES:
            row = (a, b)
            assert not (p_fn(row) and not q_fn(row)), (
                f"claimed {p} => {q} but row {row} violates it"
            )
