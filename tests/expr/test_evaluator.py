"""Tests of compiled row-level expression evaluation (incl. NULL rules)."""

import datetime

import pytest

from repro.datatypes import DataType
from repro.errors import ExecutionError
from repro.expr import (
    AggregateCall,
    AggregateFunction,
    And,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    compile_expression,
    compile_predicate,
    like_to_regex,
)

SCHEMA = ["a", "b", "s", "d"]
A = ColumnRef("a", DataType.INTEGER)
B = ColumnRef("b", DataType.INTEGER)
S = ColumnRef("s", DataType.VARCHAR)
D = ColumnRef("d", DataType.DATE)


def run(expr, row):
    return compile_expression(expr, SCHEMA)(row)


def test_column_and_literal():
    assert run(A, (7, 8, "x", None)) == 7
    assert run(Literal("hi", DataType.VARCHAR), (0, 0, "", None)) == "hi"


def test_unknown_column_raises():
    with pytest.raises(ExecutionError):
        compile_expression(ColumnRef("nope", DataType.INTEGER), SCHEMA)


def test_comparisons():
    expr = Comparison(ComparisonOp.LE, A, B)
    assert run(expr, (1, 2, "", None)) is True
    assert run(expr, (3, 2, "", None)) is False


def test_comparison_with_null_is_null():
    expr = Comparison(ComparisonOp.EQ, A, B)
    assert run(expr, (None, 2, "", None)) is None


def test_arithmetic_and_negate():
    expr = Negate(Arithmetic(ArithmeticOp.SUB, A, B))
    assert run(expr, (3, 10, "", None)) == 7


def test_division_by_zero_raises():
    expr = Arithmetic(ArithmeticOp.DIV, A, B)
    with pytest.raises(ExecutionError):
        run(expr, (1, 0, "", None))


def test_arithmetic_null_propagates():
    expr = Arithmetic(ArithmeticOp.ADD, A, B)
    assert run(expr, (None, 1, "", None)) is None


def test_and_three_valued_logic():
    t = Literal(True, DataType.BOOLEAN)
    f = Literal(False, DataType.BOOLEAN)
    null_cmp = Comparison(ComparisonOp.EQ, A, B)  # a is None -> NULL
    row = (None, 1, "", None)
    assert run(And((t, f)), row) is False
    assert run(And((t, null_cmp)), row) is None
    assert run(And((f, null_cmp)), row) is False  # FALSE dominates NULL
    assert run(Or((f, null_cmp)), row) is None
    assert run(Or((t, null_cmp)), row) is True  # TRUE dominates NULL
    assert run(Not(null_cmp), row) is None


def test_like_semantics():
    assert run(Like(S, "ab%"), (0, 0, "abc", None)) is True
    assert run(Like(S, "ab%"), (0, 0, "xabc", None)) is False
    assert run(Like(S, "a_c"), (0, 0, "abc", None)) is True
    assert run(Like(S, "a_c"), (0, 0, "abbc", None)) is False
    assert run(Like(S, "%c", negated=True), (0, 0, "abc", None)) is False
    assert run(Like(S, "ab%"), (0, 0, None, None)) is None


def test_like_regex_escapes_metacharacters():
    regex = like_to_regex("a.c%")
    assert regex.match("a.cxx")
    assert not regex.match("abcxx")


def test_in_list():
    expr = InList(A, (Literal(1, DataType.INTEGER), Literal(3, DataType.INTEGER)))
    assert run(expr, (3, 0, "", None)) is True
    assert run(expr, (2, 0, "", None)) is False
    assert run(InList(A, (Literal(1, DataType.INTEGER),), negated=True), (2, 0, "", None)) is True
    assert run(expr, (None, 0, "", None)) is None


def test_is_null():
    assert run(IsNull(A), (None, 0, "", None)) is True
    assert run(IsNull(A), (5, 0, "", None)) is False
    assert run(IsNull(A, negated=True), (5, 0, "", None)) is True


def test_scalar_functions():
    date = datetime.date(1995, 3, 14)
    assert run(FunctionCall("YEAR", (D,)), (0, 0, "", date)) == 1995
    assert run(FunctionCall("UPPER", (S,)), (0, 0, "abc", None)) == "ABC"
    assert run(FunctionCall("LOWER", (S,)), (0, 0, "ABC", None)) == "abc"
    assert run(FunctionCall("ABS", (A,)), (-4, 0, "", None)) == 4
    sub = FunctionCall(
        "SUBSTRING", (S, Literal(2, DataType.INTEGER), Literal(2, DataType.INTEGER))
    )
    assert run(sub, (0, 0, "abcdef", None)) == "bc"


def test_unknown_function_raises():
    with pytest.raises(ExecutionError):
        compile_expression(FunctionCall("NOPE", (A,)), SCHEMA)


def test_aggregate_outside_aggregate_operator_raises():
    with pytest.raises(ExecutionError):
        compile_expression(AggregateCall(AggregateFunction.SUM, A), SCHEMA)


def test_compile_predicate_treats_null_as_false():
    predicate = compile_predicate(Comparison(ComparisonOp.GT, A, B), SCHEMA)
    assert predicate((None, 1, "", None)) is False
    assert predicate((2, 1, "", None)) is True
