"""Shared benchmark-harness utilities.

Every figure/table of the paper's evaluation (§7) has an experiment
function in :mod:`repro.bench.experiments` returning a small result
dataclass; this module provides the common machinery: repeated timing of
optimizer runs (the paper reports the average of seven runs), simple
fixed-width table rendering that mimics the paper's figures, and a report
sink that both prints and persists each experiment's output.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

#: The paper: "We ran each of our considered queries seven times and
#: report the average."  Benchmarks may lower this for the slow sweeps.
DEFAULT_REPETITIONS = 7


@dataclass
class TimedRun:
    """Aggregated wall-clock timings of repeated optimizations."""

    mean_ms: float
    stdev_ms: float
    runs: int

    @staticmethod
    def measure(fn: Callable[[], object], repetitions: int = DEFAULT_REPETITIONS) -> "TimedRun":
        samples: list[float] = []
        for _ in range(repetitions):
            start = time.perf_counter()
            fn()
            samples.append((time.perf_counter() - start) * 1000.0)
        return TimedRun(
            mean_ms=statistics.fmean(samples),
            stdev_ms=statistics.stdev(samples) if len(samples) > 1 else 0.0,
            runs=len(samples),
        )

    def __str__(self) -> str:
        return f"{self.mean_ms:8.1f} ±{self.stdev_ms:5.1f} ms"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str | None = None
) -> str:
    """Fixed-width table rendering for the experiment reports."""
    materialized = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


class Report:
    """Prints experiment output and persists it under ``results/``."""

    def __init__(self, directory: str | Path = "benchmarks/results") -> None:
        self.directory = Path(directory)

    def emit(self, name: str, text: str) -> Path:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print()
        print(text)
        return path


def scaled(value: float, baseline: float) -> float:
    """Paper Fig. 6(g,h): execution cost scaled to the traditional plan."""
    if baseline <= 0:
        return 1.0
    return value / baseline
