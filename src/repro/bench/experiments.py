"""Experiment functions — one per table/figure of the paper's §7.

Each function prepares the workload, runs both optimizers as required,
and returns a result dataclass with a ``table()`` rendering that mirrors
the corresponding figure.  The ``benchmarks/`` directory contains one
pytest-benchmark file per figure that drives these functions and asserts
the paper's qualitative claims (the *shape*: who wins, where the
crossovers are), never absolute milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog import Catalog
from ..errors import NonCompliantQueryError
from ..execution import ExecutionEngine
from ..geo import NetworkModel
from ..optimizer import (
    CompliantOptimizer,
    TraditionalOptimizer,
    check_compliance,
)
from ..plan import explain_physical
from ..policy import PolicyCatalog, PolicyEvaluator
from ..sql import Binder
from ..tpch import (
    AdHocQueryGenerator,
    PolicyGenerator,
    QUERIES,
    build_benchmark,
    build_catalog,
    curated_policies,
    default_network,
    locations_sweep_policies,
)
from ..tpch.schema import ALL_TABLES
from .harness import DEFAULT_REPETITIONS, TimedRun, format_table, scaled

DEFAULT_QUERY_NAMES = tuple(QUERIES)


def minimal_policies(catalog: Catalog) -> PolicyCatalog:
    """Fig. 6(b): eight unrestricted ``ship * from t to *`` expressions —
    the overhead the compliant optimizer always pays."""
    policies = PolicyCatalog(catalog)
    for schema in ALL_TABLES:
        policies.add_text(f"ship * from {schema.name} to *")
    return policies


# ---------------------------------------------------------------------------
# Fig. 5(a) — effectiveness on the six TPC-H queries
# ---------------------------------------------------------------------------


@dataclass
class EffectivenessMatrix:
    """(traditional label, compliant label) per set and query."""

    cells: dict[str, dict[str, tuple[str, str]]]

    def table(self) -> str:
        first = next(iter(self.cells.values()))
        queries = list(first)
        rows = []
        for set_name, per_query in self.cells.items():
            rows.append(
                [set_name]
                + [f"{per_query[q][0]}/{per_query[q][1]}" for q in queries]
            )
        return format_table(
            ["set"] + queries,
            rows,
            title="Fig 5(a) — traditional/compliant optimizer outcome "
            "(C = compliant plan, NC = non-compliant, REJ = rejected)",
        )

    def traditional_nc(self, set_name: str) -> set[str]:
        return {
            q for q, (trad, _c) in self.cells[set_name].items() if trad == "NC"
        }


def effectiveness_tpch(
    catalog: Catalog,
    network: NetworkModel,
    set_names: tuple[str, ...] = ("T", "C", "CR", "CR+A"),
    query_names: tuple[str, ...] = DEFAULT_QUERY_NAMES,
) -> EffectivenessMatrix:
    cells: dict[str, dict[str, tuple[str, str]]] = {}
    for set_name in set_names:
        policies = curated_policies(catalog, set_name)
        evaluator = PolicyEvaluator(policies)
        compliant = CompliantOptimizer(catalog, policies, network)
        traditional = TraditionalOptimizer(catalog, network)
        per_query: dict[str, tuple[str, str]] = {}
        for name in query_names:
            sql = QUERIES[name]
            t_label = (
                "C"
                if not check_compliance(traditional.optimize(sql).plan, evaluator)
                else "NC"
            )
            try:
                result = compliant.optimize(sql)
                c_label = (
                    "C" if not check_compliance(result.plan, evaluator) else "NC"
                )
            except NonCompliantQueryError:
                c_label = "REJ"
            per_query[name] = (t_label, c_label)
        cells[set_name] = per_query
    return EffectivenessMatrix(cells)


# ---------------------------------------------------------------------------
# Fig. 6(a) — effectiveness on 400 ad-hoc queries
# ---------------------------------------------------------------------------


@dataclass
class AdhocEffectiveness:
    per_set: dict[str, tuple[int, int, int]]  # (queries, trad-C, compliant-C)

    def table(self) -> str:
        rows = []
        for set_name, (n, trad_ok, comp_ok) in self.per_set.items():
            rows.append(
                [
                    set_name,
                    n,
                    f"{trad_ok / n:.2f}",
                    f"{comp_ok / n:.2f}",
                ]
            )
        return format_table(
            ["expression set", "#queries", "traditional QO", "compliant QO"],
            rows,
            title="Fig 6(a) — fraction of ad-hoc queries with a compliant QEP",
        )


def effectiveness_adhoc(
    catalog: Catalog,
    network: NetworkModel,
    queries_per_set: int = 100,
    expression_counts: dict[str, int] | None = None,
    policy_seed: int = 17,
    query_seed: int = 23,
    max_expressions: int = 3000,
) -> AdhocEffectiveness:
    counts = expression_counts or {"T": 8, "C": 50, "CR": 50, "CR+A": 50}
    generator = AdHocQueryGenerator(seed=query_seed)
    per_set: dict[str, tuple[int, int, int]] = {}
    for set_name, n_expressions in counts.items():
        policies = PolicyGenerator(
            catalog, seed=policy_seed, hub="NorthAmerica"
        ).generate(set_name, n_expressions)
        evaluator = PolicyEvaluator(policies)
        compliant = CompliantOptimizer(
            catalog, policies, network, max_expressions=max_expressions
        )
        traditional = TraditionalOptimizer(
            catalog, network, max_expressions=max_expressions
        )
        trad_ok = 0
        comp_ok = 0
        for query in generator.generate(queries_per_set):
            t_plan = traditional.optimize(query.sql).plan
            if not check_compliance(t_plan, evaluator):
                trad_ok += 1
            try:
                result = compliant.optimize(query.sql)
                if not check_compliance(result.plan, evaluator):
                    comp_ok += 1
            except NonCompliantQueryError:
                pass
        per_set[set_name] = (queries_per_set, trad_ok, comp_ok)
    return AdhocEffectiveness(per_set)


# ---------------------------------------------------------------------------
# Fig. 6(b)–(f) — optimization-time overhead
# ---------------------------------------------------------------------------


@dataclass
class OverheadResult:
    label: str
    per_query: dict[str, tuple[TimedRun, TimedRun]]  # traditional, compliant

    def table(self) -> str:
        rows = []
        for name, (trad, comp) in self.per_query.items():
            factor = comp.mean_ms / trad.mean_ms if trad.mean_ms else float("inf")
            rows.append(
                [name, f"{trad.mean_ms:.1f}", f"{comp.mean_ms:.1f}", f"{factor:.2f}x"]
            )
        return format_table(
            ["query", "traditional [ms]", "compliant [ms]", "overhead"],
            rows,
            title=self.label,
        )

    def overhead_factor(self, name: str) -> float:
        trad, comp = self.per_query[name]
        return comp.mean_ms / trad.mean_ms if trad.mean_ms else float("inf")


def optimization_overhead(
    catalog: Catalog,
    network: NetworkModel,
    policies: PolicyCatalog,
    label: str,
    query_names: tuple[str, ...] = DEFAULT_QUERY_NAMES,
    repetitions: int = DEFAULT_REPETITIONS,
) -> OverheadResult:
    compliant = CompliantOptimizer(catalog, policies, network)
    traditional = TraditionalOptimizer(catalog, network)
    per_query: dict[str, tuple[TimedRun, TimedRun]] = {}
    for name in query_names:
        sql = QUERIES[name]
        trad = TimedRun.measure(lambda: traditional.optimize(sql), repetitions)
        comp = TimedRun.measure(lambda: compliant.optimize(sql), repetitions)
        per_query[name] = (trad, comp)
    return OverheadResult(label, per_query)


# ---------------------------------------------------------------------------
# Fig. 6(g)(h) — plan quality (scaled execution cost)
# ---------------------------------------------------------------------------


@dataclass
class QualityRow:
    query: str
    traditional_cost: float
    compliant_cost: float
    traditional_label: str
    same_plan: bool
    #: Simulated critical-path response times (fragment scheduler); the
    #: shipping-cost columns above are the plain per-SHIP sums.
    traditional_makespan: float = 0.0
    compliant_makespan: float = 0.0
    #: Fragment pairs with no dependency either way — > 0 means the plan
    #: has cross-site parallelism and makespan < cost strictly.
    traditional_parallel_pairs: int = 0
    compliant_parallel_pairs: int = 0

    @property
    def scaled_cost(self) -> float:
        return scaled(self.compliant_cost, self.traditional_cost)

    @property
    def scaled_makespan(self) -> float:
        return scaled(self.compliant_makespan, self.traditional_makespan)


@dataclass
class QualityResult:
    set_name: str
    rows: list[QualityRow]

    def table(self) -> str:
        out = []
        for row in self.rows:
            out.append(
                [
                    row.query,
                    row.traditional_label,
                    f"{row.traditional_cost:.4f}",
                    f"{row.compliant_cost:.4f}",
                    f"{row.scaled_cost:.2f}x",
                    f"{row.traditional_makespan:.4f}",
                    f"{row.compliant_makespan:.4f}",
                    f"{row.scaled_makespan:.2f}x",
                    "=" if row.same_plan else "!=",
                ]
            )
        return format_table(
            [
                "query",
                "trad",
                "trad cost [s]",
                "compliant cost [s]",
                "scaled",
                "trad makespan [s]",
                "compliant makespan [s]",
                "scaled",
                "plan",
            ],
            out,
            title=(
                f"Fig 6(g/h) — execution cost, set {self.set_name}; "
                "cost = simulated alpha+beta*bytes transfer time summed over "
                "all SHIPs, makespan = critical-path response time of the "
                "fragment schedule"
            ),
        )

    def row(self, query: str) -> QualityRow:
        return next(r for r in self.rows if r.query == query)


def plan_quality(
    set_name: str,
    scale: float = 0.01,
    query_names: tuple[str, ...] = DEFAULT_QUERY_NAMES,
    network: NetworkModel | None = None,
) -> QualityResult:
    """Optimize with both optimizers, execute both plans on generated data,
    and report the measured shipping cost, scaled to the traditional plan
    (paper §7.4).

    Plans execute on the fragment-parallel engine, so each row carries
    both cost views: the per-SHIP transfer-time *sum* (the paper's
    headline metric) and the simulated critical-path *makespan* (the
    response time a geo-distributed deployment would observe, since
    independent sites transfer concurrently).

    Plans are optimized against SF-1 statistics (matching the paper's SF-10
    setup and this repo's other experiments) and executed on data generated
    at ``scale`` — shipped bytes scale linearly, the plan *shapes* do not
    change."""
    catalog, database = build_benchmark(scale=scale, stats_scale=1.0)
    network = network or default_network()
    policies = curated_policies(catalog, set_name)
    evaluator = PolicyEvaluator(policies)
    compliant = CompliantOptimizer(catalog, policies, network)
    traditional = TraditionalOptimizer(catalog, network)
    engine = ExecutionEngine(database, network, parallel=True)
    binder = Binder(catalog)

    from ..execution import independent_pairs
    from ..optimizer.compliant import _strip_sort

    rows: list[QualityRow] = []
    for name in query_names:
        core, _sort = _strip_sort(binder.bind_sql(QUERIES[name]))
        t_result = traditional.optimize(core)
        c_result = compliant.optimize(core)
        t_run = engine.execute(t_result.plan)
        c_run = engine.execute(c_result.plan)
        rows.append(
            QualityRow(
                query=name,
                traditional_cost=t_run.simulated_cost,
                compliant_cost=c_run.simulated_cost,
                traditional_label=(
                    "C"
                    if not check_compliance(t_result.plan, evaluator)
                    else "NC"
                ),
                same_plan=explain_physical(t_result.plan)
                == explain_physical(c_result.plan),
                traditional_makespan=t_run.makespan_seconds,
                compliant_makespan=c_run.makespan_seconds,
                traditional_parallel_pairs=independent_pairs(t_result.plan),
                compliant_parallel_pairs=independent_pairs(c_result.plan),
            )
        )
    return QualityResult(set_name, rows)


# ---------------------------------------------------------------------------
# Fig. 7(a)–(c) — scalability in the number of policy expressions
# ---------------------------------------------------------------------------


@dataclass
class ExpressionScalability:
    query: str
    points: list[tuple[int, TimedRun, int]]  # (#expressions, time, eta)

    def table(self) -> str:
        rows = [
            [n, f"{t.mean_ms:.1f}", eta]
            for n, t, eta in self.points
        ]
        return format_table(
            ["#expressions", "optimization [ms]", "eta"],
            rows,
            title=f"Fig 7 — scalability of {self.query} w.r.t. #expressions (CR+A)",
        )


def scalability_expressions(
    catalog: Catalog,
    network: NetworkModel,
    query_name: str,
    counts: tuple[int, ...] = (12, 25, 50, 100),
    template: str = "CR+A",
    policy_seed: int = 31,
    repetitions: int = DEFAULT_REPETITIONS,
) -> ExpressionScalability:
    sql = QUERIES[query_name]
    points: list[tuple[int, TimedRun, int]] = []
    for count in counts:
        policies = PolicyGenerator(
            catalog, seed=policy_seed, hub="NorthAmerica"
        ).generate(template, count)
        optimizer = CompliantOptimizer(catalog, policies, network)
        timing = TimedRun.measure(lambda: optimizer.optimize(sql), repetitions)
        # η: how often an expression is applied (Algorithm 1 reaching line
        # 4) during one optimization.
        probe = CompliantOptimizer(catalog, policies, network)
        probe.evaluator.reset_stats()
        probe.optimize(sql)
        points.append((count, timing, probe.evaluator.stats.eta))
    return ExpressionScalability(query_name, points)


# ---------------------------------------------------------------------------
# Fig. 7(d)(e) — scalability in the number of table locations (GAV)
# ---------------------------------------------------------------------------


@dataclass
class FragmentScalability:
    query: str
    points: list[tuple[int, TimedRun]]

    def table(self) -> str:
        rows = [[n, f"{t.mean_ms:.1f}"] for n, t in self.points]
        return format_table(
            ["#table locations", "optimization [ms]"],
            rows,
            title=f"Fig 7(d/e) — {self.query} with customer+orders fragmented",
        )


def fragmented_policies(catalog: Catalog, hub: str = "NorthAmerica") -> PolicyCatalog:
    """Per-fragment policy expressions for the §7.5 setup: every stored
    fragment may ship to the hub (feasibility), nation/region anywhere, and
    lineitem revenue data only aggregated into Europe (CR+A flavour)."""
    policies = PolicyCatalog(catalog)
    for table in catalog.tables:
        for fragment in table.fragments:
            policies.add_text(
                f"ship * from {fragment.database}.{table.name} to {hub}"
            )
    policies.add_text("ship * from nation to *")
    policies.add_text("ship * from region to *")
    policies.add_text(
        "ship l_extendedprice, l_discount as aggregates sum from lineitem "
        "to Europe group by l_suppkey, l_orderkey"
    )
    return policies


def scalability_fragments(
    query_name: str,
    location_counts: tuple[int, ...] = (1, 2, 3, 4, 5),
    scale: float = 1.0,
    repetitions: int = DEFAULT_REPETITIONS,
) -> FragmentScalability:
    sql = QUERIES[query_name]
    points: list[tuple[int, TimedRun]] = []
    for n in location_counts:
        catalog = build_catalog(
            scale=scale,
            fragmented=("customer", "orders") if n > 1 else (),
            fragment_locations=n,
        )
        network = default_network()
        policies = fragmented_policies(catalog)
        optimizer = CompliantOptimizer(catalog, policies, network)
        timing = TimedRun.measure(lambda: optimizer.optimize(sql), repetitions)
        points.append((n, timing))
    return FragmentScalability(query_name, points)


# ---------------------------------------------------------------------------
# Fig. 8 — scalability in the number of locations per policy expression
# ---------------------------------------------------------------------------


@dataclass
class LocationScalability:
    query: str
    points: list[tuple[int, TimedRun, float]]  # (#locations, total, phase2 ms)

    def table(self) -> str:
        rows = [
            [n, f"{t.mean_ms:.1f}", f"{p2:.1f}"]
            for n, t, p2 in self.points
        ]
        return format_table(
            ["#locations per expression", "optimization [ms]", "site selection [ms]"],
            rows,
            title=f"Fig 8 — {self.query} w.r.t. #locations in policy expressions",
        )


def scalability_policy_locations(
    query_name: str,
    location_counts: tuple[int, ...] = (3, 5, 10, 15, 20),
    repetitions: int = DEFAULT_REPETITIONS,
) -> LocationScalability:
    sql = QUERIES[query_name]
    points: list[tuple[int, TimedRun, float]] = []
    for n in location_counts:
        catalog, policies = locations_sweep_policies(None, n)
        network = default_network()
        optimizer = CompliantOptimizer(catalog, policies, network)
        timing = TimedRun.measure(lambda: optimizer.optimize(sql), repetitions)
        result = optimizer.optimize(sql)
        points.append((n, timing, result.phase2_seconds * 1000.0))
    return LocationScalability(query_name, points)


# ---------------------------------------------------------------------------
# Chaos recovery — makespan inflation under injected WAN faults
# ---------------------------------------------------------------------------


@dataclass
class ChaosRow:
    """One (query, fault seed) execution under injected faults."""

    query: str
    seed: int
    faults: str
    rows_match: bool
    transfers: int
    attempts: int
    retry_wait_seconds: float
    baseline_makespan: float
    faulted_makespan: float
    recoveries: int
    validated_recoveries: int
    partial_failure: str | None

    @property
    def inflation(self) -> float:
        """Faulted / fault-free makespan (1.0 = the faults cost nothing)."""
        return scaled(self.faulted_makespan, self.baseline_makespan)


@dataclass
class ChaosResult:
    set_name: str
    transient_only: bool
    rows: list[ChaosRow]

    def table(self) -> str:
        out = []
        for row in self.rows:
            outcome = (
                "rows ok"
                if row.rows_match
                else f"PARTIAL: {row.partial_failure}"
                if row.partial_failure
                else "ROWS DIFFER"
            )
            out.append(
                [
                    row.query,
                    row.seed,
                    f"{row.attempts}/{row.transfers}",
                    f"{row.retry_wait_seconds:.3f}",
                    f"{row.baseline_makespan:.3f}",
                    f"{row.faulted_makespan:.3f}",
                    f"{row.inflation:.2f}x",
                    f"{row.validated_recoveries}/{row.recoveries}",
                    outcome,
                ]
            )
        mode = "transient faults" if self.transient_only else "incl. site crashes"
        return format_table(
            [
                "query",
                "seed",
                "attempts/transfers",
                "retry wait [s]",
                "fault-free makespan [s]",
                "faulted makespan [s]",
                "inflation",
                "validated/failovers",
                "outcome",
            ],
            out,
            title=(
                f"Chaos recovery — set {self.set_name}, {mode}; inflation = "
                "faulted / fault-free critical-path makespan (retry backoff, "
                "slow links, and failover re-deliveries included)"
            ),
        )


def chaos_recovery(
    set_name: str = "CR+A",
    scale: float = 0.01,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
    query_names: tuple[str, ...] = DEFAULT_QUERY_NAMES,
    transient_only: bool = True,
    max_retries: int = 6,
) -> ChaosResult:
    """Execute every query fault-free, then once per fault seed, and
    report the makespan inflation the faults caused.

    Seeded fault plans draw their link events from the (source, target)
    pairs the fault-free run actually shipped over, so most runs hit at
    least one live transfer.  With ``transient_only`` (default) every
    faulted run must be row-identical to the fault-free run — the chaos
    *equivalence* property; with crashes included, runs either recover
    through validated ℰ-restricted failover (still row-identical) or
    degrade to a typed partial failure."""
    from ..execution import FaultPlan, RetryPolicy

    catalog, database = build_benchmark(scale=scale, stats_scale=1.0)
    network = default_network()
    policies = curated_policies(catalog, set_name)
    compliant = CompliantOptimizer(catalog, policies, network)
    baseline = ExecutionEngine(database, network, parallel=True)

    from ..optimizer.compliant import _strip_sort

    binder = Binder(catalog)
    rows: list[ChaosRow] = []
    for name in query_names:
        core, _sort = _strip_sort(binder.bind_sql(QUERIES[name]))
        plan = compliant.optimize(core).plan
        base_run = baseline.execute(plan)
        base_rows = sorted(base_run.rows)
        pairs = [
            (s.source, s.target)
            for s in base_run.metrics.ships
            if s.source != s.target
        ]
        for seed in seeds:
            faults = FaultPlan.random(
                seed,
                catalog.locations,
                transient_only=transient_only,
                pairs=pairs,
            )
            engine = ExecutionEngine(
                database,
                network,
                policy_guard=compliant.evaluator,
                parallel=True,
                faults=faults,
                retry_policy=RetryPolicy(max_retries=max_retries),
            )
            run = engine.execute(plan)
            metrics = run.metrics
            rows.append(
                ChaosRow(
                    query=name,
                    seed=seed,
                    faults=str(faults),
                    rows_match=sorted(run.rows) == base_rows,
                    transfers=len(metrics.ships),
                    attempts=metrics.transfer_attempts,
                    retry_wait_seconds=metrics.retry_wait_seconds,
                    baseline_makespan=base_run.makespan_seconds,
                    faulted_makespan=run.makespan_seconds,
                    recoveries=len(metrics.recoveries),
                    validated_recoveries=sum(
                        1 for r in metrics.recoveries if r.validated
                    ),
                    partial_failure=(
                        str(run.partial_failure)
                        if run.partial_failure is not None
                        else None
                    ),
                )
            )
    return ChaosResult(set_name, transient_only, rows)
