"""Cardinality estimation and operator cost functions.

Phase 1 of the two-phase optimizer uses a *traditional* cost model that
assumes all tables are stored locally (paper §6): cost functions depend on
input cardinalities only.  Estimation is classic System-R style —
equality selectivity ``1/ndv``, range selectivity ``1/3``, join
selectivity ``1/max(ndv_l, ndv_r)`` per equi-conjunct.

Cardinalities are estimated on *logical* plans and memoized, so every
alternative in a memo group sees consistent estimates.

The compliance adaptation of the paper — an operator whose execution
trait is empty has infinite cost — lives in the extraction logic
(:mod:`repro.optimizer.annotator`), which simply discards such
alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..catalog import Catalog, ColumnStats
from ..expr import (
    And,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    split_conjuncts,
)
from ..plan import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
)

#: Default selectivities for predicates we cannot estimate from stats.
RANGE_SELECTIVITY = 1 / 3
LIKE_SELECTIVITY = 1 / 4
DEFAULT_SELECTIVITY = 1 / 3
EQUALITY_FALLBACK = 1 / 10


@dataclass(frozen=True)
class CostWeights:
    """Per-tuple cost constants of the local execution model."""

    scan: float = 1.0
    filter: float = 0.5
    project: float = 0.3
    hash_build: float = 1.5
    hash_probe: float = 1.0
    join_output: float = 0.5
    nested_loop: float = 0.8
    aggregate_input: float = 1.2
    aggregate_output: float = 0.5
    union: float = 0.2
    sort: float = 2.0


class CostModel:
    """Cardinality and cost estimation over a catalog."""

    def __init__(self, catalog: Catalog, weights: CostWeights | None = None) -> None:
        self.catalog = catalog
        self.weights = weights or CostWeights()
        # Keyed by object identity: representatives are shared across memo
        # groups, and hashing deep plan trees repeatedly is the single
        # hottest operation otherwise.  Storing the plan itself keeps the
        # object alive, so ids cannot be recycled while cached.
        self._row_cache: dict[int, tuple[LogicalPlan, float]] = {}

    # -- statistics lookups --------------------------------------------------

    def _column_stats(self, plan: LogicalPlan, ref: ColumnRef) -> ColumnStats | None:
        base = ref.base
        if base is None:
            return None
        try:
            stored = self.catalog.stored_table(base.database, base.table)
        except Exception:
            return None
        return stored.stats.column(base.column)

    def distinct_count(self, plan: LogicalPlan, ref: ColumnRef) -> float:
        """Distinct values of ``ref`` in ``plan``'s output (capped by the
        plan's cardinality)."""
        rows = self.estimate_rows(plan)
        stats = self._column_stats(plan, ref)
        if stats is None:
            return max(1.0, rows / 10)
        return max(1.0, min(stats.distinct_count, rows))

    # -- selectivity ---------------------------------------------------------

    def selectivity(self, plan: LogicalPlan, predicate: Expression | None) -> float:
        if predicate is None:
            return 1.0
        if isinstance(predicate, And):
            sel = 1.0
            for op in predicate.operands:
                sel *= self.selectivity(plan, op)
            return sel
        if isinstance(predicate, Or):
            sel = 0.0
            for op in predicate.operands:
                sel += self.selectivity(plan, op)
            return min(1.0, sel)
        if isinstance(predicate, Not):
            return max(0.0, 1.0 - self.selectivity(plan, predicate.operand))
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(plan, predicate)
        if isinstance(predicate, Like):
            sel = LIKE_SELECTIVITY
            return 1.0 - sel if predicate.negated else sel
        if isinstance(predicate, InList):
            if isinstance(predicate.operand, ColumnRef):
                ndv = self._ndv_or_none(plan, predicate.operand)
                if ndv:
                    sel = min(1.0, len(predicate.values) / ndv)
                else:
                    sel = min(1.0, len(predicate.values) * EQUALITY_FALLBACK)
                return 1.0 - sel if predicate.negated else sel
            return DEFAULT_SELECTIVITY
        if isinstance(predicate, IsNull):
            return 0.05 if not predicate.negated else 0.95
        if isinstance(predicate, Literal):
            return 1.0 if predicate.value else 0.0
        return DEFAULT_SELECTIVITY

    def _ndv_or_none(self, plan: LogicalPlan, ref: ColumnRef) -> float | None:
        stats = self._column_stats(plan, ref)
        if stats is None:
            return None
        return float(max(1, stats.distinct_count))

    def _comparison_selectivity(self, plan: LogicalPlan, cmp: Comparison) -> float:
        left, right = cmp.left, cmp.right
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right = right, left
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            if cmp.op == ComparisonOp.EQ:
                ndv = self._ndv_or_none(plan, left)
                return 1.0 / ndv if ndv else EQUALITY_FALLBACK
            if cmp.op == ComparisonOp.NE:
                ndv = self._ndv_or_none(plan, left)
                return 1.0 - (1.0 / ndv if ndv else EQUALITY_FALLBACK)
            return RANGE_SELECTIVITY
        if (
            isinstance(left, ColumnRef)
            and isinstance(right, ColumnRef)
            and cmp.op == ComparisonOp.EQ
        ):
            ndv_l = self._ndv_or_none(plan, left) or EQUALITY_FALLBACK ** -1
            ndv_r = self._ndv_or_none(plan, right) or EQUALITY_FALLBACK ** -1
            return 1.0 / max(ndv_l, ndv_r)
        return DEFAULT_SELECTIVITY

    # -- cardinality ---------------------------------------------------------

    def estimate_rows(self, plan: LogicalPlan) -> float:
        cached = self._row_cache.get(id(plan))
        if cached is not None and cached[0] is plan:
            return cached[1]
        rows = max(1.0, self._estimate(plan))
        self._row_cache[id(plan)] = (plan, rows)
        return rows

    def _estimate(self, plan: LogicalPlan) -> float:
        if isinstance(plan, LogicalScan):
            stored = self.catalog.stored_table(plan.database, plan.table)
            return float(stored.stats.row_count)
        if isinstance(plan, LogicalFilter):
            child_rows = self.estimate_rows(plan.child)
            return child_rows * self.selectivity(plan.child, plan.predicate)
        if isinstance(plan, LogicalProject):
            return self.estimate_rows(plan.child)
        if isinstance(plan, LogicalJoin):
            left_rows = self.estimate_rows(plan.left)
            right_rows = self.estimate_rows(plan.right)
            rows = left_rows * right_rows
            conjuncts = split_conjuncts(plan.condition)
            consumed = self._foreign_key_groups(conjuncts)
            for fk_selectivity in consumed.values():
                rows *= fk_selectivity
            consumed_ids = set()
            for group in consumed:
                consumed_ids.update(group)
            for i, conjunct in enumerate(conjuncts):
                if i in consumed_ids:
                    continue
                rows *= self._join_conjunct_selectivity(plan, conjunct)
            return rows
        if isinstance(plan, LogicalAggregate):
            child_rows = self.estimate_rows(plan.child)
            if not plan.group_keys:
                return 1.0
            groups = 1.0
            for key in plan.group_keys:
                groups *= self.distinct_count(plan.child, key)
            return min(child_rows, groups)
        if isinstance(plan, LogicalUnion):
            return sum(self.estimate_rows(c) for c in plan.inputs)
        if isinstance(plan, LogicalSort):
            rows = self.estimate_rows(plan.child)
            if plan.limit is not None:
                rows = min(rows, float(plan.limit))
            return rows
        raise TypeError(f"unknown logical operator {type(plan).__name__}")

    def _foreign_key_groups(
        self, conjuncts: list[Expression]
    ) -> dict[tuple[int, ...], float]:
        """Detect conjunct groups that together form a foreign-key join.

        Treating composite-key equi-conjuncts as independent predicates
        underestimates join outputs by orders of magnitude (the classic
        correlated-columns trap) — e.g. ``lineitem ⋈ partsupp`` on
        ``(partkey, suppkey)``.  When the equi pairs cover a declared FK of
        one side referencing another table, the whole group's selectivity
        is ``1 / |referenced table|`` so the output is roughly the FK
        side's cardinality.
        """
        pairs: dict[tuple[str, str, str, str], int] = {}
        tables: set[tuple[str, str]] = set()
        for i, conjunct in enumerate(conjuncts):
            if not (
                isinstance(conjunct, Comparison)
                and conjunct.op == ComparisonOp.EQ
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                continue
            lb, rb = conjunct.left.base, conjunct.right.base
            if lb is None or rb is None:
                continue
            pairs[(lb.table, lb.column, rb.table, rb.column)] = i
            pairs[(rb.table, rb.column, lb.table, lb.column)] = i
            tables.add((lb.database, lb.table))
            tables.add((rb.database, rb.table))
        if not pairs:
            return {}
        groups: dict[tuple[int, ...], float] = {}
        for database, table in tables:
            try:
                stored = self.catalog.stored_table(database, table)
            except Exception:
                continue
            for fk in stored.schema.foreign_keys:
                indices = []
                for col, ref_col in zip(fk.columns, fk.ref_columns):
                    index = pairs.get((table, col, fk.ref_table, ref_col))
                    if index is None:
                        break
                    indices.append(index)
                else:
                    try:
                        ref = self.catalog.table(fk.ref_table)
                    except Exception:
                        continue
                    ref_rows = max(1, ref.total_rows)
                    groups[tuple(sorted(indices))] = 1.0 / ref_rows
        # Drop overlapping groups (keep the first), so no conjunct's
        # selectivity is applied twice.
        accepted: dict[tuple[int, ...], float] = {}
        used: set[int] = set()
        for indices, selectivity in sorted(groups.items()):
            if used & set(indices):
                continue
            used.update(indices)
            accepted[indices] = selectivity
        return accepted

    def _join_conjunct_selectivity(
        self, join: LogicalJoin, conjunct: Expression
    ) -> float:
        if isinstance(conjunct, Comparison) and conjunct.op == ComparisonOp.EQ:
            left, right = conjunct.left, conjunct.right
            if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
                ndv_l = self._ndv_or_none(join.left, left) or self._ndv_or_none(
                    join.right, left
                )
                ndv_r = self._ndv_or_none(join.left, right) or self._ndv_or_none(
                    join.right, right
                )
                candidates = [n for n in (ndv_l, ndv_r) if n]
                if candidates:
                    return 1.0 / max(candidates)
                return EQUALITY_FALLBACK
        return self.selectivity(join, conjunct)

    # -- operator cost (local execution, phase 1) ----------------------------

    def operator_cost(
        self, plan: LogicalPlan, child_rows: tuple[float, ...], output_rows: float
    ) -> float:
        """Local execution cost of the root operator of ``plan`` given its
        children's cardinalities (children's own costs excluded)."""
        w = self.weights
        if isinstance(plan, LogicalScan):
            return w.scan * output_rows
        if isinstance(plan, LogicalFilter):
            return w.filter * child_rows[0]
        if isinstance(plan, LogicalProject):
            return w.project * child_rows[0]
        if isinstance(plan, LogicalJoin):
            has_equi = any(
                isinstance(c, Comparison)
                and c.op == ComparisonOp.EQ
                and isinstance(c.left, ColumnRef)
                and isinstance(c.right, ColumnRef)
                for c in split_conjuncts(plan.condition)
            )
            left_rows, right_rows = child_rows
            if has_equi:
                return (
                    w.hash_build * left_rows
                    + w.hash_probe * right_rows
                    + w.join_output * output_rows
                )
            return w.nested_loop * left_rows * right_rows + w.join_output * output_rows
        if isinstance(plan, LogicalAggregate):
            return w.aggregate_input * child_rows[0] + w.aggregate_output * output_rows
        if isinstance(plan, LogicalUnion):
            return w.union * sum(child_rows)
        if isinstance(plan, LogicalSort):
            rows = child_rows[0]
            return w.sort * rows
        raise TypeError(f"unknown logical operator {type(plan).__name__}")
