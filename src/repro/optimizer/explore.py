"""Memo exploration: apply transformation rules to saturation.

The loop repeatedly applies rules until a full pass adds nothing new (the
memo deduplicates, so re-derivations are free) or the expression budget is
exhausted.  Running to fixpoint rather than a single pass matters because
multi-level rules (join associativity, aggregate-join transpose) inspect
child groups that later rule firings may still grow.

To keep the fixpoint cheap, each (rule, expression) pair records a
snapshot of its child groups' sizes at its last firing and is skipped
while those sizes are unchanged: single-level rules fire exactly once per
expression, and multi-level rules re-fire only when a child group gained
alternatives.
"""

from __future__ import annotations

from dataclasses import dataclass

from .memo import Memo, MExpr
from .rules.base import TransformationRule


@dataclass
class ExploreStats:
    passes: int = 0
    rule_firings: int = 0
    expressions_added: int = 0
    budget_exhausted: bool = False


def _snapshot(memo: Memo, mexpr: MExpr) -> tuple[int, ...]:
    return tuple(len(memo.group(g).exprs) for g in mexpr.child_groups)


def explore(memo: Memo, rules: list[TransformationRule]) -> ExploreStats:
    """Explore ``memo`` in place with ``rules`` until fixpoint."""
    stats = ExploreStats()
    fired: dict[tuple[int, int], tuple[int, ...]] = {}
    changed = True
    while changed and not memo.budget_exhausted:
        changed = False
        stats.passes += 1
        for group in list(memo.groups):
            for mexpr in list(group.exprs):
                snapshot = _snapshot(memo, mexpr)
                for rule_index, rule in enumerate(rules):
                    key = (rule_index, id(mexpr))
                    if fired.get(key) == snapshot:
                        continue
                    fired[key] = snapshot
                    stats.rule_firings += 1
                    for new_plan in rule.apply(mexpr, memo):
                        added = memo.add_expression(group.group_id, new_plan)
                        if added is not None:
                            stats.expressions_added += 1
                            changed = True
                    if memo.budget_exhausted:
                        break
                if memo.budget_exhausted:
                    break
            if memo.budget_exhausted:
                break
    stats.budget_exhausted = memo.budget_exhausted
    return stats
