"""The compliance-based query optimizer facade (paper Figure 2).

Wires the whole pipeline together: SQL → bind → normalize → plan
annotator (phase 1, Volcano search with trait annotation) → site selector
(phase 2, Algorithm 2) → located physical plan with SHIP operators — or a
:class:`~repro.errors.NonCompliantQueryError` rejection when no compliant
plan exists in the explored space.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass

from ..catalog import Catalog
from ..errors import NonCompliantQueryError
from ..geo import NetworkModel, synthetic_network
from ..plan import LogicalPlan, LogicalSort, PhysicalPlan, Sort
from ..policy import PolicyCatalog, PolicyEvaluator
from ..sql import Binder
from ..trace import current_recorder
from .annotator import AnnotateResult, PlanAnnotator, default_rules
from .cost import CostModel
from .normalize import normalize
from .plancache import PlanCache
from .site_selector import SiteSelection, SiteSelector
from .validator import check_compliance


@dataclass
class OptimizationResult:
    """Everything the benchmark harness needs about one optimization run."""

    plan: PhysicalPlan
    normalized: LogicalPlan
    annotate: AnnotateResult
    selection: SiteSelection
    phase1_seconds: float
    phase2_seconds: float
    rejected: bool = False
    #: True when the plan was served from the plan cache (both optimizer
    #: phases skipped; ``normalized``/``annotate``/``selection`` are the
    #: cached template's, ``plan`` is the rebound copy).
    cache_hit: bool = False
    #: True when the plan (or the template it was rebound from) already
    #: passed the independent compliance validator.
    compliance_validated: bool = False
    #: The evaluator that validated it — executors only skip their own
    #: guard when it is the *same* evaluator they would check with.
    validated_by: PolicyEvaluator | None = None
    #: The staleness bound the plan was optimized under (the optimizer's
    #: ``max_staleness``); recorded into the trace so the auditor judges
    #: each read against the *traced* bound.
    max_staleness: float | None = None

    @property
    def total_seconds(self) -> float:
        return self.phase1_seconds + self.phase2_seconds

    @property
    def estimated_shipping_cost(self) -> float:
        return self.selection.shipping_cost


class CompliantOptimizer:
    """Two-phase compliance-based optimizer (paper §6)."""

    def __init__(
        self,
        catalog: Catalog,
        policies: PolicyCatalog,
        network: NetworkModel | None = None,
        cost_model: CostModel | None = None,
        allow_cross_products: bool = False,
        max_expressions: int = 50_000,
        site_objective: str = "total",
        plan_cache: PlanCache | bool = False,
        max_staleness: float | None = None,
    ) -> None:
        self.catalog = catalog
        self.policies = policies
        self.network = network or synthetic_network(catalog.locations)
        self.cost_model = cost_model or CostModel(catalog)
        self.binder = Binder(catalog)
        self.evaluator = PolicyEvaluator(policies)
        #: Only replicas lagging at most this many seconds are considered
        #: (``None`` = any declared replica; the primary always qualifies).
        self.max_staleness = max_staleness
        self._annotator = PlanAnnotator(
            cost_model=self.cost_model,
            evaluator=self.evaluator,
            all_locations=frozenset(catalog.locations),
            rules=default_rules(allow_cross_products),
            max_expressions=max_expressions,
            catalog=catalog,
            max_staleness=max_staleness,
        )
        self._site_selector = SiteSelector(self.network, objective=site_objective)
        #: Optional compliant plan cache (see :mod:`.plancache`).  Off by
        #: default so optimization-time benchmarks measure the real
        #: optimizer; ``True`` builds one validated by this optimizer's
        #: evaluator, or pass a pre-built :class:`PlanCache` to share.
        if plan_cache is True:
            self.plan_cache: PlanCache | None = PlanCache(
                policies, evaluator=self.evaluator
            )
        elif isinstance(plan_cache, PlanCache):
            # NB: not `elif plan_cache:` — an *empty* cache is falsy.
            self.plan_cache = plan_cache
        else:
            self.plan_cache = None

    def optimize(
        self,
        query: str | LogicalPlan,
        result_location: str | None = None,
    ) -> OptimizationResult:
        """Optimize ``query`` (SQL text or a bound logical plan).

        Raises :class:`NonCompliantQueryError` when the query has no
        compliant plan in the explored space — the "reject" path of the
        paper's architecture.
        """
        plan = self.binder.bind_sql(query) if isinstance(query, str) else query

        prepared = None
        if self.plan_cache is not None:
            start = time.perf_counter()
            prepared = self.plan_cache.prepare(plan)
            entry = self.plan_cache.lookup(
                prepared, result_location, variant=self.max_staleness
            )
            if entry is not None:
                physical = self.plan_cache.rebind(entry, prepared)
                result = OptimizationResult(
                    plan=physical,
                    normalized=entry.normalized,
                    annotate=entry.annotate,
                    selection=entry.selection,
                    phase1_seconds=time.perf_counter() - start,
                    phase2_seconds=0.0,
                    cache_hit=True,
                    compliance_validated=entry.validated,
                    validated_by=self.evaluator if entry.validated else None,
                    max_staleness=self.max_staleness,
                )
                recorder = current_recorder()
                if recorder is not None:
                    recorder.record_optimization(result)
                return result

        core, sort = _strip_sort(plan)
        dependencies: set[int] = set()
        collect = (
            self.evaluator.collecting_dependencies(dependencies)
            if self.plan_cache is not None
            else nullcontext()
        )
        with collect:
            start = time.perf_counter()
            core = normalize(core)
            annotated = self._annotator.annotate(
                core, result_location=result_location, pre_normalized=True
            )
            phase1 = time.perf_counter() - start

            start = time.perf_counter()
            selection = self._site_selector.select(
                annotated.root, result_location=result_location
            )
            physical = selection.plan
            if sort is not None:
                physical = Sort(
                    fields=physical.fields,
                    location=physical.location,
                    estimated_rows=physical.estimated_rows,
                    child=physical,
                    sort_keys=sort.sort_keys,
                    limit=sort.limit,
                )
            phase2 = time.perf_counter() - start

            entry = None
            if self.plan_cache is not None and prepared is not None:
                # Store-time validation also runs inside the dependency
                # scope, so the validator's own policy reads land in the
                # entry's read set.
                entry = self.plan_cache.store(
                    prepared,
                    result_location,
                    plan=physical,
                    normalized=core,
                    annotate=annotated,
                    selection=selection,
                    dependencies=dependencies,
                    variant=self.max_staleness,
                )

        result = OptimizationResult(
            plan=physical,
            normalized=core,
            annotate=annotated,
            selection=selection,
            phase1_seconds=phase1,
            phase2_seconds=phase2,
            compliance_validated=entry.validated if entry is not None else False,
            validated_by=(
                self.evaluator if entry is not None and entry.validated else None
            ),
            max_staleness=self.max_staleness,
        )
        recorder = current_recorder()
        if recorder is not None:
            recorder.record_optimization(result)
        return result

    def is_legal(self, query: str | LogicalPlan) -> bool:
        """Does the query have at least one compliant plan in the explored
        space?  (Sound; a ``False`` can be a false rejection, §6.4.)"""
        try:
            self.optimize(query)
            return True
        except NonCompliantQueryError:
            return False

    def validate(self, plan: PhysicalPlan):
        """Re-check a produced plan against Definition 1 (defense in
        depth; Theorem 1 says this never finds a violation)."""
        return check_compliance(plan, self.evaluator)


def _strip_sort(plan: LogicalPlan) -> tuple[LogicalPlan, LogicalSort | None]:
    """Sorting/limit is a presentation concern handled outside the memo."""
    if isinstance(plan, LogicalSort):
        return plan.child, plan
    return plan, None
