"""The compliance-based query optimizer facade (paper Figure 2).

Wires the whole pipeline together: SQL → bind → normalize → plan
annotator (phase 1, Volcano search with trait annotation) → site selector
(phase 2, Algorithm 2) → located physical plan with SHIP operators — or a
:class:`~repro.errors.NonCompliantQueryError` rejection when no compliant
plan exists in the explored space.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..catalog import Catalog
from ..errors import NonCompliantQueryError
from ..geo import NetworkModel, synthetic_network
from ..plan import LogicalPlan, LogicalSort, PhysicalPlan, Sort
from ..policy import PolicyCatalog, PolicyEvaluator
from ..sql import Binder
from ..trace import current_recorder
from .annotator import AnnotateResult, PlanAnnotator, default_rules
from .cost import CostModel
from .normalize import normalize
from .site_selector import SiteSelection, SiteSelector
from .validator import check_compliance


@dataclass
class OptimizationResult:
    """Everything the benchmark harness needs about one optimization run."""

    plan: PhysicalPlan
    normalized: LogicalPlan
    annotate: AnnotateResult
    selection: SiteSelection
    phase1_seconds: float
    phase2_seconds: float
    rejected: bool = False

    @property
    def total_seconds(self) -> float:
        return self.phase1_seconds + self.phase2_seconds

    @property
    def estimated_shipping_cost(self) -> float:
        return self.selection.shipping_cost


class CompliantOptimizer:
    """Two-phase compliance-based optimizer (paper §6)."""

    def __init__(
        self,
        catalog: Catalog,
        policies: PolicyCatalog,
        network: NetworkModel | None = None,
        cost_model: CostModel | None = None,
        allow_cross_products: bool = False,
        max_expressions: int = 50_000,
        site_objective: str = "total",
    ) -> None:
        self.catalog = catalog
        self.policies = policies
        self.network = network or synthetic_network(catalog.locations)
        self.cost_model = cost_model or CostModel(catalog)
        self.binder = Binder(catalog)
        self.evaluator = PolicyEvaluator(policies)
        self._annotator = PlanAnnotator(
            cost_model=self.cost_model,
            evaluator=self.evaluator,
            all_locations=frozenset(catalog.locations),
            rules=default_rules(allow_cross_products),
            max_expressions=max_expressions,
        )
        self._site_selector = SiteSelector(self.network, objective=site_objective)

    def optimize(
        self,
        query: str | LogicalPlan,
        result_location: str | None = None,
    ) -> OptimizationResult:
        """Optimize ``query`` (SQL text or a bound logical plan).

        Raises :class:`NonCompliantQueryError` when the query has no
        compliant plan in the explored space — the "reject" path of the
        paper's architecture.
        """
        plan = self.binder.bind_sql(query) if isinstance(query, str) else query
        core, sort = _strip_sort(plan)

        start = time.perf_counter()
        core = normalize(core)
        annotated = self._annotator.annotate(
            core, result_location=result_location, pre_normalized=True
        )
        phase1 = time.perf_counter() - start

        start = time.perf_counter()
        selection = self._site_selector.select(
            annotated.root, result_location=result_location
        )
        physical = selection.plan
        if sort is not None:
            physical = Sort(
                fields=physical.fields,
                location=physical.location,
                estimated_rows=physical.estimated_rows,
                child=physical,
                sort_keys=sort.sort_keys,
                limit=sort.limit,
            )
        phase2 = time.perf_counter() - start

        result = OptimizationResult(
            plan=physical,
            normalized=core,
            annotate=annotated,
            selection=selection,
            phase1_seconds=phase1,
            phase2_seconds=phase2,
        )
        recorder = current_recorder()
        if recorder is not None:
            recorder.record_optimization(result)
        return result

    def is_legal(self, query: str | LogicalPlan) -> bool:
        """Does the query have at least one compliant plan in the explored
        space?  (Sound; a ``False`` can be a false rejection, §6.4.)"""
        try:
            self.optimize(query)
            return True
        except NonCompliantQueryError:
            return False

    def validate(self, plan: PhysicalPlan):
        """Re-check a produced plan against Definition 1 (defense in
        depth; Theorem 1 says this never finds a violation)."""
        return check_compliance(plan, self.evaluator)


def _strip_sort(plan: LogicalPlan) -> tuple[LogicalPlan, LogicalSort | None]:
    """Sorting/limit is a presentation concern handled outside the memo."""
    if isinstance(plan, LogicalSort):
        return plan.child, plan
    return plan, None
