"""Traditional (compliance-unaware) two-phase optimizer — the baseline.

Phase 1 is the plain Volcano cost-based search (the paper uses "Calcite's
cost-based optimizer as-is"); phase 2 is the same site-selector dynamic
program but *considering all locations legal* for every operator.  The
resulting plan minimizes cost with no regard for dataflow policies; the
benchmark harness then labels it compliant (C) or non-compliant (NC) via
the independent validator — reproducing Fig. 5(a)/6(a).
"""

from __future__ import annotations

import time

from ..catalog import Catalog
from ..geo import NetworkModel, synthetic_network
from ..plan import LogicalPlan, PhysicalPlan, Sort
from ..policy import PolicyCatalog, PolicyEvaluator
from ..sql import Binder
from .annotator import PlanAnnotator, default_rules
from .compliant import OptimizationResult, _strip_sort
from .cost import CostModel
from .normalize import normalize
from .site_selector import SiteSelector
from .validator import check_compliance


class TraditionalOptimizer:
    """Cost-only two-phase distributed optimizer (no policy awareness)."""

    def __init__(
        self,
        catalog: Catalog,
        network: NetworkModel | None = None,
        cost_model: CostModel | None = None,
        allow_cross_products: bool = False,
        max_expressions: int = 50_000,
        site_objective: str = "total",
    ) -> None:
        self.catalog = catalog
        self.network = network or synthetic_network(catalog.locations)
        self.cost_model = cost_model or CostModel(catalog)
        self.binder = Binder(catalog)
        self._annotator = PlanAnnotator(
            cost_model=self.cost_model,
            evaluator=None,  # traditional: no annotation rules
            all_locations=frozenset(catalog.locations),
            rules=default_rules(allow_cross_products),
            max_expressions=max_expressions,
            catalog=catalog,  # replicas: baseline reads any declared copy
        )
        self._site_selector = SiteSelector(self.network, objective=site_objective)

    def optimize(
        self,
        query: str | LogicalPlan,
        result_location: str | None = None,
    ) -> OptimizationResult:
        plan = self.binder.bind_sql(query) if isinstance(query, str) else query
        core, sort = _strip_sort(plan)

        start = time.perf_counter()
        core = normalize(core)
        annotated = self._annotator.annotate(
            core, result_location=result_location, pre_normalized=True
        )
        phase1 = time.perf_counter() - start

        start = time.perf_counter()
        selection = self._site_selector.select(
            annotated.root, result_location=result_location
        )
        physical: PhysicalPlan = selection.plan
        if sort is not None:
            physical = Sort(
                fields=physical.fields,
                location=physical.location,
                estimated_rows=physical.estimated_rows,
                child=physical,
                sort_keys=sort.sort_keys,
                limit=sort.limit,
            )
        phase2 = time.perf_counter() - start

        return OptimizationResult(
            plan=physical,
            normalized=core,
            annotate=annotated,
            selection=selection,
            phase1_seconds=phase1,
            phase2_seconds=phase2,
        )

    def is_plan_compliant(self, plan: PhysicalPlan, policies: PolicyCatalog) -> bool:
        """Label a traditional plan C/NC for the effectiveness experiments."""
        return not check_compliance(plan, PolicyEvaluator(policies))
