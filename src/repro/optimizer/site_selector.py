"""Site selector — optimization phase 2 (paper §6.3, Algorithm 2).

Given the annotated plan (each node carries its execution trait ℰ), pick
one location per operator minimizing total data-shipping cost under the
message cost model ``ShipCost(n, l', l) = α_{l'l} + β_{l'l} · bytes(n)``.
The selection is a memoized recursion over ``(node, location)`` pairs —
the dynamic program of Algorithm 2 — followed by materialization into a
physical plan with SHIP operators on every location-changing edge.

Implementation rules (logical → physical operators) are applied during
materialization: joins with at least one column=column equality conjunct
become hash joins (remaining conjuncts as residual predicate), other
joins become nested-loop joins; aggregation becomes hash aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NonCompliantQueryError, OptimizerError
from ..expr import ColumnRef, Comparison, ComparisonOp, conjunction, split_conjuncts
from ..geo import NetworkModel
from ..plan import (
    Filter,
    HashAggregate,
    HashJoin,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
    NestedLoopJoin,
    PhysicalPlan,
    Project,
    Ship,
    Sort,
    TableScan,
    UnionAll,
)
from .annotator import AnnotatedNode


@dataclass
class SiteSelection:
    plan: PhysicalPlan
    shipping_cost: float
    locations_considered: int


class SiteSelector:
    """Places annotated operators at locations via dynamic programming.

    ``objective`` selects the cost the DP minimizes (the paper's §3.3
    notes the method generalizes to other cost models):

    * ``"total"`` (default, the paper's message cost model) — the *sum*
      of all transfer times;
    * ``"response_time"`` — the critical-path transfer time: children
      transfer in parallel, so a node's cost is the *maximum* over its
      children's (ship + own) costs.
    """

    def __init__(self, network: NetworkModel, objective: str = "total") -> None:
        if objective not in ("total", "response_time"):
            raise ValueError(f"unknown site-selection objective {objective!r}")
        self.network = network
        self.objective = objective

    def select(
        self,
        root: AnnotatedNode,
        result_location: str | None = None,
    ) -> SiteSelection:
        cost_table: dict[tuple[int, str], float] = {}
        choice_table: dict[tuple[int, str], tuple[str, ...]] = {}
        considered = 0

        def ship_cost(child: AnnotatedNode, src: str, dst: str) -> float:
            if src == dst:
                return 0.0
            nbytes = child.rows * child.row_width
            return self.network.transfer_time(src, dst, nbytes)

        def cost_of(node: AnnotatedNode, location: str) -> float:
            nonlocal considered
            key = (id(node), location)
            cached = cost_table.get(key)
            if cached is not None:
                return cached
            considered += 1
            total = 0.0
            chosen: list[str] = []
            for child in node.children:
                best_cost = float("inf")
                best_location: str | None = None
                for child_location in sorted(child.execution_trait):
                    candidate = ship_cost(child, child_location, location) + cost_of(
                        child, child_location
                    )
                    if candidate < best_cost:
                        best_cost = candidate
                        best_location = child_location
                if best_location is None:
                    raise OptimizerError(
                        "annotated child has an empty execution trait"
                    )
                if self.objective == "response_time":
                    total = max(total, best_cost)
                else:
                    total += best_cost
                chosen.append(best_location)
            cost_table[key] = total
            choice_table[key] = tuple(chosen)
            return total

        root_candidates = sorted(root.execution_trait)
        if not root_candidates:
            raise NonCompliantQueryError("root operator has no legal location")
        best_root: str | None = None
        best_total = float("inf")
        for location in root_candidates:
            total = cost_of(root, location)
            if result_location is not None:
                total += ship_cost(root, location, result_location)
            if total < best_total:
                best_total = total
                best_root = location
        assert best_root is not None
        if result_location is not None and best_root != result_location:
            if result_location not in root.shipping_trait:
                raise NonCompliantQueryError(
                    f"query result may not be shipped to {result_location!r}"
                )

        plan = self._materialize(root, best_root, choice_table)
        if result_location is not None and plan.location != result_location:
            plan = Ship(
                fields=plan.fields,
                location=result_location,
                estimated_rows=plan.estimated_rows,
                child=plan,
                source=plan.location,
                target=result_location,
            )
        return SiteSelection(
            plan=plan, shipping_cost=best_total, locations_considered=considered
        )

    # -- materialization -------------------------------------------------------

    def _materialize(
        self,
        node: AnnotatedNode,
        location: str,
        choices: dict[tuple[int, str], tuple[str, ...]],
    ) -> PhysicalPlan:
        child_locations = choices.get((id(node), location), ())
        children: list[PhysicalPlan] = []
        for child, child_location in zip(node.children, child_locations):
            physical = self._materialize(child, child_location, choices)
            if child_location != location:
                physical = Ship(
                    fields=physical.fields,
                    location=location,
                    estimated_rows=physical.estimated_rows,
                    child=physical,
                    source=child_location,
                    target=location,
                )
            children.append(physical)
        return _to_physical(node, location, tuple(children))


def _to_physical(
    node: AnnotatedNode, location: str, children: tuple[PhysicalPlan, ...]
) -> PhysicalPlan:
    op = node.op
    fields = op.fields
    rows = node.rows
    if isinstance(op, LogicalScan):
        return TableScan(
            fields=fields,
            location=location,
            estimated_rows=rows,
            execution_trait=node.execution_trait,
            table=op.table,
            database=op.database,
            alias=op.alias,
        )
    if isinstance(op, LogicalFilter):
        return Filter(
            fields=fields,
            location=location,
            estimated_rows=rows,
            execution_trait=node.execution_trait,
            child=children[0],
            predicate=op.predicate,
        )
    if isinstance(op, LogicalProject):
        return Project(
            fields=fields,
            location=location,
            estimated_rows=rows,
            execution_trait=node.execution_trait,
            child=children[0],
            exprs=op.exprs,
            names=op.names,
        )
    if isinstance(op, LogicalJoin):
        left_names = set(children[0].field_names)
        left_keys: list[ColumnRef] = []
        right_keys: list[ColumnRef] = []
        residual = []
        for conjunct in split_conjuncts(op.condition):
            pair = _equi_pair(conjunct, left_names)
            if pair is not None:
                left_keys.append(pair[0])
                right_keys.append(pair[1])
            else:
                residual.append(conjunct)
        if left_keys:
            return HashJoin(
                fields=fields,
                location=location,
                estimated_rows=rows,
                execution_trait=node.execution_trait,
                left=children[0],
                right=children[1],
                left_keys=tuple(left_keys),
                right_keys=tuple(right_keys),
                residual=conjunction(residual) if residual else None,
            )
        return NestedLoopJoin(
            fields=fields,
            location=location,
            estimated_rows=rows,
            execution_trait=node.execution_trait,
            left=children[0],
            right=children[1],
            condition=op.condition,
        )
    if isinstance(op, LogicalAggregate):
        return HashAggregate(
            fields=fields,
            location=location,
            estimated_rows=rows,
            execution_trait=node.execution_trait,
            child=children[0],
            group_keys=op.group_keys,
            aggregates=op.aggregates,
            agg_names=op.agg_names,
        )
    if isinstance(op, LogicalUnion):
        return UnionAll(
            fields=fields,
            location=location,
            estimated_rows=rows,
            execution_trait=node.execution_trait,
            inputs=children,
        )
    if isinstance(op, LogicalSort):
        return Sort(
            fields=fields,
            location=location,
            estimated_rows=rows,
            execution_trait=node.execution_trait,
            child=children[0],
            sort_keys=op.sort_keys,
            limit=op.limit,
        )
    raise OptimizerError(f"cannot materialize operator {type(op).__name__}")


def _equi_pair(conjunct, left_names: set[str]):
    """Return (left_key, right_key) when ``conjunct`` is an equality between
    a column of each join side."""
    if not isinstance(conjunct, Comparison) or conjunct.op != ComparisonOp.EQ:
        return None
    a, b = conjunct.left, conjunct.right
    if not isinstance(a, ColumnRef) or not isinstance(b, ColumnRef):
        return None
    if a.name in left_names and b.name not in left_names:
        return (a, b)
    if b.name in left_names and a.name not in left_names:
        return (b, a)
    return None
