"""Compliance-based query optimizer (paper section 6)."""

from .cost import CostModel, CostWeights
from .normalize import normalize, prune_columns, push_predicates, simplify_projects
from .memo import Group, GroupRef, Memo, MExpr
from .explore import ExploreStats, explore
from .traits import TraitGrants
from .annotator import (
    AnnotatedNode,
    AnnotateResult,
    PlanAnnotator,
    TraitEntry,
    default_rules,
)
from .plancache import (
    CacheEntry,
    PlanCache,
    PlanCacheStats,
    PreparedQuery,
    prepare_query,
)
from .site_selector import SiteSelection, SiteSelector
from .validator import (
    Violation,
    check_compliance,
    check_compliance_strict,
    check_recovery_placement,
    is_compliant,
    to_logical,
)
from .compliant import CompliantOptimizer, OptimizationResult
from .traditional import TraditionalOptimizer

__all__ = [
    "CostModel",
    "CostWeights",
    "normalize",
    "prune_columns",
    "push_predicates",
    "simplify_projects",
    "Group",
    "GroupRef",
    "Memo",
    "MExpr",
    "ExploreStats",
    "explore",
    "TraitGrants",
    "AnnotatedNode",
    "AnnotateResult",
    "PlanAnnotator",
    "TraitEntry",
    "default_rules",
    "CacheEntry",
    "PlanCache",
    "PlanCacheStats",
    "PreparedQuery",
    "prepare_query",
    "SiteSelection",
    "SiteSelector",
    "Violation",
    "check_compliance",
    "check_compliance_strict",
    "check_recovery_placement",
    "is_compliant",
    "to_logical",
    "CompliantOptimizer",
    "OptimizationResult",
    "TraditionalOptimizer",
]
