"""Execution and shipping traits (paper §6.1).

An *execution trait* ℰ_n is the set of locations where operator node *n*
can legally execute; a *shipping trait* 𝒮_n is the set of locations its
output can legally be shipped to.  The four annotation rules:

* **AR1** — a tablescan's execution trait is its table's source location.
* **AR2** — a node can execute wherever *all* of its inputs may legally be
  shipped: ``ℰ_n = ⋂_{c ∈ in(n)} 𝒮_c``.
* **AR3** — output can always be shipped where the node can execute:
  ``𝒮_n ⊇ ℰ_n``.
* **AR4** — for a subplan that is a *local query* over a single database
  ``D``, the policy evaluation 𝒜(Q_n, D, P_D) contributes to 𝒮_n.

AR4 is a property of the subquery's *semantics*, so it is computed once
per memo group (all alternatives in a group produce the same result) and
cached.  AR1–AR3 depend on the concrete alternative and are applied
during extraction (:mod:`repro.optimizer.annotator`).
"""

from __future__ import annotations

from ..plan import LogicalUnion
from ..policy import PolicyEvaluator, describe_local_query
from .memo import Group


class TraitGrants:
    """Computes and caches the AR4 shipping-trait contribution per group."""

    def __init__(self, evaluator: PolicyEvaluator) -> None:
        self.evaluator = evaluator
        self._cache: dict[int, frozenset[str]] = {}

    def shipping_grant(self, group: Group) -> frozenset[str]:
        """Locations 𝒜 grants to this group's output (∅ for non-local
        subplans — cross-database subqueries get shipping traits only via
        AR3)."""
        cached = self._cache.get(group.group_id)
        if cached is not None:
            return cached
        grant = frozenset()
        representative = group.representative
        assert representative is not None
        if len(representative.source_databases) == 1 and not any(
            isinstance(node, LogicalUnion) for node in representative.walk()
        ):
            local_query = describe_local_query(representative)
            grant = self.evaluator.evaluate(local_query)
        self._cache[group.group_id] = grant
        return grant
