"""Volcano/Cascades-style memo: groups of equivalent expressions.

A *group* stores all logically-equivalent alternatives discovered for one
subquery.  A *memo expression* (mexpr) is an operator whose children are
:class:`GroupRef` placeholders pointing at child groups.  Transformation
rules add new mexprs to existing groups; the memo deduplicates by
``(operator key, child group ids)``.

Every group keeps a *representative* full logical plan (built from the
expression that created it) used for group-level semantic properties:
cardinality estimates, source databases, and — central to this paper —
the policy evaluation 𝒜 of annotation rule AR4, which is identical for
all members of a group because they compute the same result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator

from ..plan import Field, LogicalPlan


@dataclass(frozen=True, eq=False)
class GroupRef(LogicalPlan):
    """Placeholder child inside a memo expression.

    Identity (equality/hash) is the group id alone — the fields and
    database set are derived attributes, and hashing them on every memo
    lookup dominates exploration time otherwise.
    """

    group_id: int
    ref_fields: tuple[Field, ...]
    databases: frozenset[str]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GroupRef) and other.group_id == self.group_id

    def __hash__(self) -> int:
        return hash(("groupref", self.group_id))

    def children(self) -> tuple[LogicalPlan, ...]:
        return ()

    def with_children(self, children: tuple[LogicalPlan, ...]) -> LogicalPlan:
        return self

    def op_key(self) -> Hashable:
        return ("groupref", self.group_id)

    @property
    def fields(self) -> tuple[Field, ...]:
        return self.ref_fields

    @property
    def source_databases(self) -> frozenset[str]:
        return self.databases

    def __str__(self) -> str:
        return f"Group#{self.group_id}"


@dataclass
class MExpr:
    """One memo expression: a shallow operator over child groups."""

    plan: LogicalPlan  # children are GroupRefs
    group_id: int
    _child_groups: tuple[int, ...] | None = None

    @property
    def child_groups(self) -> tuple[int, ...]:
        if self._child_groups is None:
            self._child_groups = tuple(
                c.group_id for c in self.plan.children() if isinstance(c, GroupRef)
            )
        return self._child_groups

    def key(self) -> Hashable:
        return (self.plan.op_key(), self.child_groups)


@dataclass
class Group:
    """A set of equivalent memo expressions."""

    group_id: int
    exprs: list[MExpr] = field(default_factory=list)
    #: Representative full logical plan (for semantics-level properties).
    representative: LogicalPlan | None = None
    #: Cached derived attributes (filled on first access).
    _fields: tuple[Field, ...] | None = None
    _databases: frozenset[str] | None = None
    _ref: "GroupRef | None" = None

    @property
    def fields(self) -> tuple[Field, ...]:
        if self._fields is None:
            assert self.representative is not None
            self._fields = self.representative.fields
        return self._fields

    @property
    def source_databases(self) -> frozenset[str]:
        if self._databases is None:
            assert self.representative is not None
            self._databases = self.representative.source_databases
        return self._databases


class Memo:
    """The expression memo shared by exploration and extraction."""

    def __init__(self, max_expressions: int = 50_000) -> None:
        self.groups: list[Group] = []
        self._index: dict[Hashable, int] = {}  # mexpr key -> group id
        self.max_expressions = max_expressions
        self.expression_count = 0
        self.budget_exhausted = False

    def group(self, group_id: int) -> Group:
        return self.groups[group_id]

    def __iter__(self) -> Iterator[Group]:
        return iter(self.groups)

    # -- registration --------------------------------------------------------

    def register_plan(self, plan: LogicalPlan) -> int:
        """Recursively insert a full logical plan, returning the root group
        id.  Shared/equal subplans map onto the same groups.

        Newly created join groups are canonicalized (smaller child group id
        on the left) so the same semantic subjoin reached along different
        derivation paths lands in one group; JoinCommute re-adds the other
        orientation *inside* that group so the cost model can still pick
        the build side.
        """
        if isinstance(plan, GroupRef):
            return plan.group_id
        child_groups = tuple(self.register_plan(c) for c in plan.children())
        shallow = self._to_shallow(plan, child_groups)
        shallow = self._canonicalize(shallow)
        return self._insert(shallow, representative=self._expand_once(shallow))

    @staticmethod
    def _canonicalize(shallow: LogicalPlan) -> LogicalPlan:
        from ..plan import LogicalJoin

        if isinstance(shallow, LogicalJoin):
            left, right = shallow.left, shallow.right
            if (
                isinstance(left, GroupRef)
                and isinstance(right, GroupRef)
                and left.group_id > right.group_id
            ):
                return LogicalJoin(right, left, shallow.condition)
        return shallow

    def add_expression(self, group_id: int, shallow: LogicalPlan) -> MExpr | None:
        """Add a rule-produced shallow expression to ``group_id``.

        Children that are not yet GroupRefs are registered recursively as
        new (or existing) groups.  Returns the new mexpr, or ``None`` when
        it already existed or the budget is exhausted.
        """
        if self.budget_exhausted:
            return None
        shallow = self._internalize(shallow)
        key = (shallow.op_key(), tuple(
            c.group_id for c in shallow.children() if isinstance(c, GroupRef)
        ))
        existing = self._index.get(key)
        if existing is not None:
            # Already known — either in this group (a re-derivation) or in
            # a twin group discovered along another path.  Full Cascades
            # implementations merge twin groups; we simply skip the
            # duplicate, which is sound (both groups keep exploring).
            return None
        mexpr = MExpr(shallow, group_id)
        self._index[key] = group_id
        self.group(group_id).exprs.append(mexpr)
        self._bump()
        return mexpr

    def _internalize(self, plan: LogicalPlan) -> LogicalPlan:
        """Replace non-GroupRef children with refs to (new) groups."""
        new_children = []
        changed = False
        for child in plan.children():
            if isinstance(child, GroupRef):
                new_children.append(child)
            else:
                gid = self.register_plan(child)
                new_children.append(self.make_ref(gid))
                changed = True
        if not changed:
            return plan
        return plan.with_children(tuple(new_children))

    def _insert(self, shallow: LogicalPlan, representative: LogicalPlan) -> int:
        key = (shallow.op_key(), tuple(
            c.group_id for c in shallow.children() if isinstance(c, GroupRef)
        ))
        existing = self._index.get(key)
        if existing is not None:
            return existing
        group = Group(group_id=len(self.groups), representative=representative)
        self.groups.append(group)
        mexpr = MExpr(shallow, group.group_id)
        group.exprs.append(mexpr)
        self._index[key] = group.group_id
        self._bump()
        return group.group_id

    def _bump(self) -> None:
        self.expression_count += 1
        if self.expression_count >= self.max_expressions:
            self.budget_exhausted = True

    # -- expansion helpers ----------------------------------------------------

    def make_ref(self, group_id: int) -> GroupRef:
        group = self.group(group_id)
        if group._ref is None:
            group._ref = GroupRef(
                group_id=group_id,
                ref_fields=group.fields,
                databases=group.source_databases,
            )
        return group._ref

    def _to_shallow(self, plan: LogicalPlan, child_groups: tuple[int, ...]) -> LogicalPlan:
        refs = tuple(self.make_ref(g) for g in child_groups)
        return plan.with_children(refs) if refs else plan

    def _expand_once(self, shallow: LogicalPlan) -> LogicalPlan:
        """Replace GroupRef children with their groups' representatives."""
        children = tuple(
            self.group(c.group_id).representative if isinstance(c, GroupRef) else c
            for c in shallow.children()
        )
        for child in children:
            assert child is not None
        return shallow.with_children(children) if children else shallow

    def expand(self, shallow: LogicalPlan) -> LogicalPlan:
        """Fully expand a shallow expression into a plan of representatives
        (recursively)."""
        return self._expand_once(shallow)

    # -- statistics ------------------------------------------------------------

    @property
    def group_count(self) -> int:
        return len(self.groups)
