"""Partial aggregation below UNION ALL (extension beyond the paper).

For GAV-fragmented tables (§7.5) a scan is a UNION ALL of per-database
fragment scans.  When a policy only allows *aggregated* fragment data to
leave its database, plans need the aggregation below the union — per
fragment, at the fragment's site — with a combining aggregation above:

.. code-block:: text

    Γ_{G; f(x)} (∪ᵢ Rᵢ)   →   Γ_{G; F(p)} (∪ᵢ Γ_{G; p = f(x)} (Rᵢ))

with combiner ``F``: SUM→SUM, COUNT→SUM, MIN→MIN, MAX→MAX (AVG is not
decomposed, mirroring the join-transpose rule).  Unlike the join case no
count rescaling is needed: UNION ALL only concatenates rows.

The paper itself does not enumerate this rule — its fragmented experiment
(§7.5) measures optimization time only — but it falls squarely under
"existing relational algebraic equivalence and query rewrite rules"
(§6.4) and extends compliance completeness to fragmented tables under
aggregate-only policies.
"""

from __future__ import annotations

import hashlib

from ...expr import AggregateCall, AggregateFunction, ColumnRef, expression_dtype
from ...plan import LogicalAggregate, LogicalPlan, LogicalUnion
from ..memo import GroupRef, Memo, MExpr
from .base import TransformationRule

_COMBINERS = {
    AggregateFunction.SUM: AggregateFunction.SUM,
    AggregateFunction.COUNT: AggregateFunction.SUM,
    AggregateFunction.MIN: AggregateFunction.MIN,
    AggregateFunction.MAX: AggregateFunction.MAX,
}


def _stable_suffix(token: str) -> str:
    return hashlib.md5(token.encode("utf-8")).hexdigest()[:10]


class AggregateUnionTranspose(TransformationRule):
    """Γ(∪ᵢ Rᵢ)  →  Γ_final(∪ᵢ Γ_partial(Rᵢ))."""

    name = "aggregate-union-transpose"

    def apply(self, mexpr: MExpr, memo: Memo) -> list[LogicalPlan]:
        plan = mexpr.plan
        if not isinstance(plan, LogicalAggregate):
            return []
        child = plan.child
        if not isinstance(child, GroupRef):
            return []
        if any(agg.func not in _COMBINERS for agg in plan.aggregates):
            return []
        results: list[LogicalPlan] = []
        for union_mexpr in list(memo.group(child.group_id).exprs):
            union = union_mexpr.plan
            if not isinstance(union, LogicalUnion):
                continue
            rewritten = self._push_below_union(plan, union, memo)
            if rewritten is not None:
                results.append(rewritten)
        return results

    def _push_below_union(
        self, aggregate: LogicalAggregate, union: LogicalUnion, memo: Memo
    ) -> LogicalPlan | None:
        branches = union.inputs
        if not all(isinstance(b, GroupRef) for b in branches):
            return None
        # Recursion guard: never stack partial aggregates on branches that
        # are already aggregate-rooted.
        for branch in branches:
            if any(
                isinstance(m.plan, LogicalAggregate)
                for m in memo.group(branch.group_id).exprs  # type: ignore[union-attr]
            ):
                return None
        branch_names = set(branches[0].field_names)
        for key in aggregate.group_keys:
            if key.name not in branch_names:
                return None
        for agg in aggregate.aggregates:
            if agg.argument is not None and not (
                set(agg.argument.references()) <= branch_names
            ):
                return None

        key_token = ",".join(sorted(k.name for k in aggregate.group_keys))
        partial_names = tuple(
            f"$u_{_stable_suffix(f'{agg}|{key_token}')}" for agg in aggregate.aggregates
        )
        partials = tuple(
            LogicalAggregate(
                branch, aggregate.group_keys, aggregate.aggregates, partial_names
            )
            for branch in branches
        )
        new_union = LogicalUnion(partials)
        outer_aggs = tuple(
            AggregateCall(
                _COMBINERS[agg.func],
                ColumnRef(name, expression_dtype(agg), None),
            )
            for agg, name in zip(aggregate.aggregates, partial_names)
        )
        return LogicalAggregate(
            new_union, aggregate.group_keys, outer_aggs, aggregate.agg_names
        )
