"""Join reordering rules: commutativity and associativity.

Together (run to fixpoint inside the memo) they enumerate all bushy join
trees over the query's join graph; a configuration flag suppresses
alternatives that introduce Cartesian products the original query did not
have — the standard plan-space heuristic, which is also what keeps the
TPC-H Q2/Q8 search spaces tractable.
"""

from __future__ import annotations

from ...expr import split_conjuncts
from ...plan import LogicalJoin, LogicalPlan
from ..memo import GroupRef, Memo, MExpr
from .base import TransformationRule, ordered_conjunction


class JoinCommute(TransformationRule):
    """A ⋈ B  →  B ⋈ A."""

    name = "join-commute"

    def apply(self, mexpr: MExpr, memo: Memo) -> list[LogicalPlan]:
        plan = mexpr.plan
        if not isinstance(plan, LogicalJoin):
            return []
        return [LogicalJoin(plan.right, plan.left, plan.condition)]


class JoinAssociate(TransformationRule):
    """(A ⋈ B) ⋈ C  →  A ⋈ (B ⋈ C), redistributing the predicate
    conjuncts between the inner and outer join."""

    name = "join-associate"

    def __init__(self, allow_cross_products: bool = False) -> None:
        self.allow_cross_products = allow_cross_products

    def apply(self, mexpr: MExpr, memo: Memo) -> list[LogicalPlan]:
        plan = mexpr.plan
        if not isinstance(plan, LogicalJoin):
            return []
        left = plan.left
        if not isinstance(left, GroupRef):
            return []
        results: list[LogicalPlan] = []
        right = plan.right
        outer_conjuncts = split_conjuncts(plan.condition)
        for inner_mexpr in list(memo.group(left.group_id).exprs):
            inner = inner_mexpr.plan
            if not isinstance(inner, LogicalJoin):
                continue
            a, b = inner.left, inner.right
            if not isinstance(a, GroupRef) or not isinstance(b, GroupRef):
                continue
            conjuncts = split_conjuncts(inner.condition) + outer_conjuncts
            bc_names = set(b.field_names) | set(right.field_names)
            new_inner: list = []
            new_outer: list = []
            for conjunct in conjuncts:
                if set(conjunct.references()) <= bc_names:
                    new_inner.append(conjunct)
                else:
                    new_outer.append(conjunct)
            if not self.allow_cross_products and (not new_inner or not new_outer):
                continue
            inner_join = LogicalJoin(b, right, ordered_conjunction(new_inner))
            outer_join = LogicalJoin(a, inner_join, ordered_conjunction(new_outer))
            results.append(outer_join)
        return results
