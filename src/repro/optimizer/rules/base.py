"""Transformation rule interface.

Rules receive a memo expression (an operator over :class:`GroupRef`
children) and return new shallow expressions equivalent to it; the
exploration loop adds them to the same group.  Rules may inspect child
groups through the memo (needed for multi-level patterns such as join
associativity).
"""

from __future__ import annotations

from ..memo import Memo, MExpr
from ...expr import Expression, conjunction
from ...plan import LogicalPlan


class TransformationRule:
    """Base class for algebraic equivalence rules."""

    #: Short name used in fired-rule bookkeeping and stats.
    name: str = "rule"

    def apply(self, mexpr: MExpr, memo: Memo) -> list[LogicalPlan]:
        raise NotImplementedError


def ordered_conjunction(conjuncts: list[Expression]) -> Expression | None:
    """Deterministically ordered conjunction: rules must canonicalize
    recombined join conditions so the memo can deduplicate expressions
    produced along different derivation paths."""
    if not conjuncts:
        return None
    ordered = sorted(conjuncts, key=str)
    return conjunction(ordered)
