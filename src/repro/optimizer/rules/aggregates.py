"""Eager aggregation: pushing partial aggregation below a join.

Section 6.4 of the paper points out that compliance *completeness* hinges
on this rule: without a transformation that pushes aggregation past a
join, the optimizer cannot discover the plan of Fig. 1(b) (aggregate
Supply data in Asia before shipping it to Europe) and would reject the
CarCo query even though a compliant plan exists.

The rewrite follows Yan & Larson's eager aggregation.  For
``Γ_{G; f1(x_R), f2(y_L)}(L ⋈_{l=r} R)`` pushing into side ``R``:

.. code-block:: text

    Γ_{G; F1(p1), f2'(y_L)} ( L ⋈_{l=r}
        Γ_{(G∩R) ∪ r; p1 = f1(x_R), pcnt = COUNT(*)} (R) )

* the partial aggregate groups ``R`` by its grouping columns plus the
  R-side join keys, so every original (L-row, R-row) pairing is preserved;
* pushed aggregates get a *combiner* on top: SUM→SUM, COUNT→SUM, MIN→MIN,
  MAX→MAX;
* duplicate-sensitive aggregates over the *other* side are rescaled by the
  partial group count: ``SUM(y_L) → SUM(y_L · pcnt)``,
  ``COUNT(*) → SUM(pcnt)``; MIN/MAX pass through unchanged.

The rule bails out (producing no alternative) when it cannot guarantee
semantics: AVG anywhere, ``COUNT(expr)`` on the unpushed side, aggregates
mixing both sides, or non-equi join conjuncts touching the pushed side.
"""

from __future__ import annotations

import hashlib

from ...datatypes import DataType
from ...expr import (
    AggregateCall,
    AggregateFunction,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expression,
    expression_dtype,
    split_conjuncts,
)
from ...plan import LogicalAggregate, LogicalJoin, LogicalPlan
from ..memo import GroupRef, Memo, MExpr
from .base import TransformationRule

_COMBINERS = {
    AggregateFunction.SUM: AggregateFunction.SUM,
    AggregateFunction.COUNT: AggregateFunction.SUM,
    AggregateFunction.MIN: AggregateFunction.MIN,
    AggregateFunction.MAX: AggregateFunction.MAX,
}

#: Aggregates whose value depends on input multiplicity.
_DUPLICATE_SENSITIVE = {AggregateFunction.SUM, AggregateFunction.COUNT}


def _stable_suffix(token: str) -> str:
    return hashlib.md5(token.encode("utf-8")).hexdigest()[:10]


class AggregateJoinTranspose(TransformationRule):
    """Γ(L ⋈ R)  →  Γ'(L ⋈ Γ_partial(R))  (and symmetrically for L)."""

    name = "aggregate-join-transpose"

    def apply(self, mexpr: MExpr, memo: Memo) -> list[LogicalPlan]:
        plan = mexpr.plan
        if not isinstance(plan, LogicalAggregate):
            return []
        child = plan.child
        if not isinstance(child, GroupRef):
            return []
        if any(agg.func not in _COMBINERS for agg in plan.aggregates):
            return []
        results: list[LogicalPlan] = []
        for join_mexpr in list(memo.group(child.group_id).exprs):
            join = join_mexpr.plan
            if not isinstance(join, LogicalJoin):
                continue
            for side in ("left", "right"):
                rewritten = self._push_into_side(plan, join, side, memo)
                if rewritten is not None:
                    results.append(rewritten)
        return results

    def _push_into_side(
        self, aggregate: LogicalAggregate, join: LogicalJoin, side: str, memo: Memo
    ) -> LogicalPlan | None:
        target = join.left if side == "left" else join.right
        other = join.right if side == "left" else join.left
        if not isinstance(target, GroupRef) or not isinstance(other, GroupRef):
            return None
        # Never push into a side that is already aggregate-rooted: stacking
        # partial aggregates on partial aggregates recurses forever and is
        # never profitable.
        if any(
            isinstance(m.plan, LogicalAggregate)
            for m in memo.group(target.group_id).exprs
        ):
            return None
        target_names = set(target.field_names)

        # Classify aggregates: pushed (args entirely on target side) vs
        # kept (args entirely on the other side, or COUNT(*)).
        pushed: list[AggregateCall] = []
        kept: list[AggregateCall] = []
        for agg in aggregate.aggregates:
            if agg.argument is None:  # COUNT(*): rescaled on the outer side
                kept.append(agg)
                continue
            refs = set(agg.argument.references())
            if refs <= target_names:
                pushed.append(agg)
            elif refs & target_names:
                return None  # argument mixes both sides
            else:
                if agg.func == AggregateFunction.COUNT:
                    return None  # COUNT(expr) on unpushed side: no rescale
                kept.append(agg)
        if not pushed:
            return None

        # Join conjuncts touching the target side must be plain equalities.
        join_keys: list[ColumnRef] = []
        for conjunct in split_conjuncts(join.condition):
            refs = set(conjunct.references())
            if not (refs & target_names):
                continue
            key = _target_equi_key(conjunct, target_names)
            if key is None:
                return None
            join_keys.append(key)
        if not join_keys:
            return None  # pushing below a cross product is never useful here

        # Partial group keys: target-side grouping columns + join keys.
        partial_keys: list[ColumnRef] = []
        seen: set[str] = set()
        for key in list(aggregate.group_keys) + join_keys:
            if key.name in target_names and key.name not in seen:
                seen.add(key.name)
                partial_keys.append(key)

        key_token = ",".join(sorted(seen))
        count_name = f"$pcnt_{_stable_suffix(key_token + '|' + str(target.group_id))}"
        count_ref = ColumnRef(count_name, DataType.INTEGER, None)

        partial_aggs: list[AggregateCall] = list(pushed)
        partial_names = [
            f"$p_{_stable_suffix(f'{agg}|{key_token}|{target.group_id}')}"
            for agg in pushed
        ]
        partial_aggs.append(AggregateCall(AggregateFunction.COUNT, None))
        partial_names.append(count_name)

        # Rebuild the outer aggregate list in the original order.
        outer_aggs: list[AggregateCall] = []
        pushed_index = {id(agg): i for i, agg in enumerate(pushed)}
        for agg in aggregate.aggregates:
            if id(agg) in pushed_index:
                name = partial_names[pushed_index[id(agg)]]
                ref = ColumnRef(name, expression_dtype(agg), None)
                outer_aggs.append(AggregateCall(_COMBINERS[agg.func], ref))
            elif agg.argument is None:  # COUNT(*) → SUM(pcnt)
                outer_aggs.append(AggregateCall(AggregateFunction.SUM, count_ref))
            elif agg.func in _DUPLICATE_SENSITIVE:  # SUM(y) → SUM(y * pcnt)
                scaled = Arithmetic(ArithmeticOp.MUL, agg.argument, count_ref)
                outer_aggs.append(AggregateCall(agg.func, scaled))
            else:  # MIN/MAX unaffected by duplicates
                outer_aggs.append(agg)

        partial = LogicalAggregate(
            target, tuple(partial_keys), tuple(partial_aggs), tuple(partial_names)
        )
        if side == "left":
            new_join = LogicalJoin(partial, other, join.condition)
        else:
            new_join = LogicalJoin(other, partial, join.condition)
        return LogicalAggregate(
            new_join, aggregate.group_keys, tuple(outer_aggs), aggregate.agg_names
        )


def _target_equi_key(conjunct: Expression, target_names: set[str]) -> ColumnRef | None:
    """If ``conjunct`` is ``target_col = other_col``, return the target-side
    column; otherwise ``None`` (rewrite not applicable)."""
    if not isinstance(conjunct, Comparison) or conjunct.op != ComparisonOp.EQ:
        return None
    left, right = conjunct.left, conjunct.right
    if not isinstance(left, ColumnRef) or not isinstance(right, ColumnRef):
        return None
    left_in = left.name in target_names
    right_in = right.name in target_names
    if left_in and not right_in:
        return left
    if right_in and not left_in:
        return right
    return None
