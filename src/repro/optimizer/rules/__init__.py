"""Algebraic transformation rules for the Volcano-style search."""

from .base import TransformationRule, ordered_conjunction
from .joins import JoinAssociate, JoinCommute
from .aggregates import AggregateJoinTranspose
from .unions import AggregateUnionTranspose

__all__ = [
    "TransformationRule",
    "ordered_conjunction",
    "JoinAssociate",
    "JoinCommute",
    "AggregateJoinTranspose",
    "AggregateUnionTranspose",
]
