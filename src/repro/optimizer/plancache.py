"""Compliant plan cache with prepared-query parameterization.

Repeated workloads are dominated by *query templates*: the same shape
re-submitted with different constants.  The plan cache lets the second
and later submissions of a template skip both optimizer phases (Volcano
annotation and compliant site selection) entirely:

1. :func:`prepare_query` normalizes the *free* constants out of the
   bound logical plan, producing a hashable **shape** (the plan with
   each free literal replaced by a typed ``$p<i>`` marker), a
   **parameter signature** (the marker dtypes, in order), and the
   concrete **bindings**;
2. the cache is keyed by ``(shape, signature, result_location)`` and
   stores the fully annotated + located physical plan of the first
   submission together with its bindings;
3. a hit deep-rebuilds the cached physical plan with the new bindings
   substituted for the old (:meth:`PlanCache.rebind`) — prepared-
   statement semantics: the cached plan was *optimized* for the first
   binding and is *reused* (compliant, possibly not cost-optimal) for
   later ones.

Soundness of parameterization
-----------------------------
Compliance derivations (trait annotation — AR4 — and the independent
validator) depend on query predicates only through the implication test
``P_q ⇒ P_e`` of :mod:`repro.expr.implication`.  A constant is
classified **free** (parameterizable) only when changing its value can
provably not change any implication verdict nor the plan's compliance:

* it is the literal side of a *simple atom* — ``Comparison(col, lit)``
  (either orientation, at any And/Or/Not depth) or an ``InList(col,
  ...)`` value — whose column carries base-table provenance;
* the column's key is **not mentioned** by the predicate of any policy
  expression registered for any table the plan scans (so no consulted
  policy predicate constrains that key; atoms on keys absent from the
  policy side never influence entailment);
* the key has **exactly one** predicate use in the whole plan (so the
  atom can join no same-key interaction — range intersection,
  not-equal/exact-value conflicts, or conjunct unsatisfiability — whose
  outcome is value-dependent; a single range/in-set/not-equal atom is
  satisfiable for every value);
* its ``(dtype, value)`` pair is **globally unique** among the plan's
  literals (so rebinding-by-value is injective).

Everything else — literals inside opaque atoms (arithmetic, function
calls, column-column comparisons, bare booleans), literals on
policy-relevant or multiply-constrained keys, provenance-free columns
(e.g. UNION outputs and ``$agg`` HAVING references, whose keys could
alias policy columns after pushdown), and projection/aggregate-argument
constants (which normalization may substitute into predicates) — is
*pinned*: it stays inline in the shape, so queries differing in such a
constant simply occupy distinct cache entries.  Pinning is always
sound; freeing is the proven-safe optimization.

Hot reload and invalidation
---------------------------
Every entry records the policy-catalog :attr:`~repro.policy.catalog.
PolicyCatalog.version` it was derived at plus its *dependency set*: the
pids of every policy expression the derivation scanned (collected via
:meth:`~repro.policy.evaluator.PolicyEvaluator.collecting_dependencies`
around annotation, site selection, and store-time validation).  A
lookup revalidates the entry against the catalog's change log:

* **removals/replacements** of a policy in the dependency set
  invalidate the entry (its permitted-location derivation read a policy
  that no longer holds);
* changes to policies the derivation never read leave the entry intact
  (*precision* — a reload does not flush unrelated templates);
* **additions** never invalidate: Algorithm 1 unions grants over
  expressions, so new policies only widen permitted-location sets — a
  cached plan stays compliant (it may stop being cost-optimal until it
  ages out).

Rejections (:class:`~repro.errors.NonCompliantQueryError`) are not
cached: a rejected template pays full optimization on every submission.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from dataclasses import dataclass, field, replace as dc_replace
from typing import Hashable

from ..datatypes import DataType
from ..expr import (
    And,
    ColumnRef,
    Comparison,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    walk,
)
from ..expr.predicates import column_key
from ..plan import (
    Filter,
    HashAggregate,
    HashJoin,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    NestedLoopJoin,
    PhysicalPlan,
    Project,
    Ship,
    Sort,
    TableScan,
    UnionAll,
)
from ..policy import PolicyCatalog, PolicyEvaluator


@dataclass(frozen=True)
class _Param:
    """Marker value standing in for the ``index``-th free constant."""

    index: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"$p{self.index}"


@dataclass(frozen=True)
class PreparedQuery:
    """One parameterized query: shape + signature + concrete bindings."""

    shape: LogicalPlan
    signature: tuple[DataType, ...]
    bindings: tuple[Literal, ...]

    def key(
        self, result_location: str | None, variant: Hashable = None
    ) -> Hashable:
        """``variant`` separates entries optimized under different
        replica-visibility settings (e.g. ``max_staleness``): a plan
        located with lax staleness may read a replica a strict query
        must not."""
        return (self.shape, self.signature, result_location, variant)


@dataclass
class PlanCacheStats:
    """Hit/miss/invalidation counters of one :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries dropped at lookup because a policy in their dependency
    #: set was removed or replaced after they were derived.
    invalidations: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "PlanCacheStats":
        return dc_replace(self)

    def summary(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), {self.stores} stores, "
            f"{self.invalidations} invalidations, {self.evictions} evictions"
        )


@dataclass
class CacheEntry:
    """One cached template: the located physical plan plus everything
    needed to rebind, revalidate, and re-emit trace events."""

    plan: PhysicalPlan
    bindings: tuple[Literal, ...]
    normalized: LogicalPlan
    annotate: object  # AnnotateResult (typed loosely to avoid a cycle)
    selection: object  # SiteSelection
    #: Pids of every policy expression the derivation scanned.
    dependencies: frozenset[int]
    #: Catalog version the entry is known valid at (refreshed on every
    #: successful revalidation, keeping changed_since windows short).
    version: int
    #: Schema-catalog (replica-set) version the plan was located at.  A
    #: located plan pins each scan to one concrete site, so *any*
    #: replica add/drop invalidates: a drop may orphan a pinned replica,
    #: an add may make the pinned choice non-optimal.
    catalog_version: int = 0
    #: Whether the stored template passed the independent compliance
    #: validator at insert time.  Free constants cannot change
    #: compliance (see module docstring), so the verdict transfers to
    #: every rebinding — executors may skip their per-run guard.
    validated: bool = False


class PlanCache:
    """LRU cache of optimized plans keyed by (shape, signature,
    result location), with versioned policy hot-reload invalidation."""

    def __init__(
        self,
        policies: PolicyCatalog,
        evaluator: PolicyEvaluator | None = None,
        capacity: int = 256,
    ) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.policies = policies
        #: Validates templates at insert time (store-time defense in
        #: depth); ``None`` disables validation (entries are then never
        #: marked ``validated`` and executors keep their own guard).
        self.evaluator = evaluator
        self.capacity = capacity
        self.stats = PlanCacheStats()
        self._entries: OrderedDict[Hashable, CacheEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    # -- parameterization -------------------------------------------------------

    def prepare(self, plan: LogicalPlan) -> PreparedQuery:
        return prepare_query(plan, self.policies)

    # -- lookup / store ---------------------------------------------------------

    def lookup(
        self,
        prepared: PreparedQuery,
        result_location: str | None = None,
        variant: Hashable = None,
    ) -> CacheEntry | None:
        """Return the valid entry for ``prepared``, or ``None`` (miss).
        Stale entries (a dependency was removed/replaced, or the
        replica set changed under the located plan) are dropped here and
        counted as invalidations."""
        key = prepared.key(result_location, variant)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.catalog_version != self.policies.catalog.version:
            # Replica set changed: the cached plan may pin a scan to a
            # dropped replica, or miss a cheaper new one.
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        changed = self.policies.changed_since(entry.version)
        if changed & entry.dependencies:
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        # Nothing the derivation read changed in (entry.version, now]:
        # the entry is valid at the current version too.
        entry.version = self.policies.version
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry

    def store(
        self,
        prepared: PreparedQuery,
        result_location: str | None,
        *,
        plan: PhysicalPlan,
        normalized: LogicalPlan,
        annotate: object,
        selection: object,
        dependencies: set[int] | frozenset[int],
        variant: Hashable = None,
    ) -> CacheEntry:
        validated = False
        if self.evaluator is not None:
            from .validator import check_compliance

            validated = not check_compliance(plan, self.evaluator)
        entry = CacheEntry(
            plan=plan,
            bindings=prepared.bindings,
            normalized=normalized,
            annotate=annotate,
            selection=selection,
            dependencies=frozenset(dependencies),
            version=self.policies.version,
            catalog_version=self.policies.catalog.version,
            validated=validated,
        )
        key = prepared.key(result_location, variant)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.stats.stores += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        return entry

    def clear(self) -> None:
        self._entries.clear()

    # -- rebinding --------------------------------------------------------------

    def rebind(self, entry: CacheEntry, prepared: PreparedQuery) -> PhysicalPlan:
        """Deep-rebuild the cached physical plan with ``prepared``'s
        bindings substituted for the entry's.  Always returns a fresh
        tree — executors and the recovery layer may mutate plans, and
        the cached template must never be aliased by a running query."""
        mapping: dict[tuple[DataType, object], Literal] = {}
        for old, new in zip(entry.bindings, prepared.bindings):
            if old.value != new.value:
                mapping[(old.dtype, old.value)] = new
        return _clone_physical(entry.plan, mapping)


# -- parameterization internals -------------------------------------------------


def prepare_query(plan: LogicalPlan, policies: PolicyCatalog) -> PreparedQuery:
    """Classify the plan's constants (see module docstring) and replace
    each free one with a typed marker, in deterministic walk order."""
    sensitive = _sensitive_keys(plan, policies)
    key_uses: Counter = Counter()
    atoms: list[tuple[Hashable, tuple[Literal, ...]]] = []
    census: Counter = Counter()
    for expr, is_predicate in _plan_expressions(plan):
        for lit in _literals(expr):
            census[(lit.dtype, lit.value)] += 1
        if is_predicate:
            _scan_predicate(expr, atoms, key_uses)

    free: set[tuple[DataType, object]] = set()
    for key, literals in atoms:
        if key in sensitive or key_uses[key] != 1:
            continue
        for lit in literals:
            if census[(lit.dtype, lit.value)] == 1:
                free.add((lit.dtype, lit.value))

    bindings: list[Literal] = []
    shape = _map_plan_expressions(
        plan, lambda e: _parameterize_expr(e, free, bindings)
    )
    return PreparedQuery(
        shape=shape,
        signature=tuple(b.dtype for b in bindings),
        bindings=tuple(bindings),
    )


def _sensitive_keys(plan: LogicalPlan, policies: PolicyCatalog) -> set[Hashable]:
    """Column keys mentioned by any predicate of any policy expression
    registered for a table the plan scans — exactly the policy-side
    atoms the implication prover may consult for this plan."""
    keys: set[Hashable] = set()
    seen: set[tuple[str, str]] = set()
    for node in plan.walk():
        if not isinstance(node, LogicalScan):
            continue
        table = (node.database, node.table)
        if table in seen:
            continue
        seen.add(table)
        for expression in policies.for_table(node.database, node.table):
            if expression.predicate is None:
                continue
            for sub in walk(expression.predicate):
                if isinstance(sub, ColumnRef):
                    keys.add(column_key(sub))
    return keys


def _plan_expressions(plan: LogicalPlan):
    """Yield ``(expression, is_predicate)`` for every expression the
    plan carries."""
    for node in plan.walk():
        if isinstance(node, LogicalFilter):
            yield node.predicate, True
        elif isinstance(node, LogicalJoin):
            if node.condition is not None:
                yield node.condition, True
        elif isinstance(node, LogicalProject):
            for expr in node.exprs:
                yield expr, False
        elif isinstance(node, LogicalAggregate):
            for key in node.group_keys:
                yield key, False
            for agg in node.aggregates:
                yield agg, False


def _literals(expr: Expression):
    """Every :class:`Literal` occurrence in ``expr`` — including
    ``InList.values``, which are not expression children."""
    for node in walk(expr):
        if isinstance(node, Literal):
            yield node
        elif isinstance(node, InList):
            yield from node.values


def _scan_predicate(
    expr: Expression,
    atoms: list[tuple[Hashable, tuple[Literal, ...]]],
    key_uses: Counter,
) -> None:
    """Collect candidate simple atoms and count per-key predicate uses,
    mirroring :func:`repro.expr.predicates._atom_conjunct`'s shapes."""
    if isinstance(expr, (And, Or, Not)):
        for child in expr.children():
            _scan_predicate(child, atoms, key_uses)
        return
    if isinstance(expr, Comparison):
        left, right = expr.left, expr.right
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right = right, left
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            key_uses[column_key(left)] += 1
            if left.base is not None:
                atoms.append((column_key(left), (right,)))
            return
    elif isinstance(expr, InList) and isinstance(expr.operand, ColumnRef):
        key = column_key(expr.operand)
        key_uses[key] += 1
        if expr.operand.base is not None:
            atoms.append((key, expr.values))
        return
    elif isinstance(expr, Like) and isinstance(expr.operand, ColumnRef):
        key_uses[column_key(expr.operand)] += 1
        return
    # Opaque context (column-column comparisons, arithmetic, IS NULL,
    # function calls, bare booleans): count every column use; literals
    # inside stay pinned because no atom is emitted for them.
    for node in walk(expr):
        if isinstance(node, ColumnRef):
            key_uses[column_key(node)] += 1


def _parameterize_expr(
    expr: Expression,
    free: set[tuple[DataType, object]],
    bindings: list[Literal],
) -> Expression:
    if isinstance(expr, Literal):
        if (expr.dtype, expr.value) in free:
            marker = Literal(_Param(len(bindings)), expr.dtype)
            bindings.append(expr)
            return marker
        return expr
    if isinstance(expr, InList):
        operand = _parameterize_expr(expr.operand, free, bindings)
        values = tuple(
            _parameterize_expr(v, free, bindings) for v in expr.values
        )
        if operand is expr.operand and values == expr.values:
            return expr
        return InList(operand, values, expr.negated)  # type: ignore[arg-type]
    kids = expr.children()
    if not kids:
        return expr
    new_kids = tuple(_parameterize_expr(k, free, bindings) for k in kids)
    if new_kids == kids:
        return expr
    return expr.with_children(new_kids)


def _map_plan_expressions(node: LogicalPlan, f) -> LogicalPlan:
    """Rebuild a logical plan applying ``f`` to every carried
    expression, children first (deterministic marker order)."""
    kids = tuple(_map_plan_expressions(c, f) for c in node.children())
    if isinstance(node, LogicalFilter):
        return LogicalFilter(kids[0], f(node.predicate))
    if isinstance(node, LogicalJoin):
        condition = None if node.condition is None else f(node.condition)
        return LogicalJoin(kids[0], kids[1], condition)
    if isinstance(node, LogicalProject):
        return LogicalProject(kids[0], tuple(f(e) for e in node.exprs), node.names)
    if isinstance(node, LogicalAggregate):
        return LogicalAggregate(
            kids[0],
            node.group_keys,
            tuple(f(a) for a in node.aggregates),
            node.agg_names,
        )
    if kids == node.children():
        return node
    return node.with_children(kids)


# -- rebinding internals --------------------------------------------------------


def _rebind_expr(
    expr: Expression, mapping: dict[tuple[DataType, object], Literal]
) -> Expression:
    if isinstance(expr, Literal):
        return mapping.get((expr.dtype, expr.value), expr)
    if isinstance(expr, InList):
        operand = _rebind_expr(expr.operand, mapping)
        values = tuple(
            mapping.get((v.dtype, v.value), v) for v in expr.values
        )
        if operand is expr.operand and values == expr.values:
            return expr
        return InList(operand, values, expr.negated)
    kids = expr.children()
    if not kids:
        return expr
    new_kids = tuple(_rebind_expr(k, mapping) for k in kids)
    if new_kids == kids:
        return expr
    return expr.with_children(new_kids)


def _clone_physical(
    node: PhysicalPlan, mapping: dict[tuple[DataType, object], Literal]
) -> PhysicalPlan:
    """Deep copy with free-constant substitution in every expression."""

    def expr(e):
        return None if e is None else _rebind_expr(e, mapping)

    common = dict(
        fields=node.fields,
        location=node.location,
        estimated_rows=node.estimated_rows,
        execution_trait=node.execution_trait,
    )
    if isinstance(node, TableScan):
        return TableScan(
            **common, table=node.table, database=node.database, alias=node.alias
        )
    if isinstance(node, Filter):
        return Filter(
            **common,
            child=_clone_physical(node.child, mapping),
            predicate=expr(node.predicate),
        )
    if isinstance(node, Project):
        return Project(
            **common,
            child=_clone_physical(node.child, mapping),
            exprs=tuple(expr(e) for e in node.exprs),
            names=node.names,
        )
    if isinstance(node, HashJoin):
        return HashJoin(
            **common,
            left=_clone_physical(node.left, mapping),
            right=_clone_physical(node.right, mapping),
            left_keys=node.left_keys,
            right_keys=node.right_keys,
            residual=expr(node.residual),
        )
    if isinstance(node, NestedLoopJoin):
        return NestedLoopJoin(
            **common,
            left=_clone_physical(node.left, mapping),
            right=_clone_physical(node.right, mapping),
            condition=expr(node.condition),
        )
    if isinstance(node, HashAggregate):
        return HashAggregate(
            **common,
            child=_clone_physical(node.child, mapping),
            group_keys=node.group_keys,
            aggregates=tuple(expr(a) for a in node.aggregates),
            agg_names=node.agg_names,
        )
    if isinstance(node, UnionAll):
        return UnionAll(
            **common,
            inputs=tuple(_clone_physical(c, mapping) for c in node.inputs),
        )
    if isinstance(node, Sort):
        return Sort(
            **common,
            child=_clone_physical(node.child, mapping),
            sort_keys=node.sort_keys,
            limit=node.limit,
        )
    if isinstance(node, Ship):
        return Ship(
            **common,
            child=_clone_physical(node.child, mapping),
            source=node.source,
            target=node.target,
        )
    raise TypeError(
        f"unknown physical operator {type(node).__name__}"
    )  # pragma: no cover - defensive
