"""Plan annotator — optimization phase 1 (paper §6.2).

Runs the Volcano-style search (normalize → memo → explore) and then
extracts, per memo group, the Pareto frontier of
``(execution trait, shipping trait) → cheapest alternative`` entries,
applying annotation rules AR1–AR3 per alternative and AR4 per group.

The paper's compliance-adapted cost function — "an operator's cost is
infinite when ℰ_n = ∅" — appears here as alternatives with an empty
execution trait simply being discarded.  The *compliance-based
optimization goal* (a non-empty shipping trait at the root) is met by
construction because 𝒮 ⊇ ℰ ≠ ∅ for every surviving entry; a query whose
root group ends with no surviving entry is rejected
(:class:`~repro.errors.NonCompliantQueryError`).

In *traditional* mode (the baseline of §7) traits are ignored: every
group keeps its single cheapest alternative and every node is considered
executable anywhere — exactly "Calcite's cost-based optimizer as-is" used
for the paper's first phase, with site selection considering all
locations legal.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import NonCompliantQueryError, OptimizerError
from ..plan import Field, LogicalPlan, LogicalScan
from .cost import CostModel
from .explore import ExploreStats, explore
from .memo import GroupRef, Memo, MExpr
from .normalize import normalize
from .rules.aggregates import AggregateJoinTranspose
from .rules.unions import AggregateUnionTranspose
from .rules.base import TransformationRule
from .rules.joins import JoinAssociate, JoinCommute
from .traits import TraitGrants

#: Safety cap on Pareto entries kept per group (highest-cost dropped).
MAX_ENTRIES_PER_GROUP = 32


@dataclass
class TraitEntry:
    """One Pareto entry of a group: a concrete alternative with its derived
    traits and cumulative phase-1 cost."""

    execution: frozenset[str]
    shipping: frozenset[str]
    cost: float
    rows: float
    mexpr: MExpr
    children: tuple["TraitEntry", ...]


@dataclass
class AnnotatedNode:
    """A node of the annotated plan handed to the site selector."""

    op: LogicalPlan  # shallow operator (children are GroupRefs)
    children: tuple["AnnotatedNode", ...]
    execution_trait: frozenset[str]
    shipping_trait: frozenset[str]
    rows: float

    @property
    def fields(self) -> tuple[Field, ...]:
        return self.op.fields

    @property
    def row_width(self) -> int:
        return self.op.row_width

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class AnnotateResult:
    root: AnnotatedNode
    memo: Memo
    explore_stats: ExploreStats
    group_count: int
    expression_count: int
    phase1_cost: float


def default_rules(allow_cross_products: bool = False) -> list[TransformationRule]:
    return [
        JoinCommute(),
        JoinAssociate(allow_cross_products=allow_cross_products),
        AggregateJoinTranspose(),
        AggregateUnionTranspose(),
    ]


class PlanAnnotator:
    """Phase 1: produce the cheapest annotated plan (or reject).

    ``trait_grants`` is ``None`` for the traditional baseline.
    """

    def __init__(
        self,
        cost_model: CostModel,
        evaluator,  # PolicyEvaluator | None — None selects traditional mode
        all_locations: frozenset[str],
        rules: list[TransformationRule] | None = None,
        max_expressions: int = 50_000,
        catalog=None,  # Catalog | None — enables replica-aware AR1
        max_staleness: float | None = None,
    ) -> None:
        self.cost_model = cost_model
        self.evaluator = evaluator
        self.all_locations = all_locations
        self.rules = rules if rules is not None else default_rules()
        self.max_expressions = max_expressions
        self.catalog = catalog
        self.max_staleness = max_staleness
        if catalog is not None and evaluator is not None:
            from ..policy.replicas import ReplicaResolver

            self._replica_resolver = ReplicaResolver(catalog, evaluator)
        else:
            self._replica_resolver = None

    @property
    def compliant_mode(self) -> bool:
        return self.evaluator is not None

    def annotate(
        self,
        plan: LogicalPlan,
        result_location: str | None = None,
        pre_normalized: bool = False,
    ) -> AnnotateResult:
        if not pre_normalized:
            plan = normalize(plan)
        memo = Memo(max_expressions=self.max_expressions)
        root_group = memo.register_plan(plan)
        stats = explore(memo, self.rules)
        # Group ids are memo-local, so the AR4 grant cache must be rebuilt
        # for every optimization.
        trait_grants = (
            TraitGrants(self.evaluator) if self.evaluator is not None else None
        )
        tables = self._extract(memo, root_group, trait_grants)
        entries = tables.get(root_group, [])
        best = self._choose_root_entry(entries, result_location)
        if best is None:
            raise NonCompliantQueryError(
                "no compliant execution plan exists in the explored plan "
                "space for this query under the registered dataflow policies"
            )
        root = _materialize(best)
        return AnnotateResult(
            root=root,
            memo=memo,
            explore_stats=stats,
            group_count=memo.group_count,
            expression_count=memo.expression_count,
            phase1_cost=best.cost,
        )

    # -- extraction -----------------------------------------------------------

    def _extract(
        self, memo: Memo, root_group: int, trait_grants: TraitGrants | None
    ) -> dict[int, list[TraitEntry]]:
        order = _topological_groups(memo, root_group)
        tables: dict[int, list[TraitEntry]] = {}
        for group_id in order:
            group = memo.group(group_id)
            assert group.representative is not None
            group_rows = self.cost_model.estimate_rows(group.representative)
            grant: frozenset[str] = frozenset()
            if trait_grants is not None:
                grant = trait_grants.shipping_grant(group)
            entries: list[TraitEntry] = []
            for mexpr in group.exprs:
                child_ids = mexpr.child_groups
                child_tables = [tables.get(cid, []) for cid in child_ids]
                if any(not t for t in child_tables):
                    continue
                for combo in itertools.product(*child_tables):
                    entry = self._make_entry(mexpr, combo, group_rows, grant)
                    if entry is not None:
                        _add_pareto(entries, entry, self.compliant_mode)
            tables[group_id] = entries
        return tables

    def _make_entry(
        self,
        mexpr: MExpr,
        combo: tuple[TraitEntry, ...],
        group_rows: float,
        grant: frozenset[str],
    ) -> TraitEntry | None:
        plan = mexpr.plan
        if isinstance(plan, LogicalScan):
            # AR1 — and plain physics in the baseline too: a tablescan can
            # only run where its table is stored — extended to sites that
            # hold a *compliant* replica of the fragment (reading there is
            # policy-equivalent to shipping the table there, so ℰ may
            # legally include them; 𝒮 = ℰ ∪ grant does not widen because
            # compliant replica sites are already in the grant).
            execution = frozenset([plan.location]) | self._replica_sites(plan)
        elif self.compliant_mode:
            execution = self.all_locations
            for child in combo:  # AR2
                execution = execution & child.shipping
            if not execution:
                return None  # infinite cost (compliance-adapted cost fn)
        else:
            execution = self.all_locations
        if self.compliant_mode:
            shipping = execution | grant  # AR3 + AR4
        else:
            shipping = self.all_locations
        child_rows = tuple(c.rows for c in combo)
        own_cost = self.cost_model.operator_cost(plan, child_rows, group_rows)
        total = own_cost + sum(c.cost for c in combo)
        return TraitEntry(
            execution=execution,
            shipping=shipping,
            cost=total,
            rows=group_rows,
            mexpr=mexpr,
            children=combo,
        )

    def _replica_sites(self, scan: LogicalScan) -> frozenset[str]:
        """Alternate sites the scan may read: compliant replicas in
        compliant mode, every declared replica in the baseline — both
        filtered by the annotator's staleness requirement."""
        if self._replica_resolver is not None:
            return self._replica_resolver.compliant_sites(
                scan.database, scan.table, self.max_staleness
            )
        if self.catalog is not None:
            return self.catalog.replica_sites(
                scan.database, scan.table, self.max_staleness
            )
        return frozenset()

    def _choose_root_entry(
        self, entries: list[TraitEntry], result_location: str | None
    ) -> TraitEntry | None:
        candidates = entries
        if result_location is not None and self.compliant_mode:
            candidates = [e for e in entries if result_location in e.shipping]
        if not candidates:
            return None
        return min(candidates, key=lambda e: e.cost)


def _topological_groups(memo: Memo, root_group: int) -> list[int]:
    """Child-first ordering of groups reachable from the root."""
    order: list[int] = []
    state: dict[int, int] = {}  # 0 = visiting, 1 = done

    def visit(group_id: int) -> None:
        status = state.get(group_id)
        if status == 1:
            return
        if status == 0:
            raise OptimizerError("cycle detected in memo groups")
        state[group_id] = 0
        for mexpr in memo.group(group_id).exprs:
            for child in mexpr.child_groups:
                visit(child)
        state[group_id] = 1
        order.append(group_id)

    visit(root_group)
    return order


def _add_pareto(entries: list[TraitEntry], new: TraitEntry, compliant: bool) -> None:
    if not compliant:
        # Traditional mode: single cheapest alternative per group.
        if not entries:
            entries.append(new)
        elif new.cost < entries[0].cost:
            entries[0] = new
        return
    for existing in entries:
        if (
            existing.execution >= new.execution
            and existing.shipping >= new.shipping
            and existing.cost <= new.cost
        ):
            return  # dominated
    entries[:] = [
        e
        for e in entries
        if not (
            new.execution >= e.execution
            and new.shipping >= e.shipping
            and new.cost <= e.cost
        )
    ]
    entries.append(new)
    if len(entries) > MAX_ENTRIES_PER_GROUP:
        entries.sort(key=lambda e: e.cost)
        del entries[MAX_ENTRIES_PER_GROUP:]


def _materialize(entry: TraitEntry) -> AnnotatedNode:
    children = tuple(_materialize(c) for c in entry.children)
    return AnnotatedNode(
        op=entry.mexpr.plan,
        children=children,
        execution_trait=entry.execution,
        shipping_trait=entry.shipping,
        rows=entry.rows,
    )
