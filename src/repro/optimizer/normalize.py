"""Plan normalization: the "initial expression tree" fed to the memo.

Before plan enumeration, the optimizer rewrites the bound plan into a
canonical form (these are the always-beneficial algebraic rewrites that
Volcano-style optimizers typically apply once, outside the search):

1. **Predicate pushdown** — WHERE conjuncts move below projections (with
   substitution), into join conditions, through group-by keys, and down to
   the scans they constrain.
2. **Column pruning** — a projection keeping only the needed columns is
   placed directly above every scan.  These pruning projections are the
   *masking* operators of the paper: projecting out a restricted attribute
   before any SHIP is exactly how a plan becomes compliant with a policy
   like P_N of the running example.
3. **Project simplification** — identity projections are dropped and
   adjacent projections merged.

Normalization preserves semantics; tests verify plans produce identical
results before and after.
"""

from __future__ import annotations

from ..expr import (
    ColumnRef,
    Expression,
    conjunction,
    split_conjuncts,
    substitute,
)
from ..plan import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
)


def normalize(plan: LogicalPlan) -> LogicalPlan:
    """Apply pushdown, pruning, and simplification."""
    plan = push_predicates(plan)
    plan = prune_columns(plan)
    plan = simplify_projects(plan)
    return plan


# -- predicate pushdown ------------------------------------------------------


def push_predicates(plan: LogicalPlan) -> LogicalPlan:
    return _push(plan, [])


def _push(plan: LogicalPlan, conjuncts: list[Expression]) -> LogicalPlan:
    if isinstance(plan, LogicalFilter):
        return _push(plan.child, conjuncts + split_conjuncts(plan.predicate))

    if isinstance(plan, LogicalSort):
        child = _push(plan.child, conjuncts)
        return plan.with_children((child,))

    if isinstance(plan, LogicalProject):
        mapping = {name: expr for expr, name in zip(plan.exprs, plan.names)}
        pushable: list[Expression] = []
        stuck: list[Expression] = []
        for conjunct in conjuncts:
            rewritten = substitute(conjunct, mapping)
            if rewritten.contains_aggregate():
                stuck.append(conjunct)
            else:
                pushable.append(rewritten)
        child = _push(plan.child, pushable)
        result: LogicalPlan = plan.with_children((child,))
        return _wrap_filter(result, stuck)

    if isinstance(plan, LogicalAggregate):
        key_names = {k.name for k in plan.group_keys}
        pushable = []
        stuck = []
        for conjunct in conjuncts:
            if set(conjunct.references()) <= key_names:
                pushable.append(conjunct)
            else:
                stuck.append(conjunct)
        child = _push(plan.child, pushable)
        result = plan.with_children((child,))
        return _wrap_filter(result, stuck)

    if isinstance(plan, LogicalJoin):
        conjuncts = conjuncts + split_conjuncts(plan.condition)
        left_names = set(plan.left.field_names)
        right_names = set(plan.right.field_names)
        to_left: list[Expression] = []
        to_right: list[Expression] = []
        join_condition: list[Expression] = []
        for conjunct in conjuncts:
            refs = set(conjunct.references())
            if refs <= left_names:
                to_left.append(conjunct)
            elif refs <= right_names:
                to_right.append(conjunct)
            else:
                join_condition.append(conjunct)
        left = _push(plan.left, to_left)
        right = _push(plan.right, to_right)
        condition = conjunction(join_condition) if join_condition else None
        return LogicalJoin(left, right, condition)

    if isinstance(plan, LogicalUnion):
        # Fragments share field names: replicate the filter per branch.
        children = tuple(_push(c, list(conjuncts)) for c in plan.inputs)
        return LogicalUnion(children)

    if isinstance(plan, LogicalScan):
        return _wrap_filter(plan, conjuncts)

    raise TypeError(f"unknown logical operator {type(plan).__name__}")


def _wrap_filter(plan: LogicalPlan, conjuncts: list[Expression]) -> LogicalPlan:
    if not conjuncts:
        return plan
    return LogicalFilter(plan, conjunction(conjuncts))


# -- column pruning ----------------------------------------------------------


def prune_columns(plan: LogicalPlan) -> LogicalPlan:
    """Insert pruning projections above scans so only columns actually used
    by the query flow upward (the paper's masking projections)."""
    return _prune(plan, set(plan.field_names))


def _prune(plan: LogicalPlan, required: set[str]) -> LogicalPlan:
    if isinstance(plan, LogicalScan):
        needed = [f for f in plan.fields if f.name in required]
        if len(needed) == len(plan.fields):
            return plan
        if not needed:
            needed = [plan.fields[0]]  # keep at least one column
        exprs = tuple(f.to_ref() for f in needed)
        names = tuple(f.name for f in needed)
        return LogicalProject(plan, exprs, names)

    if isinstance(plan, LogicalFilter):
        child_required = required | set(plan.predicate.references())
        child = _prune(plan.child, child_required)
        return plan.with_children((child,))

    if isinstance(plan, LogicalSort):
        child_required = required | {name for name, _desc in plan.sort_keys}
        child = _prune(plan.child, child_required)
        return plan.with_children((child,))

    if isinstance(plan, LogicalProject):
        kept = [
            (expr, name)
            for expr, name in zip(plan.exprs, plan.names)
            if name in required
        ]
        if not kept:
            kept = [(plan.exprs[0], plan.names[0])]
        child_required: set[str] = set()
        for expr, _name in kept:
            child_required |= set(expr.references())
        if not child_required and plan.child.fields:
            child_required = {plan.child.fields[0].name}
        child = _prune(plan.child, child_required)
        return LogicalProject(
            child,
            tuple(e for e, _ in kept),
            tuple(n for _, n in kept),
        )

    if isinstance(plan, LogicalJoin):
        needed = set(required)
        if plan.condition is not None:
            needed |= set(plan.condition.references())
        left_required = needed & set(plan.left.field_names)
        right_required = needed & set(plan.right.field_names)
        left = _prune(plan.left, left_required)
        right = _prune(plan.right, right_required)
        return LogicalJoin(left, right, plan.condition)

    if isinstance(plan, LogicalAggregate):
        kept_aggs = [
            (agg, name)
            for agg, name in zip(plan.aggregates, plan.agg_names)
            if name in required
        ]
        if not kept_aggs and plan.aggregates:
            # Keep aggregates that nobody references only if there are no
            # group keys either (an aggregate node must output something).
            if not plan.group_keys:
                kept_aggs = [(plan.aggregates[0], plan.agg_names[0])]
        child_required = {k.name for k in plan.group_keys}
        for agg, _name in kept_aggs:
            if agg.argument is not None:
                child_required |= set(agg.argument.references())
        child = _prune(plan.child, child_required)
        return LogicalAggregate(
            child,
            plan.group_keys,
            tuple(a for a, _ in kept_aggs),
            tuple(n for _, n in kept_aggs),
        )

    if isinstance(plan, LogicalUnion):
        children = tuple(_prune(c, set(required)) for c in plan.inputs)
        return LogicalUnion(children)

    raise TypeError(f"unknown logical operator {type(plan).__name__}")


# -- project simplification ---------------------------------------------------


def simplify_projects(plan: LogicalPlan) -> LogicalPlan:
    children = tuple(simplify_projects(c) for c in plan.children())
    plan = plan.with_children(children)

    if isinstance(plan, LogicalProject):
        child = plan.child
        # Merge Project(Project(x)) by substitution.
        if isinstance(child, LogicalProject):
            mapping = {name: expr for expr, name in zip(child.exprs, child.names)}
            merged = tuple(substitute(e, mapping) for e in plan.exprs)
            plan = LogicalProject(child.child, merged, plan.names)
            child = plan.child
        # Drop identity projections.
        if (
            plan.is_pruning_only
            and plan.names == tuple(e.name for e in plan.exprs)  # type: ignore[union-attr]
            and set(plan.names) == set(child.field_names)
            and len(plan.names) == len(child.field_names)
        ):
            return child
    return plan
