"""Independent compliance validation of located physical plans.

Two checkers, both independent of the optimizer's internals (they
recompute everything from the plan, the catalog, and the policies), used
for Theorem-1 property tests and as an executor-side guard:

* :func:`check_compliance` — *content-based* semantics mirroring the
  annotation rules: every SHIP's payload (the result of the subquery
  below it) must be legal at the target, where the legal-destination set
  of a subplan is derived bottom-up exactly like shipping traits
  (⋂ of children's sets, plus 𝒜 for single-database subplans).
* :func:`check_compliance_strict` — the literal Definition 1 of the
  paper: for every operator ``o``, every maximal single-database,
  single-location subtree ``o'`` strictly below it that crosses a border
  must satisfy ``l_o ∈ 𝒜(Q_{o'})``.  Strict implies content-based
  compliance for the plans our optimizer emits (masking happens at the
  data's home site); the content-based form is the primary check because
  Definition 1 leaves masking-at-a-foreign-site formally undefined (see
  DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..expr import conjunction
from ..plan import (
    Field,
    Filter,
    HashAggregate,
    HashJoin,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
    NestedLoopJoin,
    PhysicalPlan,
    Project,
    Ship,
    Sort,
    TableScan,
    UnionAll,
)
from ..policy import PolicyEvaluator, describe_local_query


@dataclass
class Violation:
    """One detected policy violation."""

    node: PhysicalPlan
    message: str

    def __str__(self) -> str:
        return f"{self.node.describe()}: {self.message}"


def to_logical(node: PhysicalPlan) -> LogicalPlan:
    """Reconstruct the logical subquery a physical subtree computes (SHIPs
    are transparent: they move data without changing it)."""
    if isinstance(node, Ship):
        assert node.child is not None
        return to_logical(node.child)
    if isinstance(node, TableScan):
        return LogicalScan(
            table=node.table,
            database=node.database,
            location=node.location,
            alias=node.alias,
            scan_fields=node.fields,
        )
    if isinstance(node, Filter):
        assert node.child is not None and node.predicate is not None
        return LogicalFilter(to_logical(node.child), node.predicate)
    if isinstance(node, Project):
        assert node.child is not None
        return LogicalProject(to_logical(node.child), node.exprs, node.names)
    if isinstance(node, HashJoin):
        assert node.left is not None and node.right is not None
        conjuncts = [
            _eq(l, r) for l, r in zip(node.left_keys, node.right_keys)
        ]
        if node.residual is not None:
            conjuncts.append(node.residual)
        return LogicalJoin(
            to_logical(node.left), to_logical(node.right), conjunction(conjuncts)
        )
    if isinstance(node, NestedLoopJoin):
        assert node.left is not None and node.right is not None
        return LogicalJoin(to_logical(node.left), to_logical(node.right), node.condition)
    if isinstance(node, HashAggregate):
        assert node.child is not None
        return LogicalAggregate(
            to_logical(node.child), node.group_keys, node.aggregates, node.agg_names
        )
    if isinstance(node, UnionAll):
        return LogicalUnion(tuple(to_logical(c) for c in node.inputs))
    if isinstance(node, Sort):
        assert node.child is not None
        return LogicalSort(to_logical(node.child), node.sort_keys, node.limit)
    raise TypeError(f"unknown physical operator {type(node).__name__}")


def _eq(left, right):
    from ..expr import Comparison, ComparisonOp

    return Comparison(ComparisonOp.EQ, left, right)


def _grant(evaluator: PolicyEvaluator, logical: LogicalPlan) -> frozenset[str]:
    """𝒜 of a subplan, or ∅ when it is not a local single-database query."""
    if len(logical.source_databases) != 1:
        return frozenset()
    if any(isinstance(n, LogicalUnion) for n in logical.walk()):
        return frozenset()
    return evaluator.evaluate(describe_local_query(logical))


# -- content-based check -------------------------------------------------------


def _scan_site_violation(
    node: TableScan, evaluator: PolicyEvaluator
) -> Violation | None:
    """Is the scan's site a legal *source* for its fragment?

    The primary location is always legal; any other site must hold a
    registered replica whose site is in 𝒜 of the bare full-table scan
    (the replica-compliance rule — reading there is policy-equivalent to
    shipping the whole table there).  Staleness is deliberately not
    checked: it is an optimizer-level freshness preference, not a policy
    property, so failover may use any *compliant* replica."""
    from ..policy.replicas import ReplicaResolver

    catalog = evaluator.policies.catalog
    try:
        stored = catalog.stored_table(node.database, node.table)
    except Exception:
        return None  # unknown fragment: nothing to validate against
    if node.location == stored.location:
        return None
    replica_sites = catalog.replica_sites(node.database, node.table)
    if node.location not in replica_sites:
        return Violation(
            node,
            f"scans {node.database}.{node.table} at {node.location!r} but "
            f"the table lives at {stored.location!r} and has no replica "
            f"there",
        )
    resolver = ReplicaResolver(catalog, evaluator)
    if node.location not in resolver.full_scan_grant(node.database, node.table):
        return Violation(
            node,
            f"reads the replica of {node.database}.{node.table} at "
            f"{node.location!r}, which the dataflow policies do not admit "
            f"as a destination for the table",
        )
    return None


def check_compliance(
    plan: PhysicalPlan, evaluator: PolicyEvaluator
) -> list[Violation]:
    """Content-based compliance check; empty result means compliant."""
    violations: list[Violation] = []
    all_locations = evaluator.policies.all_locations

    def legal_destinations(node: PhysicalPlan) -> frozenset[str]:
        if isinstance(node, Ship):
            assert node.child is not None
            allowed = legal_destinations(node.child)
            if node.target != node.source and node.target not in allowed:
                violations.append(
                    Violation(
                        node,
                        f"ships data legal only for {sorted(allowed)} to "
                        f"{node.target!r}",
                    )
                )
            return allowed
        if isinstance(node, TableScan):
            # The scan's output is available at its own site; whether
            # that site was a legal *source* (primary or compliant
            # replica) is checked separately.
            violation = _scan_site_violation(node, evaluator)
            if violation is not None:
                violations.append(violation)
            executable = frozenset([node.location])
        else:
            executable = all_locations
            for child in node.children():
                executable = executable & legal_destinations(child)
            if node.location not in executable:
                violations.append(
                    Violation(
                        node,
                        f"executes at {node.location!r} but inputs are only "
                        f"legal at {sorted(executable)}",
                    )
                )
        logical = to_logical(node)
        return executable | _grant(evaluator, logical)

    legal_destinations(plan)
    return violations


def is_compliant(plan: PhysicalPlan, evaluator: PolicyEvaluator) -> bool:
    return not check_compliance(plan, evaluator)


def check_recovery_placement(
    plan: PhysicalPlan, evaluator: PolicyEvaluator
) -> list[Violation]:
    """Re-validate a plan produced by failover re-placement.

    Theorem 1 covers plans the optimizer *emits*; a runtime re-placement
    (moving a failed fragment to a backup site, see
    :mod:`repro.execution.recovery`) is a new plan the optimizer never
    saw, so the execution layer must re-establish the guarantee itself:
    every candidate placement runs through this check and is discarded
    on any violation, keeping the end-to-end invariant "no data is ever
    shipped to a location the dataflow policies forbid" — even during
    recovery.  Both checkers run; strict (Definition 1) violations on a
    plan that passes the content-based check indicate the re-placement
    moved a masking boundary and are treated as failures too.
    """
    violations = check_compliance(plan, evaluator)
    if not violations:
        violations = check_compliance_strict(plan, evaluator)
    return violations


# -- strict (Definition 1) check ----------------------------------------------


def check_compliance_strict(
    plan: PhysicalPlan, evaluator: PolicyEvaluator
) -> list[Violation]:
    """Literal Definition 1: for every operator ``o``, every maximal
    single-database single-location subtree strictly below it whose output
    crosses a border must have ``l_o`` among its legal destinations."""
    violations: list[Violation] = []

    def is_local_uniform(node: PhysicalPlan) -> bool:
        locations = {n.location for n in node.walk() if not isinstance(n, Ship)}
        has_ship = any(isinstance(n, Ship) for n in node.walk())
        logical = to_logical(node)
        return (
            not has_ship
            and len(locations) == 1
            and len(logical.source_databases) == 1
            and not any(isinstance(n, LogicalUnion) for n in logical.walk())
        )

    # Frontier subqueries: children of SHIP operators that are local and
    # uniform; their legal destination sets constrain every ancestor.
    frontier: list[tuple[PhysicalPlan, frozenset[str]]] = []
    for node in plan.walk():
        if isinstance(node, Ship) and node.child is not None:
            if is_local_uniform(node.child):
                grant = _grant(evaluator, to_logical(node.child))
                frontier.append((node.child, grant))

    frontier_ids = {id(n) for n, _ in frontier}
    grants = {id(n): g for n, g in frontier}

    def descend(node: PhysicalPlan) -> list[int]:
        """Returns ids of frontier nodes in the subtree rooted at node."""
        below: list[int] = []
        for child in node.children():
            below.extend(descend(child))
        if id(node) in frontier_ids:
            below.append(id(node))
            return below
        if isinstance(node, Ship):
            # The SHIP itself moves everything below it to its target —
            # the target must be legal for every crossing subquery, which
            # also covers a SHIP at the plan root with no consumer above.
            for frontier_id in below:
                allowed = grants[frontier_id]
                if node.target not in allowed:
                    violations.append(
                        Violation(
                            node,
                            f"ships a cross-border subquery legal only at "
                            f"{sorted(allowed)} to {node.target!r}",
                        )
                    )
            return below
        # Condition c2 for this operator.
        for frontier_id in below:
            allowed = grants[frontier_id]
            if node.location not in allowed:
                violations.append(
                    Violation(
                        node,
                        f"at {node.location!r} consumes data from a "
                        f"cross-border subquery legal only at {sorted(allowed)}",
                    )
                )
        return below

    descend(plan)
    # Condition c1: tablescans must run where their table is stored —
    # the primary location or a registered *compliant* replica site.
    for node in plan.walk():
        if isinstance(node, TableScan):
            violation = _scan_site_violation(node, evaluator)
            if violation is not None:
                violations.append(violation)
    return violations
