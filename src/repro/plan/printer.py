"""Pretty-printing of logical, physical, and annotated plans (EXPLAIN)."""

from __future__ import annotations

from typing import Any, Callable

from .logical import LogicalPlan
from .physical import PhysicalPlan


def explain_logical(plan: LogicalPlan, indent: int = 0) -> str:
    """Render a logical plan as an indented operator tree."""
    lines: list[str] = []

    def recurse(node: LogicalPlan, depth: int) -> None:
        lines.append("  " * depth + str(node))
        for child in node.children():
            recurse(child, depth + 1)

    recurse(plan, indent)
    return "\n".join(lines)


def explain_physical(
    plan: PhysicalPlan,
    show_rows: bool = False,
    prune: Callable[[PhysicalPlan], str | None] | None = None,
) -> str:
    """Render a located physical plan, one operator per line, annotated
    with its execution location (and optionally the row estimate).

    ``prune`` lets callers cut the rendering at chosen subtrees: when it
    returns a string for a node, that line is printed in place of the
    node and its subtree (used by fragment-level EXPLAIN to show cut
    SHIP edges as references to the producing fragment).
    """
    lines: list[str] = []

    def recurse(node: PhysicalPlan, depth: int) -> None:
        if prune is not None:
            replacement = prune(node)
            if replacement is not None:
                lines.append("  " * depth + replacement)
                return
        annotation = f" @ {node.location}"
        if show_rows:
            annotation += f" (~{node.estimated_rows:.0f} rows)"
        lines.append("  " * depth + node.describe() + annotation)
        for child in node.children():
            recurse(child, depth + 1)

    recurse(plan, 0)
    return "\n".join(lines)


def explain_annotated(root: Any) -> str:
    """Render a phase-1 annotated plan with its execution trait ℰ and
    shipping trait 𝒮 per operator (the paper's Fig. 4 view).

    ``root`` is an :class:`~repro.optimizer.AnnotatedNode`; typed as Any
    to keep the plan package free of optimizer imports.
    """
    lines: list[str] = []

    def fmt(trait: frozenset) -> str:
        return "{" + ", ".join(sorted(trait)) + "}"

    def recurse(node: Any, depth: int) -> None:
        lines.append(
            "  " * depth
            + f"{node.op}  E={fmt(node.execution_trait)} "
            + f"S={fmt(node.shipping_trait)} (~{node.rows:.0f} rows)"
        )
        for child in node.children:
            recurse(child, depth + 1)

    recurse(root, 0)
    return "\n".join(lines)
