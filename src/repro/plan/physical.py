"""Physical (executable, located) query plan operators.

Phase 2 of the optimizer (the site selector) turns an annotated logical
plan into a tree of these nodes: every operator carries the location it
executes at, and :class:`Ship` operators are materialized on edges whose
endpoints live at different locations — exactly the plans of Figure 1 in
the paper.

Physical nodes are plain mutable dataclasses (they never enter the memo);
each caches its output fields and the optimizer's cardinality estimate so
the executor and the cost reports need no re-derivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..expr import AggregateCall, ColumnRef, Expression
from .logical import Field


@dataclass
class PhysicalPlan:
    """Base class of physical operators."""

    fields: tuple[Field, ...]
    location: str
    estimated_rows: float = 0.0
    #: The annotated execution trait ℰ of the operator — every location
    #: it may legally run at (paper §6.2).  Attached by the site
    #: selector during materialization; ``None`` on hand-built plans and
    #: on Ship operators (a transfer has no execution site of its own).
    #: The recovery layer restricts failover placements to ⋂ℰ of a
    #: fragment's operators so re-placed plans stay compliant.
    execution_trait: frozenset[str] | None = None

    def children(self) -> tuple["PhysicalPlan", ...]:
        return ()

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    @property
    def row_width(self) -> int:
        return sum(f.width for f in self.fields)

    @property
    def estimated_bytes(self) -> float:
        return self.estimated_rows * self.row_width

    def walk(self) -> Iterator["PhysicalPlan"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def describe(self) -> str:
        """One-line operator description for plan printing."""
        return type(self).__name__


@dataclass
class TableScan(PhysicalPlan):
    """Scan of one stored fragment at its home location."""

    table: str = ""
    database: str = ""
    alias: str = ""

    def describe(self) -> str:
        return f"TableScan {self.database}.{self.table} AS {self.alias}"


@dataclass
class Filter(PhysicalPlan):
    child: PhysicalPlan | None = None
    predicate: Expression | None = None

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,) if self.child is not None else ()

    def describe(self) -> str:
        return f"Filter {self.predicate}"


@dataclass
class Project(PhysicalPlan):
    child: PhysicalPlan | None = None
    exprs: tuple[Expression, ...] = ()
    names: tuple[str, ...] = ()

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,) if self.child is not None else ()

    def describe(self) -> str:
        cols = ", ".join(
            name if isinstance(e, ColumnRef) and e.name == name else f"{e} AS {name}"
            for e, name in zip(self.exprs, self.names)
        )
        return f"Project {cols}"


@dataclass
class HashJoin(PhysicalPlan):
    """Equi-join: build a hash table on the left keys, probe with right."""

    left: PhysicalPlan | None = None
    right: PhysicalPlan | None = None
    left_keys: tuple[ColumnRef, ...] = ()
    right_keys: tuple[ColumnRef, ...] = ()
    #: Residual non-equi conjuncts evaluated on joined rows.
    residual: Expression | None = None

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.left, self.right)  # type: ignore[return-value]

    def describe(self) -> str:
        keys = ", ".join(
            f"{l.name}={r.name}" for l, r in zip(self.left_keys, self.right_keys)
        )
        residual = f" residual: {self.residual}" if self.residual is not None else ""
        return f"HashJoin [{keys}]{residual}"


@dataclass
class NestedLoopJoin(PhysicalPlan):
    """Fallback join for non-equi (or missing) conditions."""

    left: PhysicalPlan | None = None
    right: PhysicalPlan | None = None
    condition: Expression | None = None

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.left, self.right)  # type: ignore[return-value]

    def describe(self) -> str:
        return f"NestedLoopJoin [{self.condition}]"


@dataclass
class HashAggregate(PhysicalPlan):
    child: PhysicalPlan | None = None
    group_keys: tuple[ColumnRef, ...] = ()
    aggregates: tuple[AggregateCall, ...] = ()
    agg_names: tuple[str, ...] = ()

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,) if self.child is not None else ()

    def describe(self) -> str:
        keys = ", ".join(k.name for k in self.group_keys)
        aggs = ", ".join(
            f"{a} AS {n}" for a, n in zip(self.aggregates, self.agg_names)
        )
        return f"HashAggregate by [{keys}] compute [{aggs}]"


@dataclass
class UnionAll(PhysicalPlan):
    inputs: tuple[PhysicalPlan, ...] = ()

    def children(self) -> tuple[PhysicalPlan, ...]:
        return self.inputs

    def describe(self) -> str:
        return f"UnionAll ({len(self.inputs)} inputs)"


@dataclass
class Sort(PhysicalPlan):
    child: PhysicalPlan | None = None
    sort_keys: tuple[tuple[str, bool], ...] = ()
    limit: int | None = None

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,) if self.child is not None else ()

    def describe(self) -> str:
        keys = ", ".join(f"{n} DESC" if d else f"{n}" for n, d in self.sort_keys)
        suffix = f" LIMIT {self.limit}" if self.limit is not None else ""
        return f"Sort [{keys}]{suffix}"


@dataclass
class Ship(PhysicalPlan):
    """Transfer the child's output from ``source`` to ``target`` location.

    This is the operator dataflow policies constrain: every Ship crossing a
    border must be legal for the data it carries (Definition 1, c2).
    """

    child: PhysicalPlan | None = None
    source: str = ""
    target: str = ""

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,) if self.child is not None else ()

    def describe(self) -> str:
        return f"Ship {self.source} -> {self.target}"


def ship_operators(plan: PhysicalPlan) -> list[Ship]:
    """All Ship operators in ``plan``, in pre-order."""
    return [node for node in plan.walk() if isinstance(node, Ship)]
