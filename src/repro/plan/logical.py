"""Logical query plan operators.

Nodes are immutable and compared structurally, which lets the optimizer
memo deduplicate equivalent subplans.  Every node derives an ordered tuple
of output :class:`Field`\\ s; field names are unique within a plan (the
binder qualifies them as ``alias.column``), and fields that pass a stored
attribute through unchanged carry its :class:`~repro.expr.BaseColumn`
provenance for the policy evaluator.

The logical algebra is the one the paper optimizes over: scan, filter
(selection σ), project (Π), inner join (⋈), grouping/aggregation (Γ), and
union (for GAV-fragmented tables, §7.5).  SHIP is *not* a logical
operator — it is introduced by the site selector in phase 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Hashable, Iterator

from ..datatypes import DataType
from ..errors import OptimizerError
from ..expr import (
    AggregateCall,
    BaseColumn,
    ColumnRef,
    Expression,
    expression_dtype,
)


@dataclass(frozen=True)
class Field:
    """One column of an operator's output."""

    name: str
    dtype: DataType
    base: BaseColumn | None = None
    #: Estimated value width in bytes (for ship-cost estimation).
    width: int = 8

    def to_ref(self) -> ColumnRef:
        return ColumnRef(self.name, self.dtype, self.base)


class LogicalPlan:
    """Base class of all logical operators."""

    def children(self) -> tuple["LogicalPlan", ...]:
        raise NotImplementedError

    def with_children(self, children: tuple["LogicalPlan", ...]) -> "LogicalPlan":
        raise NotImplementedError

    def op_key(self) -> Hashable:
        """Hashable identity of this operator *excluding* children, used by
        the memo to deduplicate expressions over child groups."""
        raise NotImplementedError

    @property
    def fields(self) -> tuple[Field, ...]:
        raise NotImplementedError

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def field(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise OptimizerError(f"no field {name!r} in {type(self).__name__}")

    @property
    def row_width(self) -> int:
        return sum(f.width for f in self.fields)

    def walk(self) -> Iterator["LogicalPlan"]:
        yield self
        for child in self.children():
            yield from child.walk()

    @property
    def source_databases(self) -> frozenset[str]:
        """Databases whose stored tables feed this subplan."""
        out: set[str] = set()
        for node in self.walk():
            if isinstance(node, LogicalScan):
                out.add(node.database)
        return frozenset(out)


@dataclass(frozen=True)
class LogicalScan(LogicalPlan):
    """Scan of one stored table fragment.

    ``alias`` is the query-level correlation name; output field names are
    ``alias.column``.  ``database``/``location`` identify the fragment.
    """

    table: str
    database: str
    location: str
    alias: str
    scan_fields: tuple[Field, ...]

    def children(self) -> tuple[LogicalPlan, ...]:
        return ()

    def with_children(self, children: tuple[LogicalPlan, ...]) -> LogicalPlan:
        return self

    def op_key(self) -> Hashable:
        return ("scan", self.table, self.database, self.alias)

    @property
    def fields(self) -> tuple[Field, ...]:
        return self.scan_fields

    def __str__(self) -> str:
        return f"Scan({self.database}.{self.table} AS {self.alias} @ {self.location})"


@dataclass(frozen=True)
class LogicalFilter(LogicalPlan):
    """Selection σ_predicate."""

    child: LogicalPlan
    predicate: Expression

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: tuple[LogicalPlan, ...]) -> LogicalPlan:
        return LogicalFilter(children[0], self.predicate)

    def op_key(self) -> Hashable:
        return ("filter", self.predicate)

    @property
    def fields(self) -> tuple[Field, ...]:
        return self.child.fields

    def __str__(self) -> str:
        return f"Filter[{self.predicate}]"


def _field_width(dtype: DataType) -> int:
    from ..datatypes import default_width

    return default_width(dtype)


def project_output_fields(
    child: LogicalPlan,
    exprs: tuple[Expression, ...],
    names: tuple[str, ...],
) -> tuple[Field, ...]:
    """Derive the output fields of a projection."""
    child_fields = {f.name: f for f in child.fields}
    out: list[Field] = []
    for expr, name in zip(exprs, names):
        if isinstance(expr, ColumnRef):
            source = child_fields.get(expr.name)
            if source is None:
                raise OptimizerError(
                    f"projection references unknown field {expr.name!r}"
                )
            out.append(Field(name, source.dtype, source.base, source.width))
        else:
            dtype = expression_dtype(expr)
            out.append(Field(name, dtype, None, _field_width(dtype)))
    return tuple(out)


@dataclass(frozen=True)
class LogicalProject(LogicalPlan):
    """Projection Π: computes ``exprs`` and names them ``names``.

    Pure column-pruning projections (every expr a ColumnRef kept under its
    own name) are how the optimizer "masks" restricted attributes before a
    SHIP (paper Fig. 1(b), operator Π_{c,n}).
    """

    child: LogicalPlan
    exprs: tuple[Expression, ...]
    names: tuple[str, ...]

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: tuple[LogicalPlan, ...]) -> LogicalPlan:
        return LogicalProject(children[0], self.exprs, self.names)

    def op_key(self) -> Hashable:
        return ("project", self.exprs, self.names)

    @cached_property
    def _fields(self) -> tuple[Field, ...]:
        return project_output_fields(self.child, self.exprs, self.names)

    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    @property
    def is_pruning_only(self) -> bool:
        """True when this projection only selects/renames child columns."""
        return all(isinstance(e, ColumnRef) for e in self.exprs)

    def __str__(self) -> str:
        cols = ", ".join(
            name if isinstance(e, ColumnRef) and e.name == name else f"{e} AS {name}"
            for e, name in zip(self.exprs, self.names)
        )
        return f"Project[{cols}]"


@dataclass(frozen=True)
class LogicalJoin(LogicalPlan):
    """Inner join with an optional condition (None = cross product)."""

    left: LogicalPlan
    right: LogicalPlan
    condition: Expression | None

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[LogicalPlan, ...]) -> LogicalPlan:
        return LogicalJoin(children[0], children[1], self.condition)

    def op_key(self) -> Hashable:
        return ("join", self.condition)

    @property
    def fields(self) -> tuple[Field, ...]:
        return self.left.fields + self.right.fields

    def __str__(self) -> str:
        return f"Join[{self.condition}]"


@dataclass(frozen=True)
class LogicalAggregate(LogicalPlan):
    """Grouping/aggregation Γ.

    ``group_keys`` are references to child fields; ``aggregates`` are
    :class:`AggregateCall`\\ s over child fields; output fields are the
    group keys (keeping name and provenance) followed by the aggregate
    results named ``agg_names``.
    """

    child: LogicalPlan
    group_keys: tuple[ColumnRef, ...]
    aggregates: tuple[AggregateCall, ...]
    agg_names: tuple[str, ...]

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: tuple[LogicalPlan, ...]) -> LogicalPlan:
        return LogicalAggregate(
            children[0], self.group_keys, self.aggregates, self.agg_names
        )

    def op_key(self) -> Hashable:
        return ("aggregate", self.group_keys, self.aggregates, self.agg_names)

    @cached_property
    def _fields(self) -> tuple[Field, ...]:
        out: list[Field] = []
        for key in self.group_keys:
            out.append(self.child.field(key.name))
        for agg, name in zip(self.aggregates, self.agg_names):
            dtype = expression_dtype(agg)
            out.append(Field(name, dtype, None, _field_width(dtype)))
        return tuple(out)

    @property
    def fields(self) -> tuple[Field, ...]:
        return self._fields

    def __str__(self) -> str:
        keys = ", ".join(k.name for k in self.group_keys)
        aggs = ", ".join(f"{a} AS {n}" for a, n in zip(self.aggregates, self.agg_names))
        return f"Aggregate[by: {keys}][{aggs}]"


@dataclass(frozen=True)
class LogicalUnion(LogicalPlan):
    """UNION ALL of fragments of one GAV-mapped global table (§7.5)."""

    inputs: tuple[LogicalPlan, ...]

    def children(self) -> tuple[LogicalPlan, ...]:
        return self.inputs

    def with_children(self, children: tuple[LogicalPlan, ...]) -> LogicalPlan:
        return LogicalUnion(children)

    def op_key(self) -> Hashable:
        return ("union", len(self.inputs))

    @property
    def fields(self) -> tuple[Field, ...]:
        # Fragments share names and types; provenance differs per fragment,
        # so the union's fields drop provenance (a value may come from any
        # fragment — the policy evaluator must consider them all).
        first = self.inputs[0].fields
        return tuple(Field(f.name, f.dtype, None, f.width) for f in first)

    def __str__(self) -> str:
        return f"UnionAll[{len(self.inputs)} inputs]"


@dataclass(frozen=True)
class LogicalSort(LogicalPlan):
    """ORDER BY ... LIMIT at the root of a plan.

    Sort keys are (field name, descending) pairs.  Sort/limit stay outside
    the memo: the optimizer strips them, optimizes the core, and re-applies
    them at the result site.
    """

    child: LogicalPlan
    sort_keys: tuple[tuple[str, bool], ...]
    limit: int | None = None

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def with_children(self, children: tuple[LogicalPlan, ...]) -> LogicalPlan:
        return LogicalSort(children[0], self.sort_keys, self.limit)

    def op_key(self) -> Hashable:
        return ("sort", self.sort_keys, self.limit)

    @property
    def fields(self) -> tuple[Field, ...]:
        return self.child.fields

    def __str__(self) -> str:
        keys = ", ".join(f"{n} DESC" if d else n for n, d in self.sort_keys)
        suffix = f" LIMIT {self.limit}" if self.limit is not None else ""
        return f"Sort[{keys}]{suffix}"
