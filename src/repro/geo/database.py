"""In-memory geo-distributed data store.

Holds the actual rows of every stored table fragment, keyed by
``(database, table)``.  This plays the role of the paper's per-location
DBMS gateways: the execution engine reads table data from here and the
SHIP operator accounts for bytes crossing location borders.

Replicated tables (:meth:`repro.catalog.Catalog.add_replica`) need no
data-layer support: the key is location-independent, so a ``TableScan``
placed at a replica site reads exactly the same rows as one at the
primary — the simulation's stand-in for a perfectly synchronized
replica, and the reason replica failover is row-identical by
construction (declared staleness bounds model *allowed* lag; the
simulated copies never actually diverge).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..catalog import Catalog, StoredTable, stats_from_rows
from ..datatypes import value_matches
from ..errors import CatalogError, ExecutionError


Row = tuple


class GeoDatabase:
    """Rows for every stored table of a :class:`~repro.catalog.Catalog`."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._data: dict[tuple[str, str], list[Row]] = {}
        self._columns: dict[tuple[str, str], list[tuple]] = {}

    def load(
        self,
        database: str,
        table: str,
        rows: Iterable[Sequence[Any]],
        update_stats: bool = True,
        validate: bool = False,
    ) -> StoredTable:
        """Load ``rows`` into the fragment of ``table`` stored in
        ``database``, optionally recomputing its statistics.

        With ``validate=True`` every value is checked against the column
        type (slow; intended for tests and small datasets).
        """
        stored = self.catalog.stored_table(database, table)
        materialized = [tuple(row) for row in rows]
        width = len(stored.schema.columns)
        for row in materialized:
            if len(row) != width:
                raise ExecutionError(
                    f"row width {len(row)} != schema width {width} "
                    f"for {stored.qualified_name}"
                )
        if validate:
            for row in materialized:
                for col, value in zip(stored.schema.columns, row):
                    if not value_matches(col.dtype, value):
                        raise ExecutionError(
                            f"value {value!r} invalid for column "
                            f"{stored.qualified_name}.{col.name} ({col.dtype})"
                        )
        self._data[(database, table.lower())] = materialized
        self._columns.pop((database, table.lower()), None)
        if update_stats:
            stored.stats = stats_from_rows(stored.schema, materialized)
        return stored

    def rows(self, database: str, table: str) -> list[Row]:
        try:
            return self._data[(database, table.lower())]
        except KeyError:
            raise CatalogError(
                f"no data loaded for {database}.{table}"
            ) from None

    def columns(self, database: str, table: str) -> list[tuple]:
        """The stored fragment in columnar form (one tuple per column),
        transposed once and cached — the batch executor's scan path.
        Callers must treat the columns as read-only; the cache is
        invalidated when :meth:`load` replaces the fragment."""
        key = (database, table.lower())
        cached = self._columns.get(key)
        if cached is None:
            rows = self.rows(database, table)
            if rows:
                cached = list(zip(*rows))
            else:
                width = len(self.catalog.stored_table(database, table).schema.columns)
                cached = [() for _ in range(width)]
            self._columns[key] = cached
        return cached

    def has_data(self, database: str, table: str) -> bool:
        return (database, table.lower()) in self._data

    def row_count(self, database: str, table: str) -> int:
        return len(self.rows(database, table))
