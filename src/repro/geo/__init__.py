"""Geo-distribution substrate: network cost model and data store."""

from .network import (
    FaultAwareNetwork,
    FaultModel,
    LinkCost,
    LinkGovernor,
    NetworkModel,
    synthetic_network,
)
from .database import GeoDatabase

__all__ = [
    "FaultAwareNetwork",
    "FaultModel",
    "LinkCost",
    "LinkGovernor",
    "NetworkModel",
    "synthetic_network",
    "GeoDatabase",
]
