"""Geo-distribution substrate: network cost model and data store."""

from .network import LinkCost, NetworkModel, synthetic_network
from .database import GeoDatabase

__all__ = ["LinkCost", "NetworkModel", "synthetic_network", "GeoDatabase"]
