"""Wide-area network model.

The paper (§7.4, citing Deshpande & Hellerstein's message cost model)
simulates a network where shipping ``b`` bytes from site *i* to site *j*
takes ``α_ij + β_ij · b`` time: ``α_ij`` is the per-message start-up cost
(obtained in the paper from ping round-trips) and ``β_ij`` the per-byte
cost (from measured transfer rates).

We have no WAN, so :func:`synthetic_network` builds a deterministic matrix
from location names: geographically "far" pairs get larger α and β.  Plan
*quality* in the paper is reported as cost *scaled* relative to the
traditional optimizer's plan, so only the relative magnitudes matter.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Protocol, Sequence

from ..errors import (
    CircuitOpenError,
    SiteUnavailableError,
    TransferError,
    UnknownLinkError,
)


@dataclass(frozen=True)
class LinkCost:
    """Cost coefficients for one directed site pair."""

    alpha: float  # start-up cost, seconds per message
    beta: float  # transfer cost, seconds per byte


class NetworkModel:
    """Directed ``(src, dst) -> LinkCost`` matrix with a local fast path.

    Transfers within one location are free (``alpha = beta = 0``), matching
    the paper where SHIP operators only appear between sites.

    With ``strict=True`` an unmodeled pair raises a typed
    :class:`~repro.errors.UnknownLinkError` instead of substituting the
    pessimistic default — both SHIP paths (the row executor's
    ``record_ship`` and the batch executor's column-wise accounting)
    price transfers through :meth:`link`, so a mis-deployed catalog
    fails identically from either backend rather than surfacing as a
    bare lookup failure somewhere downstream.
    """

    def __init__(
        self,
        links: dict[tuple[str, str], LinkCost] | None = None,
        strict: bool = False,
    ) -> None:
        self._links: dict[tuple[str, str], LinkCost] = dict(links or {})
        self.strict = strict

    def set_link(self, src: str, dst: str, alpha: float, beta: float) -> None:
        self._links[(src, dst)] = LinkCost(alpha, beta)

    def has_link(self, src: str, dst: str) -> bool:
        """Whether ``(src, dst)`` is explicitly modeled (as opposed to
        falling back to the pessimistic default link)."""
        return (src, dst) in self._links

    def link(self, src: str, dst: str) -> LinkCost:
        if src == dst:
            return LinkCost(0.0, 0.0)
        cost = self._links.get((src, dst))
        if cost is None:
            if self.strict:
                raise UnknownLinkError(
                    f"no link modeled from {src!r} to {dst!r} "
                    f"(strict network model)",
                    source=src,
                    target=dst,
                )
            # Unknown pair: use a pessimistic default so plans do not get a
            # free ride over unmodeled links.
            return LinkCost(alpha=0.5, beta=2e-7)
        return cost

    def transfer_time(self, src: str, dst: str, nbytes: float) -> float:
        """Time (seconds) to ship ``nbytes`` from ``src`` to ``dst``."""
        cost = self.link(src, dst)
        if src == dst:
            return 0.0
        return cost.alpha + cost.beta * nbytes

    def chunked_transfer_time(
        self, src: str, dst: str, chunk_sizes: "Sequence[float]"
    ) -> list[float]:
        """Per-chunk send durations for one logical transfer split into
        ``chunk_sizes`` byte chunks.

        The link's α latency is the cost of *establishing* the
        connection, so it is charged once — on the first chunk — and
        every chunk pays only its own ``β·bytes`` after that; the
        durations sum to exactly ``transfer_time(sum(chunk_sizes))``.
        Local moves are free per chunk, like the monolithic path."""
        if src == dst:
            return [0.0 for _ in chunk_sizes]
        cost = self.link(src, dst)
        return [
            (cost.alpha if i == 0 else 0.0) + cost.beta * nbytes
            for i, nbytes in enumerate(chunk_sizes)
        ]


class FaultModel(Protocol):
    """What a fault schedule must answer for the network layer.

    Implemented by :class:`repro.execution.faults.FaultPlan`; declared
    structurally here so ``geo`` stays independent of ``execution``."""

    def site_down(self, site: str, when: float) -> bool: ...

    def link_down(self, source: str, target: str, when: float) -> object | None: ...

    def link_flaky(self, source: str, target: str, when: float) -> object | None: ...

    def slow_factor(self, source: str, target: str, when: float) -> float: ...


class LinkGovernor(Protocol):
    """What a per-link circuit-breaker registry must answer for the
    network layer.

    Implemented by :class:`repro.server.BreakerRegistry`; declared
    structurally here so ``geo`` stays independent of ``server``."""

    def allow(self, source: str, target: str, when: float) -> bool: ...

    def record_success(self, source: str, target: str, when: float) -> None: ...

    def record_failure(self, source: str, target: str, when: float) -> None: ...


class FaultAwareNetwork(NetworkModel):
    """A :class:`NetworkModel` view that consults a fault schedule.

    ``transfer_time`` (the time-free view used for planning and
    fault-free accounting) delegates to the base model unchanged;
    :meth:`attempt_transfer` is the runtime entry point the fragment
    scheduler calls per attempt at a simulated instant, surfacing
    injected faults as the typed errors of :mod:`repro.errors`:

    * endpoint site crashed → :class:`SiteUnavailableError`;
    * link down → :class:`TransferError` (``transient`` only when the
      outage has a known end);
    * link flaky → transient :class:`TransferError`;
    * otherwise the attempt succeeds, taking the base transfer time
      multiplied by any active :class:`~repro.execution.faults.SlowLink`
      degradation.

    When constructed with a ``breakers`` registry (a :class:`LinkGovernor`,
    e.g. the query server's per-link circuit breakers), every cross-site
    attempt first asks the breaker for the link: an open breaker
    fast-fails the attempt with :class:`~repro.errors.CircuitOpenError`
    (never transient — the retry loop must not hammer a known-bad link),
    and every real attempt's outcome is reported back so the breaker's
    failure-rate window tracks the link's health on the simulated clock.

    Local moves (``src == dst``) never touch the WAN and only fail when
    the site itself is down.
    """

    def __init__(
        self,
        base: NetworkModel,
        faults: FaultModel,
        breakers: "LinkGovernor | None" = None,
    ) -> None:
        super().__init__(base._links, strict=base.strict)
        self.base = base
        self.faults = faults
        self.breakers = breakers

    def site_available(self, site: str, when: float) -> bool:
        return not self.faults.site_down(site, when)

    def attempt_transfer(
        self, src: str, dst: str, nbytes: float, when: float
    ) -> float:
        """Simulate one transfer attempt starting at simulated ``when``;
        returns the attempt's duration in seconds or raises a typed
        fault error."""
        for site in (src, dst):
            if self.faults.site_down(site, when):
                raise SiteUnavailableError(
                    f"site {site!r} is down at t={when:.3f}s", site=site
                )
        if src == dst:
            return 0.0
        if self.breakers is not None and not self.breakers.allow(src, dst, when):
            raise CircuitOpenError(
                f"circuit breaker for {src} -> {dst} is open at t={when:.3f}s",
                source=src,
                target=dst,
            )
        outage = self.faults.link_down(src, dst, when)
        if outage is not None:
            if self.breakers is not None:
                self.breakers.record_failure(src, dst, when)
            transient = getattr(outage, "duration", None) is not None
            raise TransferError(
                f"link {src} -> {dst} is down at t={when:.3f}s",
                source=src,
                target=dst,
                transient=transient,
            )
        if self.faults.link_flaky(src, dst, when) is not None:
            if self.breakers is not None:
                self.breakers.record_failure(src, dst, when)
            raise TransferError(
                f"transient failure on {src} -> {dst} at t={when:.3f}s",
                source=src,
                target=dst,
                transient=True,
            )
        if self.breakers is not None:
            self.breakers.record_success(src, dst, when)
        return self.base.transfer_time(src, dst, nbytes) * self.faults.slow_factor(
            src, dst, when
        )

    def attempt_chunk_transfer(
        self, src: str, dst: str, nbytes: float, when: float, include_alpha: bool
    ) -> float:
        """Simulate sending one chunk of a streamed transfer at ``when``.

        Faults, breakers, and slow-link degradation are consulted exactly
        as in :meth:`attempt_transfer`; the only difference is the cost
        shape: the link's α start-up is paid only when ``include_alpha``
        is set (the connection's first chunk, or the first chunk after a
        fault broke the connection), every other chunk pays ``β·bytes``
        alone — so a fault-free streamed transfer bills exactly
        ``α + β·wire_bytes``, never ``K·α``."""
        for site in (src, dst):
            if self.faults.site_down(site, when):
                raise SiteUnavailableError(
                    f"site {site!r} is down at t={when:.3f}s", site=site
                )
        if src == dst:
            return 0.0
        if self.breakers is not None and not self.breakers.allow(src, dst, when):
            raise CircuitOpenError(
                f"circuit breaker for {src} -> {dst} is open at t={when:.3f}s",
                source=src,
                target=dst,
            )
        outage = self.faults.link_down(src, dst, when)
        if outage is not None:
            if self.breakers is not None:
                self.breakers.record_failure(src, dst, when)
            transient = getattr(outage, "duration", None) is not None
            raise TransferError(
                f"link {src} -> {dst} is down at t={when:.3f}s",
                source=src,
                target=dst,
                transient=transient,
            )
        if self.faults.link_flaky(src, dst, when) is not None:
            if self.breakers is not None:
                self.breakers.record_failure(src, dst, when)
            raise TransferError(
                f"transient failure on {src} -> {dst} at t={when:.3f}s",
                source=src,
                target=dst,
                transient=True,
            )
        if self.breakers is not None:
            self.breakers.record_success(src, dst, when)
        cost = self.base.link(src, dst)
        seconds = (cost.alpha if include_alpha else 0.0) + cost.beta * nbytes
        return seconds * self.faults.slow_factor(src, dst, when)


def _stable_fraction(token: str) -> float:
    """Deterministic pseudo-random fraction in [0, 1) from a string."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def synthetic_network(
    locations: Iterable[str],
    base_alpha: float = 0.02,
    alpha_per_unit: float = 0.15,
    base_beta: float = 1e-8,
    beta_per_unit: float = 8e-8,
) -> NetworkModel:
    """Build a deterministic, *metric* WAN matrix over ``locations``.

    Each location gets a stable position on the unit circle (derived from
    its name); link costs grow with euclidean distance:
    ``α = base_alpha + alpha_per_unit · d`` (ping-like 20–320 ms RTTs) and
    ``β = base_beta + beta_per_unit · d`` (≈100 Mbit/s down to ≈6 MB/s).
    Because distance is a metric and the bases are positive, relaying a
    transfer through a third site never beats the direct link — as on a
    real WAN, where the paper derived α from pings and β from measured
    transfers (§7.4).
    """
    import math

    network = NetworkModel()
    locs = list(locations)
    positions = {
        name: (
            math.cos(2 * math.pi * _stable_fraction("pos:" + name)),
            math.sin(2 * math.pi * _stable_fraction("pos:" + name)),
        )
        for name in locs
    }
    for i, src in enumerate(locs):
        for j, dst in enumerate(locs):
            if i == j:
                continue
            (x1, y1), (x2, y2) = positions[src], positions[dst]
            distance = math.hypot(x1 - x2, y1 - y2) / 2.0  # normalize to [0,1]
            network.set_link(
                src,
                dst,
                alpha=base_alpha + alpha_per_unit * distance,
                beta=base_beta + beta_per_unit * distance,
            )
    return network
