"""Shared parameter validators for tuning knobs.

Every sizing/timeout knob in the system — worker counts, retry budgets,
fragment timeouts, and the query server's ``--concurrency`` /
``--queue-depth`` / ``--deadline`` flags — funnels through these three
helpers, so an out-of-range value always fails with the same typed
:class:`~repro.errors.InvalidParameterError` and the same message shape
("<name> must be ..., got <value>") instead of an opaque crash deep
inside :class:`~concurrent.futures.ThreadPoolExecutor`, a bare
``argparse`` type error, or a silently-accepted nonsense value.
"""

from __future__ import annotations

from .errors import InvalidParameterError


def validate_positive_int(value: object, name: str) -> int:
    """``value`` as an ``int >= 1``; bools and non-integers are rejected
    (``True`` is a valid ``int`` to Python but never a sane knob)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidParameterError(
            f"{name} must be a positive integer, got {value!r}"
        )
    if value < 1:
        raise InvalidParameterError(
            f"{name} must be a positive integer, got {value}"
        )
    return value


def validate_non_negative_int(value: object, name: str) -> int:
    """``value`` as an ``int >= 0`` (retry budgets: 0 disables)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidParameterError(
            f"{name} must be a non-negative integer, got {value!r}"
        )
    if value < 0:
        raise InvalidParameterError(
            f"{name} must be a non-negative integer, got {value}"
        )
    return value


def validate_timeout(value: object, name: str) -> float | None:
    """``value`` as a strictly positive number of (simulated) seconds,
    or ``None`` meaning "no limit".  Zero is rejected rather than being
    a surprising alias for either extreme."""
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidParameterError(
            f"{name} must be a positive number of seconds, got {value!r}"
        )
    if value != value or value <= 0:  # NaN or non-positive
        raise InvalidParameterError(
            f"{name} must be a positive number of seconds, got {value}"
        )
    return float(value)
