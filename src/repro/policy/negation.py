"""Negative policy statements under a closed-world assumption.

The paper's disclosure model (§4) is conservative: nothing may be shipped
anywhere unless a policy expression allows it.  It notes that "in some
cases negative instances, i.e., specifying what is not allowed, may be
more convenient.  This can be handled by an additional preprocessing step
under a closed world assumption."  This module is that preprocessing
step:

.. code-block:: text

    deny attr, attr from table to location, location
    deny *          from table to *
    deny attr       from table to location where condition

:func:`compile_negative_policies` closes the world over a set of DENY
statements: starting from "everything of this table may go everywhere"
it subtracts the denied (attribute, location) pairs and emits ordinary
*positive* :class:`~repro.policy.PolicyExpression` objects, grouped by
identical destination sets.

Conditional denies (``where ...``) are handled conservatively: because a
basic positive expression cannot say "all rows except these", a
conditional deny removes the destination for the attribute entirely.
This over-restricts — which is the sound direction for compliance.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..catalog import Catalog
from ..errors import PolicySyntaxError
from ..expr import BaseColumn
from ..sql.lexer import TokenStream, tokenize
from ..sql.parser import _parse_expr
from .catalog import PolicyCatalog
from .language import PolicyExpression
from .parser import _resolve_tables


@dataclass(frozen=True)
class NegativePolicy:
    """One parsed DENY statement."""

    database: str
    table: str
    attributes: frozenset[str] | None  # None = all columns
    locations: frozenset[str] | None  # None = all locations
    conditional: bool = False
    source_text: str = ""

    def denies(self, column: str, location: str) -> bool:
        if self.attributes is not None and column not in self.attributes:
            return False
        if self.locations is not None and location not in self.locations:
            return False
        return True


def parse_negative(
    text: str, catalog: Catalog, default_database: str | None = None
) -> NegativePolicy:
    """Parse one ``deny ... from ... to ...`` statement."""
    stream = TokenStream(tokenize(text))
    stream.expect_keyword("DENY")
    attributes: frozenset[str] | None
    if stream.accept_symbol("*"):
        attributes = None
    else:
        names = [stream.expect_ident().text.lower()]
        while stream.accept_symbol(","):
            names.append(stream.expect_ident().text.lower())
        attributes = frozenset(names)
    stream.expect_keyword("FROM")
    first = stream.expect_ident().text
    db_name: str | None = None
    table_name = first
    if stream.accept_symbol("."):
        db_name = first
        table_name = stream.expect_ident().text
    stream.expect_keyword("TO")
    locations: frozenset[str] | None
    if stream.accept_symbol("*"):
        locations = None
    else:
        locs = [stream.expect_ident().text]
        while stream.accept_symbol(","):
            locs.append(stream.expect_ident().text)
        locations = frozenset(locs)
    conditional = False
    if stream.accept_keyword("WHERE"):
        _parse_expr(stream)  # validated but treated conservatively
        conditional = True
    stream.expect_end()

    database, stored = _resolve_tables(
        catalog, [(db_name, table_name, table_name.lower())], default_database
    )
    schema = stored[0].schema
    if attributes is not None:
        for name in attributes:
            if not schema.has_column(name):
                raise PolicySyntaxError(
                    f"unknown column {name!r} in DENY for table {table_name!r}"
                )
    return NegativePolicy(
        database=database,
        table=schema.name.lower(),
        attributes=attributes,
        locations=locations,
        conditional=conditional,
        source_text=" ".join(text.split()),
    )


def compile_negative_policies(
    catalog: Catalog,
    denies: list[NegativePolicy],
    all_locations: frozenset[str] | None = None,
) -> list[PolicyExpression]:
    """Close the world: everything not denied is allowed.

    For every (database, table) mentioned in ``denies``, each column's
    allowed destination set starts as all locations and loses every
    location a DENY covers; columns with identical remaining sets are
    merged into one positive basic expression.
    """
    locations = all_locations or frozenset(catalog.locations)
    by_table: dict[tuple[str, str], list[NegativePolicy]] = defaultdict(list)
    for deny in denies:
        by_table[(deny.database, deny.table)].append(deny)

    expressions: list[PolicyExpression] = []
    for (database, table), table_denies in sorted(by_table.items()):
        schema = catalog.stored_table(database, table).schema
        allowed: dict[str, frozenset[str]] = {}
        for column in schema.column_names:
            remaining = set(locations)
            for deny in table_denies:
                denied_locations = (
                    locations if deny.locations is None else deny.locations
                )
                for location in list(remaining):
                    if location in denied_locations and deny.denies(
                        column.lower(), location
                    ):
                        remaining.discard(location)
            allowed[column.lower()] = frozenset(remaining)
        groups: dict[frozenset[str], list[str]] = defaultdict(list)
        for column, destinations in allowed.items():
            if destinations:
                groups[destinations].append(column)
        for destinations, columns in sorted(
            groups.items(), key=lambda kv: sorted(kv[1])
        ):
            expressions.append(
                PolicyExpression(
                    database=database,
                    tables=(table,),
                    ship_attributes=frozenset(
                        BaseColumn(database, table, c) for c in columns
                    ),
                    destinations=destinations,
                    source_text=(
                        f"ship {', '.join(sorted(columns))} from {table} "
                        f"to {', '.join(sorted(destinations))} "
                        "-- compiled from DENY statements (closed world)"
                    ),
                )
            )
    return expressions


def apply_closed_world(
    policies: PolicyCatalog,
    deny_texts: list[str],
    default_database: str | None = None,
) -> list[PolicyExpression]:
    """Parse DENY statements, compile them, and register the resulting
    positive expressions in ``policies``.  Returns what was registered."""
    denies = [
        parse_negative(text, policies.catalog, default_database)
        for text in deny_texts
    ]
    compiled = compile_negative_policies(policies.catalog, denies)
    for expression in compiled:
        policies.add(expression)
    return compiled
