"""Describing a local subplan for policy evaluation.

Algorithm 1 of the paper evaluates a *query* ``q`` against policy
expressions using: its output attributes ``A_q``, its predicate ``P_q``,
whether it aggregates, its grouping attributes ``G_q``, and the aggregate
function ``f_a`` applied to each output attribute.  The optimizer however
works with *plans*.  This module analyzes a logical subplan that touches a
single database and extracts exactly those ingredients, tracking attribute
lineage through projections and aggregations.

Conservative choices (each keeps the evaluator sound — it can only
under-approximate the legal location set):

* An attribute aggregated at several levels records *all* functions
  applied; a policy expression must allow every one of them.
* A value that was aggregated and then used as a grouping key upstream is
  still treated as aggregated with its recorded functions.
* Output expressions with no base attributes (literals, COUNT(*)) expose
  no attribute and therefore grant nothing on their own.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import OptimizerError
from ..expr import (
    AggregateFunction,
    BaseColumn,
    Expression,
    conjunction,
    split_conjuncts,
)
from ..plan import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalUnion,
)


@dataclass(frozen=True)
class Lineage:
    """Lineage of one output field: base attributes it derives from and the
    aggregate functions applied along the way (empty = raw value)."""

    bases: frozenset[BaseColumn]
    aggs: frozenset[AggregateFunction] = frozenset()

    @property
    def is_raw(self) -> bool:
        return not self.aggs


@dataclass(frozen=True)
class LocalQuery:
    """The evaluator's view of a single-database subplan.

    ``output`` maps each output field name to its lineage; ``group_bases``
    is ``G_q`` (grouping attributes of the outermost aggregation, ``None``
    when the subplan does not aggregate); ``predicate`` is the conjunction
    of every filter and join predicate in the subplan (``P_q``).
    """

    database: str
    output: tuple[tuple[str, Lineage], ...]
    predicate: Expression | None
    is_aggregate: bool
    group_bases: frozenset[BaseColumn] = frozenset()

    @property
    def output_attributes(self) -> frozenset[BaseColumn]:
        """``A_q``: every base attribute mentioned in output expressions."""
        out: set[BaseColumn] = set()
        for _name, lineage in self.output:
            out |= lineage.bases
        return frozenset(out)

    def lineages_of(self, attribute: BaseColumn) -> list[Lineage]:
        return [
            lin for _name, lin in self.output if attribute in lin.bases
        ]


def describe_local_query(plan: LogicalPlan) -> LocalQuery:
    """Analyze a subplan whose scans all read one database.

    Raises :class:`OptimizerError` when the subplan spans databases (the
    caller — annotation rule AR4 — must only invoke this on local
    subplans).
    """
    databases = plan.source_databases
    if len(databases) != 1:
        raise OptimizerError(
            f"describe_local_query needs a single-database subplan, got {sorted(databases)}"
        )

    predicates: list[Expression] = []
    state = _analyze(plan, predicates)
    predicate = conjunction(predicates) if predicates else None
    if predicate is not None and not split_conjuncts(predicate):
        predicate = None
    return LocalQuery(
        database=next(iter(databases)),
        output=tuple(state.field_lineage.items()),
        predicate=predicate,
        is_aggregate=state.is_aggregate,
        group_bases=state.group_bases,
    )


@dataclass
class _State:
    field_lineage: dict[str, Lineage]
    is_aggregate: bool = False
    group_bases: frozenset[BaseColumn] = frozenset()


def _expr_lineage(expr: Expression, child: dict[str, Lineage]) -> Lineage:
    bases: set[BaseColumn] = set()
    aggs: set[AggregateFunction] = set()
    for name in expr.references():
        lineage = child.get(name)
        if lineage is None:
            continue
        bases |= lineage.bases
        aggs |= lineage.aggs
    return Lineage(frozenset(bases), frozenset(aggs))


def _analyze(plan: LogicalPlan, predicates: list[Expression]) -> _State:
    if isinstance(plan, LogicalScan):
        lineage = {
            f.name: Lineage(frozenset([f.base]) if f.base else frozenset())
            for f in plan.fields
        }
        return _State(lineage)
    if isinstance(plan, LogicalFilter):
        state = _analyze(plan.child, predicates)
        predicates.extend(split_conjuncts(plan.predicate))
        return state
    if isinstance(plan, LogicalJoin):
        left = _analyze(plan.left, predicates)
        right = _analyze(plan.right, predicates)
        if plan.condition is not None:
            predicates.extend(split_conjuncts(plan.condition))
        lineage = dict(left.field_lineage)
        lineage.update(right.field_lineage)
        group_bases = left.group_bases | right.group_bases
        return _State(
            lineage,
            is_aggregate=left.is_aggregate or right.is_aggregate,
            group_bases=group_bases,
        )
    if isinstance(plan, LogicalProject):
        state = _analyze(plan.child, predicates)
        lineage = {
            name: _expr_lineage(expr, state.field_lineage)
            for expr, name in zip(plan.exprs, plan.names)
        }
        return _State(lineage, state.is_aggregate, state.group_bases)
    if isinstance(plan, LogicalAggregate):
        state = _analyze(plan.child, predicates)
        lineage: dict[str, Lineage] = {}
        group_bases: set[BaseColumn] = set()
        for key in plan.group_keys:
            key_lineage = state.field_lineage.get(
                key.name, Lineage(frozenset())
            )
            lineage[key.name] = key_lineage
            group_bases |= key_lineage.bases
        for agg, name in zip(plan.aggregates, plan.agg_names):
            if agg.argument is None:  # COUNT(*)
                lineage[name] = Lineage(frozenset(), frozenset([agg.func]))
                continue
            arg_lineage = _expr_lineage(agg.argument, state.field_lineage)
            lineage[name] = Lineage(
                arg_lineage.bases, arg_lineage.aggs | {agg.func}
            )
        # The outermost aggregate determines G_q: what this subplan's
        # output is grouped by.
        return _State(lineage, is_aggregate=True, group_bases=frozenset(group_bases))
    if isinstance(plan, LogicalSort):
        return _analyze(plan.child, predicates)
    if isinstance(plan, LogicalUnion):
        raise OptimizerError(
            "a UNION of fragments spans databases and is never a local query"
        )
    raise OptimizerError(f"unknown logical operator {type(plan).__name__}")
