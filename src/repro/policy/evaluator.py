"""The policy evaluation algorithm 𝒜 (paper §5, Algorithm 1).

Given a local query ``q`` (described by :class:`LocalQuery`) over database
``D`` with policy expressions ``P``, compute the set of locations the
query's output can legally be shipped to:

1. associate an (initially empty) location set ``L_a`` with every output
   attribute ``a ∈ A_q``;
2. for every expression ``e`` whose ship/group attributes overlap ``A_q``
   and whose predicate is implied by the query predicate
   (``P_q ⇒ P_e``):

   * basic expression → ``L_a ∪= L_e`` for ``a ∈ A_q ∩ A_e`` (this also
     covers aggregate queries — the query output is *more* aggregated
     than what the expression already allows);
   * aggregate expression and aggregate query with ``G_q ⊆ G_e`` →
     grant ``L_e`` to grouping attributes in ``G_e`` and to ship
     attributes whose aggregate functions are all in ``F_e``;

3. return ``⋂_{a ∈ A_q} L_a`` (empty if any attribute got nothing).

The database's *home* location is always legal — data already resides
there — which is how the paper uses 𝒜 in Definition 1 (§3.2 example:
``𝒜(C, D_N, P_N) = {N}``).  Pass ``include_home=False`` to get the bare
policy-derived set (the form used in Table 1 of the paper).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from ..expr import BaseColumn, Expression, implies
from .catalog import PolicyCatalog
from .language import PolicyExpression
from .localquery import LocalQuery


@dataclass
class PolicyEvalStats:
    """Counters for the scalability study (Fig. 7's η value).

    ``eta`` counts how often an expression was *applied* — one or more of
    its ship attributes appear in the query output and the implication
    test passed (Algorithm 1 reaching line 4).

    ``implication_cache_hits`` / ``implication_cache_misses`` split
    ``implication_checks`` by whether the (query predicate, policy
    predicate) pair had already been decided — only misses pay for a
    structural implication proof, so the hit rate is what makes repeated
    evaluation over a large policy set affordable.

    When the evaluator outlives a single optimization, counter windows
    are opened with :meth:`PolicyEvaluator.reset_stats`, which keeps the
    implication cache but re-tags it: a hit on an entry decided in an
    *earlier* window counts as ``implication_cache_warm_hits``, not as
    ``implication_cache_hits``.  Per-window stats therefore stay
    meaningful — ``implication_checks == implication_cache_hits +
    implication_cache_warm_hits + implication_cache_misses`` holds for
    every window, and intra-window amortization is no longer conflated
    with cross-query amortization.
    """

    evaluations: int = 0
    expressions_scanned: int = 0
    implication_checks: int = 0
    implication_passes: int = 0
    implication_cache_hits: int = 0
    implication_cache_misses: int = 0
    #: Hits on cache entries decided before the current stats window.
    implication_cache_warm_hits: int = 0
    eta: int = 0

    def reset(self) -> None:
        self.evaluations = 0
        self.expressions_scanned = 0
        self.implication_checks = 0
        self.implication_passes = 0
        self.implication_cache_hits = 0
        self.implication_cache_misses = 0
        self.implication_cache_warm_hits = 0
        self.eta = 0


class PolicyEvaluator:
    """Evaluates 𝒜(q, D, P) against a :class:`PolicyCatalog`."""

    def __init__(self, policies: PolicyCatalog) -> None:
        self.policies = policies
        self.stats = PolicyEvalStats()
        #: (query predicate, policy predicate) -> (verdict, generation).
        #: The generation tags which stats window decided the entry; see
        #: :meth:`reset_stats`.
        self._implication_cache: dict[
            tuple[Expression | None, Expression | None], tuple[bool, int]
        ] = {}
        self._generation = 0
        #: When set (see :meth:`collecting_dependencies`), the pid of
        #: every policy expression scanned by an evaluation is added
        #: here — the read set of a derivation, used by the plan cache
        #: for precise hot-reload invalidation.
        self._dependency_sink: set[int] | None = None

    # -- public API ----------------------------------------------------------

    def reset_stats(self, clear_implication_cache: bool = False) -> None:
        """Open a fresh stats window.

        The implication cache is *kept* (its verdicts stay valid — they
        are keyed by immutable predicate pairs) but re-tagged: hits on
        entries decided in earlier windows are counted as
        ``implication_cache_warm_hits``.  Pass
        ``clear_implication_cache=True`` to also drop the cache (e.g.
        for a from-scratch measurement)."""
        self.stats.reset()
        if clear_implication_cache:
            self._implication_cache.clear()
        else:
            self._generation += 1

    @contextmanager
    def collecting_dependencies(self, sink: set[int]) -> Iterator[set[int]]:
        """Collect the pids of every policy expression scanned by
        evaluations inside the block into ``sink``."""
        previous = self._dependency_sink
        self._dependency_sink = sink
        try:
            yield sink
        finally:
            self._dependency_sink = previous

    def evaluate(self, query: LocalQuery, include_home: bool = True) -> frozenset[str]:
        """Return the legal shipping destinations of ``query``'s output."""
        self.stats.evaluations += 1
        all_locations = self.policies.all_locations
        home = self._home_location(query.database)
        home_set = frozenset([home]) if (include_home and home) else frozenset()

        attributes = query.output_attributes
        if not attributes:
            # No base attribute is exposed (e.g. COUNT(*) only): grant
            # nothing beyond the home location.  Conservative; see module
            # docstring of localquery.
            return home_set

        granted: dict[BaseColumn, set[str]] = {a: set() for a in attributes}
        relevant = self._relevant_expressions(attributes)
        if self._dependency_sink is not None:
            for expression in relevant:
                pid = self.policies.id_of(expression)
                if pid is not None:
                    self._dependency_sink.add(pid)
        for expression in relevant:
            self.stats.expressions_scanned += 1
            if not self._implies(query.predicate, expression.predicate):
                continue
            destinations = expression.destinations_resolved(all_locations)
            applied = False
            for attribute in attributes:
                if self._expression_grants(expression, query, attribute):
                    granted[attribute] |= destinations
                    applied = True
            if applied:
                self.stats.eta += 1

        result: frozenset[str] | None = None
        for attribute in attributes:
            locations = frozenset(granted[attribute])
            result = locations if result is None else (result & locations)
            if not result and not home_set:
                return frozenset()
        assert result is not None
        return result | home_set

    # -- internals -----------------------------------------------------------

    def _home_location(self, database: str) -> str | None:
        try:
            return self.policies.catalog.database(database).location
        except Exception:  # unknown database: no home shortcut
            return None

    def _relevant_expressions(
        self, attributes: frozenset[BaseColumn]
    ) -> list[PolicyExpression]:
        tables = {(a.database, a.table) for a in attributes}
        seen: list[PolicyExpression] = []
        for database, table in sorted(tables):
            for expression in self.policies.for_table(database, table):
                if all(expression is not s for s in seen):
                    seen.append(expression)
        return seen

    def _implies(
        self, query_predicate: Expression | None, policy_predicate: Expression | None
    ) -> bool:
        self.stats.implication_checks += 1
        key = (query_predicate, policy_predicate)
        entry = self._implication_cache.get(key)
        if entry is None:
            self.stats.implication_cache_misses += 1
            verdict = implies(query_predicate, policy_predicate)
            self._implication_cache[key] = (verdict, self._generation)
        else:
            verdict, generation = entry
            if generation == self._generation:
                self.stats.implication_cache_hits += 1
            else:
                # Decided in an earlier stats window: cross-query
                # amortization.  Re-tag so further hits in this window
                # count as ordinary hits.
                self.stats.implication_cache_warm_hits += 1
                self._implication_cache[key] = (verdict, self._generation)
        if verdict:
            self.stats.implication_passes += 1
        return verdict

    def _expression_grants(
        self,
        expression: PolicyExpression,
        query: LocalQuery,
        attribute: BaseColumn,
    ) -> bool:
        """Does ``expression`` allow shipping ``attribute`` as it appears in
        the query output?  (Algorithm 1 lines 4–10, attribute-wise.)"""
        lineages = query.lineages_of(attribute)
        if not lineages:
            return False
        if not expression.is_aggregate:
            # Basic expression: covers raw and any more-aggregated use.
            return attribute in expression.ship_attributes
        if not query.is_aggregate:
            # Aggregate expression cannot authorize a non-aggregated query.
            return False
        if not (query.group_bases <= expression.group_by):
            # G_q ⊄ G_e (the empty G_q of a full-column aggregate passes).
            return False
        granted = False
        for lineage in lineages:
            if lineage.is_raw:
                # Raw appearance in an aggregate query means the attribute
                # is (part of) a grouping key: allowed when e lists it as a
                # grouping attribute.
                if attribute in expression.group_by:
                    granted = True
                else:
                    return False
            else:
                if (
                    attribute in expression.ship_attributes
                    and lineage.aggs <= expression.agg_functions
                ):
                    granted = True
                elif attribute in expression.group_by and attribute in query.group_bases:
                    # Grouping attribute also folded into an aggregate
                    # elsewhere; the grouping grant suffices for this use.
                    granted = True
                else:
                    return False
        return granted
