"""Replica compliance: which alternate sites may a scan legally read?

A replica of ``db.table`` at site ``L`` is **compliant** iff ``L`` is in
the policy grant 𝒜 of the *bare full-table scan* of that fragment —
i.e. the policies already allow shipping every raw column of the table
to ``L``.  Reading at ``L`` is then indistinguishable (policy-wise) from
shipping the table there, so no downstream placement decision can be
widened incorrectly: by grant monotonicity, 𝒜(full scan) ⊆ 𝒜(q) for
every local query ``q`` over the table (``q`` exposes a subset of the
columns, possibly aggregated, under a predicate — each of which can only
*grow* the grant), so any plan legal when reading the primary stays
legal when reading a compliant replica.

The resolver caches per-fragment verdicts keyed by the pair of monotone
versions ``(policies.version, catalog.version)``, so policy hot reloads
and replica add/drop both invalidate precisely.
"""

from __future__ import annotations

from ..catalog import Catalog
from ..expr import BaseColumn
from ..plan import Field, LogicalScan
from .evaluator import PolicyEvaluator
from .localquery import describe_local_query


class ReplicaResolver:
    """Derives the compliant replica sites of stored table fragments."""

    def __init__(self, catalog: Catalog, evaluator: PolicyEvaluator) -> None:
        self.catalog = catalog
        self.evaluator = evaluator
        # (database, table) -> grant of the bare full-table scan; keyed
        # caches are dropped whenever either version moves.
        self._grants: dict[tuple[str, str], frozenset[str]] = {}
        self._versions: tuple[int, int] | None = None

    def _fresh(self) -> None:
        versions = (self.evaluator.policies.version, self.catalog.version)
        if versions != self._versions:
            self._grants.clear()
            self._versions = versions

    def full_scan_grant(self, database: str, table: str) -> frozenset[str]:
        """𝒜 of the bare full-table scan of the fragment: the locations
        every raw column of ``db.table`` may be shipped to."""
        self._fresh()
        key = (database, table.lower())
        cached = self._grants.get(key)
        if cached is None:
            cached = self.evaluator.evaluate(
                describe_local_query(_bare_scan(self.catalog, database, table))
            )
            self._grants[key] = cached
        return cached

    def compliant_sites(
        self,
        database: str,
        table: str,
        max_staleness: float | None = None,
    ) -> frozenset[str]:
        """Replica sites of ``db.table`` that are compliant to read and
        within ``max_staleness`` (the primary is not included — it is
        always legal and already carried separately)."""
        candidates = self.catalog.replica_sites(database, table, max_staleness)
        if not candidates:
            return frozenset()
        return candidates & self.full_scan_grant(database, table)

    def all_sites(
        self,
        database: str,
        table: str,
        max_staleness: float | None = None,
    ) -> frozenset[str]:
        """All declared replica sites within ``max_staleness``, compliant
        or not — the traditional (non-compliant) optimizer's view."""
        return self.catalog.replica_sites(database, table, max_staleness)


def _bare_scan(catalog: Catalog, database: str, table: str) -> LogicalScan:
    """A full-table scan of the fragment exposing every raw column, built
    exactly like the binder's so 𝒜 sees identical lineage."""
    stored = catalog.stored_table(database, table)
    name = stored.schema.name.lower()
    fields = tuple(
        Field(
            name=f"{name}.{col.name.lower()}",
            dtype=col.dtype,
            base=BaseColumn(database, name, col.name.lower()),
            width=col.width,
        )
        for col in stored.schema.columns
    )
    return LogicalScan(
        table=name,
        database=database,
        location=stored.location,
        alias=name,
        scan_fields=fields,
    )
