"""Policy expression model (paper §4).

A *policy expression* declaratively states which data of a table may be
shipped to which locations:

Basic expression (Select-Project shaped)::

    ship attr, attr FROM table TO loc, loc [WHERE condition]
    ship *          FROM table TO *

Aggregate expression (Select-Project-GroupBy shaped)::

    ship attr, attr AS AGGREGATES sum, avg FROM table TO loc, loc
        [WHERE condition] GROUP BY attr, attr

Following footnote 4 of the paper, the FROM clause may name more than one
table of the same database, in which case the WHERE clause must contain
the join predicate; the expression then applies to attributes of all the
named tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..expr import AggregateFunction, BaseColumn, Expression

#: The wildcard destination: data may be shipped to every location.
ALL_LOCATIONS = "*"


@dataclass(frozen=True)
class PolicyExpression:
    """One parsed-and-bound policy expression.

    Attributes are stored by base-column provenance so query output columns
    match them regardless of query-level aliases.  ``destinations`` is
    ``None`` for the ``to *`` wildcard.
    """

    database: str
    tables: tuple[str, ...]
    ship_attributes: frozenset[BaseColumn]
    destinations: frozenset[str] | None
    predicate: Expression | None = None
    is_aggregate: bool = False
    agg_functions: frozenset[AggregateFunction] = frozenset()
    group_by: frozenset[BaseColumn] = frozenset()
    source_text: str = ""

    def allows_destination_wildcard(self) -> bool:
        return self.destinations is None

    def destinations_resolved(self, all_locations: frozenset[str]) -> frozenset[str]:
        """Concrete destination set, expanding the ``*`` wildcard."""
        if self.destinations is None:
            return all_locations
        return self.destinations

    def mentions(self, attribute: BaseColumn) -> bool:
        return attribute in self.ship_attributes or attribute in self.group_by

    def __str__(self) -> str:
        return self.source_text or repr(self)
