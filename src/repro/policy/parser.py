"""Parser for policy expressions (paper §4).

Grammar (keywords case-insensitive; ``where`` and ``group by`` may appear
in either order, the paper uses both)::

    policy   := SHIP ship_list [AS AGGREGATES fn_list]
                FROM table_list TO loc_list [WHERE expr] [GROUP BY attrs]
    ship_list:= '*' | attr (',' attr)*
    table_list := table_ref (',' table_ref)*
    table_ref:= [db '.'] name [alias]
    loc_list := '*' | location (',' location)*

Predicates are bound against the named tables' schemas so their column
references carry base-column provenance, letting the implication test
match them against query predicates.
"""

from __future__ import annotations

from ..catalog import Catalog
from ..errors import PolicySyntaxError
from ..expr import AggregateFunction, BaseColumn, Expression
from ..plan import Field
from ..sql.ast import AstExpr
from ..sql.binder import Binder, Scope
from ..sql.lexer import TokenStream, TokenType, tokenize
from ..sql.parser import _parse_expr  # shared expression grammar
from .language import PolicyExpression

_POLICY_KEYWORDS = {"SHIP", "FROM", "TO", "WHERE", "GROUP", "BY", "AS", "AGGREGATES"}


def parse_policy(text: str, catalog: Catalog, default_database: str | None = None) -> PolicyExpression:
    """Parse and bind one policy expression against ``catalog``.

    ``default_database`` resolves unqualified table names whose catalog
    entry is unambiguous; qualified names (``db-1.customer``) name the
    database explicitly (the paper's Table 3 uses this form).
    """
    stream = TokenStream(tokenize(text))
    stream.expect_keyword("SHIP")

    ship_all = False
    attribute_names: list[str] = []
    if stream.accept_symbol("*"):
        ship_all = True
    else:
        attribute_names.append(stream.expect_ident().text.lower())
        while stream.accept_symbol(","):
            attribute_names.append(stream.expect_ident().text.lower())

    agg_functions: list[AggregateFunction] = []
    is_aggregate = False
    if stream.accept_keyword("AS"):
        stream.expect_keyword("AGGREGATES")
        is_aggregate = True
        agg_functions.append(_parse_agg_function(stream))
        while stream.accept_symbol(","):
            agg_functions.append(_parse_agg_function(stream))

    stream.expect_keyword("FROM")
    table_refs: list[tuple[str | None, str, str]] = []  # (db, table, alias)
    table_refs.append(_parse_table_ref(stream))
    while stream.accept_symbol(","):
        table_refs.append(_parse_table_ref(stream))

    stream.expect_keyword("TO")
    destinations: list[str] | None
    if stream.accept_symbol("*"):
        destinations = None
    else:
        destinations = [stream.expect_ident().text]
        while stream.accept_symbol(","):
            destinations.append(stream.expect_ident().text)

    predicate_ast: AstExpr | None = None
    group_names: list[str] = []
    while not stream.exhausted:
        if stream.accept_keyword("WHERE"):
            if predicate_ast is not None:
                raise PolicySyntaxError("duplicate WHERE clause")
            predicate_ast = _parse_expr(stream)
        elif stream.accept_keyword("GROUP"):
            stream.expect_keyword("BY")
            if group_names:
                raise PolicySyntaxError("duplicate GROUP BY clause")
            group_names.append(stream.expect_ident().text.lower())
            while stream.accept_symbol(","):
                group_names.append(stream.expect_ident().text.lower())
        else:
            raise PolicySyntaxError(
                f"unexpected token {stream.current.text!r} in policy expression"
            )
    if group_names and not is_aggregate:
        raise PolicySyntaxError("GROUP BY requires AS AGGREGATES")

    # -- bind against the catalog -------------------------------------------
    database, stored_tables = _resolve_tables(catalog, table_refs, default_database)
    table_names = tuple(t.schema.name.lower() for t in stored_tables)

    fields: list[Field] = []
    for (db_name, _table, alias), stored in zip(table_refs, stored_tables):
        table_lower = stored.schema.name.lower()
        for col in stored.schema.columns:
            base = BaseColumn(database, table_lower, col.name.lower())
            # Expose both alias-qualified and table-qualified names.
            fields.append(Field(f"{alias}.{col.name.lower()}", col.dtype, base, col.width))
    scope = Scope(tuple(fields))

    def resolve_attr(name: str) -> BaseColumn:
        field = scope.resolve(None, name)
        assert field.base is not None
        return field.base

    if ship_all:
        ship_attributes = frozenset(
            BaseColumn(database, t.schema.name.lower(), col.name.lower())
            for t in stored_tables
            for col in t.schema.columns
        )
    else:
        ship_attributes = frozenset(resolve_attr(a) for a in attribute_names)
    group_by = frozenset(resolve_attr(g) for g in group_names)

    predicate: Expression | None = None
    if predicate_ast is not None:
        binder = Binder(catalog)
        predicate = binder._bind_expr(predicate_ast, scope, allow_aggregates=False)

    if len(stored_tables) > 1 and predicate is None:
        raise PolicySyntaxError(
            "a multi-table policy expression must state the join predicate "
            "in its WHERE clause (paper footnote 4)"
        )

    return PolicyExpression(
        database=database,
        tables=table_names,
        ship_attributes=ship_attributes,
        destinations=None if destinations is None else frozenset(destinations),
        predicate=predicate,
        is_aggregate=is_aggregate,
        agg_functions=frozenset(agg_functions),
        group_by=group_by,
        source_text=" ".join(text.split()),
    )


def _parse_agg_function(stream: TokenStream) -> AggregateFunction:
    token = stream.expect_ident()
    try:
        return AggregateFunction[token.upper]
    except KeyError:
        raise PolicySyntaxError(
            f"unknown aggregate function {token.text!r}"
        ) from None


def _parse_table_ref(stream: TokenStream) -> tuple[str | None, str, str]:
    first = stream.expect_ident().text
    database: str | None = None
    name = first
    if stream.accept_symbol("."):
        database = first
        name = stream.expect_ident().text
    alias = name.lower()
    token = stream.current
    if token.type == TokenType.IDENT and token.upper not in _POLICY_KEYWORDS:
        alias = stream.advance().text.lower()
    return database, name, alias


def _resolve_tables(catalog, table_refs, default_database):
    """Resolve table refs to stored fragments, all in one database."""
    databases: set[str] = set()
    stored = []
    for db_name, table, _alias in table_refs:
        global_table = catalog.table(table)
        if db_name is not None:
            fragment = catalog.stored_table(db_name, table)
        elif default_database is not None and any(
            f.database == default_database for f in global_table.fragments
        ):
            fragment = catalog.stored_table(default_database, table)
        elif len(global_table.fragments) == 1:
            fragment = global_table.fragments[0]
        else:
            raise PolicySyntaxError(
                f"table {table!r} is fragmented; qualify it with a database "
                "(e.g. db-1.customer)"
            )
        databases.add(fragment.database)
        stored.append(fragment)
    if len(databases) != 1:
        raise PolicySyntaxError(
            "all tables of one policy expression must live in one database; "
            f"got {sorted(databases)}"
        )
    return next(iter(databases)), stored
