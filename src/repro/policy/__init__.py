"""Dataflow policy specification and evaluation (paper sections 4-5)."""

from .language import ALL_LOCATIONS, PolicyExpression
from .parser import parse_policy
from .catalog import PolicyCatalog
from .localquery import Lineage, LocalQuery, describe_local_query
from .evaluator import PolicyEvalStats, PolicyEvaluator
from .replicas import ReplicaResolver
from .negation import (
    NegativePolicy,
    apply_closed_world,
    compile_negative_policies,
    parse_negative,
)

__all__ = [
    "ALL_LOCATIONS",
    "PolicyExpression",
    "parse_policy",
    "PolicyCatalog",
    "Lineage",
    "LocalQuery",
    "describe_local_query",
    "PolicyEvalStats",
    "PolicyEvaluator",
    "ReplicaResolver",
    "NegativePolicy",
    "apply_closed_world",
    "compile_negative_policies",
    "parse_negative",
]
