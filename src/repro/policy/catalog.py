"""Policy catalog: stores policy expressions per (database, table).

Mirrors the paper's architecture (Fig. 2): data officers register policy
expressions offline; the optimizer's policy evaluator reads them at
query-optimization time.

Hot reload
----------
Policies can change while the system serves queries: :meth:`add`,
:meth:`remove`, and :meth:`replace` mutate the catalog in place.  The
catalog therefore keeps

* a monotone :attr:`version` counter, bumped on every mutation,
* a stable integer id (*pid*) per registered expression
  (:meth:`id_of`), and
* a change log of *invalidating* mutations — removals and replacements.

:meth:`changed_since` answers "which policies were removed or replaced
after version ``v``?", which is what the plan cache needs to decide
whether a cached derivation is stale.  Additions are deliberately *not*
logged as invalidating: Algorithm 1 unions grants over expressions, so
adding a policy only ever widens permitted-location sets — a plan that
was compliant before the add stays compliant after it (it may merely be
no longer cost-optimal).  See docs/OPTIMIZER.md, "Plan cache & prepared
queries".
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from ..catalog import Catalog
from ..errors import ReproError
from ..expr import BaseColumn
from .language import PolicyExpression
from .parser import parse_policy


class PolicyCatalog:
    """All registered dataflow policies of the geo-distributed system."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._by_table: dict[tuple[str, str], list[PolicyExpression]] = defaultdict(list)
        self._count = 0
        #: Monotone catalog version: bumped on add/remove/replace.
        self._version = 0
        self._next_pid = 1
        #: pid -> expression for every currently registered expression.
        self._by_pid: dict[int, PolicyExpression] = {}
        #: object identity -> pid (expressions are compared by identity
        #: everywhere in this module, matching ``_by_table`` dedup).
        self._pid_of: dict[int, int] = {}
        #: (version, pid) per invalidating mutation (remove/replace).
        self._change_log: list[tuple[int, int]] = []

    def add(self, expression: PolicyExpression) -> PolicyExpression:
        for table in expression.tables:
            self._by_table[(expression.database, table)].append(expression)
        self._count += 1
        self._version += 1
        pid = self._next_pid
        self._next_pid += 1
        self._by_pid[pid] = expression
        self._pid_of[id(expression)] = pid
        return expression

    def remove(self, expression: PolicyExpression | int) -> PolicyExpression:
        """Unregister one expression (by object or pid); bumps the
        version and records the pid in the invalidation change log."""
        if isinstance(expression, int):
            pid = expression
            target = self._by_pid.get(pid)
        else:
            target = expression
            pid = self._pid_of.get(id(expression), 0)
        if target is None or pid not in self._by_pid:
            raise ReproError("cannot remove a policy expression that is not registered")
        for table in target.tables:
            bucket = self._by_table.get((target.database, table), [])
            for i, e in enumerate(bucket):
                if e is target:
                    del bucket[i]
                    break
        self._count -= 1
        self._version += 1
        del self._by_pid[pid]
        del self._pid_of[id(target)]
        self._change_log.append((self._version, pid))
        return target

    def replace(
        self, old: PolicyExpression | int, new: PolicyExpression
    ) -> PolicyExpression:
        """Atomically swap ``old`` for ``new``; the old pid is logged as
        changed (derivations that read it are stale), the new expression
        gets a fresh pid."""
        self.remove(old)
        return self.add(new)

    @property
    def version(self) -> int:
        """Monotone catalog version (0 for an empty, untouched catalog)."""
        return self._version

    def id_of(self, expression: PolicyExpression) -> int | None:
        """Stable pid of a registered expression (None if unregistered)."""
        return self._pid_of.get(id(expression))

    def changed_since(self, version: int) -> frozenset[int]:
        """Pids removed or replaced by mutations *after* ``version``."""
        return frozenset(pid for v, pid in self._change_log if v > version)

    def add_text(self, text: str, default_database: str | None = None) -> PolicyExpression:
        """Parse one policy expression and register it."""
        return self.add(parse_policy(text, self.catalog, default_database))

    def add_texts(self, texts: Iterable[str]) -> list[PolicyExpression]:
        return [self.add_text(t) for t in texts]

    def for_table(self, database: str, table: str) -> list[PolicyExpression]:
        return self._by_table.get((database, table.lower()), [])

    def for_attribute(self, attribute: BaseColumn) -> list[PolicyExpression]:
        """Expressions that mention ``attribute`` in SHIP or GROUP BY."""
        return [
            e
            for e in self.for_table(attribute.database, attribute.table)
            if e.mentions(attribute)
        ]

    @property
    def expressions(self) -> list[PolicyExpression]:
        seen: list[PolicyExpression] = []
        for exprs in self._by_table.values():
            for e in exprs:
                if all(e is not s for s in seen):
                    seen.append(e)
        return seen

    def __len__(self) -> int:
        return self._count

    @property
    def all_locations(self) -> frozenset[str]:
        """All locations of the system (resolves the ``to *`` wildcard)."""
        return frozenset(self.catalog.locations)
