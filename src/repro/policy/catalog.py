"""Policy catalog: stores policy expressions per (database, table).

Mirrors the paper's architecture (Fig. 2): data officers register policy
expressions offline; the optimizer's policy evaluator reads them at
query-optimization time.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from ..catalog import Catalog
from ..expr import BaseColumn
from .language import PolicyExpression
from .parser import parse_policy


class PolicyCatalog:
    """All registered dataflow policies of the geo-distributed system."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self._by_table: dict[tuple[str, str], list[PolicyExpression]] = defaultdict(list)
        self._count = 0

    def add(self, expression: PolicyExpression) -> PolicyExpression:
        for table in expression.tables:
            self._by_table[(expression.database, table)].append(expression)
        self._count += 1
        return expression

    def add_text(self, text: str, default_database: str | None = None) -> PolicyExpression:
        """Parse one policy expression and register it."""
        return self.add(parse_policy(text, self.catalog, default_database))

    def add_texts(self, texts: Iterable[str]) -> list[PolicyExpression]:
        return [self.add_text(t) for t in texts]

    def for_table(self, database: str, table: str) -> list[PolicyExpression]:
        return self._by_table.get((database, table.lower()), [])

    def for_attribute(self, attribute: BaseColumn) -> list[PolicyExpression]:
        """Expressions that mention ``attribute`` in SHIP or GROUP BY."""
        return [
            e
            for e in self.for_table(attribute.database, attribute.table)
            if e.mentions(attribute)
        ]

    @property
    def expressions(self) -> list[PolicyExpression]:
        seen: list[PolicyExpression] = []
        for exprs in self._by_table.values():
            for e in exprs:
                if all(e is not s for s in seen):
                    seen.append(e)
        return seen

    def __len__(self) -> int:
        return self._count

    @property
    def all_locations(self) -> frozenset[str]:
        """All locations of the system (resolves the ``to *`` wildcard)."""
        return frozenset(self.catalog.locations)
