"""Query requests and workload files for the query server.

A workload is an ordered list of :class:`QueryRequest`\\ s.  The CLI
``serve`` subcommand replays a JSON workload file; benchmarks and tests
build workloads programmatically (:func:`workload_from_queries`).

Workload file format — either a bare JSON list or ``{"queries": [...]}``,
one object per request::

    [
      {"query": "Q3", "arrival": 0.0, "deadline": 2.5, "priority": 1},
      {"query": "SELECT ...", "arrival": 0.1},
      ...
    ]

``query`` is SQL text or a named TPC-H query (``Q2`` .. ``Q10``; the
server resolves names through the optimizer's binder the same way the
``run`` subcommand does).  ``arrival`` is the request's arrival instant
on the server's shared simulated clock (default 0.0, must be
non-decreasing is *not* required — requests are sorted), ``deadline``
is relative to arrival (simulated seconds; omitted = no deadline beyond
the server default), ``priority`` orders the waiting queue (higher
first; default 0).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ExecutionError
from ..plan import PhysicalPlan
from ..validation import validate_timeout


@dataclass(frozen=True)
class QueryRequest:
    """One query submitted to the server."""

    sql: str
    #: Arrival instant on the server's shared simulated clock.
    arrival: float = 0.0
    #: Caller's patience in simulated seconds *after arrival*; ``None``
    #: falls back to the server's default deadline (which may be None).
    deadline: float | None = None
    #: Waiting-queue priority: higher is dispatched first.
    priority: int = 0
    #: Display name (e.g. "Q3"); defaults to a prefix of the SQL.
    name: str | None = None
    #: Pre-optimized plan — set by tests that hand-build plans; when
    #: ``None`` the server optimizes ``sql`` itself.
    plan: PhysicalPlan | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.arrival < 0.0:
            raise ExecutionError(
                f"request arrival must be >= 0, got {self.arrival}"
            )
        validate_timeout(self.deadline, "deadline")

    @property
    def label(self) -> str:
        if self.name:
            return self.name
        text = " ".join(self.sql.split())
        return text if len(text) <= 40 else text[:37] + "..."

    def absolute_deadline(self, default: float | None) -> float | None:
        """The instant the caller gives up, on the shared clock."""
        relative = self.deadline if self.deadline is not None else default
        return None if relative is None else self.arrival + relative


def workload_from_queries(
    queries: dict[str, str] | list[tuple[str, str]],
    interarrival: float = 0.0,
    deadline: float | None = None,
    repeat: int = 1,
) -> list[QueryRequest]:
    """A synthetic workload over named queries: ``repeat`` rounds of
    every query, arrivals spaced ``interarrival`` simulated seconds
    apart in round order."""
    pairs = list(queries.items()) if isinstance(queries, dict) else list(queries)
    out: list[QueryRequest] = []
    for round_index in range(repeat):
        for name, sql in pairs:
            out.append(
                QueryRequest(
                    sql=sql,
                    arrival=len(out) * interarrival,
                    deadline=deadline,
                    name=f"{name}#{round_index}" if repeat > 1 else name,
                )
            )
    return out


def load_workload(path: str | Path, resolve=None) -> list[QueryRequest]:
    """Parse a JSON workload file into requests (sorted by arrival).

    ``resolve`` maps a ``query`` entry to SQL text (the CLI passes the
    named-TPC-H resolver); by default entries are taken as SQL."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise ExecutionError(f"cannot read workload file {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise ExecutionError(f"workload file {path} is not valid JSON: {error}") from None
    entries = payload.get("queries") if isinstance(payload, dict) else payload
    if not isinstance(entries, list):
        raise ExecutionError(
            f"workload file {path} must be a JSON list of requests "
            f'(or {{"queries": [...]}})'
        )
    requests: list[QueryRequest] = []
    for i, entry in enumerate(entries):
        if isinstance(entry, str):
            entry = {"query": entry}
        if not isinstance(entry, dict) or not entry.get("query", entry.get("sql")):
            raise ExecutionError(
                f"workload entry #{i} must be an object with a 'query' field"
            )
        text = entry.get("query", entry.get("sql"))
        sql = resolve(text) if resolve is not None else text
        try:
            requests.append(
                QueryRequest(
                    sql=sql,
                    arrival=float(entry.get("arrival", 0.0)),
                    deadline=entry.get("deadline"),
                    priority=int(entry.get("priority", 0)),
                    name=entry.get("name") or (text if sql != text else None),
                )
            )
        except (TypeError, ValueError) as error:
            raise ExecutionError(f"bad workload entry #{i}: {error}") from None
    return sorted(requests, key=lambda r: (r.arrival, -r.priority))
