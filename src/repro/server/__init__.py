"""Concurrent query serving over the simulated WAN clock.

The execution layer (engine, fragment scheduler, fault injection,
retry/failover) is single-query: it answers "how does *one* plan behave
on a faulty WAN".  This package adds the workload-facing serving layer
the ROADMAP's production north star needs:

* :class:`QueryServer` — accepts a stream of :class:`QueryRequest`\\ s
  (SQL + optional deadline + priority) and services them concurrently
  on a shared simulated clock with **admission control** (bounded
  queue, concurrency cap, per-site in-flight fragment limits),
* :class:`BreakerRegistry` / :class:`CircuitBreaker` — **per-link
  circuit breakers** (closed → open → half-open on the simulated
  clock) that stop cross-query retry storms on a bad link and steer
  execution into failover instead,
* **deadline-based load shedding** — queries past deadline are shed
  from the queue or cancelled cooperatively at fragment boundaries
  with a typed :class:`~repro.errors.DeadlineExceeded`,
* :class:`ServerMetrics` — graceful-degradation accounting
  (``served / shed / rejected / partial``) that always reconciles to
  the workload size.

See docs/ROBUSTNESS.md §6–§8 for the design.
"""

from .breaker import BreakerConfig, BreakerRegistry, BreakerState, CircuitBreaker
from .metrics import ServerMetrics
from .request import QueryRequest, load_workload, workload_from_queries
from .server import QueryOutcome, QueryServer, ServeResult

__all__ = [
    "BreakerConfig",
    "BreakerRegistry",
    "BreakerState",
    "CircuitBreaker",
    "ServerMetrics",
    "QueryRequest",
    "load_workload",
    "workload_from_queries",
    "QueryOutcome",
    "QueryServer",
    "ServeResult",
]
