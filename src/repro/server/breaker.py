"""Per-link circuit breakers on the simulated WAN clock.

A breaker guards one directed link and interposes on every transfer
attempt (:meth:`repro.geo.FaultAwareNetwork.attempt_transfer` consults
the registry through the :class:`~repro.geo.LinkGovernor` protocol).
The classic three-state machine:

.. code-block:: text

                 failure rate >= threshold
                 (over the rolling window,
                  once >= min_volume events)
       +--------+ ------------------------> +------+
       | CLOSED |                           | OPEN |
       +--------+ <----+             +----- +------+
           ^           |             | cooldown elapsed
           | probe     |             v
           | succeeds  |       +-----------+
           +-----------+------ | HALF-OPEN |
                       probe   +-----------+
                       fails -> OPEN (new cooldown)

* **closed** — attempts flow through; outcomes land in a rolling window
  of the last ``window`` events.  When the window holds at least
  ``min_volume`` events and its failure rate reaches
  ``failure_threshold``, the breaker opens at the instant of the
  tripping event.
* **open** — every attempt fast-fails (the network raises
  :class:`~repro.errors.CircuitOpenError`, never transient) until
  ``cooldown`` simulated seconds have elapsed.
* **half-open** — the next attempt is a probe: success closes the
  breaker (window reset), failure re-opens it with a fresh cooldown.

**Purity invariant** (locked down by the hypothesis suite in
``tests/server/test_breaker_property.py``): the state at any instant is
a pure function of the *time-ordered* event history and the clock —
never of wall-clock time, recording order, or thread scheduling.  The
breaker therefore stores timestamped events and *replays* them on every
query, so events recorded out of order (queries overlap on the
simulated clock but execute one after another in the server's event
loop) still yield the exact state their timeline implies.  Histories
are short (one event per real transfer attempt), so replay stays cheap.
"""

from __future__ import annotations

import enum
from bisect import insort
from dataclasses import dataclass
from typing import Iterator

from ..validation import validate_positive_int, validate_timeout


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class BreakerConfig:
    """Tuning knobs of one circuit breaker (all validated up front)."""

    #: Failure fraction of the rolling window that trips the breaker.
    failure_threshold: float = 0.5
    #: Rolling-window length (most recent outcomes while closed).
    window: int = 8
    #: Minimum events in the window before the threshold can trip —
    #: a single early failure must not condemn a link.
    min_volume: int = 4
    #: Simulated seconds an open breaker waits before half-opening.
    cooldown: float = 0.5

    def __post_init__(self) -> None:
        from ..errors import InvalidParameterError

        if not 0.0 < self.failure_threshold <= 1.0:
            raise InvalidParameterError(
                f"failure_threshold must be in (0, 1], got {self.failure_threshold}"
            )
        validate_positive_int(self.window, "window")
        validate_positive_int(self.min_volume, "min_volume")
        validate_timeout(self.cooldown, "cooldown")


@dataclass(frozen=True)
class _Event:
    """One observed transfer outcome on the link."""

    when: float
    seq: int  # tie-break for same-instant events, in recording order
    ok: bool


class CircuitBreaker:
    """The state machine for one directed link."""

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config or BreakerConfig()
        self._events: list[_Event] = []  # kept sorted by (when, seq)
        self._seq = 0

    # -- recording -------------------------------------------------------------

    def record(self, when: float, ok: bool) -> None:
        """Record one attempt outcome at simulated instant ``when``.
        Outcomes may arrive out of time order (overlapping queries are
        executed sequentially by the server's event loop); the sorted
        history keeps the replay faithful to the timeline."""
        self._seq += 1
        insort(self._events, _Event(when, self._seq, ok), key=lambda e: (e.when, e.seq))

    # -- state replay ----------------------------------------------------------

    def transitions(self, when: float = float("inf")) -> list[tuple[float, BreakerState]]:
        """Every state transition up to ``when``, in time order —
        ``[(instant, new_state), ...]`` starting from the implicit
        ``(0, CLOSED)``.  This *is* the state machine: :meth:`state_at`
        and :meth:`allow` only read its last entry, so tests can assert
        on the exact transition sequence."""
        cfg = self.config
        out: list[tuple[float, BreakerState]] = []
        state = BreakerState.CLOSED
        opened_at = 0.0
        window: list[bool] = []
        for event in self._events:
            if event.when > when:
                break
            if state is BreakerState.OPEN:
                if event.when < opened_at + cfg.cooldown:
                    # An attempt the breaker should have fast-failed
                    # (e.g. recorded by a layer running without the
                    # registry); it carries no probe semantics.
                    continue
                state = BreakerState.HALF_OPEN
                out.append((opened_at + cfg.cooldown, state))
            if state is BreakerState.HALF_OPEN:
                # The probe decides: close on success, re-open on failure.
                if event.ok:
                    state = BreakerState.CLOSED
                    window = []
                else:
                    state = BreakerState.OPEN
                    opened_at = event.when
                out.append((event.when, state))
                continue
            window.append(event.ok)
            if len(window) > cfg.window:
                window.pop(0)
            failures = sum(1 for ok in window if not ok)
            if (
                len(window) >= cfg.min_volume
                and failures / len(window) >= cfg.failure_threshold
            ):
                state = BreakerState.OPEN
                opened_at = event.when
                window = []
                out.append((event.when, state))
        if state is BreakerState.OPEN and when >= opened_at + cfg.cooldown:
            out.append((opened_at + cfg.cooldown, BreakerState.HALF_OPEN))
        return out

    def state_at(self, when: float) -> BreakerState:
        """The breaker's state at simulated instant ``when`` — a pure
        function of (event history up to ``when``, ``when``)."""
        trace = self.transitions(when)
        return trace[-1][1] if trace else BreakerState.CLOSED

    def allow(self, when: float) -> bool:
        """May an attempt proceed at ``when``?  True while closed and
        for probes while half-open; False exactly while open."""
        return self.state_at(when) is not BreakerState.OPEN

    def trip_count(self, when: float = float("inf")) -> int:
        """How many times the breaker has opened up to ``when``."""
        return sum(1 for _, s in self.transitions(when) if s is BreakerState.OPEN)

    def events(self) -> Iterator[tuple[float, bool]]:
        """The recorded (instant, ok) history in time order."""
        return ((e.when, e.ok) for e in self._events)


class BreakerRegistry:
    """Per-link breakers, created on first use, shared by every query a
    server runs.  Implements the network layer's
    :class:`~repro.geo.LinkGovernor` protocol.

    All calls happen on the server's single-threaded event loop (the
    fragment scheduler performs transfers on its coordinator thread),
    so no locking is needed; see ``docs/ROBUSTNESS.md`` §7.
    """

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config or BreakerConfig()
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}

    def breaker(self, source: str, target: str) -> CircuitBreaker:
        key = (source, target)
        found = self._breakers.get(key)
        if found is None:
            found = self._breakers[key] = CircuitBreaker(self.config)
        return found

    # -- LinkGovernor protocol -------------------------------------------------

    def allow(self, source: str, target: str, when: float) -> bool:
        return self.breaker(source, target).allow(when)

    def record_success(self, source: str, target: str, when: float) -> None:
        self.breaker(source, target).record(when, ok=True)

    def record_failure(self, source: str, target: str, when: float) -> None:
        self.breaker(source, target).record(when, ok=False)

    # -- observability ---------------------------------------------------------

    def total_trips(self, when: float = float("inf")) -> int:
        return sum(b.trip_count(when) for b in self._breakers.values())

    def snapshot(self, when: float = float("inf")) -> dict[str, str]:
        """``"src->dst" -> state`` for every link seen so far."""
        return {
            f"{src}->{dst}": str(breaker.state_at(when))
            for (src, dst), breaker in sorted(self._breakers.items())
        }
