"""Graceful-degradation accounting for the query server.

Every request the server accepts ends in exactly one of four buckets —
``served``, ``shed`` (deadline), ``rejected`` (admission), ``partial``
(unrecoverable WAN fault) — and :meth:`ServerMetrics.reconciles`
asserts the buckets sum back to the workload size: under overload the
server degrades *measurably*, never silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ServerMetrics:
    """Aggregate outcome counts and timing of one ``serve()`` run."""

    total: int = 0
    #: Completed with rows (identical to single-query execution).
    served: int = 0
    #: Cancelled on deadline (typed ``DeadlineExceeded``).
    shed: int = 0
    #: Refused at admission (typed ``AdmissionRejected``).
    rejected: int = 0
    #: Degraded to a typed partial failure (unrecoverable WAN fault).
    partial: int = 0
    #: Served, but finished past the caller's deadline (the last
    #: fragment was already admitted when the deadline passed —
    #: cooperative cancellation only cuts at fragment boundaries).
    served_late: int = 0

    #: Simulated instant of the last completion (or last arrival when
    #: nothing ran) — the workload's end on the shared clock.
    finished_at_seconds: float = 0.0
    #: Total simulated time requests spent waiting in the queue.
    queue_wait_seconds: float = 0.0
    #: Summed per-query service times (admission -> finish) of served
    #: and partial queries.
    service_seconds: float = 0.0
    #: Retry backoff waited across all executed queries.
    retry_wait_seconds: float = 0.0
    #: Transfer attempts across all executed queries.
    transfer_attempts: int = 0
    #: Attempts refused outright by an open circuit breaker.
    breaker_fast_fails: int = 0
    #: Times any per-link breaker tripped closed -> open.
    breaker_trips: int = 0
    #: Compliance-preserving failovers across all executed queries.
    recoveries: int = 0
    #: Failovers that switched a scan-bearing fragment to a compliant
    #: replica site (a subset of :attr:`recoveries`).
    replica_failovers: int = 0
    #: Replica failovers triggered by an open circuit breaker.
    replica_switches_breaker: int = 0
    #: Replica failovers of fragments whose own scan site died —
    #: guaranteed ``PartialFailure``s in a replica-free catalog.
    partial_failures_avoided: int = 0
    #: Committed replica reads whose staleness exceeded zero (within the
    #: bound — bound-violating reads are never committed by an enforcing
    #: freshness policy).
    stale_reads: int = 0
    #: Fragment admissions deferred until a pending refresh landed
    #: (``wait-for-refresh`` policy only).
    refresh_waits: int = 0
    #: Total simulated time spent in those refresh waits.
    refresh_wait_seconds: float = 0.0
    #: Replica failovers forced or preferred because the current site's
    #: data was stale at the admission instant (a subset of
    #: :attr:`replica_failovers`).
    freshness_demotions: int = 0
    #: Logical (uncompressed) SHIP bytes across all executed queries —
    #: the auditor's and cost model's billing basis.
    logical_bytes_shipped: int = 0
    #: Bytes actually put on the wire (equals the logical count unless a
    #: compressed ship wire format was configured).
    wire_bytes_shipped: int = 0
    #: Wire chunks delivered across all executed queries (one per
    #: transfer under the monolithic default).
    chunks_shipped: int = 0
    #: Plan-cache lookups during this run that reused a cached template
    #: (0 when the optimizer carries no plan cache).
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Cached entries dropped during this run because a policy their
    #: derivation read was removed or replaced.
    plan_cache_invalidations: int = 0
    #: Final breaker state per link ("src->dst" -> state name).
    breaker_states: dict[str, str] = field(default_factory=dict)

    @property
    def makespan_seconds(self) -> float:
        """Alias for :attr:`finished_at_seconds` — the total simulated
        time to drain the workload."""
        return self.finished_at_seconds

    @property
    def throughput_qps(self) -> float:
        """Served queries per simulated second (0 when nothing ran)."""
        if self.finished_at_seconds <= 0.0:
            return 0.0
        return self.served / self.finished_at_seconds

    @property
    def shed_rate(self) -> float:
        """Fraction of the workload shed or rejected (load-control
        losses; partial failures are WAN losses, counted separately)."""
        if self.total == 0:
            return 0.0
        return (self.shed + self.rejected) / self.total

    def reconciles(self) -> bool:
        """Do the outcome buckets sum to the workload size?"""
        return self.served + self.shed + self.rejected + self.partial == self.total

    def summary(self) -> str:
        return (
            f"{self.served}/{self.total} served "
            f"({self.served_late} late), {self.shed} shed, "
            f"{self.rejected} rejected, {self.partial} partial; "
            f"makespan {self.finished_at_seconds:.3f}s, "
            f"throughput {self.throughput_qps:.2f} q/s, "
            f"shed rate {self.shed_rate:.0%}; "
            f"{self.transfer_attempts} transfer attempts, "
            f"{self.breaker_fast_fails} breaker fast-fails, "
            f"{self.breaker_trips} breaker trips, "
            f"{self.recoveries} failovers"
            + (
                f" ({self.replica_failovers} to replicas, "
                f"{self.replica_switches_breaker} breaker-steered, "
                f"{self.partial_failures_avoided} partial failures avoided)"
                if self.replica_failovers
                else ""
            )
            + (
                f"; {self.stale_reads} stale reads, "
                f"{self.refresh_waits} refresh waits "
                f"({self.refresh_wait_seconds:.3f}s), "
                f"{self.freshness_demotions} freshness demotions"
                if self.stale_reads
                or self.refresh_waits
                or self.freshness_demotions
                else ""
            )
            + (
                f"; {self.wire_bytes_shipped} wire bytes for "
                f"{self.logical_bytes_shipped} logical "
                f"({self.chunks_shipped} chunks)"
                if self.wire_bytes_shipped != self.logical_bytes_shipped
                else ""
            )
            + (
                f"; plan cache {self.plan_cache_hits} hits / "
                f"{self.plan_cache_misses} misses, "
                f"{self.plan_cache_invalidations} invalidations"
                if self.plan_cache_hits + self.plan_cache_misses > 0
                else ""
            )
        )
