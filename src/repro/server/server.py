"""The query server: concurrent serving on the shared simulated clock.

:class:`QueryServer` drains a workload of :class:`QueryRequest`\\ s
through a deterministic discrete-event loop:

* **One shared simulated clock.**  Requests arrive at their workload
  instants; a dispatched query executes through the fragment scheduler
  with its clock *offset* to the dispatch instant
  (``FragmentScheduler.run(plan, start_at=t)``), so fault windows,
  breaker states, and deadlines are all consulted at global times and
  service windows of concurrent queries genuinely overlap on the
  simulated timeline.  (Fragments of each query still execute on a real
  thread pool; it is only the *WAN* that is simulated.)
* **Admission control.**  At most ``concurrency`` queries are in
  service at once; waiting requests sit in a bounded priority queue
  (``queue_depth``); per-site in-flight fragment limits
  (``site_inflight``) keep any one site from being buried.  A request
  arriving to a full queue is refused with a typed
  :class:`~repro.errors.AdmissionRejected` — immediately, rather than
  timing out the caller later.
* **Deadline-based load shedding.**  A queued request whose deadline
  passes before dispatch is shed without running; a running query is
  cancelled cooperatively at the next fragment-admission boundary (the
  scheduler raises :class:`~repro.errors.DeadlineExceeded` and its
  shutdown path cancels pending sibling futures).
* **Per-link circuit breakers.**  With a
  :class:`~repro.server.BreakerRegistry`, every transfer outcome of
  every query feeds the link's breaker; an open breaker fast-fails
  transfers (no retry storm) and pushes execution into
  compliance-preserving failover instead.

Determinism: all decisions are made in event order on the simulated
clock — no wall-clock reads, no randomness.  Overlapping queries are
*executed* sequentially in dispatch order, so breaker evidence recorded
by an earlier-dispatched query is visible to later-dispatched queries
(filtered to events at or before their own attempt instants); evidence
from a later-dispatched query is not visible to an earlier one even for
attempt instants after it.  This one-directional visibility is the
price of exact reproducibility and is documented in
docs/ROBUSTNESS.md §7.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass, field

from ..errors import (
    AdmissionRejected,
    ComplianceViolationError,
    DeadlineExceeded,
    ReproError,
)
from ..execution.faults import FaultPlan
from ..execution.fragments import fragment_plan
from ..execution.metrics import ExecutionMetrics
from ..execution.recovery import RetryPolicy
from ..execution.scheduler import FragmentScheduler
from ..execution.wire import ShipConfig
from ..geo import GeoDatabase, NetworkModel
from ..plan import PhysicalPlan
from ..trace import current_recorder
from ..validation import validate_positive_int, validate_timeout
from .breaker import BreakerRegistry
from .metrics import ServerMetrics
from .request import QueryRequest

#: Outcome bucket names, in reporting order.
STATUSES = ("served", "shed", "rejected", "partial")


@dataclass
class QueryOutcome:
    """What happened to one request."""

    request: QueryRequest
    status: str  # one of STATUSES
    #: Typed error for shed/rejected/partial outcomes (None when served).
    error: ReproError | None = None
    columns: list[str] | None = None
    rows: list[tuple] | None = None
    #: Simulated instants on the shared clock (None when never started).
    started_at: float | None = None
    finished_at: float | None = None
    #: Per-query execution metrics (None when never started).
    metrics: ExecutionMetrics | None = None
    #: Served, but past the caller's deadline.
    late: bool = False

    @property
    def queue_wait_seconds(self) -> float:
        if self.started_at is None:
            return 0.0
        return max(0.0, self.started_at - self.request.arrival)

    def describe(self) -> str:
        label = self.request.label
        if self.status == "served":
            late = " (LATE)" if self.late else ""
            return (
                f"{label}: served {len(self.rows or [])} rows{late} "
                f"[t={self.started_at:.3f}s -> {self.finished_at:.3f}s]"
            )
        return f"{label}: {self.status.upper()} — {self.error}"


@dataclass
class ServeResult:
    """Everything one ``serve()`` run produced, in workload order."""

    outcomes: list[QueryOutcome]
    metrics: ServerMetrics
    breakers: BreakerRegistry | None = None

    def by_status(self, status: str) -> list[QueryOutcome]:
        return [o for o in self.outcomes if o.status == status]


@dataclass(order=True)
class _Event:
    """Heap entry: completions sort before arrivals at equal instants so
    freed capacity admits same-instant arrivals."""

    when: float
    kind: int  # 0 = completion, 1 = arrival
    seq: int
    payload: object = field(compare=False)


class QueryServer:
    """Serves query workloads concurrently over the simulated WAN."""

    def __init__(
        self,
        database: GeoDatabase,
        network: NetworkModel,
        optimizer=None,  # object with .optimize(sql) -> result with .plan
        evaluator=None,  # PolicyEvaluator | None — compliance guard
        concurrency: int = 4,
        queue_depth: int = 16,
        site_inflight: int | None = None,
        default_deadline: float | None = None,
        breakers: BreakerRegistry | None = None,
        faults: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        executor: str = "row",
        max_workers: int | None = None,
        freshness=None,  # FreshnessPolicy | None — runtime staleness checks
        ship: ShipConfig | None = None,
    ) -> None:
        self.database = database
        self.network = network
        self.optimizer = optimizer
        self.evaluator = evaluator
        self.concurrency = validate_positive_int(concurrency, "concurrency")
        self.queue_depth = validate_positive_int(queue_depth, "queue depth")
        self.site_inflight = (
            None
            if site_inflight is None
            else validate_positive_int(site_inflight, "site in-flight limit")
        )
        self.default_deadline = validate_timeout(default_deadline, "deadline")
        self.breakers = breakers
        self.scheduler = FragmentScheduler(
            database,
            network,
            max_workers=max_workers,
            faults=faults,
            retry_policy=retry_policy,
            compliance_guard=evaluator,
            executor=executor,
            breakers=breakers,
            freshness=freshness,
            ship=ship,
        )
        self._plan_cache: dict[str, PhysicalPlan] = {}

    # -- planning ---------------------------------------------------------------

    def _plan_for(self, request: QueryRequest) -> PhysicalPlan:
        if request.plan is not None:
            return request.plan
        if self.optimizer is None:
            raise ReproError(
                "QueryServer needs an optimizer for SQL requests (or "
                "requests carrying pre-built plans)"
            )
        if getattr(self.optimizer, "plan_cache", None) is not None:
            # The optimizer carries a compliant plan cache: let every
            # request go through it (parameterized templates share
            # entries; policy hot-reload invalidates precisely).  A
            # store-time-validated hit/store skips the server's own
            # guard — but only when it was validated by the same
            # evaluator this server guards with.
            result = self.optimizer.optimize(request.sql)
            if self.evaluator is not None and not (
                getattr(result, "compliance_validated", False)
                and getattr(result, "validated_by", None) is self.evaluator
            ):
                self._guard(result.plan)
            return result.plan
        # No optimizer-level cache: memoize located plans by SQL text.
        # (Unsound across policy reloads — only used when the compliant
        # plan cache is disabled.)
        plan = self._plan_cache.get(request.sql)
        if plan is None:
            plan = self.optimizer.optimize(request.sql).plan
            if self.evaluator is not None:
                self._guard(plan)
            self._plan_cache[request.sql] = plan
        return plan

    def _guard(self, plan: PhysicalPlan) -> None:
        from ..optimizer.validator import check_compliance

        violations = check_compliance(plan, self.evaluator)
        if violations:
            details = "; ".join(str(v) for v in violations)
            raise ComplianceViolationError(
                f"refusing to serve non-compliant plan: {details}"
            )

    # -- the event loop ---------------------------------------------------------

    def serve(self, requests: list[QueryRequest]) -> ServeResult:
        """Drain ``requests`` and return per-query outcomes plus
        aggregate :class:`ServerMetrics` (which always reconcile to
        ``len(requests)``).  Genuine operator bugs propagate; every
        load/WAN outcome is a typed result, never an exception."""
        metrics = ServerMetrics(total=len(requests))
        plan_cache = getattr(self.optimizer, "plan_cache", None)
        cache_before = (
            plan_cache.stats.snapshot() if plan_cache is not None else None
        )
        outcomes: dict[int, QueryOutcome] = {}
        events: list[_Event] = []
        seq = 0
        for index, request in enumerate(
            sorted(requests, key=lambda r: r.arrival)
        ):
            events.append(_Event(request.arrival, 1, seq, (index, request)))
            seq += 1
        heapq.heapify(events)

        #: Waiting room, kept sorted by (-priority, arrival, index).
        queue: list[tuple[int, float, int, QueryRequest]] = []
        running: dict[int, Counter] = {}  # index -> fragments per site
        inflight: Counter = Counter()
        last_event = max((r.arrival for r in requests), default=0.0)

        def can_start(sites: Counter) -> bool:
            if len(running) >= self.concurrency:
                return False
            if self.site_inflight is not None:
                for site, count in sites.items():
                    if inflight[site] + count > self.site_inflight:
                        return False
            return True

        def dispatch(now: float) -> None:
            """Start queued queries while capacity allows, in priority
            order; head-of-line blocking keeps dispatch deterministic."""
            nonlocal seq, last_event
            while queue:
                _, _, index, request = queue[0]
                absolute = request.absolute_deadline(self.default_deadline)
                if absolute is not None and now > absolute:
                    heapq.heappop(queue)
                    error = DeadlineExceeded(
                        f"request {request.label!r} spent "
                        f"{now - request.arrival:.3f}s queued, past its "
                        f"deadline of t={absolute:.3f}s",
                        deadline=absolute,
                        at=now,
                    )
                    outcomes[index] = QueryOutcome(
                        request=request, status="shed", error=error
                    )
                    recorder = current_recorder()
                    if recorder is not None:
                        recorder.record_request(
                            "shed", request.label, at=now, detail=str(error)
                        )
                    continue
                plan = self._plan_for(request)
                sites = Counter(f.location for f in fragment_plan(plan).fragments)
                if not can_start(sites):
                    return
                heapq.heappop(queue)
                outcome = self._execute(index, request, plan, now, absolute)
                outcomes[index] = outcome
                finish = outcome.finished_at if outcome.finished_at is not None else now
                last_event = max(last_event, finish)
                running[index] = sites
                inflight.update(sites)
                heapq.heappush(events, _Event(finish, 0, seq, index))
                seq += 1

        while events:
            event = heapq.heappop(events)
            now = event.when
            if event.kind == 0:  # completion: release capacity
                index = event.payload
                inflight.subtract(running.pop(index))
                dispatch(now)
                continue
            index, request = event.payload
            recorder = current_recorder()
            if recorder is not None:
                recorder.record_request("arrival", request.label, at=now)
            if len(queue) >= self.queue_depth:
                error = AdmissionRejected(
                    f"request {request.label!r} rejected at "
                    f"t={now:.3f}s: waiting queue is full "
                    f"({self.queue_depth} requests)",
                    queue_depth=self.queue_depth,
                )
                outcomes[index] = QueryOutcome(
                    request=request, status="rejected", error=error
                )
                if recorder is not None:
                    recorder.record_request(
                        "rejected", request.label, at=now, detail=str(error)
                    )
                continue
            heapq.heappush(queue, (-request.priority, request.arrival, index, request))
            dispatch(now)

        assert not queue and not running  # the loop drains everything
        final = self._account(metrics, outcomes, last_event)
        if cache_before is not None:
            after = plan_cache.stats
            final.plan_cache_hits = after.hits - cache_before.hits
            final.plan_cache_misses = after.misses - cache_before.misses
            final.plan_cache_invalidations = (
                after.invalidations - cache_before.invalidations
            )
        return ServeResult(
            outcomes=[outcomes[i] for i in sorted(outcomes)],
            metrics=final,
            breakers=self.breakers,
        )

    # -- execution of one dispatched query --------------------------------------

    def _execute(
        self,
        index: int,
        request: QueryRequest,
        plan: PhysicalPlan,
        now: float,
        absolute_deadline: float | None,
    ) -> QueryOutcome:
        recorder = current_recorder()
        query = None
        if recorder is not None:
            query = recorder.begin_query(
                label=request.label,
                at=now,
                executor=self.scheduler.executor,
                parallel=True,
            )
        try:
            batch, run_metrics = self.scheduler.run(
                plan, start_at=now, deadline=absolute_deadline
            )
        except DeadlineExceeded as error:
            # Cooperative cancellation at a fragment boundary; the
            # capacity the query held is released at the shed instant.
            shed_at = error.at if error.at is not None else now
            if recorder is not None:
                recorder.record_request(
                    "shed", request.label, at=shed_at, detail=str(error)
                )
                recorder.end_query(query, at=shed_at, status="shed")
            return QueryOutcome(
                request=request,
                status="shed",
                error=error,
                started_at=now,
                finished_at=shed_at,
            )
        finished = max(now, run_metrics.makespan_seconds)
        if run_metrics.partial_failure is not None:
            failure = run_metrics.partial_failure
            if recorder is not None:
                recorder.record_request(
                    "partial", request.label, at=finished, detail=str(failure)
                )
                recorder.end_query(
                    query,
                    at=finished,
                    status="partial",
                    makespan=run_metrics.makespan_seconds,
                )
            return QueryOutcome(
                request=request,
                status="partial",
                error=PartialFailureError(str(failure)),
                started_at=now,
                finished_at=finished,
                metrics=run_metrics,
            )
        late = absolute_deadline is not None and finished > absolute_deadline
        if recorder is not None:
            recorder.record_request(
                "served_late" if late else "served", request.label, at=finished
            )
            recorder.end_query(
                query,
                at=finished,
                status="ok",
                rows=len(batch.rows),
                makespan=run_metrics.makespan_seconds,
            )
        return QueryOutcome(
            request=request,
            status="served",
            columns=batch.columns,
            rows=batch.rows,
            started_at=now,
            finished_at=finished,
            metrics=run_metrics,
            late=late,
        )

    # -- accounting -------------------------------------------------------------

    def _account(
        self,
        metrics: ServerMetrics,
        outcomes: dict[int, QueryOutcome],
        last_event: float,
    ) -> ServerMetrics:
        for outcome in outcomes.values():
            if outcome.status == "served":
                metrics.served += 1
                metrics.served_late += outcome.late
            elif outcome.status == "shed":
                metrics.shed += 1
            elif outcome.status == "rejected":
                metrics.rejected += 1
            else:
                metrics.partial += 1
            metrics.queue_wait_seconds += outcome.queue_wait_seconds
            if outcome.metrics is not None:
                metrics.service_seconds += outcome.metrics.service_seconds
                metrics.retry_wait_seconds += outcome.metrics.retry_wait_seconds
                metrics.transfer_attempts += outcome.metrics.transfer_attempts
                metrics.breaker_fast_fails += outcome.metrics.breaker_fast_fails
                metrics.recoveries += len(outcome.metrics.recoveries)
                metrics.replica_failovers += outcome.metrics.replica_failovers
                metrics.replica_switches_breaker += (
                    outcome.metrics.replica_switches_breaker
                )
                metrics.partial_failures_avoided += (
                    outcome.metrics.partial_failures_avoided
                )
                metrics.stale_reads += outcome.metrics.stale_reads
                metrics.refresh_waits += outcome.metrics.refresh_waits
                metrics.refresh_wait_seconds += (
                    outcome.metrics.refresh_wait_seconds
                )
                metrics.freshness_demotions += (
                    outcome.metrics.freshness_demotions
                )
                metrics.logical_bytes_shipped += (
                    outcome.metrics.total_bytes_shipped
                )
                metrics.wire_bytes_shipped += (
                    outcome.metrics.total_wire_bytes_shipped
                )
                metrics.chunks_shipped += outcome.metrics.total_chunks_shipped
        metrics.finished_at_seconds = last_event
        if self.breakers is not None:
            metrics.breaker_trips = self.breakers.total_trips()
            metrics.breaker_states = self.breakers.snapshot()
        return metrics


class PartialFailureError(ReproError):
    """Typed wrapper carrying a :class:`~repro.execution.PartialFailure`
    description on a :class:`QueryOutcome` — so every non-served
    outcome exposes a ``ReproError`` under ``outcome.error``."""
