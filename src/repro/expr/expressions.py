"""Scalar and aggregate expression trees.

Expressions are immutable (frozen dataclasses) so they can be shared across
plan alternatives in the optimizer memo and compared structurally.  A
:class:`ColumnRef` names a field of its input row by the field's unique
name; the binder assigns unique, qualified names (``c.custkey``) when it
translates SQL.

Provenance
----------
Dataflow policies restrict *base-table attributes*, so every column
reference may carry a :class:`BaseColumn` telling which attribute of which
stored table the value ultimately comes from.  Computed outputs (``SUM(x)``,
``a*b``) have no single provenance; the policy evaluator instead collects
the provenance of every base attribute mentioned inside the expression
(this matches the paper's ``A_q`` = attributes appearing in the output
expressions of a query).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from ..datatypes import DataType


@dataclass(frozen=True)
class BaseColumn:
    """Provenance of a value: attribute ``column`` of stored ``table`` in
    database ``database``."""

    database: str
    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.database}.{self.table}.{self.column}"


class Expression:
    """Base class for all scalar/aggregate expression nodes."""

    def children(self) -> tuple["Expression", ...]:
        raise NotImplementedError

    def with_children(self, children: tuple["Expression", ...]) -> "Expression":
        """Rebuild this node with new children (same arity)."""
        raise NotImplementedError

    def references(self) -> frozenset[str]:
        """Names of all columns referenced anywhere in this tree."""
        out: set[str] = set()
        for node in walk(self):
            if isinstance(node, ColumnRef):
                out.add(node.name)
        return frozenset(out)

    def base_columns(self) -> frozenset[BaseColumn]:
        """Provenance of every base attribute mentioned in this tree."""
        out: set[BaseColumn] = set()
        for node in walk(self):
            if isinstance(node, ColumnRef) and node.base is not None:
                out.add(node.base)
        return frozenset(out)

    def contains_aggregate(self) -> bool:
        return any(isinstance(node, AggregateCall) for node in walk(self))


def walk(expr: Expression) -> Iterator[Expression]:
    """Yield ``expr`` and all of its descendants, pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value with its SQL type."""

    value: Any
    dtype: DataType

    def children(self) -> tuple[Expression, ...]:
        return ()

    def with_children(self, children: tuple[Expression, ...]) -> Expression:
        return self

    def __str__(self) -> str:
        if self.dtype == DataType.VARCHAR:
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """Reference to a named field of the input row.

    ``base`` is the provenance of the field when it maps 1:1 to a stored
    attribute; ``None`` for computed fields.  ``dtype`` is resolved by the
    binder.
    """

    name: str
    dtype: DataType = DataType.VARCHAR
    base: BaseColumn | None = None

    def children(self) -> tuple[Expression, ...]:
        return ()

    def with_children(self, children: tuple[Expression, ...]) -> Expression:
        return self

    def __str__(self) -> str:
        return self.name


class ComparisonOp(enum.Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flip(self) -> "ComparisonOp":
        """Operator with operand sides swapped (a < b  ==  b > a)."""
        return {
            ComparisonOp.EQ: ComparisonOp.EQ,
            ComparisonOp.NE: ComparisonOp.NE,
            ComparisonOp.LT: ComparisonOp.GT,
            ComparisonOp.LE: ComparisonOp.GE,
            ComparisonOp.GT: ComparisonOp.LT,
            ComparisonOp.GE: ComparisonOp.LE,
        }[self]

    def negate(self) -> "ComparisonOp":
        return {
            ComparisonOp.EQ: ComparisonOp.NE,
            ComparisonOp.NE: ComparisonOp.EQ,
            ComparisonOp.LT: ComparisonOp.GE,
            ComparisonOp.LE: ComparisonOp.GT,
            ComparisonOp.GT: ComparisonOp.LE,
            ComparisonOp.GE: ComparisonOp.LT,
        }[self]


@dataclass(frozen=True)
class Comparison(Expression):
    op: ComparisonOp
    left: Expression
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Expression, ...]) -> Expression:
        left, right = children
        return Comparison(self.op, left, right)

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class And(Expression):
    """N-ary conjunction.  Always holds at least two operands."""

    operands: tuple[Expression, ...]

    def children(self) -> tuple[Expression, ...]:
        return self.operands

    def with_children(self, children: tuple[Expression, ...]) -> Expression:
        return And(children)

    def __str__(self) -> str:
        return "(" + " AND ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Or(Expression):
    """N-ary disjunction.  Always holds at least two operands."""

    operands: tuple[Expression, ...]

    def children(self) -> tuple[Expression, ...]:
        return self.operands

    def with_children(self, children: tuple[Expression, ...]) -> Expression:
        return Or(children)

    def __str__(self) -> str:
        return "(" + " OR ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def with_children(self, children: tuple[Expression, ...]) -> Expression:
        return Not(children[0])

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


class ArithmeticOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"


@dataclass(frozen=True)
class Arithmetic(Expression):
    op: ArithmeticOp
    left: Expression
    right: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Expression, ...]) -> Expression:
        left, right = children
        return Arithmetic(self.op, left, right)

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class Negate(Expression):
    """Unary minus."""

    operand: Expression

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def with_children(self, children: tuple[Expression, ...]) -> Expression:
        return Negate(children[0])

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class Like(Expression):
    """SQL ``LIKE`` with ``%`` and ``_`` wildcards against a constant
    pattern."""

    operand: Expression
    pattern: str
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def with_children(self, children: tuple[Expression, ...]) -> Expression:
        return Like(children[0], self.pattern, self.negated)

    def __str__(self) -> str:
        kw = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand} {kw} '{self.pattern}')"


@dataclass(frozen=True)
class InList(Expression):
    """SQL ``IN (v1, v2, ...)`` against constant values."""

    operand: Expression
    values: tuple[Literal, ...]
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def with_children(self, children: tuple[Expression, ...]) -> Expression:
        return InList(children[0], self.values, self.negated)

    def __str__(self) -> str:
        kw = "NOT IN" if self.negated else "IN"
        vals = ", ".join(str(v) for v in self.values)
        return f"({self.operand} {kw} ({vals}))"


@dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def with_children(self, children: tuple[Expression, ...]) -> Expression:
        return IsNull(children[0], self.negated)

    def __str__(self) -> str:
        kw = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {kw})"


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Scalar function call.  The evaluator has a registry of supported
    functions (currently YEAR, SUBSTRING, LOWER, UPPER, ABS)."""

    name: str
    args: tuple[Expression, ...]

    def children(self) -> tuple[Expression, ...]:
        return self.args

    def with_children(self, children: tuple[Expression, ...]) -> Expression:
        return FunctionCall(self.name, children)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


class AggregateFunction(enum.Enum):
    SUM = "sum"
    COUNT = "count"
    AVG = "avg"
    MIN = "min"
    MAX = "max"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class AggregateCall(Expression):
    """An aggregate function over an argument expression.

    ``argument`` is ``None`` only for ``COUNT(*)``.
    """

    func: AggregateFunction
    argument: Expression | None

    def children(self) -> tuple[Expression, ...]:
        return () if self.argument is None else (self.argument,)

    def with_children(self, children: tuple[Expression, ...]) -> Expression:
        if self.argument is None:
            return self
        return AggregateCall(self.func, children[0])

    def __str__(self) -> str:
        arg = "*" if self.argument is None else str(self.argument)
        return f"{self.func.value.upper()}({arg})"


# ---------------------------------------------------------------------------
# Construction and rewriting helpers
# ---------------------------------------------------------------------------

TRUE = Literal(True, DataType.BOOLEAN)
FALSE = Literal(False, DataType.BOOLEAN)


def conjunction(operands: Iterable[Expression]) -> Expression:
    """Build the conjunction of ``operands``, flattening nested ANDs and
    dropping TRUE literals.  Returns ``TRUE`` for an empty input."""
    flat: list[Expression] = []
    for op in operands:
        if isinstance(op, And):
            flat.extend(op.operands)
        elif op == TRUE:
            continue
        else:
            flat.append(op)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disjunction(operands: Iterable[Expression]) -> Expression:
    """Build the disjunction of ``operands``, flattening nested ORs."""
    flat: list[Expression] = []
    for op in operands:
        if isinstance(op, Or):
            flat.extend(op.operands)
        else:
            flat.append(op)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def split_conjuncts(expr: Expression | None) -> list[Expression]:
    """Split a predicate into top-level conjuncts (TRUE/None -> [])."""
    if expr is None or expr == TRUE:
        return []
    if isinstance(expr, And):
        out: list[Expression] = []
        for op in expr.operands:
            out.extend(split_conjuncts(op))
        return out
    return [expr]


def substitute(expr: Expression, mapping: Mapping[str, Expression]) -> Expression:
    """Replace every :class:`ColumnRef` whose name is in ``mapping`` with
    the mapped expression (used when pushing predicates through
    projections)."""
    if isinstance(expr, ColumnRef):
        return mapping.get(expr.name, expr)
    kids = expr.children()
    if not kids:
        return expr
    new_kids = tuple(substitute(k, mapping) for k in kids)
    if new_kids == kids:
        return expr
    return expr.with_children(new_kids)


def rename_columns(expr: Expression, renames: Mapping[str, str]) -> Expression:
    """Rename column references according to ``renames``."""
    if isinstance(expr, ColumnRef):
        new_name = renames.get(expr.name)
        if new_name is None:
            return expr
        return ColumnRef(new_name, expr.dtype, expr.base)
    kids = expr.children()
    if not kids:
        return expr
    new_kids = tuple(rename_columns(k, renames) for k in kids)
    if new_kids == kids:
        return expr
    return expr.with_children(new_kids)


def expression_dtype(expr: Expression) -> DataType:
    """Derive the result type of a bound expression tree."""
    from ..datatypes import arithmetic_result_type

    if isinstance(expr, Literal):
        return expr.dtype
    if isinstance(expr, ColumnRef):
        return expr.dtype
    if isinstance(expr, (Comparison, And, Or, Not, Like, InList, IsNull)):
        return DataType.BOOLEAN
    if isinstance(expr, Arithmetic):
        return arithmetic_result_type(
            expression_dtype(expr.left), expression_dtype(expr.right)
        )
    if isinstance(expr, Negate):
        return expression_dtype(expr.operand)
    if isinstance(expr, FunctionCall):
        name = expr.name.upper()
        if name == "YEAR":
            return DataType.INTEGER
        if name in ("SUBSTRING", "LOWER", "UPPER"):
            return DataType.VARCHAR
        if name == "ABS":
            return expression_dtype(expr.args[0])
        return DataType.VARCHAR
    if isinstance(expr, AggregateCall):
        if expr.func == AggregateFunction.COUNT:
            return DataType.INTEGER
        if expr.func == AggregateFunction.AVG:
            return DataType.DECIMAL
        assert expr.argument is not None
        arg_t = expression_dtype(expr.argument)
        if expr.func == AggregateFunction.SUM and arg_t == DataType.INTEGER:
            return DataType.INTEGER
        if expr.func in (AggregateFunction.MIN, AggregateFunction.MAX):
            return arg_t
        return DataType.DECIMAL
    raise TypeError(f"unknown expression node: {type(expr).__name__}")
