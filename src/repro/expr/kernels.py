"""Batch (columnar) expression kernels.

:func:`compile_expression` in :mod:`repro.expr.evaluator` produces a
``row -> value`` closure; evaluating a plan over hundreds of thousands
of rows then pays a chain of Python calls *per row per expression node*.
This module compiles the same bound expression trees into **kernels**
that evaluate a whole column per call:

``kernel(columns, selection, nrows) -> column``

* ``columns`` — the operator input as parallel sequences, one per field
  (position ``j`` of ``columns[i]`` belongs to row ``j``).  Kernels must
  treat columns as read-only; a :class:`~repro.expr.expressions.ColumnRef`
  kernel may return an input column by reference.
* ``selection`` — an optional *selection vector*: sorted row indices into
  the dense columns.  With a selection the result column is aligned with
  it (``len(result) == len(selection)``); with ``None`` the result is
  dense (``len(result) == nrows``).
* NULL semantics are exactly the row evaluator's SQL three-valued logic:
  NULL operands yield NULL, predicates treat NULL as not satisfied, and
  ``AND``/``OR`` short-circuit over the column with False/True dominance.

:func:`compile_predicate_kernel` compiles a boolean expression into a
**selection kernel** ``(columns, selection, nrows) -> selection`` that
returns the (refined) indices of rows satisfying the predicate.  Top
level conjunctions become successive selection-vector refinement, and
the common atomic shapes — column-vs-literal comparisons, column-vs-
column comparisons, ``LIKE``, ``IN``, ``IS NULL`` on a bare column —
compile to single list comprehensions with the operator inlined in
bytecode (no per-row Python call at all).  Everything else falls back to
the value kernel plus a truthiness scan, which is still one call per
expression node per *column* rather than per row.

Agreement with the row evaluator (including NULLs and LIKE) is locked
down by the hypothesis property suite in ``tests/expr/test_kernels.py``.
One deliberate divergence, standard for vectorized engines: kernels
evaluate every operand over the whole column, so a data-dependent error
(division by zero) inside an ``AND``/``OR`` may raise where the row
evaluator's per-row short-circuit would have skipped it — and the
selection chain's empty-vector early exit may skip a conjunct the row
evaluator would have raised in.  *Values* never diverge, only the error
effect of queries that are already erroneous, and plans produced by the
binder never divide inside a disjunction guard.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..errors import ExecutionError
from .evaluator import _scalar_function, like_to_regex
from .expressions import (
    AggregateCall,
    And,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
)

#: One column of values (a scan column may be a tuple, computed ones are
#: lists); kernels never mutate them.
Column = Sequence[Any]
#: ``(columns, selection, nrows) -> column`` — see module docstring.
Kernel = Callable[[Sequence[Column], Sequence[int] | None, int], list]
#: ``(columns, selection, nrows) -> selection`` (indices of passing rows).
SelectionKernel = Callable[[Sequence[Column], Sequence[int] | None, int], list[int]]


def _index(schema: Sequence[str]) -> dict[str, int]:
    return {name: i for i, name in enumerate(schema)}


def _column_pos(node: ColumnRef, index: dict[str, int], schema: Sequence[str]) -> int:
    if node.name not in index:
        raise ExecutionError(f"column {node.name!r} not in schema {list(schema)!r}")
    return index[node.name]


def _div(a: Any, b: Any) -> Any:
    if a is None or b is None:
        return None
    if b == 0:
        raise ExecutionError("division by zero")
    return a / b


def _comparison_kernel(left: Kernel, right: Kernel, op: ComparisonOp) -> Kernel:
    """Elementwise comparison with the operator inlined per branch (one
    list comprehension, no per-row dispatch)."""
    if op == ComparisonOp.EQ:
        return lambda cols, sel, n: [
            None if a is None or b is None else a == b
            for a, b in zip(left(cols, sel, n), right(cols, sel, n))
        ]
    if op == ComparisonOp.NE:
        return lambda cols, sel, n: [
            None if a is None or b is None else a != b
            for a, b in zip(left(cols, sel, n), right(cols, sel, n))
        ]
    if op == ComparisonOp.LT:
        return lambda cols, sel, n: [
            None if a is None or b is None else a < b
            for a, b in zip(left(cols, sel, n), right(cols, sel, n))
        ]
    if op == ComparisonOp.LE:
        return lambda cols, sel, n: [
            None if a is None or b is None else a <= b
            for a, b in zip(left(cols, sel, n), right(cols, sel, n))
        ]
    if op == ComparisonOp.GT:
        return lambda cols, sel, n: [
            None if a is None or b is None else a > b
            for a, b in zip(left(cols, sel, n), right(cols, sel, n))
        ]
    return lambda cols, sel, n: [
        None if a is None or b is None else a >= b
        for a, b in zip(left(cols, sel, n), right(cols, sel, n))
    ]


def _arithmetic_kernel(left: Kernel, right: Kernel, op: ArithmeticOp) -> Kernel:
    if op == ArithmeticOp.ADD:
        return lambda cols, sel, n: [
            None if a is None or b is None else a + b
            for a, b in zip(left(cols, sel, n), right(cols, sel, n))
        ]
    if op == ArithmeticOp.SUB:
        return lambda cols, sel, n: [
            None if a is None or b is None else a - b
            for a, b in zip(left(cols, sel, n), right(cols, sel, n))
        ]
    if op == ArithmeticOp.MUL:
        return lambda cols, sel, n: [
            None if a is None or b is None else a * b
            for a, b in zip(left(cols, sel, n), right(cols, sel, n))
        ]
    return lambda cols, sel, n: [
        _div(a, b) for a, b in zip(left(cols, sel, n), right(cols, sel, n))
    ]


def compile_kernel(expr: Expression, schema: Sequence[str]) -> Kernel:
    """Compile ``expr`` into a batch kernel over columns in ``schema``
    order.  Raises :class:`ExecutionError` for unknown columns and for
    :class:`AggregateCall` nodes (aggregates are evaluated by the
    Aggregate operator, never as scalar kernels)."""
    index = _index(schema)

    def build(node: Expression) -> Kernel:
        if isinstance(node, Literal):
            value = node.value
            return lambda cols, sel, n: [value] * (n if sel is None else len(sel))
        if isinstance(node, ColumnRef):
            pos = _column_pos(node, index, schema)

            def column(cols, sel, n, pos=pos):
                col = cols[pos]
                if sel is None:
                    return col
                return [col[i] for i in sel]

            return column
        if isinstance(node, Comparison):
            return _comparison_kernel(build(node.left), build(node.right), node.op)
        if isinstance(node, And):
            parts = [build(op) for op in node.operands]

            def conj(cols, sel, n):
                # 3VL fold: False dominates, then NULL, then True.
                out = [
                    True if v else (None if v is None else False)
                    for v in parts[0](cols, sel, n)
                ]
                for part in parts[1:]:
                    for i, v in enumerate(part(cols, sel, n)):
                        cur = out[i]
                        if cur is False:
                            continue
                        if v is None:
                            out[i] = None
                        elif not v:
                            out[i] = False
                return out

            return conj
        if isinstance(node, Or):
            parts = [build(op) for op in node.operands]

            def disj(cols, sel, n):
                # 3VL fold: True dominates, then NULL, then False.
                out = [
                    True if v else (None if v is None else False)
                    for v in parts[0](cols, sel, n)
                ]
                for part in parts[1:]:
                    for i, v in enumerate(part(cols, sel, n)):
                        cur = out[i]
                        if cur is True:
                            continue
                        if v is None:
                            out[i] = None
                        elif v:
                            out[i] = True
                return out

            return disj
        if isinstance(node, Not):
            inner = build(node.operand)
            return lambda cols, sel, n: [
                None if v is None else not v for v in inner(cols, sel, n)
            ]
        if isinstance(node, Arithmetic):
            return _arithmetic_kernel(build(node.left), build(node.right), node.op)
        if isinstance(node, Negate):
            inner = build(node.operand)
            return lambda cols, sel, n: [
                None if v is None else -v for v in inner(cols, sel, n)
            ]
        if isinstance(node, Like):
            inner = build(node.operand)
            match = like_to_regex(node.pattern).match
            if node.negated:
                return lambda cols, sel, n: [
                    None if v is None else match(v) is None
                    for v in inner(cols, sel, n)
                ]
            return lambda cols, sel, n: [
                None if v is None else match(v) is not None
                for v in inner(cols, sel, n)
            ]
        if isinstance(node, InList):
            inner = build(node.operand)
            values = frozenset(lit.value for lit in node.values)
            if node.negated:
                return lambda cols, sel, n: [
                    None if v is None else v not in values
                    for v in inner(cols, sel, n)
                ]
            return lambda cols, sel, n: [
                None if v is None else v in values for v in inner(cols, sel, n)
            ]
        if isinstance(node, IsNull):
            inner = build(node.operand)
            if node.negated:
                return lambda cols, sel, n: [
                    v is not None for v in inner(cols, sel, n)
                ]
            return lambda cols, sel, n: [v is None for v in inner(cols, sel, n)]
        if isinstance(node, FunctionCall):
            fn = _scalar_function(node.name)
            arg_kernels = [build(a) for a in node.args]
            if len(arg_kernels) == 1:
                arg = arg_kernels[0]
                return lambda cols, sel, n: [fn(v) for v in arg(cols, sel, n)]
            return lambda cols, sel, n: [
                fn(*vals) for vals in zip(*(k(cols, sel, n) for k in arg_kernels))
            ]
        if isinstance(node, AggregateCall):
            raise ExecutionError(
                "aggregate call evaluated outside an Aggregate operator"
            )
        raise ExecutionError(f"unknown expression node: {type(node).__name__}")

    return build(expr)


# ---------------------------------------------------------------------------
# Selection kernels (predicates -> selection-vector refinement)
# ---------------------------------------------------------------------------


def _comparison_refiner(pos: int, value: Any, op: ComparisonOp) -> SelectionKernel:
    """column <op> literal, operator inlined in bytecode per branch.

    The dense (``sel is None``) case enumerates the column directly —
    no indexing at all — because it is the inner loop of every leaf
    filter in the batch executor.
    """
    if op == ComparisonOp.EQ:
        def refine(cols, sel, n):
            col = cols[pos]
            if sel is None:
                return [i for i, x in enumerate(col) if x is not None and x == value]
            return [i for i in sel if (x := col[i]) is not None and x == value]
    elif op == ComparisonOp.NE:
        def refine(cols, sel, n):
            col = cols[pos]
            if sel is None:
                return [i for i, x in enumerate(col) if x is not None and x != value]
            return [i for i in sel if (x := col[i]) is not None and x != value]
    elif op == ComparisonOp.LT:
        def refine(cols, sel, n):
            col = cols[pos]
            if sel is None:
                return [i for i, x in enumerate(col) if x is not None and x < value]
            return [i for i in sel if (x := col[i]) is not None and x < value]
    elif op == ComparisonOp.LE:
        def refine(cols, sel, n):
            col = cols[pos]
            if sel is None:
                return [i for i, x in enumerate(col) if x is not None and x <= value]
            return [i for i in sel if (x := col[i]) is not None and x <= value]
    elif op == ComparisonOp.GT:
        def refine(cols, sel, n):
            col = cols[pos]
            if sel is None:
                return [i for i, x in enumerate(col) if x is not None and x > value]
            return [i for i in sel if (x := col[i]) is not None and x > value]
    else:
        def refine(cols, sel, n):
            col = cols[pos]
            if sel is None:
                return [i for i, x in enumerate(col) if x is not None and x >= value]
            return [i for i in sel if (x := col[i]) is not None and x >= value]
    return refine


def _column_comparison_refiner(lpos: int, rpos: int, op: ComparisonOp) -> SelectionKernel:
    """column <op> column, operator inlined in bytecode per branch."""
    if op == ComparisonOp.EQ:
        def refine(cols, sel, n):
            lc, rc = cols[lpos], cols[rpos]
            if sel is None:
                sel = range(n)
            return [
                i for i in sel
                if (a := lc[i]) is not None and (b := rc[i]) is not None and a == b
            ]
    elif op == ComparisonOp.NE:
        def refine(cols, sel, n):
            lc, rc = cols[lpos], cols[rpos]
            if sel is None:
                sel = range(n)
            return [
                i for i in sel
                if (a := lc[i]) is not None and (b := rc[i]) is not None and a != b
            ]
    elif op == ComparisonOp.LT:
        def refine(cols, sel, n):
            lc, rc = cols[lpos], cols[rpos]
            if sel is None:
                sel = range(n)
            return [
                i for i in sel
                if (a := lc[i]) is not None and (b := rc[i]) is not None and a < b
            ]
    elif op == ComparisonOp.LE:
        def refine(cols, sel, n):
            lc, rc = cols[lpos], cols[rpos]
            if sel is None:
                sel = range(n)
            return [
                i for i in sel
                if (a := lc[i]) is not None and (b := rc[i]) is not None and a <= b
            ]
    elif op == ComparisonOp.GT:
        def refine(cols, sel, n):
            lc, rc = cols[lpos], cols[rpos]
            if sel is None:
                sel = range(n)
            return [
                i for i in sel
                if (a := lc[i]) is not None and (b := rc[i]) is not None and a > b
            ]
    else:
        def refine(cols, sel, n):
            lc, rc = cols[lpos], cols[rpos]
            if sel is None:
                sel = range(n)
            return [
                i for i in sel
                if (a := lc[i]) is not None and (b := rc[i]) is not None and a >= b
            ]
    return refine


def compile_predicate_kernel(
    expr: Expression, schema: Sequence[str]
) -> SelectionKernel:
    """Compile a boolean expression into a selection kernel (NULL counts
    as not satisfied, exactly like :func:`repro.expr.compile_predicate`).

    The returned kernel refines an incoming selection vector: it only
    inspects rows in ``selection`` (all rows when ``None``) and returns
    the indices that satisfy the predicate, preserving order.
    """
    index = _index(schema)

    def atomic(node: Expression) -> SelectionKernel:
        if isinstance(node, And):
            refiners = [atomic(op) for op in node.operands]

            def chain(cols, sel, n):
                for refine in refiners:
                    sel = refine(cols, sel, n)
                    if not sel:
                        return []
                return sel

            return chain
        if isinstance(node, Comparison):
            left, right, op = node.left, node.right, node.op
            if isinstance(left, ColumnRef) and isinstance(right, Literal):
                if right.value is None:
                    return lambda cols, sel, n: []
                return _comparison_refiner(
                    _column_pos(left, index, schema), right.value, op
                )
            if isinstance(left, Literal) and isinstance(right, ColumnRef):
                if left.value is None:
                    return lambda cols, sel, n: []
                return _comparison_refiner(
                    _column_pos(right, index, schema), left.value, op.flip()
                )
            if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
                return _column_comparison_refiner(
                    _column_pos(left, index, schema),
                    _column_pos(right, index, schema),
                    op,
                )
        if isinstance(node, InList) and isinstance(node.operand, ColumnRef):
            pos = _column_pos(node.operand, index, schema)
            values = frozenset(lit.value for lit in node.values)
            negated = node.negated

            def in_list(cols, sel, n):
                col = cols[pos]
                if sel is None:
                    sel = range(n)
                if negated:
                    return [
                        i for i in sel
                        if (x := col[i]) is not None and x not in values
                    ]
                return [i for i in sel if (x := col[i]) is not None and x in values]

            return in_list
        if isinstance(node, Like) and isinstance(node.operand, ColumnRef):
            pos = _column_pos(node.operand, index, schema)
            match = like_to_regex(node.pattern).match
            negated = node.negated

            def like(cols, sel, n):
                col = cols[pos]
                if sel is None:
                    sel = range(n)
                if negated:
                    return [
                        i for i in sel
                        if (x := col[i]) is not None and match(x) is None
                    ]
                return [
                    i for i in sel
                    if (x := col[i]) is not None and match(x) is not None
                ]

            return like
        if isinstance(node, IsNull) and isinstance(node.operand, ColumnRef):
            pos = _column_pos(node.operand, index, schema)
            negated = node.negated

            def is_null(cols, sel, n):
                col = cols[pos]
                if sel is None:
                    sel = range(n)
                if negated:
                    return [i for i in sel if col[i] is not None]
                return [i for i in sel if col[i] is None]

            return is_null
        # Generic fallback: evaluate the value kernel over the current
        # selection and keep truthy rows (NULL and False both drop out).
        kernel = compile_kernel(node, schema)

        def fallback(cols, sel, n):
            vals = kernel(cols, sel, n)
            base = range(n) if sel is None else sel
            return [i for i, v in zip(base, vals) if v]

        return fallback

    return atomic(expr)
