"""Expression evaluation against rows.

Rows are plain Python tuples; a *row schema* is an ordered list of field
names mapping positions to :class:`~repro.expr.expressions.ColumnRef`
names.  :func:`compile_expression` turns a bound expression tree into a
closure ``row -> value`` so per-row evaluation avoids repeated dispatch —
important because the benchmark harness executes plans over hundreds of
thousands of rows.

NULL semantics follow SQL three-valued logic to the extent the engine
needs: any comparison/arithmetic involving NULL yields NULL, predicates
treat NULL as not-satisfied, and aggregates skip NULLs (except COUNT(*)).
"""

from __future__ import annotations

import re
from typing import Any, Callable, Sequence

from ..errors import ExecutionError
from .expressions import (
    AggregateCall,
    And,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
)

RowFunc = Callable[[Sequence[Any]], Any]


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern to an anchored compiled regex."""
    out: list[str] = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


_COMPARATORS: dict[ComparisonOp, Callable[[Any, Any], bool]] = {
    ComparisonOp.EQ: lambda a, b: a == b,
    ComparisonOp.NE: lambda a, b: a != b,
    ComparisonOp.LT: lambda a, b: a < b,
    ComparisonOp.LE: lambda a, b: a <= b,
    ComparisonOp.GT: lambda a, b: a > b,
    ComparisonOp.GE: lambda a, b: a >= b,
}


def _scalar_function(name: str) -> Callable[..., Any]:
    upper = name.upper()
    if upper == "YEAR":
        return lambda d: None if d is None else d.year
    if upper == "LOWER":
        return lambda s: None if s is None else s.lower()
    if upper == "UPPER":
        return lambda s: None if s is None else s.upper()
    if upper == "ABS":
        return lambda x: None if x is None else abs(x)
    if upper == "SUBSTRING":
        def substring(s: str | None, start: int, length: int | None = None) -> str | None:
            if s is None:
                return None
            begin = start - 1  # SQL SUBSTRING is 1-based
            if length is None:
                return s[begin:]
            return s[begin:begin + length]

        return substring
    raise ExecutionError(f"unsupported scalar function: {name}")


def compile_expression(expr: Expression, schema: Sequence[str]) -> RowFunc:
    """Compile ``expr`` into a closure evaluating it against rows whose
    field order is given by ``schema``.

    Raises :class:`ExecutionError` for column references not present in the
    schema or for :class:`AggregateCall` nodes (aggregates are evaluated by
    the Aggregate operator, never row-at-a-time).
    """
    index = {name: i for i, name in enumerate(schema)}

    def build(node: Expression) -> RowFunc:
        if isinstance(node, Literal):
            value = node.value
            return lambda row: value
        if isinstance(node, ColumnRef):
            if node.name not in index:
                raise ExecutionError(
                    f"column {node.name!r} not in schema {list(schema)!r}"
                )
            pos = index[node.name]
            return lambda row: row[pos]
        if isinstance(node, Comparison):
            left = build(node.left)
            right = build(node.right)
            cmp = _COMPARATORS[node.op]

            def compare(row: Sequence[Any]) -> Any:
                a = left(row)
                b = right(row)
                if a is None or b is None:
                    return None
                return cmp(a, b)

            return compare
        if isinstance(node, And):
            parts = [build(op) for op in node.operands]

            def conj(row: Sequence[Any]) -> Any:
                saw_null = False
                for part in parts:
                    v = part(row)
                    if v is None:
                        saw_null = True
                    elif not v:
                        return False
                return None if saw_null else True

            return conj
        if isinstance(node, Or):
            parts = [build(op) for op in node.operands]

            def disj(row: Sequence[Any]) -> Any:
                saw_null = False
                for part in parts:
                    v = part(row)
                    if v is None:
                        saw_null = True
                    elif v:
                        return True
                return None if saw_null else False

            return disj
        if isinstance(node, Not):
            inner = build(node.operand)

            def negation(row: Sequence[Any]) -> Any:
                v = inner(row)
                if v is None:
                    return None
                return not v

            return negation
        if isinstance(node, Arithmetic):
            left = build(node.left)
            right = build(node.right)
            op = node.op

            def arith(row: Sequence[Any]) -> Any:
                a = left(row)
                b = right(row)
                if a is None or b is None:
                    return None
                if op == ArithmeticOp.ADD:
                    return a + b
                if op == ArithmeticOp.SUB:
                    return a - b
                if op == ArithmeticOp.MUL:
                    return a * b
                if b == 0:
                    raise ExecutionError("division by zero")
                result = a / b
                return result

            return arith
        if isinstance(node, Negate):
            inner = build(node.operand)
            return lambda row: None if inner(row) is None else -inner(row)
        if isinstance(node, Like):
            inner = build(node.operand)
            regex = like_to_regex(node.pattern)
            negated = node.negated

            def like(row: Sequence[Any]) -> Any:
                v = inner(row)
                if v is None:
                    return None
                matched = regex.match(v) is not None
                return (not matched) if negated else matched

            return like
        if isinstance(node, InList):
            inner = build(node.operand)
            values = {lit.value for lit in node.values}
            negated = node.negated

            def in_list(row: Sequence[Any]) -> Any:
                v = inner(row)
                if v is None:
                    return None
                member = v in values
                return (not member) if negated else member

            return in_list
        if isinstance(node, IsNull):
            inner = build(node.operand)
            negated = node.negated

            def is_null(row: Sequence[Any]) -> Any:
                v = inner(row)
                return (v is not None) if negated else (v is None)

            return is_null
        if isinstance(node, FunctionCall):
            fn = _scalar_function(node.name)
            arg_funcs = [build(a) for a in node.args]
            return lambda row: fn(*(f(row) for f in arg_funcs))
        if isinstance(node, AggregateCall):
            raise ExecutionError(
                "aggregate call evaluated outside an Aggregate operator"
            )
        raise ExecutionError(f"unknown expression node: {type(node).__name__}")

    return build(expr)


def compile_predicate(expr: Expression, schema: Sequence[str]) -> Callable[[Sequence[Any]], bool]:
    """Compile a boolean expression; NULL results count as not satisfied."""
    fn = compile_expression(expr, schema)

    def predicate(row: Sequence[Any]) -> bool:
        v = fn(row)
        return bool(v) if v is not None else False

    return predicate
