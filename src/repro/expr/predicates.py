"""Predicate normalization into DNF over simple atoms.

The policy evaluator (paper §5, Algorithm 1 line 3) needs a logical
implication test ``P_q ⇒ P_e``.  Following the paper — which uses a simple,
sound-but-incomplete technique in the style of Goldstein & Larson [24] — we
normalize both predicates into disjunctive normal form over *atoms*:

* range constraints ``col op constant`` (equality is a degenerate range),
* ``col <> constant``,
* ``col IN (v1, ...)``,
* ``col LIKE 'pattern'``,
* everything else (column-column comparisons, arithmetic, IS NULL, ...)
  becomes an *opaque* atom that only entails a syntactically identical atom.

Columns are identified by their base-table provenance
(:class:`~repro.expr.expressions.BaseColumn`) when available so that a
query predicate over plan field names can be compared with a policy
predicate over stored-table column names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from .expressions import (
    And,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    TRUE,
    FALSE,
)

#: Conversion to DNF is exponential in the worst case; beyond this many
#: disjuncts we give up and report "cannot prove implication" (sound).
MAX_DISJUNCTS = 128

ColumnKey = Hashable


def column_key(ref: ColumnRef) -> ColumnKey:
    """Identity used to match query columns against policy columns."""
    if ref.base is not None:
        return ref.base
    return ("name", ref.name)


def canonical_text(expr: Expression) -> str:
    """Render an expression with provenance-based column names and sorted
    operands for symmetric operators.

    Used to compare *opaque* atoms (e.g. join predicates) between a query
    predicate and a policy predicate: ``c.custkey = o.custkey`` in a query
    and ``customer.custkey = orders.custkey`` in a policy expression both
    canonicalize to the same string when provenance matches.
    """
    if isinstance(expr, ColumnRef):
        return str(expr.base) if expr.base is not None else expr.name
    if isinstance(expr, Comparison):
        left = canonical_text(expr.left)
        right = canonical_text(expr.right)
        if expr.op in (ComparisonOp.EQ, ComparisonOp.NE) and right < left:
            left, right = right, left
        return f"({left} {expr.op.value} {right})"
    if isinstance(expr, (And, Or)):
        keyword = " AND " if isinstance(expr, And) else " OR "
        parts = sorted(canonical_text(op) for op in expr.operands)
        return "(" + keyword.join(parts) + ")"
    if not expr.children():
        return str(expr)
    return _render_with_canonical_columns(expr)


def _render_with_canonical_columns(expr: Expression) -> str:
    from .expressions import rename_columns, walk

    renames = {}
    for node in walk(expr):
        if isinstance(node, ColumnRef) and node.base is not None:
            renames[node.name] = str(node.base)
    return str(rename_columns(expr, renames))


@dataclass(frozen=True)
class Range:
    """A (possibly half-open) interval constraint on one column."""

    low: Any = None
    low_inclusive: bool = True
    high: Any = None
    high_inclusive: bool = True

    @staticmethod
    def equal_to(value: Any) -> "Range":
        return Range(low=value, low_inclusive=True, high=value, high_inclusive=True)

    def intersect(self, other: "Range") -> "Range | None":
        """Intersection of two ranges; ``None`` when values are not mutually
        comparable (mixed types)."""
        try:
            low, low_inc = self.low, self.low_inclusive
            if other.low is not None:
                if low is None or other.low > low:
                    low, low_inc = other.low, other.low_inclusive
                elif other.low == low:
                    low_inc = low_inc and other.low_inclusive
            high, high_inc = self.high, self.high_inclusive
            if other.high is not None:
                if high is None or other.high < high:
                    high, high_inc = other.high, other.high_inclusive
                elif other.high == high:
                    high_inc = high_inc and other.high_inclusive
        except TypeError:
            return None
        return Range(low, low_inc, high, high_inc)

    def is_empty(self) -> bool:
        if self.low is None or self.high is None:
            return False
        try:
            if self.low > self.high:
                return True
            if self.low == self.high:
                return not (self.low_inclusive and self.high_inclusive)
        except TypeError:
            return False
        return False

    def contains_value(self, value: Any) -> bool:
        try:
            if self.low is not None:
                if value < self.low:
                    return False
                if value == self.low and not self.low_inclusive:
                    return False
            if self.high is not None:
                if value > self.high:
                    return False
                if value == self.high and not self.high_inclusive:
                    return False
        except TypeError:
            return False
        return True

    def is_subset_of(self, other: "Range") -> bool:
        """True when every value satisfying ``self`` satisfies ``other``."""
        try:
            if other.low is not None:
                if self.low is None:
                    return False
                if self.low < other.low:
                    return False
                if self.low == other.low and self.low_inclusive and not other.low_inclusive:
                    return False
            if other.high is not None:
                if self.high is None:
                    return False
                if self.high > other.high:
                    return False
                if self.high == other.high and self.high_inclusive and not other.high_inclusive:
                    return False
        except TypeError:
            return False
        return True

    def exact_value(self) -> Any | None:
        """The single value this range pins down, if any."""
        if (
            self.low is not None
            and self.low == self.high
            and self.low_inclusive
            and self.high_inclusive
        ):
            return self.low
        return None


@dataclass
class Conjunct:
    """One DNF disjunct: a conjunction of atoms, indexed per column."""

    ranges: dict[ColumnKey, Range] = field(default_factory=dict)
    in_sets: dict[ColumnKey, frozenset] = field(default_factory=dict)
    not_equal: dict[ColumnKey, set] = field(default_factory=dict)
    likes: set[tuple[ColumnKey, str, bool]] = field(default_factory=set)
    opaque: set[str] = field(default_factory=set)
    unsatisfiable: bool = False

    def add_range(self, key: ColumnKey, rng: Range) -> None:
        existing = self.ranges.get(key)
        if existing is None:
            combined: Range | None = rng
        else:
            combined = existing.intersect(rng)
        if combined is None:
            # Values not comparable; record both constraints opaquely so
            # entailment still requires syntactic matches.
            self.opaque.add(f"range:{key}:{rng}")
            return
        self.ranges[key] = combined
        if combined.is_empty():
            self.unsatisfiable = True

    def add_in_set(self, key: ColumnKey, values: frozenset) -> None:
        existing = self.in_sets.get(key)
        combined = values if existing is None else (existing & values)
        self.in_sets[key] = combined
        if not combined:
            self.unsatisfiable = True

    def add_not_equal(self, key: ColumnKey, value: Any) -> None:
        self.not_equal.setdefault(key, set()).add(value)
        rng = self.ranges.get(key)
        if rng is not None and rng.exact_value() == value:
            self.unsatisfiable = True

    def merge(self, other: "Conjunct") -> "Conjunct":
        out = Conjunct()
        out.unsatisfiable = self.unsatisfiable or other.unsatisfiable
        for src in (self, other):
            for key, rng in src.ranges.items():
                out.add_range(key, rng)
            for key, values in src.in_sets.items():
                out.add_in_set(key, values)
            for key, values in src.not_equal.items():
                for v in values:
                    out.add_not_equal(key, v)
            out.likes |= src.likes
            out.opaque |= src.opaque
        return out


def _atom_conjunct(expr: Expression, negated: bool) -> Conjunct:
    """Translate one atomic expression into a :class:`Conjunct`."""
    out = Conjunct()
    if isinstance(expr, Comparison):
        left, right, op = expr.left, expr.right, expr.op
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            left, right, op = right, left, op.flip()
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            if negated:
                op = op.negate()
            key = column_key(left)
            value = right.value
            if op == ComparisonOp.EQ:
                out.add_range(key, Range.equal_to(value))
            elif op == ComparisonOp.NE:
                out.add_not_equal(key, value)
            elif op == ComparisonOp.LT:
                out.add_range(key, Range(high=value, high_inclusive=False))
            elif op == ComparisonOp.LE:
                out.add_range(key, Range(high=value, high_inclusive=True))
            elif op == ComparisonOp.GT:
                out.add_range(key, Range(low=value, low_inclusive=False))
            elif op == ComparisonOp.GE:
                out.add_range(key, Range(low=value, low_inclusive=True))
            return out
        out.opaque.add(("NOT " if negated else "") + canonical_text(expr))
        return out
    if isinstance(expr, Like) and isinstance(expr.operand, ColumnRef):
        is_negated = expr.negated ^ negated
        out.likes.add((column_key(expr.operand), expr.pattern, is_negated))
        return out
    if isinstance(expr, InList) and isinstance(expr.operand, ColumnRef):
        key = column_key(expr.operand)
        is_negated = expr.negated ^ negated
        values = frozenset(lit.value for lit in expr.values)
        if is_negated:
            for v in values:
                out.add_not_equal(key, v)
        else:
            out.add_in_set(key, values)
        return out
    if isinstance(expr, Literal):
        if bool(expr.value) == negated:
            out.unsatisfiable = True
        return out
    out.opaque.add(("NOT " if negated else "") + canonical_text(expr))
    return out


def to_dnf(expr: Expression | None) -> list[Conjunct] | None:
    """Normalize a predicate into a list of satisfiable conjuncts.

    Returns ``None`` when the normalization exceeds :data:`MAX_DISJUNCTS`
    (callers must then treat the implication as unprovable).  An empty list
    means the predicate is unsatisfiable.  ``None``/TRUE input yields a
    single empty conjunct (always true).
    """

    def recurse(node: Expression, negated: bool) -> list[Conjunct] | None:
        if isinstance(node, Not):
            return recurse(node.operand, not negated)
        is_conj = (isinstance(node, And) and not negated) or (
            isinstance(node, Or) and negated
        )
        is_disj = (isinstance(node, Or) and not negated) or (
            isinstance(node, And) and negated
        )
        if is_conj:
            operands = node.operands  # type: ignore[union-attr]
            result: list[Conjunct] = [Conjunct()]
            for op in operands:
                sub = recurse(op, negated)
                if sub is None:
                    return None
                merged: list[Conjunct] = []
                for a in result:
                    for b in sub:
                        combo = a.merge(b)
                        if not combo.unsatisfiable:
                            merged.append(combo)
                if len(merged) > MAX_DISJUNCTS:
                    return None
                result = merged
                if not result:
                    return []
            return result
        if is_disj:
            operands = node.operands  # type: ignore[union-attr]
            result = []
            for op in operands:
                sub = recurse(op, negated)
                if sub is None:
                    return None
                result.extend(sub)
                if len(result) > MAX_DISJUNCTS:
                    return None
            return result
        atom = _atom_conjunct(node, negated)
        if atom.unsatisfiable:
            return []
        return [atom]

    if expr is None or expr == TRUE:
        return [Conjunct()]
    if expr == FALSE:
        return []
    return recurse(expr, False)
