"""Sound (incomplete) logical implication test ``P_q ⇒ P_e``.

Used by the policy evaluator (paper §5, Algorithm 1 line 3) to check that
the rows a query selects are a subset of the rows a policy expression
permits.  The technique follows the materialized-view matching style of
Goldstein & Larson cited by the paper: both predicates are normalized to
DNF over simple atoms and containment is checked atom-wise.  The test is
*sound* — it never claims an implication that does not hold — but
incomplete (e.g. it cannot prove ``A=5 ∧ B=3 ⇒ A+B=8``, the paper's own
example of a failing case).
"""

from __future__ import annotations

from typing import Any

from .evaluator import like_to_regex
from .expressions import Expression
from .predicates import Conjunct, Range, to_dnf


def _entails_range(q: Conjunct, key: Any, required: Range) -> bool:
    rng = q.ranges.get(key)
    if rng is not None and rng.is_subset_of(required):
        return True
    in_set = q.in_sets.get(key)
    if in_set is not None and all(required.contains_value(v) for v in in_set):
        return True
    return False


def _entails_in_set(q: Conjunct, key: Any, allowed: frozenset) -> bool:
    in_set = q.in_sets.get(key)
    if in_set is not None and in_set <= allowed:
        return True
    rng = q.ranges.get(key)
    if rng is not None:
        exact = rng.exact_value()
        if exact is not None and exact in allowed:
            return True
    return False


def _entails_not_equal(q: Conjunct, key: Any, excluded: Any) -> bool:
    if excluded in q.not_equal.get(key, ()):
        return True
    rng = q.ranges.get(key)
    if rng is not None:
        exact = rng.exact_value()
        if exact is not None and exact != excluded:
            return True
        if not rng.contains_value(excluded):
            return True
    in_set = q.in_sets.get(key)
    if in_set is not None and excluded not in in_set:
        return True
    return False


def _entails_like(q: Conjunct, key: Any, pattern: str, negated: bool) -> bool:
    if (key, pattern, negated) in q.likes:
        return True
    rng = q.ranges.get(key)
    exact = rng.exact_value() if rng is not None else None
    candidates: list[Any] = []
    if exact is not None:
        candidates = [exact]
    elif key in q.in_sets:
        candidates = list(q.in_sets[key])
    if candidates and all(isinstance(v, str) for v in candidates):
        regex = like_to_regex(pattern)
        matches = all(regex.match(v) is not None for v in candidates)
        return (not matches) if negated else matches
    return False


def conjunct_entails(q: Conjunct, e: Conjunct) -> bool:
    """True when every row satisfying conjunct ``q`` satisfies ``e``."""
    if q.unsatisfiable:
        return True
    for key, rng in e.ranges.items():
        if not _entails_range(q, key, rng):
            return False
    for key, allowed in e.in_sets.items():
        if not _entails_in_set(q, key, allowed):
            return False
    for key, excluded in e.not_equal.items():
        for value in excluded:
            if not _entails_not_equal(q, key, value):
                return False
    for key, pattern, negated in e.likes:
        if not _entails_like(q, key, pattern, negated):
            return False
    for atom in e.opaque:
        if atom not in q.opaque:
            return False
    return True


def implies(query_predicate: Expression | None, policy_predicate: Expression | None) -> bool:
    """Sound test of ``query_predicate ⇒ policy_predicate``.

    ``None`` stands for TRUE (no predicate).  Returns ``False`` whenever
    the implication cannot be *proved*, which keeps the policy evaluator
    conservative: an unprovable implication simply means the policy
    expression grants nothing for this query.
    """
    if policy_predicate is None:
        return True
    e_dnf = to_dnf(policy_predicate)
    if e_dnf is None:
        return False
    q_dnf = to_dnf(query_predicate)
    if q_dnf is None:
        return False
    if not e_dnf:
        # Policy predicate is unsatisfiable: only an unsatisfiable query
        # predicate implies it.
        return not q_dnf
    for q_conj in q_dnf:
        if not any(conjunct_entails(q_conj, e_conj) for e_conj in e_dnf):
            return False
    return True
