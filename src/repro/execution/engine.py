"""Query execution engine with an optional runtime compliance guard.

The engine executes located physical plans against a
:class:`~repro.geo.GeoDatabase`, simulating cross-site transfers under
the network cost model.  When constructed with a policy evaluator it acts
as the last line of defense (paper Figure 2's query executor only runs
plans the optimizer accepted; here we additionally *verify*): a plan that
would ship restricted data is refused with
:class:`~repro.errors.ComplianceViolationError` before any data moves.

Two execution modes produce row-identical results:

* **sequential** (default) — one thread evaluates the whole tree
  depth-first; cost is reported as the sum of SHIP transfer times.
* **parallel** (``parallel=True``) — the plan is cut at SHIP boundaries
  into per-site fragments (:mod:`repro.execution.fragments`) which run
  concurrently on a thread pool while an event-driven simulation
  computes ``makespan_seconds``, the critical-path response time under
  the ``α + β·bytes`` model (:mod:`repro.execution.scheduler`).

Orthogonally, ``executor`` selects the operator backend for either mode:
``"row"`` (tuple-at-a-time, the default) or ``"batch"`` (columnar with
compiled batch kernels, :mod:`repro.execution.vectorized`) — also
row-identical by construction; see docs/EXECUTION.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from ..errors import ComplianceViolationError, ExecutionError
from ..geo import GeoDatabase, NetworkModel, synthetic_network
from ..plan import PhysicalPlan
from ..policy import PolicyEvaluator
from ..trace import current_recorder
from .faults import FaultPlan
from .freshness import FreshnessPolicy
from .metrics import ExecutionMetrics, PartialFailure
from .recovery import RetryPolicy
from .scheduler import (
    EXECUTOR_BACKENDS,
    FragmentScheduler,
    validate_executor_name,
    validate_worker_count,
)
from .wire import ShipConfig


@dataclass
class ExecutionResult:
    """Rows plus everything measured while producing them."""

    columns: list[str]
    rows: list[tuple]
    metrics: ExecutionMetrics
    seconds: float  # wall-clock local compute time (not simulated WAN time)

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    @property
    def simulated_cost(self) -> float:
        """The paper's execution-cost metric: total simulated transfer
        time of all SHIPs under the α + β·bytes model."""
        return self.metrics.shipping_seconds

    @property
    def makespan_seconds(self) -> float:
        """Simulated critical-path response time (fragment-parallel
        execution only; 0.0 after a sequential run)."""
        return self.metrics.makespan_seconds

    @property
    def partial_failure(self) -> PartialFailure | None:
        """Set when injected faults made the query unrecoverable (the
        rows are then empty); ``None`` for every completed query."""
        return self.metrics.partial_failure

    @property
    def ok(self) -> bool:
        return self.metrics.partial_failure is None


class ExecutionEngine:
    """Executes physical plans over geo-distributed in-memory data."""

    def __init__(
        self,
        database: GeoDatabase,
        network: NetworkModel | None = None,
        policy_guard: PolicyEvaluator | None = None,
        parallel: bool = False,
        max_workers: int | None = None,
        faults: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        executor: str = "row",
        freshness: "FreshnessPolicy | None" = None,
        ship: "ShipConfig | None" = None,
    ) -> None:
        validate_worker_count(max_workers)  # reject 0/negative up front
        self.database = database
        self.network = network or synthetic_network(database.catalog.locations)
        self.policy_guard = policy_guard
        self.parallel = parallel
        self.max_workers = max_workers
        self.faults = faults
        self.retry_policy = retry_policy
        self.executor = validate_executor_name(executor)
        self.freshness = freshness
        #: Wire format every SHIP edge uses — sequential executors and
        #: the fragment scheduler alike, so the two modes stay
        #: byte-equivalent on logical sizes.  Default: legacy monolithic
        #: uncompressed transfers.
        self.ship = ship or ShipConfig()
        if faults and not parallel:
            raise ExecutionError(
                "fault injection requires the fragment scheduler; construct "
                "the engine with parallel=True"
            )
        if freshness is not None and not parallel:
            raise ExecutionError(
                "runtime freshness checking runs on the fragment scheduler's "
                "simulated clock; construct the engine with parallel=True"
            )

    def execute(
        self, plan: "PhysicalPlan | Any", parallel: bool | None = None
    ) -> ExecutionResult:
        """Run ``plan``; raises :class:`ComplianceViolationError` when a
        policy guard is installed and the plan is non-compliant.

        ``plan`` may also be an
        :class:`~repro.optimizer.compliant.OptimizationResult`: when the
        optimizer (plan cache) already validated the plan *with this
        engine's own guard evaluator*, the per-run guard re-check is
        skipped — that is what makes a warm cache hit skip compliance
        machinery end to end without weakening the guard for any other
        plan source.

        ``parallel`` overrides the engine-level default for one call.
        """
        pre_validated = False
        if not isinstance(plan, PhysicalPlan):
            pre_validated = (
                getattr(plan, "compliance_validated", False)
                and getattr(plan, "validated_by", None) is self.policy_guard
            )
            plan = plan.plan
        if self.policy_guard is not None and not pre_validated:
            from ..optimizer.validator import check_compliance

            violations = check_compliance(plan, self.policy_guard)
            if violations:
                details = "; ".join(str(v) for v in violations)
                raise ComplianceViolationError(
                    f"refusing to execute non-compliant plan: {details}"
                )
        use_parallel = self.parallel if parallel is None else parallel
        if self.faults and not use_parallel:
            raise ExecutionError(
                "fault injection requires the fragment scheduler; pass "
                "parallel=True"
            )
        if self.freshness is not None and not use_parallel:
            raise ExecutionError(
                "runtime freshness checking runs on the fragment scheduler's "
                "simulated clock; pass parallel=True"
            )
        recorder = current_recorder()
        query = None
        if recorder is not None:
            query = recorder.begin_query(
                executor=self.executor, parallel=use_parallel
            )
        start = time.perf_counter()
        try:
            if use_parallel:
                scheduler = FragmentScheduler(
                    self.database,
                    self.network,
                    max_workers=self.max_workers,
                    faults=self.faults,
                    retry_policy=self.retry_policy,
                    compliance_guard=self.policy_guard,
                    executor=self.executor,
                    freshness=self.freshness,
                    ship=self.ship,
                )
                (columns, rows), metrics = scheduler.run(plan)
            else:
                metrics = ExecutionMetrics()
                executor = EXECUTOR_BACKENDS[self.executor](
                    self.database, self.network, metrics, ship=self.ship
                )
                columns, rows = executor.run(plan)
        except BaseException:
            if recorder is not None:
                recorder.end_query(query, at=0.0, status="error")
            raise
        elapsed = time.perf_counter() - start
        metrics.rows_output = len(rows)
        if recorder is not None:
            recorder.end_query(
                query,
                at=metrics.makespan_seconds,
                status="ok" if metrics.partial_failure is None else "partial",
                rows=len(rows),
                makespan=metrics.makespan_seconds,
            )
        return ExecutionResult(
            columns=columns, rows=rows, metrics=metrics, seconds=elapsed
        )
