"""Query execution engine with an optional runtime compliance guard.

The engine executes located physical plans against a
:class:`~repro.geo.GeoDatabase`, simulating cross-site transfers under
the network cost model.  When constructed with a policy evaluator it acts
as the last line of defense (paper Figure 2's query executor only runs
plans the optimizer accepted; here we additionally *verify*): a plan that
would ship restricted data is refused with
:class:`~repro.errors.ComplianceViolationError` before any data moves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

from ..errors import ComplianceViolationError
from ..geo import GeoDatabase, NetworkModel, synthetic_network
from ..plan import PhysicalPlan
from ..policy import PolicyEvaluator
from .metrics import ExecutionMetrics
from .operators import OperatorExecutor


@dataclass
class ExecutionResult:
    """Rows plus everything measured while producing them."""

    columns: list[str]
    rows: list[tuple]
    metrics: ExecutionMetrics
    seconds: float  # wall-clock local compute time (not simulated WAN time)

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> list[dict[str, Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    @property
    def simulated_cost(self) -> float:
        """The paper's execution-cost metric: total simulated transfer
        time of all SHIPs under the α + β·bytes model."""
        return self.metrics.shipping_seconds


class ExecutionEngine:
    """Executes physical plans over geo-distributed in-memory data."""

    def __init__(
        self,
        database: GeoDatabase,
        network: NetworkModel | None = None,
        policy_guard: PolicyEvaluator | None = None,
    ) -> None:
        self.database = database
        self.network = network or synthetic_network(database.catalog.locations)
        self.policy_guard = policy_guard

    def execute(self, plan: PhysicalPlan) -> ExecutionResult:
        """Run ``plan``; raises :class:`ComplianceViolationError` when a
        policy guard is installed and the plan is non-compliant."""
        if self.policy_guard is not None:
            from ..optimizer.validator import check_compliance

            violations = check_compliance(plan, self.policy_guard)
            if violations:
                details = "; ".join(str(v) for v in violations)
                raise ComplianceViolationError(
                    f"refusing to execute non-compliant plan: {details}"
                )
        metrics = ExecutionMetrics()
        executor = OperatorExecutor(self.database, self.network, metrics)
        start = time.perf_counter()
        columns, rows = executor.run(plan)
        elapsed = time.perf_counter() - start
        metrics.rows_output = len(rows)
        return ExecutionResult(
            columns=columns, rows=rows, metrics=metrics, seconds=elapsed
        )
