"""Fragment-parallel plan execution with a simulated WAN clock.

The sequential :class:`~repro.execution.operators.OperatorExecutor`
evaluates a located plan depth-first on one thread, so independent
subtrees that real sites would run concurrently execute one after the
other — and the only cost it can report is the *sum* of all SHIP
transfer times.  This scheduler executes the
:class:`~repro.execution.fragments.FragmentDAG` instead:

* **Real concurrency** — fragments whose inputs are complete run on a
  thread pool, so independent per-site work overlaps for actual
  wall-clock speedup (the row results are identical to the sequential
  engine's; equivalence is locked down by the executor test suite).
* **Simulated response time** — an event-driven simulation advances one
  clock per site.  A fragment's simulated work starts when its last
  input transfer has arrived and finishes when its own output has been
  delivered to the consumer's site, taking
  ``transfer_time = α + β · actual_bytes`` on each cut SHIP edge.  Local
  compute is free on the simulated clock, exactly like the paper's §7.4
  message cost model (measured wall-clock compute is still recorded per
  fragment as an observability hook).  The latest delivery instant is
  the plan's **makespan** — its critical-path response time.

``makespan_seconds <= shipping_seconds`` always holds (a critical path
cannot exceed the sum of all edges), with equality exactly when every
SHIP lies on a single root-to-leaf path (chain plans).  Bushy plans with
independent fragments come in strictly below the sum — the quantity the
paper's response-time experiments actually report.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait

from ..errors import ExecutionError
from ..geo import GeoDatabase, NetworkModel
from ..plan import PhysicalPlan, Ship
from .fragments import Fragment, FragmentDAG, fragment_plan
from .metrics import ExecutionMetrics, FragmentRecord, ShipRecord
from .operators import OperatorExecutor, Result, actual_bytes


class _FragmentExecutor(OperatorExecutor):
    """Evaluator for one fragment body: cut SHIP leaves resolve to the
    producer fragments' already-computed results instead of recursing.

    The transfer itself is accounted once, by the scheduler, when the
    producer completes — so metrics totals match the sequential engine.
    """

    def __init__(
        self,
        database: GeoDatabase,
        network: NetworkModel,
        metrics: ExecutionMetrics,
        ship_results: dict[int, Result],
    ) -> None:
        super().__init__(database, network, metrics)
        self._ship_results = ship_results

    def _ship(self, node: Ship) -> Result:
        try:
            return self._ship_results[id(node)]
        except KeyError:  # pragma: no cover - guards a fragmenter invariant
            raise ExecutionError(
                f"fragment body contains an un-cut SHIP ({node.describe()})"
            ) from None


class FragmentScheduler:
    """Executes a located plan fragment-by-fragment on a thread pool."""

    def __init__(
        self,
        database: GeoDatabase,
        network: NetworkModel,
        max_workers: int | None = None,
    ) -> None:
        self.database = database
        self.network = network
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)

    def run(self, plan: PhysicalPlan) -> tuple[Result, ExecutionMetrics]:
        """Execute ``plan``; returns the root result and plan metrics
        (fragment records, ship records, and ``makespan_seconds``)."""
        dag = fragment_plan(plan)
        results, fragment_metrics = self._execute_dag(dag)
        metrics = self._account(dag, results, fragment_metrics)
        return results[dag.root_index][0], metrics

    # -- parallel execution ----------------------------------------------------

    def _execute_dag(
        self, dag: FragmentDAG
    ) -> tuple[dict[int, tuple[Result, float]], dict[int, ExecutionMetrics]]:
        """Run every fragment, producers before consumers, overlapping
        independent fragments on the pool.  Maps fragment index to
        ``((columns, rows), measured_compute_seconds)`` plus the private
        per-fragment metrics (no cross-thread sharing)."""
        results: dict[int, tuple[Result, float]] = {}
        metrics = {f.index: ExecutionMetrics() for f in dag.fragments}
        waiting_on = {f.index: len(f.inputs) for f in dag.fragments}

        def execute(fragment: Fragment) -> tuple[Result, float]:
            ship_results = {
                id(entry.ship): results[entry.producer][0]
                for entry in fragment.inputs
            }
            executor = _FragmentExecutor(
                self.database, self.network, metrics[fragment.index], ship_results
            )
            start = time.perf_counter()
            out = executor.run(fragment.root)
            return out, time.perf_counter() - start

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            futures: dict[Future, int] = {
                pool.submit(execute, f): f.index
                for f in dag.fragments
                if not f.inputs
            }
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                ready: list[int] = []
                for future in done:
                    index = futures.pop(future)
                    results[index] = future.result()  # re-raises failures
                    consumer = dag.fragments[index].consumer
                    if consumer is not None:
                        waiting_on[consumer] -= 1
                        if waiting_on[consumer] == 0:
                            ready.append(consumer)
                for index in ready:
                    futures[pool.submit(execute, dag.fragments[index])] = index
        return results, metrics

    # -- accounting and simulation ---------------------------------------------

    def _account(
        self,
        dag: FragmentDAG,
        results: dict[int, tuple[Result, float]],
        fragment_metrics: dict[int, ExecutionMetrics],
    ) -> ExecutionMetrics:
        merged = ExecutionMetrics()
        edge_seconds: dict[int, float] = {}  # producer index -> transfer time
        for fragment in dag.fragments:  # deterministic topological order
            merged.absorb(fragment_metrics[fragment.index])
            if fragment.output is not None:
                (_columns, rows), _compute = results[fragment.index]
                nbytes = actual_bytes(rows)
                seconds = self.network.transfer_time(
                    fragment.output.source, fragment.output.target, nbytes
                )
                merged.ships.append(
                    ShipRecord(
                        source=fragment.output.source,
                        target=fragment.output.target,
                        rows=len(rows),
                        bytes=nbytes,
                        seconds=seconds,
                    )
                )
                edge_seconds[fragment.index] = seconds

        # Event-driven simulation: one clock per site, advanced by
        # transfer-delivery events in topological order.
        started: dict[int, float] = {}
        delivered: dict[int, float] = {}
        site_clock: dict[str, float] = {}
        for fragment in dag.fragments:
            start = max(
                (delivered[entry.producer] for entry in fragment.inputs),
                default=0.0,
            )
            started[fragment.index] = start
            delivered[fragment.index] = start + edge_seconds.get(fragment.index, 0.0)
            site_clock[fragment.location] = max(
                site_clock.get(fragment.location, 0.0), delivered[fragment.index]
            )

        for fragment in dag.fragments:
            (_columns, rows), compute = results[fragment.index]
            merged.fragments.append(
                FragmentRecord(
                    index=fragment.index,
                    location=fragment.location,
                    root=fragment.root.describe(),
                    operators=fragment_metrics[fragment.index].operators_executed,
                    rows_out=len(rows),
                    compute_seconds=compute,
                    sim_start_seconds=started[fragment.index],
                    sim_finish_seconds=delivered[fragment.index],
                    inputs=tuple(entry.producer for entry in fragment.inputs),
                    consumer=fragment.consumer,
                )
            )
        merged.makespan_seconds = delivered[dag.root_index]
        merged.site_clock_seconds = site_clock
        return merged
