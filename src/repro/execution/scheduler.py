"""Fragment-parallel plan execution with a simulated, fault-injectable
WAN clock.

The sequential :class:`~repro.execution.operators.OperatorExecutor`
evaluates a located plan depth-first on one thread, so independent
subtrees that real sites would run concurrently execute one after the
other — and the only cost it can report is the *sum* of all SHIP
transfer times.  This scheduler executes the
:class:`~repro.execution.fragments.FragmentDAG` instead:

* **Real concurrency** — fragments whose inputs are complete run on a
  thread pool, so independent per-site work overlaps for actual
  wall-clock speedup (the row results are identical to the sequential
  engine's; equivalence is locked down by the executor test suite).
* **Simulated response time** — an event-driven simulation advances one
  clock per site.  A fragment's simulated work starts when its last
  input transfer has arrived and finishes when its own output has been
  delivered to the consumer's site, taking
  ``transfer_time = α + β · actual_bytes`` on each cut SHIP edge.  Local
  compute is free on the simulated clock, exactly like the paper's §7.4
  message cost model (measured wall-clock compute is still recorded per
  fragment as an observability hook).  The latest delivery instant is
  the plan's **makespan** — its critical-path response time.
* **Fault injection and recovery** — when constructed with a
  :class:`~repro.execution.faults.FaultPlan`, every transfer attempt
  consults it at the attempt's simulated instant through a
  :class:`~repro.geo.FaultAwareNetwork`.  Transient failures retry with
  exponential backoff and deterministic jitter
  (:class:`~repro.execution.recovery.RetryPolicy`), charging every wait
  to the simulated clock so the makespan includes all retry delays.  A
  crashed site triggers **compliance-preserving failover**: the failed
  fragment is re-placed only at a site drawn from its annotated
  execution traits ℰ and re-validated by the plan validator
  (:class:`~repro.execution.recovery.FailoverPlanner`); when no legal
  placement exists the query degrades to a typed
  :class:`~repro.execution.metrics.PartialFailure` instead of crashing.

Without faults, ``makespan_seconds <= shipping_seconds`` always holds
(a critical path cannot exceed the sum of all edges), with equality
exactly when every SHIP lies on a single root-to-leaf path (chain
plans).  Bushy plans with independent fragments come in strictly below
the sum — the quantity the paper's response-time experiments actually
report.  Under faults the makespan additionally absorbs retry backoff,
slow-link degradation, and failover re-deliveries, so it may exceed the
(successful-attempt) shipping sum; the chaos benchmark reports exactly
this inflation.

All simulation and recovery bookkeeping runs in the single-threaded
coordinator loop; worker threads only evaluate operators.  Injected
faults surface as :class:`~repro.errors.FaultError` subclasses and are
absorbed by retry/failover/degradation — genuine operator failures are
*not* absorbed: they cancel all pending sibling fragments and propagate
to the caller unchanged.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait

from ..catalog import FRESHNESS_EPS
from ..errors import (
    CircuitOpenError,
    DeadlineExceeded,
    ExecutionError,
    FaultError,
    FragmentTimeoutError,
    ReplicaStaleError,
    SiteUnavailableError,
    TransferError,
)
from ..geo import FaultAwareNetwork, GeoDatabase, LinkGovernor, NetworkModel
from ..trace import (
    ChunkEvent,
    RecoveryEvent,
    ScanReadEvent,
    ShipEvent,
    annotate_payload_reads,
    current_recorder,
    encode_payload,
)
from ..validation import validate_positive_int, validate_timeout
from ..plan import Filter, PhysicalPlan, Project, Ship, TableScan, UnionAll
from .faults import FaultPlan
from .fragments import Fragment, FragmentDAG, fragment_plan
from .freshness import MAX_REFRESH_WAITS, FreshnessPolicy
from .metrics import (
    ExecutionMetrics,
    FragmentRecord,
    PartialFailure,
    RecoveryRecord,
    ScanRead,
    ShipRecord,
)
from .operators import OperatorExecutor, RowBatch
from .recovery import ChunkLedger, FailoverPlanner, RetryPolicy
from .vectorized import BatchOperatorExecutor, ColumnBatch
from .wire import ShipConfig, ShipTransfer, WireChunk, encode_ship


def validate_worker_count(max_workers: int | None) -> int:
    """Resolve and validate a thread-pool size; ``None`` means the
    default of ``min(8, cores)``.  Zero and negative counts are rejected
    here with a clear typed error (the shared
    :func:`~repro.validation.validate_positive_int`) instead of
    surfacing as an opaque crash deep inside
    :class:`ThreadPoolExecutor` (or, worse for 0, silently falling back
    to the default)."""
    if max_workers is None:
        return min(8, os.cpu_count() or 1)
    return validate_positive_int(max_workers, "worker count")


class _FragmentExecutor(OperatorExecutor):
    """Evaluator for one fragment body: cut SHIP leaves resolve to the
    producer fragments' already-computed results instead of recursing.

    The transfer itself is accounted once, by the coordinator, when the
    consumer is admitted — so metrics totals match the sequential engine.
    """

    def __init__(
        self,
        database: GeoDatabase,
        network: NetworkModel,
        metrics: ExecutionMetrics,
        ship_results: dict[int, RowBatch],
    ) -> None:
        super().__init__(database, network, metrics)
        self._ship_results = ship_results

    def _ship(self, node: Ship) -> RowBatch:
        try:
            return self._ship_results[id(node)]
        except KeyError:  # pragma: no cover - guards a fragmenter invariant
            raise ExecutionError(
                f"fragment body contains an un-cut SHIP ({node.describe()})"
            ) from None


class _BatchFragmentExecutor(BatchOperatorExecutor):
    """Columnar twin of :class:`_FragmentExecutor`: cut SHIP leaves are
    where shipped row batches re-enter columnar form (the SHIP-boundary
    conversion rule — fragments always exchange rows)."""

    def __init__(
        self,
        database: GeoDatabase,
        network: NetworkModel,
        metrics: ExecutionMetrics,
        ship_results: dict[int, RowBatch],
    ) -> None:
        super().__init__(database, network, metrics)
        self._ship_results = ship_results

    def _ship(self, node: Ship) -> ColumnBatch:
        try:
            batch = self._ship_results[id(node)]
        except KeyError:  # pragma: no cover - guards a fragmenter invariant
            raise ExecutionError(
                f"fragment body contains an un-cut SHIP ({node.describe()})"
            ) from None
        return ColumnBatch.from_rows(batch.columns, batch.rows)


#: Sequential executor backend per ``--executor`` name.
EXECUTOR_BACKENDS: dict[str, type] = {
    "row": OperatorExecutor,
    "batch": BatchOperatorExecutor,
}

#: Fragment-body twin of each backend (cut-SHIP leaves resolved from
#: already-computed producer results).
_FRAGMENT_EXECUTORS: dict[str, type] = {
    "row": _FragmentExecutor,
    "batch": _BatchFragmentExecutor,
}


def validate_executor_name(executor: str) -> str:
    """Reject unknown executor backends with a clear error up front."""
    if executor not in EXECUTOR_BACKENDS:
        known = ", ".join(sorted(EXECUTOR_BACKENDS))
        raise ExecutionError(
            f"unknown executor backend {executor!r}; expected one of: {known}"
        )
    return executor


class FragmentScheduler:
    """Executes a located plan fragment-by-fragment on a thread pool,
    optionally under an injected fault schedule."""

    def __init__(
        self,
        database: GeoDatabase,
        network: NetworkModel,
        max_workers: int | None = None,
        faults: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        compliance_guard=None,  # PolicyEvaluator | None
        executor: str = "row",
        breakers: LinkGovernor | None = None,
        freshness: FreshnessPolicy | None = None,
        ship: ShipConfig | None = None,
    ) -> None:
        self.database = database
        self.network = network
        self.max_workers = validate_worker_count(max_workers)
        self.faults = faults if faults is not None else FaultPlan()
        self.retry_policy = retry_policy or RetryPolicy()
        self.compliance_guard = compliance_guard
        self.executor = validate_executor_name(executor)
        self.breakers = breakers
        self.freshness = freshness
        #: Wire format for cut SHIP edges; the default is the legacy
        #: monolithic, uncompressed transfer.
        self.ship = ship or ShipConfig()

    def run(
        self,
        plan: PhysicalPlan,
        start_at: float = 0.0,
        deadline: float | None = None,
    ) -> tuple[RowBatch, ExecutionMetrics]:
        """Execute ``plan``; returns the root result and plan metrics
        (fragment records, ship records, recoveries, and
        ``makespan_seconds``).  Under fault injection an unrecoverable
        query returns empty rows with ``metrics.partial_failure`` set;
        genuine operator failures raise.

        ``start_at`` offsets the simulated clock — the query server
        admits queries at their (shared-clock) admission instant, so
        fault onsets and breaker state are consulted at global times and
        ``makespan_seconds`` is the *absolute* finish instant.
        ``deadline`` (absolute, simulated) cancels the query
        cooperatively at the next fragment boundary once the clock
        passes it, raising a typed
        :class:`~repro.errors.DeadlineExceeded` (pending sibling
        fragments are cancelled by the pool-shutdown path)."""
        if start_at < 0.0:
            raise ExecutionError(f"start_at must be >= 0, got {start_at}")
        validate_timeout(deadline, "deadline")
        run = _ChaosRun(self, plan, start_at=start_at, deadline=deadline)
        run.execute()
        metrics = run.account()
        if run.failure is not None:
            return RowBatch(list(plan.field_names), []), metrics
        return run.results[run.dag.root_index][0], metrics


class _ChaosRun:
    """State of one scheduled execution: the (possibly re-placed) plan
    and DAG, per-fragment results and simulated instants, and every
    fault-recovery decision.  All methods run on the coordinator thread
    except :meth:`_compute`, the worker-side operator evaluation."""

    #: Hard cap on failovers per run — each failover excludes a site for
    #: its fragment, so this is never reached on sane site counts; it
    #: guards against a pathological fault schedule looping forever.
    MAX_RECOVERIES = 32

    def __init__(
        self,
        scheduler: FragmentScheduler,
        plan: PhysicalPlan,
        start_at: float = 0.0,
        deadline: float | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.plan = plan
        self.start_at = start_at
        self.deadline = deadline
        self.dag = fragment_plan(plan)
        self.wan = FaultAwareNetwork(
            scheduler.network, scheduler.faults, breakers=scheduler.breakers
        )
        self.policy = scheduler.retry_policy
        self.planner = FailoverPlanner(
            scheduler.network,
            evaluator=scheduler.compliance_guard,
            all_locations=frozenset(scheduler.database.catalog.locations),
            breakers=scheduler.breakers,
            freshness=scheduler.freshness,
        )
        self.freshness = scheduler.freshness
        self.ship = scheduler.ship
        self.results: dict[int, tuple[RowBatch, float]] = {}
        #: Wire-decoded producer outputs (only when a wire config is
        #: active): consumers read *these* rows, so the codec is
        #: load-bearing — an encode/decode bug shows up as row
        #: divergence in the equivalence suites, not just as a wrong
        #: byte count.
        self.results_decoded: dict[int, RowBatch] = {}
        #: Encoded wire form per producer index, built once per run.  A
        #: failover recompute yields row-identical output, so the cache
        #: survives re-placements.
        self._wire_cache: dict[int, ShipTransfer] = {}
        #: Delivered-chunk acknowledgements: transient retry and
        #: producer-side failover resume from the first unacknowledged
        #: chunk instead of re-shipping (and re-billing) the prefix.
        self.ledger = ChunkLedger()
        #: Simulated instant each fragment's *first* output chunk can
        #: leave its site (== ``ready`` for blocking fragments and
        #: whenever streaming is off).
        self.out_start: dict[int, float] = {}
        self.fragment_metrics: dict[int, ExecutionMetrics] = {
            f.index: ExecutionMetrics() for f in self.dag.fragments
        }
        #: Simulated instant each fragment's computation is available at
        #: its site (compute is free on the simulated clock).
        self.ready: dict[int, float] = {}
        #: Simulated instant each fragment's output finished delivery
        #: (== ready for the result-producing root fragment).
        self.delivered: dict[int, float] = {}
        #: Final successful output transfer per producer fragment.
        self.ship_records: dict[int, ShipRecord] = {}
        self.recoveries: list[RecoveryRecord] = []
        self.failure: PartialFailure | None = None
        #: Transfers refused outright by an open circuit breaker.
        self.breaker_fast_fails = 0
        #: Failovers that switched a scan-bearing fragment to a
        #: compliant replica site (kind == "replica"), and its subsets:
        #: breaker-triggered switches and saves of fragments whose own
        #: scan site died (guaranteed PartialFailures without replicas).
        self.replica_failovers = 0
        self.replica_switches_breaker = 0
        self.partial_failures_avoided = 0
        #: Every base-table read committed under an active freshness
        #: policy (in commit order), and the derived counters.  A
        #: fragment recomputed after a failover contributes both its
        #: original and its re-reads — both genuinely happened.
        self.scan_reads: list[ScanRead] = []
        self.stale_reads = 0
        self.refresh_waits = 0
        self.refresh_wait_seconds = 0.0
        self.freshness_demotions = 0
        #: Latest committed reads per fragment, for annotating that
        #: producer's payload descriptor and ship events.
        self._scan_reads: dict[int, tuple[ScanRead, ...]] = {}
        #: Sites a fragment has already failed at (never retried).
        self._excluded: dict[int, set[str]] = {}
        #: Trace recorder resolved once on the coordinator thread (the
        #: pool's worker threads never emit).  ``None`` when disabled.
        self.recorder = current_recorder()
        #: Encoded payload descriptor per producer fragment index.  A
        #: payload depends only on the fragment's logical content and
        #: its scan sites, so the cache survives *replacement*-kind
        #: failovers (scan sites unchanged) and is shared by retry
        #: re-deliveries — but a *replica*-kind failover moves the scan
        #: itself, so :meth:`_failover` drops that fragment's entry.
        self._payload_cache: dict[int, dict] = {}

    # -- worker side -----------------------------------------------------------

    def _compute(self, fragment: Fragment) -> tuple[RowBatch, float]:
        ship_results = {
            id(entry.ship): self.results_decoded.get(
                entry.producer, self.results[entry.producer][0]
            )
            for entry in fragment.inputs
        }
        executor = _FRAGMENT_EXECUTORS[self.scheduler.executor](
            self.scheduler.database,
            self.scheduler.network,
            self.fragment_metrics[fragment.index],
            ship_results,
        )
        start = time.perf_counter()
        out = executor.run(fragment.root)
        return out, time.perf_counter() - start

    # -- coordinator: scheduling loop ------------------------------------------

    def execute(self) -> None:
        """Run every fragment, producers before consumers, overlapping
        independent fragments on the pool.  Admission (the simulated
        fault/recovery bookkeeping) happens just before submission; a
        genuine operator failure cancels all pending sibling futures and
        re-raises; an unrecoverable injected fault cancels them and
        records a :class:`PartialFailure` instead."""
        waiting_on = {f.index: len(f.inputs) for f in self.dag.fragments}
        futures: dict[Future, int] = {}

        def submit(pool: ThreadPoolExecutor, index: int) -> bool:
            """Admit + submit one fragment; False aborts the run."""
            try:
                self._admit(index)
            except FaultError as error:
                fragment = self.dag.fragments[index]
                self.failure = PartialFailure(
                    fragment_index=index,
                    location=fragment.location,
                    error_type=type(error).__name__,
                    message=str(error),
                    at_seconds=getattr(error, "at", 0.0) or 0.0,
                )
                return False
            futures[pool.submit(self._compute, self.dag.fragments[index])] = index
            return True

        with ThreadPoolExecutor(max_workers=self.scheduler.max_workers) as pool:
            try:
                for fragment in self.dag.fragments:
                    if not fragment.inputs:
                        if not submit(pool, fragment.index):
                            return
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    ready: list[int] = []
                    for future in done:
                        index = futures.pop(future)
                        self.results[index] = future.result()  # re-raises bugs
                        consumer = self.dag.fragments[index].consumer
                        if consumer is not None:
                            waiting_on[consumer] -= 1
                            if waiting_on[consumer] == 0:
                                ready.append(consumer)
                    for index in ready:
                        if not submit(pool, index):
                            return
            finally:
                # On any abort — operator bug or unrecoverable fault —
                # cancel queued siblings instead of letting them run to
                # completion during pool shutdown; in-flight ones are
                # joined by the pool's __exit__.
                for future in futures:
                    future.cancel()

    # -- coordinator: simulated admission with faults ---------------------------

    def _admit(self, index: int) -> None:
        """Fix fragment ``index``'s simulated start: deliver every input
        to its site, absorbing faults by retry and failover.  Sets
        ``ready[index]``; raises :class:`FaultError` only when recovery
        is impossible (→ partial failure), or the non-fault
        :class:`DeadlineExceeded` when the clock has passed the query's
        deadline — deadline cancellation is cooperative and happens
        exactly here, at fragment-admission boundaries."""
        not_before = self.start_at
        while True:
            fragment = self.dag.fragments[index]
            site = fragment.location
            base = max(
                [not_before]
                + [
                    self.out_start.get(entry.producer, self.ready[entry.producer])
                    for entry in fragment.inputs
                ]
            )
            self._check_deadline(base, index)
            if self.scheduler.faults.site_down(site, base):
                error = SiteUnavailableError(
                    f"site {site!r} is down at t={base:.3f}s", site=site
                )
                error.at = base
                not_before = self._failover(index, error, base)
                continue
            try:
                start = base
                first_done = base
                records: list[tuple[int, ShipRecord, float]] = []
                for entry in fragment.inputs:
                    first, delivered, record = self._transfer(
                        entry.producer, site, not_before, consumer_index=index
                    )
                    records.append((entry.producer, record, delivered))
                    start = max(start, delivered)
                    first_done = max(first_done, first)
            except SiteUnavailableError as error:
                detected = getattr(error, "at", base)
                if error.site == site:
                    not_before = self._failover(index, error, detected)
                else:
                    # A producer's site died before its data got out:
                    # the computed rows are lost with the site, so the
                    # producer is re-placed and (freely, on the simulated
                    # clock) recomputed at its new site after its own
                    # inputs are re-delivered there.
                    producer = self._producer_at(fragment, error.site)
                    not_before = self._failover(producer, error, detected)
                continue
            except (TransferError, FragmentTimeoutError) as error:
                # A permanently dead or timed-out path into this site:
                # route around it by re-placing the consumer.
                not_before = self._failover(index, error, getattr(error, "at", base))
                continue
            if self.scheduler.faults.site_down(site, start):
                # The site died while its inputs were in flight; the
                # buffered records are discarded with the attempt.
                error = SiteUnavailableError(
                    f"site {site!r} went down at t<={start:.3f}s while inputs "
                    f"were arriving",
                    site=site,
                )
                error.at = start
                not_before = self._failover(index, error, start)
                continue
            gated = False
            if self.freshness is not None:
                action, when = self._freshness_gate(index, start)
                if action == "retry":
                    # Demoted to a fresher copy: re-admit there (the
                    # buffered input records are discarded — the new
                    # site needs its own deliveries).
                    not_before = when
                    continue
                gated = when != start
                start = when
            for producer, record, delivered in records:
                self.ship_records[producer] = record
                self.delivered[producer] = delivered
            self.ready[index] = start
            # First-chunk admission: a pipelined fragment (its body only
            # filters/projects/unions the streamed input) can start
            # emitting output chunks once its first input chunk landed;
            # blocking fragments — and any fragment a freshness gate
            # parked — emit nothing before they are fully ready.
            if (
                self.ship.streaming
                and fragment.inputs
                and not gated
                and self._streamable(fragment)
            ):
                self.out_start[index] = min(first_done, start)
            else:
                self.out_start[index] = start
            if index == self.dag.root_index:
                self.delivered[index] = start
            return

    def _check_deadline(self, now: float, index: int) -> None:
        """Cooperative load shedding: once the simulated clock passes
        the query's (absolute) deadline, admitting more fragments is
        wasted work the caller no longer wants.  The raise propagates
        through the scheduling loop, whose shutdown path cancels every
        pending sibling future.

        Checked only *before* a fragment commits new WAN work (its
        admission ``base``): if the deadline passes while a fragment's
        inputs are already in flight, abandoning the paid-for transfers
        saves nothing, so the fragment completes and the query is
        delivered *late* (flagged by the server's ``served_late``)."""
        if self.deadline is not None and now > self.deadline:
            raise DeadlineExceeded(
                f"fragment f{index} would start at t={now:.3f}s, past the "
                f"query deadline of t={self.deadline:.3f}s",
                deadline=self.deadline,
                at=now,
            )

    def _producer_at(self, fragment: Fragment, site: str) -> int:
        for entry in fragment.inputs:
            if self.dag.fragments[entry.producer].location == site:
                return entry.producer
        raise AssertionError(  # pragma: no cover - transfer endpoints are inputs
            f"no producer of f{fragment.index} at {site!r}"
        )

    # -- coordinator: runtime freshness ------------------------------------------

    def _freshness_gate(self, index: int, start: float) -> tuple[str, float]:
        """Re-check replica staleness for fragment ``index`` at its
        admission instant ``start`` — the runtime half of the freshness
        model (plan-time filtering already happened; the copies may have
        aged since).  Returns ``("commit", start')`` once the reads are
        committed (``start'`` > ``start`` after a refresh wait), or
        ``("retry", t)`` after a demotion to a fresher site re-placed
        the fragment.  Raises :class:`ReplicaStaleError` when
        enforcement finds no legal alternative — the caller degrades the
        query to a partial failure rather than serve a violating read."""
        policy = self.freshness
        fragment = self.dag.fragments[index]
        reads = policy.replica_reads(fragment, start)
        if not reads or not policy.enforcing:
            self._commit_reads(index, reads)
            return ("commit", start)
        violations = [
            r for r in reads if not policy.within_bound(r.staleness_seconds)
        ]
        if violations and policy.mode == "wait-for-refresh":
            waited = self._wait_for_refresh(index, fragment, start, violations)
            if waited is not None:
                return ("commit", waited)
            # No refresh is coming (or none inside the fragment
            # timeout): fall through to demotion.
        if violations:
            worst = max(r.staleness_seconds for r in violations)
            error = ReplicaStaleError(
                f"fragment f{index} would read "
                f"{', '.join(sorted(set(f'{r.database}.{r.table}@{r.site}' for r in violations)))} "
                f"at staleness {worst:.3f}s, over the "
                f"{policy.max_staleness:g}s bound at t={start:.3f}s",
                site=fragment.location,
                staleness=worst,
                bound=policy.max_staleness,
            )
            error.at = start
            return ("retry", self._failover(index, error, start))
        worst = max(r.staleness_seconds for r in reads)
        if policy.mode == "prefer-fresh" and worst > FRESHNESS_EPS:
            # In-bound but lagging: demote softly — only if a strictly
            # fresher legal copy is actually placeable; otherwise the
            # stale-within-bound read is committed as-is.
            error = ReplicaStaleError(
                f"fragment f{index} prefers a copy fresher than "
                f"{worst:.3f}s-stale {fragment.location!r} at t={start:.3f}s",
                site=fragment.location,
                staleness=worst,
                bound=policy.max_staleness,
            )
            error.at = start
            resume = self._failover(
                index, error, start, soft=True, staleness_ceiling=worst
            )
            if resume is not None:
                return ("retry", resume)
        self._commit_reads(index, reads)
        return ("commit", start)

    def _wait_for_refresh(
        self,
        index: int,
        fragment: Fragment,
        start: float,
        violations: list[ScanRead],
    ) -> float | None:
        """Park the fragment until every violating replica has refreshed
        within the bound, charging the wait to the simulated clock.
        Returns the post-wait admission instant with the reads
        committed, or ``None`` when waiting cannot help (a refresh is
        never coming, the wait would blow the fragment timeout, or the
        schedules cannot outrun the bound)."""
        policy = self.freshness
        timeout = self.policy.fragment_timeout
        now = start
        pending = violations
        for _ in range(MAX_REFRESH_WAITS):
            target = now
            for read in pending:
                refresh = policy.tracker.next_refresh(
                    read.database, read.table, read.site, now
                )
                if refresh is None:
                    return None  # paused forever / no schedule
                target = max(target, refresh)
            if timeout is not None and target - start > timeout:
                return None
            reads = policy.replica_reads(fragment, target)
            pending = [
                r for r in reads if not policy.within_bound(r.staleness_seconds)
            ]
            if not pending:
                self.refresh_waits += 1
                self.refresh_wait_seconds += target - start
                self._commit_reads(index, reads)
                return target
            now = target
        return None

    def _commit_reads(self, index: int, reads: tuple[ScanRead, ...]) -> None:
        """Account fragment ``index``'s base-table reads: counters, the
        metrics trail, and one ``scan_read`` trace event per read so the
        runtime counters reconcile 1:1 against the trace."""
        self._scan_reads[index] = reads
        self.scan_reads.extend(reads)
        for read in reads:
            if read.staleness_seconds > FRESHNESS_EPS:
                self.stale_reads += 1
            if self.recorder is not None:
                self.recorder.emit(
                    ScanReadEvent(
                        at=read.at_seconds,
                        fragment=index,
                        database=read.database,
                        table=read.table,
                        site=read.site,
                        staleness_at_read=read.staleness_seconds,
                    ),
                    stable=False,
                )

    #: Operators that can emit output rows as input rows arrive — a
    #: fragment whose body holds only these (plus its cut SHIP leaves
    #: and local scans) is admitted on *first-chunk* arrival.  Joins,
    #: aggregates, and sorts are blocking: they see the full input
    #: before their first output row exists.
    _STREAMABLE_OPS = (Filter, Project, UnionAll, Ship, TableScan)

    def _streamable(self, fragment: Fragment) -> bool:
        cut = {id(entry.ship) for entry in fragment.inputs}
        stack: list[PhysicalPlan] = [fragment.root]
        while stack:
            node = stack.pop()
            if not isinstance(node, self._STREAMABLE_OPS):
                return False
            if id(node) in cut:
                continue
            stack.extend(node.children())
        return True

    def _wire_transfer(self, producer_index: int) -> ShipTransfer:
        """The producer's output in wire form (encoded once per run; a
        failover recompute is row-identical, so the encoding is too).
        Consumers are switched to the *decoded* rows at the same time,
        making the codec part of the actual data path."""
        wire = self._wire_cache.get(producer_index)
        if wire is None:
            batch, _compute = self.results[producer_index]
            wire = encode_ship(
                batch.columns, batch.rows, logical_bytes=batch.nbytes, config=self.ship
            )
            self._wire_cache[producer_index] = wire
            self.results_decoded[producer_index] = RowBatch(
                list(batch.columns), wire.decode_rows(), nbytes=batch.nbytes
            )
        return wire

    def _chunk_avail(self, producer_index: int, chunk: int, total: int) -> float:
        """Simulated instant chunk ``chunk`` of the producer's output
        exists at its site.  A pipelined producer emits chunks evenly
        between its first-output instant and its fully-ready instant;
        the last chunk (and every chunk of a single-chunk transfer) can
        never precede ``ready`` — the full result must exist before the
        final chunk is sealed."""
        ready = self.ready[producer_index]
        if total <= 1 or chunk >= total - 1:
            return ready
        out = self.out_start.get(producer_index, ready)
        return out + (ready - out) * (chunk / (total - 1))

    def _transfer(
        self,
        producer_index: int,
        target_site: str,
        not_before: float,
        consumer_index: int,
    ) -> tuple[float, float, ShipRecord]:
        """Simulate the delivery of ``producer_index``'s output to
        ``target_site``: repeated attempts against the fault-aware
        network with exponential backoff, bounded by the retry budget
        and the per-fragment timeout.  Returns the first-chunk arrival
        instant, the full-delivery instant, and the record of the
        successful transfer (first == full for monolithic transfers)."""
        producer = self.dag.fragments[producer_index]
        source = producer.location
        batch, _compute = self.results[producer_index]
        # The measurement is cached on the batch itself, so retry and
        # failover re-deliveries of the same output are O(1) here.
        nbytes = batch.nbytes
        wire = self._wire_transfer(producer_index) if self.ship.active else None
        if wire is not None and self.ship.streaming and source != target_site:
            return self._chunked_transfer(
                producer_index, target_site, not_before, consumer_index, wire
            )
        billed = nbytes if wire is None else wire.wire_bytes
        wire_bytes = None if wire is None else wire.wire_bytes
        wire_chunks = None if wire is None else len(wire.chunks)
        begin = max(self.ready[producer_index], not_before)
        timeout = self.policy.fragment_timeout
        now = begin
        attempts = 0
        def trace(outcome: str, at: float, seconds: float | None = None) -> None:
            if self.recorder is not None:
                self._trace_attempt(
                    producer_index,
                    consumer_index,
                    source,
                    target_site,
                    batch,
                    nbytes,
                    attempts,
                    outcome,
                    at,
                    seconds,
                    wire_bytes=wire_bytes,
                    chunks=wire_chunks,
                )

        while True:
            attempts += 1
            try:
                seconds = self.wan.attempt_transfer(source, target_site, billed, now)
            except TransferError as error:
                error.at = now
                if isinstance(error, CircuitOpenError):
                    # Fast-fail: no backoff, no retries — the breaker
                    # already knows the link is bad.  The admission loop
                    # consults failover next.
                    self.breaker_fast_fails += 1
                    trace("circuit_open", now)
                    raise
                if not error.transient or attempts >= self.policy.max_attempts:
                    trace("link_down" if not error.transient else "retry_exhausted", now)
                    raise
                pause = self.policy.backoff(
                    attempts, producer_index, source, target_site
                )
                if timeout is not None and (now + pause) - begin > timeout:
                    trace("timeout", now)
                    timeout_error = FragmentTimeoutError(
                        f"inputs of fragment f{consumer_index} exceeded the "
                        f"{timeout:g}s fragment timeout while retrying "
                        f"{source} -> {target_site}",
                        fragment_index=consumer_index,
                    )
                    timeout_error.at = now
                    raise timeout_error from error
                trace("transient", now)
                now += pause
                continue
            except SiteUnavailableError as error:
                error.at = now
                trace("site_down", now)
                raise
            delivered = now + seconds
            if timeout is not None and delivered - begin > timeout:
                trace("timeout", now, seconds)
                timeout_error = FragmentTimeoutError(
                    f"delivery {source} -> {target_site} took "
                    f"{delivered - begin:.3f}s, exceeding the {timeout:g}s "
                    f"fragment timeout",
                    fragment_index=consumer_index,
                )
                timeout_error.at = delivered
                raise timeout_error
            trace("delivered", now, seconds)
            record = ShipRecord(
                source=source,
                target=target_site,
                rows=len(batch.rows),
                bytes=nbytes,
                seconds=seconds,
                attempts=attempts,
                retry_wait_seconds=now - begin,
                wire_bytes=wire_bytes,
                chunks=1 if wire_chunks is None else wire_chunks,
            )
            return delivered, delivered, record

    def _chunked_transfer(
        self,
        producer_index: int,
        target_site: str,
        not_before: float,
        consumer_index: int,
        wire: ShipTransfer,
    ) -> tuple[float, float, ShipRecord]:
        """Stream one logical transfer chunk by chunk on the simulated
        clock.  Sends are serialized on the link in chunk order; chunk
        ``k`` leaves no earlier than the instant the producer has it
        (:meth:`_chunk_avail`) and no earlier than the link is free.
        The link's α is paid once per connection — re-paid after any
        fault broke it and on every resumed transfer.  Every delivered
        chunk is acknowledged in the ledger, so retries and failover
        re-deliveries send only the pending suffix and no chunk is ever
        billed twice.  On completion exactly one payload-carrying ship
        event rolls up the transfer."""
        producer = self.dag.fragments[producer_index]
        source = producer.location
        batch, _compute = self.results[producer_index]
        total = len(wire.chunks)
        begin = max(
            self.out_start.get(producer_index, self.ready[producer_index]), not_before
        )
        timeout = self.policy.fragment_timeout
        now = begin
        connected = False

        def trace_chunk(
            chunk: WireChunk,
            attempt: int,
            outcome: str,
            at: float,
            seconds: float | None = None,
        ) -> None:
            if self.recorder is not None:
                self.recorder.emit(
                    ChunkEvent(
                        at=at,
                        source=source,
                        target=target_site,
                        chunk=chunk.index,
                        of=total,
                        rows=chunk.rows,
                        bytes=chunk.nbytes,
                        attempt=attempt,
                        outcome=outcome,
                        seconds=seconds,
                        producer=producer_index,
                        consumer=consumer_index,
                    ),
                    stable=False,
                )

        for k in self.ledger.pending(producer_index, target_site, total):
            chunk = wire.chunks[k]
            now = max(now, self._chunk_avail(producer_index, k, total))
            chunk_attempts = 0
            while True:
                chunk_attempts += 1
                self.ledger.note_attempt(producer_index, target_site)
                try:
                    seconds = self.wan.attempt_chunk_transfer(
                        source,
                        target_site,
                        chunk.nbytes,
                        now,
                        include_alpha=not connected,
                    )
                except TransferError as error:
                    connected = False
                    error.at = now
                    if isinstance(error, CircuitOpenError):
                        self.breaker_fast_fails += 1
                        trace_chunk(chunk, chunk_attempts, "circuit_open", now)
                        raise
                    if (
                        not error.transient
                        or chunk_attempts >= self.policy.max_attempts
                    ):
                        trace_chunk(
                            chunk,
                            chunk_attempts,
                            "link_down" if not error.transient else "retry_exhausted",
                            now,
                        )
                        raise
                    pause = self.policy.backoff(
                        chunk_attempts, producer_index, source, target_site, k
                    )
                    if timeout is not None and (now + pause) - begin > timeout:
                        trace_chunk(chunk, chunk_attempts, "timeout", now)
                        timeout_error = FragmentTimeoutError(
                            f"inputs of fragment f{consumer_index} exceeded "
                            f"the {timeout:g}s fragment timeout while "
                            f"retrying chunk {k} of {source} -> {target_site}",
                            fragment_index=consumer_index,
                        )
                        timeout_error.at = now
                        raise timeout_error from error
                    trace_chunk(chunk, chunk_attempts, "transient", now)
                    self.ledger.note_wait(producer_index, target_site, pause)
                    now += pause
                    continue
                except SiteUnavailableError as error:
                    connected = False
                    error.at = now
                    trace_chunk(chunk, chunk_attempts, "site_down", now)
                    raise
                arrived = now + seconds
                if timeout is not None and arrived - begin > timeout:
                    trace_chunk(chunk, chunk_attempts, "timeout", now, seconds)
                    timeout_error = FragmentTimeoutError(
                        f"chunk {k} of {source} -> {target_site} would land "
                        f"{arrived - begin:.3f}s after the transfer began, "
                        f"exceeding the {timeout:g}s fragment timeout",
                        fragment_index=consumer_index,
                    )
                    timeout_error.at = arrived
                    raise timeout_error
                trace_chunk(chunk, chunk_attempts, "delivered", now, seconds)
                self.ledger.ack(
                    producer_index, target_site, k, arrived, seconds, chunk.nbytes
                )
                connected = True
                now = arrived  # the link frees up when this send lands
                break

        acks = self.ledger.acked(producer_index, target_site)
        first = min(ack.at_seconds for ack in acks.values())
        delivered = max(ack.at_seconds for ack in acks.values())
        total_seconds = sum(ack.seconds for ack in acks.values())
        attempts = self.ledger.attempts(producer_index, target_site)
        if self.recorder is not None:
            # Exactly one payload-carrying descriptor per logical
            # transfer, stamped at the delivery instant; the per-chunk
            # attempts above carry no payload of their own.
            self._trace_attempt(
                producer_index,
                consumer_index,
                source,
                target_site,
                batch,
                wire.logical_bytes,
                attempts,
                "delivered",
                delivered,
                total_seconds,
                wire_bytes=wire.wire_bytes,
                chunks=total,
            )
        record = ShipRecord(
            source=source,
            target=target_site,
            rows=len(batch.rows),
            bytes=wire.logical_bytes,
            seconds=total_seconds,
            attempts=attempts,
            retry_wait_seconds=self.ledger.wait_seconds(producer_index, target_site),
            wire_bytes=wire.wire_bytes,
            chunks=total,
        )
        return first, delivered, record

    def _trace_attempt(
        self,
        producer_index: int,
        consumer_index: int,
        source: str,
        target: str,
        batch: RowBatch,
        nbytes: int,
        attempt: int,
        outcome: str,
        at: float,
        seconds: float | None,
        wire_bytes: int | None = None,
        chunks: int | None = None,
    ) -> None:
        """Emit one ship-attempt event (coordinator thread only).  The
        emission *order* across independent fragments is racy, so the
        event is marked unstable and the recorder orders it by its
        simulated instant instead."""
        payload = self._payload_cache.get(producer_index)
        if payload is None:
            payload = encode_payload(self.dag.fragments[producer_index].root)
            reads = self._scan_reads.get(producer_index)
            if reads:
                # Stamp each scan descriptor with the staleness its
                # committed read actually saw, so the payload is a
                # self-contained freshness claim the auditor re-derives.
                payload = annotate_payload_reads(payload, reads)
            self._payload_cache[producer_index] = payload
        reads = self._scan_reads.get(producer_index)
        staleness = (
            max(r.staleness_seconds for r in reads) if reads else None
        )
        self.recorder.emit(
            ShipEvent(
                at=at,
                source=source,
                target=target,
                rows=len(batch.rows),
                bytes=nbytes,
                attempt=attempt,
                outcome=outcome,
                seconds=seconds,
                producer=producer_index,
                consumer=consumer_index,
                columns=list(batch.columns),
                payload=payload,
                staleness_at_read=staleness,
                wire_bytes=wire_bytes,
                chunks=chunks,
            ),
            stable=False,
        )

    def _failover(
        self,
        index: int,
        error: FaultError,
        detected: float,
        soft: bool = False,
        staleness_ceiling: float | None = None,
    ) -> float | None:
        """Re-place fragment ``index`` after ``error``, compliance
        checks included; returns the earliest simulated instant work may
        resume.  Raises the original error when no legal placement
        exists — the caller turns that into a partial failure — unless
        ``soft`` (a prefer-fresh demotion of an *in-bound* read, where
        staying put is legal): then ``None`` is returned and the caller
        commits the stale-within-bound read instead."""
        if len(self.recoveries) >= self.MAX_RECOVERIES:
            if soft:
                return None
            raise error
        fragment = self.dag.fragments[index]
        excluded = self._excluded.setdefault(index, set())
        unavailable = (
            self.scheduler.faults.crashed_sites(detected)
            | frozenset(excluded)
            | frozenset({fragment.location})
        )
        failover = self.planner.plan_failover(
            self.plan,
            self.dag,
            index,
            frozenset(unavailable),
            reason=str(error),
            at=detected,
            staleness_ceiling=staleness_ceiling,
        )
        if failover is None:
            if soft:
                return None
            raise error
        stale_demotion = isinstance(error, ReplicaStaleError)
        if not soft:
            # A soft demotion leaves the old site legal (its read was
            # within bound); hard failures never retry the failed site.
            excluded.add(fragment.location)
        self.plan = failover.plan
        self.dag = failover.dag
        if failover.kind == "replica":
            # The scan moved: the payload descriptor (which records the
            # replica site each scan reads) must be re-derived, or the
            # trace would misreport post-failover re-reads.
            self._payload_cache.pop(index, None)
            self.replica_failovers += 1
            if stale_demotion:
                self.freshness_demotions += 1
            if isinstance(error, CircuitOpenError):
                self.replica_switches_breaker += 1
            if (
                isinstance(error, SiteUnavailableError)
                and error.site == failover.from_site
            ):
                # The fragment's own scan site died.  Without a replica
                # its ℰ is a singleton, so no re-placement could exist —
                # this failover avoided a guaranteed PartialFailure.
                self.partial_failures_avoided += 1
        self.recoveries.append(
            RecoveryRecord(
                fragment_index=index,
                from_site=failover.from_site,
                to_site=failover.to_site,
                reason=failover.reason,
                at_seconds=detected,
                validated=failover.validated,
                kind=failover.kind,
                staleness_at_read=error.staleness if stale_demotion else None,
            )
        )
        if self.recorder is not None:
            self.recorder.emit(
                RecoveryEvent(
                    at=detected,
                    fragment=index,
                    source=failover.from_site,
                    target=failover.to_site,
                    reason=failover.reason,
                    validated=failover.validated,
                    failover_kind=failover.kind,
                    staleness_at_read=(
                        error.staleness if stale_demotion else None
                    ),
                ),
                stable=False,
            )
        resume = detected + self.policy.detection_seconds
        if index in self.results:
            # An already-computed fragment (its site died holding the
            # data): recompute at the new site, which on the simulated
            # clock costs only the re-delivery of its inputs.
            self._reready(index, resume)
        return resume

    def _reready(self, index: int, not_before: float) -> None:
        """Recompute the ready instant of re-placed fragment ``index``
        by re-delivering its inputs to its new site.  Faults apply to
        the re-deliveries too; a failure here propagates and degrades
        the query to a partial failure."""
        fragment = self.dag.fragments[index]
        start = not_before
        records: list[tuple[int, ShipRecord, float]] = []
        for entry in fragment.inputs:
            _first, delivered, record = self._transfer(
                entry.producer, fragment.location, not_before, consumer_index=index
            )
            records.append((entry.producer, record, delivered))
            start = max(start, delivered)
        if self.freshness is not None:
            # The re-placed copy is re-read at the *re-delivery*
            # instant, which may be later than the failover decision —
            # re-check and re-commit its reads at that instant.
            action, when = self._freshness_gate(index, start)
            if action == "retry":
                # Demoted again: the nested failover already re-ran
                # this method for the newest site, so everything below
                # (including ``ready``) is committed.
                return
            start = when
        for producer, record, delivered in records:
            self.ship_records[producer] = record
            self.delivered[producer] = delivered
        self.ready[index] = start
        # A re-placed fragment restarts from scratch at its new site:
        # its inputs only just finished re-arriving, so there is no
        # earlier first-output instant to stream from.
        self.out_start[index] = start

    # -- accounting -------------------------------------------------------------

    def account(self) -> ExecutionMetrics:
        """Assemble plan-level metrics from the per-fragment pieces and
        the simulated timeline (deterministic fragment order)."""
        merged = ExecutionMetrics()
        site_clock: dict[str, float] = {}
        for fragment in self.dag.fragments:
            index = fragment.index
            merged.absorb(self.fragment_metrics[index])
            record = self.ship_records.get(index)
            if record is not None:
                merged.ships.append(record)
            if index not in self.results:
                continue  # never ran (aborted by a partial failure)
            batch, compute = self.results[index]
            rows = batch.rows
            start = self.ready.get(index, 0.0)
            finish = self.delivered.get(index, start)
            site_clock[fragment.location] = max(
                site_clock.get(fragment.location, 0.0), finish
            )
            merged.fragments.append(
                FragmentRecord(
                    index=index,
                    location=fragment.location,
                    root=fragment.root.describe(),
                    operators=self.fragment_metrics[index].operators_executed,
                    rows_out=len(rows),
                    compute_seconds=compute,
                    sim_start_seconds=start,
                    sim_finish_seconds=finish,
                    inputs=tuple(entry.producer for entry in fragment.inputs),
                    consumer=fragment.consumer,
                )
            )
        merged.recoveries = list(self.recoveries)
        merged.partial_failure = self.failure
        merged.breaker_fast_fails = self.breaker_fast_fails
        merged.replica_failovers = self.replica_failovers
        merged.replica_switches_breaker = self.replica_switches_breaker
        merged.partial_failures_avoided = self.partial_failures_avoided
        merged.scan_reads = list(self.scan_reads)
        merged.stale_reads = self.stale_reads
        merged.refresh_waits = self.refresh_waits
        merged.refresh_wait_seconds = self.refresh_wait_seconds
        merged.freshness_demotions = self.freshness_demotions
        merged.start_at_seconds = self.start_at
        if self.failure is not None:
            merged.makespan_seconds = max(
                [self.failure.at_seconds, self.start_at, *self.delivered.values()],
            )
        else:
            merged.makespan_seconds = self.delivered.get(
                self.dag.root_index, self.start_at
            )
        merged.site_clock_seconds = site_clock
        return merged
