"""Physical operator implementations (tuple-at-a-time over lists).

Each operator consumes fully-materialized child results; geo-distributed
queries in this reproduction are small enough that pipelining would only
add complexity.  SHIP is where the geo-distribution becomes observable:
it counts rows/bytes and charges simulated transfer time to the metrics.
"""

from __future__ import annotations

import datetime
import time
from typing import Any, Callable, Sequence

from ..errors import ExecutionError
from ..expr import AggregateFunction, compile_expression, compile_predicate
from ..geo import GeoDatabase, NetworkModel
from ..plan import (
    Filter,
    HashAggregate,
    HashJoin,
    NestedLoopJoin,
    PhysicalPlan,
    Project,
    Ship,
    Sort,
    TableScan,
    UnionAll,
)
from ..trace import current_recorder
from .metrics import ExecutionMetrics
from .wire import ShipConfig, encode_ship

Row = tuple
Result = tuple[list[str], list[Row]]  # (column names, rows) — unpacked shape


def actual_bytes(rows: Sequence[Row]) -> int:
    """Measured wire size of a row batch (what a SHIP actually transfers).

    The ``datetime.datetime`` check must precede the ``datetime.date``
    one (it is a subclass): a timestamp carries a time-of-day and bills
    the full 8 bytes, a plain date only 4.  Likewise ``bool`` precedes
    ``int``.
    """
    total = 0
    for row in rows:
        for value in row:
            if value is None:
                total += 1
            elif isinstance(value, bool):
                total += 1
            elif isinstance(value, (int, float)):
                total += 8
            elif isinstance(value, str):
                total += len(value)
            elif isinstance(value, datetime.datetime):
                total += 8
            elif isinstance(value, datetime.date):
                total += 4
            else:
                total += 8
    return total


class RowBatch:
    """Materialized operator output: column names plus row tuples.

    Unpacks like the ``(columns, rows)`` tuple it replaced, and caches
    the measured wire size (:attr:`nbytes`) so repeated SHIP attempts —
    the fault scheduler's retry and failover re-delivery paths — never
    re-measure an O(rows) byte count for the same batch.
    """

    __slots__ = ("columns", "rows", "_nbytes")

    def __init__(
        self, columns: list[str], rows: list[Row], nbytes: int | None = None
    ) -> None:
        self.columns = columns
        self.rows = rows
        self._nbytes = nbytes

    def __iter__(self):
        yield self.columns
        yield self.rows

    @property
    def nbytes(self) -> int:
        """Measured wire size of the batch, computed once."""
        if self._nbytes is None:
            self._nbytes = actual_bytes(self.rows)
        return self._nbytes


class OperatorExecutor:
    """Recursive evaluator for located physical plans.

    Every evaluated operator leaves an :class:`OperatorRecord` in the
    metrics (rows out plus *self* wall-clock time, children excluded) so
    fragment- and plan-level compute can be attributed precisely.
    """

    def __init__(
        self,
        database: GeoDatabase,
        network: NetworkModel,
        metrics: ExecutionMetrics,
        ship: ShipConfig | None = None,
    ) -> None:
        self.database = database
        self.network = network
        self.metrics = metrics
        #: Wire format for SHIP edges (``None``/default = legacy
        #: monolithic uncompressed transfers).
        self.ship = ship or ShipConfig()
        self._child_seconds: list[float] = []

    def run(self, node: PhysicalPlan) -> RowBatch:
        self.metrics.operators_executed += 1
        start = time.perf_counter()
        self._child_seconds.append(0.0)
        result = self._dispatch(node)
        if not isinstance(result, RowBatch):
            result = RowBatch(*result)
        elapsed = time.perf_counter() - start
        child_seconds = self._child_seconds.pop()
        if self._child_seconds:
            self._child_seconds[-1] += elapsed
        self.metrics.record_operator(
            node.describe(), node.location, len(result.rows), elapsed - child_seconds
        )
        return result

    def _dispatch(self, node: PhysicalPlan) -> Result:
        if isinstance(node, TableScan):
            return self._scan(node)
        if isinstance(node, Filter):
            return self._filter(node)
        if isinstance(node, Project):
            return self._project(node)
        if isinstance(node, HashJoin):
            return self._hash_join(node)
        if isinstance(node, NestedLoopJoin):
            return self._nested_loop_join(node)
        if isinstance(node, HashAggregate):
            return self._aggregate(node)
        if isinstance(node, UnionAll):
            return self._union(node)
        if isinstance(node, Sort):
            return self._sort(node)
        if isinstance(node, Ship):
            return self._ship(node)
        raise ExecutionError(f"unknown physical operator {type(node).__name__}")

    # -- leaf ------------------------------------------------------------------

    def _scan(self, node: TableScan) -> Result:
        rows = self.database.rows(node.database, node.table)
        self.metrics.rows_scanned += len(rows)
        return list(node.field_names), list(rows)

    # -- unary -----------------------------------------------------------------

    def _filter(self, node: Filter) -> Result:
        assert node.child is not None and node.predicate is not None
        columns, rows = self.run(node.child)
        predicate = compile_predicate(node.predicate, columns)
        return columns, [r for r in rows if predicate(r)]

    def _project(self, node: Project) -> Result:
        assert node.child is not None
        columns, rows = self.run(node.child)
        funcs = [compile_expression(e, columns) for e in node.exprs]
        out = [tuple(f(row) for f in funcs) for row in rows]
        return list(node.names), out

    def _sort(self, node: Sort) -> Result:
        assert node.child is not None
        columns, rows = self.run(node.child)
        index = {name: i for i, name in enumerate(columns)}

        # Sort by keys in reverse significance order (stable sort).
        for name, descending in reversed(node.sort_keys):
            pos = index[name]
            # None sorts first ascending / last descending.
            rows.sort(
                key=lambda r: (r[pos] is not None, r[pos])
                if r[pos] is not None
                else (False, 0),
                reverse=descending,
            )
        if node.limit is not None:
            rows = rows[: node.limit]
        return columns, rows

    def _ship(self, node: Ship) -> RowBatch:
        assert node.child is not None
        batch = self.run(node.child)
        nbytes = batch.nbytes
        wire_bytes: int | None = None
        chunks: int | None = None
        if self.ship.active:
            # Encode for the wire and hand the *decoded* rows onward, so
            # the codec sits on the data path: a round-trip bug diverges
            # rows, not just byte counts.
            wire = encode_ship(
                batch.columns, batch.rows, logical_bytes=nbytes, config=self.ship
            )
            wire_bytes = wire.wire_bytes
            chunks = len(wire.chunks)
            batch = RowBatch(batch.columns, wire.decode_rows(), nbytes=nbytes)
        self.metrics.record_ship(
            self.network,
            node.source,
            node.target,
            len(batch.rows),
            nbytes,
            wire_bytes=wire_bytes,
            chunks=1 if chunks is None else chunks,
        )
        recorder = current_recorder()
        if recorder is not None:
            recorder.record_local_ship(
                node,
                rows=len(batch.rows),
                nbytes=nbytes,
                columns=batch.columns,
                seconds=self.network.transfer_time(
                    node.source,
                    node.target,
                    nbytes if wire_bytes is None else wire_bytes,
                ),
                wire_bytes=wire_bytes,
                chunks=chunks,
            )
        return batch

    # -- joins -----------------------------------------------------------------

    def _hash_join(self, node: HashJoin) -> Result:
        assert node.left is not None and node.right is not None
        left_columns, left_rows = self.run(node.left)
        right_columns, right_rows = self.run(node.right)
        left_key_funcs = [compile_expression(k, left_columns) for k in node.left_keys]
        right_key_funcs = [
            compile_expression(k, right_columns) for k in node.right_keys
        ]
        table: dict[tuple, list[Row]] = {}
        for row in left_rows:
            key = tuple(f(row) for f in left_key_funcs)
            if any(v is None for v in key):
                continue  # NULL never matches in an equi-join
            table.setdefault(key, []).append(row)
        out_columns = left_columns + right_columns
        residual: Callable[[Sequence[Any]], bool] | None = None
        if node.residual is not None:
            residual = compile_predicate(node.residual, out_columns)
        out: list[Row] = []
        for row in right_rows:
            key = tuple(f(row) for f in right_key_funcs)
            if any(v is None for v in key):
                continue
            for match in table.get(key, ()):
                joined = match + row
                if residual is None or residual(joined):
                    out.append(joined)
        # The node's declared field order may differ from the natural
        # left+right concatenation after join commutation; remap.
        return self._remap(out_columns, out, node)

    def _nested_loop_join(self, node: NestedLoopJoin) -> Result:
        assert node.left is not None and node.right is not None
        left_columns, left_rows = self.run(node.left)
        right_columns, right_rows = self.run(node.right)
        out_columns = left_columns + right_columns
        out: list[Row] = []
        if node.condition is None:
            for lrow in left_rows:
                for rrow in right_rows:
                    out.append(lrow + rrow)
        else:
            predicate = compile_predicate(node.condition, out_columns)
            for lrow in left_rows:
                for rrow in right_rows:
                    joined = lrow + rrow
                    if predicate(joined):
                        out.append(joined)
        return self._remap(out_columns, out, node)

    def _remap(self, columns: list[str], rows: list[Row], node: PhysicalPlan) -> Result:
        wanted = list(node.field_names)
        if wanted == columns:
            return columns, rows
        index = {name: i for i, name in enumerate(columns)}
        positions = [index[name] for name in wanted]
        return wanted, [tuple(row[p] for p in positions) for row in rows]

    # -- set and aggregate -------------------------------------------------------

    def _union(self, node: UnionAll) -> Result:
        columns = list(node.field_names)
        out: list[Row] = []
        for child in node.inputs:
            child_columns, child_rows = self.run(child)
            if child_columns == columns:
                out.extend(child_rows)
            else:
                index = {name: i for i, name in enumerate(child_columns)}
                positions = [index[name] for name in columns]
                out.extend(tuple(r[p] for p in positions) for r in child_rows)
        return columns, out

    def _aggregate(self, node: HashAggregate) -> Result:
        assert node.child is not None
        columns, rows = self.run(node.child)
        key_funcs = [compile_expression(k, columns) for k in node.group_keys]
        arg_funcs: list[Callable[[Sequence[Any]], Any] | None] = []
        for agg in node.aggregates:
            if agg.argument is None:
                arg_funcs.append(None)
            else:
                arg_funcs.append(compile_expression(agg.argument, columns))

        groups: dict[tuple, list[_Accumulator]] = {}
        for row in rows:
            key = tuple(f(row) for f in key_funcs)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [_Accumulator(a.func) for a in node.aggregates]
                groups[key] = accumulators
            for accumulator, arg_func in zip(accumulators, arg_funcs):
                accumulator.update(arg_func(row) if arg_func is not None else 1)

        # A global aggregate over an empty input still yields one row.
        if not groups and not node.group_keys:
            groups[()] = [_Accumulator(a.func) for a in node.aggregates]

        out = [
            key + tuple(acc.result() for acc in accumulators)
            for key, accumulators in groups.items()
        ]
        return list(node.field_names), out


class _Accumulator:
    """Accumulator for one aggregate function (NULLs skipped, SQL-style)."""

    __slots__ = ("func", "total", "count", "extreme")

    def __init__(self, func: AggregateFunction) -> None:
        self.func = func
        self.total: Any = 0
        self.count = 0
        self.extreme: Any = None

    def update(self, value: Any) -> None:
        if value is None:
            return
        self.count += 1
        if self.func in (AggregateFunction.SUM, AggregateFunction.AVG):
            self.total += value
        elif self.func == AggregateFunction.MIN:
            if self.extreme is None or value < self.extreme:
                self.extreme = value
        elif self.func == AggregateFunction.MAX:
            if self.extreme is None or value > self.extreme:
                self.extreme = value

    def result(self) -> Any:
        if self.func == AggregateFunction.COUNT:
            return self.count
        if self.func == AggregateFunction.SUM:
            return self.total if self.count else None
        if self.func == AggregateFunction.AVG:
            return self.total / self.count if self.count else None
        return self.extreme
